#!/usr/bin/env python3
"""Application fingerprinting with the classifier plugin (Fig 1 taxonomy).

"Application fingerprinting: optimizing management decisions by
predicting the behavior of user jobs" is one of the six ODA use-case
classes the paper identifies.  This example implements it with the
bundled ``classifier`` operator:

- during a labelled phase, the scheduler publishes the running app's id
  as an ordinary sensor (``app-id``) while different applications run;
- the classifier extracts window statistics from the node's performance
  counters and trains a random forest on the labelled windows;
- afterwards the label sensor goes silent (set out of range) and the
  operator identifies which application is running purely from the
  counter signature — printed against the hidden ground truth.

Run:  python examples/app_fingerprinting.py      (~1 minute)
"""

import numpy as np

from repro.common.timeutil import NS_PER_SEC
from repro.core import OperatorManager
from repro.dcdb import Broker, CollectAgent, Pusher
from repro.dcdb.plugins import PerfeventPlugin
from repro.dcdb.sensor import Sensor
from repro.simulator import ClusterSimulator, ClusterSpec
from repro.simulator.clock import TaskScheduler
from repro.simulator.scheduler import Job

APPS = ["lammps", "amg", "kripke"]
SLOT_S = 60
TRAIN_ROUNDS = 2


def main() -> None:
    sim = ClusterSimulator(ClusterSpec.small(nodes=1, cpus=8), seed=12)
    scheduler = TaskScheduler()
    broker = Broker()
    node = sim.node_paths[0]

    pusher = Pusher(node, broker, scheduler)
    pusher.add_plugin(
        PerfeventPlugin(sim, node, counters=("cpu-cycles", "instructions",
                                             "cache-misses"))
    )
    agent = CollectAgent("agent", broker, scheduler)

    # The label channel: the "scheduler" publishes the current app id.
    label_sensor = Sensor(f"{node}/app-id", unit="#")

    def publish_label(ts):
        job = sim.scheduler.job_on_node(node, ts)
        label = APPS.index(job.app_name) if job else -1  # -1 = unlabelled
        pusher.store_reading(label_sensor, ts, float(label))

    scheduler.add_callback("labels", publish_label, NS_PER_SEC)

    # Schedule the labelled training rounds, then an unlabelled quiz.
    t = 1
    schedule = []
    for round_idx in range(TRAIN_ROUNDS):
        for app in APPS:
            sim.scheduler.add_job(
                Job(f"train-{app}-{round_idx}", app, (node,),
                    t * NS_PER_SEC, (t + SLOT_S) * NS_PER_SEC)
            )
            t += SLOT_S
    quiz_order = ["kripke", "lammps", "amg"]
    quiz_start = t
    for app in quiz_order:
        sim.scheduler.add_job(
            Job(f"quiz-{app}", app, (node,), t * NS_PER_SEC,
                (t + SLOT_S) * NS_PER_SEC)
        )
        schedule.append((t, t + SLOT_S, app))
        t += SLOT_S

    manager = OperatorManager()
    pusher.attach_analytics(manager)
    # Let the first samples (incl. the app-id label sensor) appear so
    # the classifier's pattern unit can resolve.
    scheduler.run_until(2 * NS_PER_SEC)
    manager.load_plugin(
        {
            "plugin": "classifier",
            "operators": {
                "app-id": {
                    "interval_s": 1,
                    "window_s": 8,
                    "delay_s": 9,
                    "inputs": [
                        "<bottomup, filter cpu0[0-3]>cpu-cycles",
                        "<bottomup, filter cpu0[0-3]>instructions",
                        "<bottomup, filter cpu0[0-3]>cache-misses",
                        "<bottomup-1>app-id",
                    ],
                    "outputs": ["<bottomup-1>predicted-app"],
                    "params": {
                        "label": "app-id",
                        "n_classes": len(APPS),
                        "training_samples": TRAIN_ROUNDS * len(APPS) * SLOT_S - 40,
                        "delta_inputs": [
                            "cpu-cycles", "instructions", "cache-misses",
                        ],
                        "seed": 2,
                    },
                }
            },
        }
    )

    # Training phase: labels available.
    scheduler.run_until(quiz_start * NS_PER_SEC)
    op = manager.operator("app-id")
    print(f"training: model trained = {op._shared_model.trained} "
          f"({TRAIN_ROUNDS} rounds x {APPS})")

    # Quiz phase: the label publisher now emits -1 (out of range), so
    # the classifier gets no new ground truth.
    scheduler.run_until(t * NS_PER_SEC)
    agent.flush()

    ts_arr, preds = agent.storage.query(f"{node}/predicted-app", 0, 2**62)
    ts_s = np.asarray(ts_arr) / NS_PER_SEC
    print("\nquiz phase (labels hidden):")
    print("window           truth      predicted   accuracy")
    correct_total = 0
    count_total = 0
    for start, end, app in schedule:
        mask = (ts_s >= start + 10) & (ts_s < end)  # skip mixed windows
        votes = np.asarray(preds)[mask].astype(int)
        if votes.size == 0:
            continue
        majority = np.bincount(votes, minlength=len(APPS)).argmax()
        acc = float((votes == APPS.index(app)).mean())
        correct_total += int((votes == APPS.index(app)).sum())
        count_total += votes.size
        print(
            f"{start:4d}-{end:4d}s   {app:10s} {APPS[majority]:10s}"
            f"   {acc * 100:6.1f}%"
        )
    print(f"\noverall window accuracy: "
          f"{correct_total / max(1, count_total) * 100:.1f}%")


if __name__ == "__main__":
    main()
