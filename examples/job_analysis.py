#!/usr/bin/env python3
"""Case study 2 — per-job CPI analysis via a pipeline (Section VI-C).

Reproduces the PerSyst-on-Wintermute pipeline:

- stage 1: a ``perfmetrics`` operator in every Pusher derives each CPU
  core's CPI from the raw cycle/instruction counters;
- stage 2: a ``persyst`` job operator in the Collect Agent queries the
  running jobs each interval, builds one unit per job spanning all its
  allocated nodes' cores, and emits the deciles of the job-wide CPI
  distribution as new sensors under ``/jobs/<id>/``.

Two jobs run concurrently (LAMMPS: compute-bound, low tight CPI;
Kripke: iteration-structured, swinging CPI); the script prints their
decile series side by side so the application signatures are visible.

Run:  python examples/job_analysis.py      (~30 seconds)
"""

import numpy as np

from repro.common.timeutil import NS_PER_SEC
from repro.core import OperatorManager, Pipeline, PipelineStage
from repro.dcdb import Broker, CollectAgent, Pusher
from repro.dcdb.plugins import PerfeventPlugin
from repro.simulator import ClusterSimulator, ClusterSpec
from repro.simulator.clock import TaskScheduler
from repro.simulator.scheduler import Job

RUN_S = 150


def main() -> None:
    sim = ClusterSimulator(ClusterSpec.small(nodes=4, cpus=8), seed=3)
    scheduler = TaskScheduler()
    broker = Broker()

    pushers, managers = {}, {}
    for node in sim.node_paths:
        pusher = Pusher(node, broker, scheduler)
        pusher.add_plugin(
            PerfeventPlugin(sim, node, counters=("cpu-cycles", "instructions"))
        )
        manager = OperatorManager()
        pusher.attach_analytics(manager)
        pushers[node], managers[node] = pusher, manager
    agent = CollectAgent("agent", broker, scheduler)
    agent_manager = OperatorManager(context={"job_source": sim.scheduler})
    agent.attach_analytics(agent_manager)

    sim.scheduler.add_job(
        Job("lammps-run", "lammps", tuple(sim.node_paths[:2]),
            2 * NS_PER_SEC, (RUN_S + 2) * NS_PER_SEC)
    )
    sim.scheduler.add_job(
        Job("kripke-run", "kripke", tuple(sim.node_paths[2:]),
            2 * NS_PER_SEC, (RUN_S + 2) * NS_PER_SEC)
    )

    perfmetrics_cfg = {
        "plugin": "perfmetrics",
        "operators": {
            "cpi": {
                "interval_s": 1,
                "window_s": 2,
                "delay_s": 2,
                "inputs": ["<bottomup>cpu-cycles", "<bottomup>instructions"],
                "outputs": ["<bottomup>cpi"],
            }
        },
    }
    # Stage 1 on every pusher.
    Pipeline(
        [PipelineStage(managers[n], perfmetrics_cfg, f"cpi@{n}")
         for n in sim.node_paths]
    ).deploy()
    scheduler.run_until(6 * NS_PER_SEC)  # let CPI sensors appear

    # Stage 2 on the collect agent.
    Pipeline(
        [
            PipelineStage(
                agent_manager,
                {
                    "plugin": "persyst",
                    "operators": {
                        "job-cpi": {
                            "interval_s": 1,
                            "window_s": 3,
                            "delay_s": 2,
                            "inputs": ["<bottomup, filter cpu>cpi"],
                        }
                    },
                },
                "persyst",
            )
        ]
    ).deploy()

    scheduler.run_until((RUN_S + 2) * NS_PER_SEC)
    agent.flush()

    def decile(job, d):
        ts, values = agent.storage.query(f"/jobs/{job}/decile{d}", 0, 2**62)
        return np.asarray(ts) / NS_PER_SEC, np.asarray(values)

    print("per-job CPI deciles (16 cores per job):\n")
    print("          LAMMPS                       KRIPKE")
    print("time    d0    d5    d10     |     d0    d5    d10")
    lts, l0 = decile("lammps-run", 0)
    _, l5 = decile("lammps-run", 5)
    _, l10 = decile("lammps-run", 10)
    _, k0 = decile("kripke-run", 0)
    _, k5 = decile("kripke-run", 5)
    _, k10 = decile("kripke-run", 10)
    n = min(len(l0), len(k0))
    for i in range(0, n, 10):
        print(
            f"{lts[i]:5.0f} {l0[i]:5.2f} {l5[i]:5.2f} {l10[i]:6.2f}"
            f"     |  {k0[i]:5.2f} {k5[i]:5.2f} {k10[i]:6.2f}"
        )
    print(
        f"\nLAMMPS: median CPI {np.median(l5):.2f}, spread "
        f"{np.median(l10 - l0[:len(l10)]):.2f} (compute-bound: low, tight)"
    )
    print(
        f"Kripke: CPI swings {k5.min():.1f}..{k5.max():.1f} "
        f"(sweep iterations clearly separable)"
    )
    from repro.common.textplot import ascii_plot

    print()
    print(
        ascii_plot(
            {"d0": k0, "d5": k5, "d10": k10},
            width=72,
            height=12,
            title="Fig 7 equivalent: Kripke CPI deciles over time",
        )
    )


if __name__ == "__main__":
    main()
