#!/usr/bin/env python3
"""Infrastructure management: cooling optimisation (Fig 1 taxonomy).

The remaining ODA use-case class of the paper's taxonomy: "optimizing
the operation of infrastructure and facility-wide systems (e.g., liquid
cooling)".  A warm-water loop runs most efficiently at the *highest*
supply temperature that still keeps nodes thermally safe, so the
textbook optimisation is a feedback loop raising the chiller setpoint
until node temperatures approach their limit.

Wiring:

- node Pushers sample power/temperature (sysfs);
- a facility Pusher samples the cooling loop (inlet temperature,
  setpoint, chiller power) — out-of-band facility data;
- in the Collect Agent, an ``aggregator`` derives the cluster-wide
  maximum node temperature, and a custom ``CoolingControlOperator``
  (written against the public plugin API) nudges the setpoint up while
  there is thermal headroom and down when the limit is threatened.

The script prints the loop converging: setpoint rises, chiller power
falls, node temperatures stay below the limit.

Run:  python examples/infrastructure_cooling.py      (~30 seconds)
"""

from repro.common.timeutil import NS_PER_SEC
from repro.core import OperatorManager
from repro.core.operator import OperatorBase, OperatorConfig
from repro.core.registry import operator_plugin
from repro.dcdb import Broker, CollectAgent, Pusher
from repro.dcdb.plugins import SysfsPlugin
from repro.simulator import (
    ClusterSimulator,
    ClusterSpec,
    CoolingSystem,
    FacilityPlugin,
)
from repro.simulator.clock import TaskScheduler
from repro.simulator.scheduler import Job

TEMP_LIMIT_C = 62.0
MARGIN_C = 2.0


@operator_plugin("cooling-control")
class CoolingControlOperator(OperatorBase):
    """Raises the cooling setpoint while nodes have thermal headroom."""

    def __init__(self, config: OperatorConfig, cooling=None) -> None:
        super().__init__(config)
        self.cooling = cooling
        self.limit_c = float(config.params.get("limit_c", TEMP_LIMIT_C))
        self.margin_c = float(config.params.get("margin_c", MARGIN_C))
        self.step_c = float(config.params.get("step_c", 1.0))

    def compute_unit(self, unit, ts):
        view = self.engine.latest(unit.inputs[0])  # max node temperature
        hottest = float(view.values()[-1])
        setpoint = self.cooling.setpoint_c
        if hottest > self.limit_c:
            setpoint -= 2 * self.step_c  # back off fast
        elif hottest < self.limit_c - self.margin_c:
            setpoint += self.step_c  # harvest efficiency slowly
        new = self.cooling.set_setpoint(setpoint, ts)
        return {s.name: new for s in unit.outputs}


def main() -> None:
    sim = ClusterSimulator(ClusterSpec.small(nodes=6, cpus=4), seed=13)
    cooling = CoolingSystem(sim)
    cooling.set_setpoint(32.0)  # start conservative (cold and wasteful)
    scheduler = TaskScheduler()
    broker = Broker()

    for node in sim.node_paths:
        pusher = Pusher(node, broker, scheduler)
        pusher.add_plugin(SysfsPlugin(sim, node, interval_ns=5 * NS_PER_SEC))
    facility_pusher = Pusher("facility", broker, scheduler)
    facility_pusher.add_plugin(
        FacilityPlugin(cooling, interval_ns=5 * NS_PER_SEC)
    )
    agent = CollectAgent("agent", broker, scheduler)
    manager = OperatorManager(context={"cooling": cooling})
    agent.attach_analytics(manager)

    # Steady full load on all nodes.
    sim.scheduler.add_job(
        Job("load", "lammps", tuple(sim.node_paths), NS_PER_SEC,
            2000 * NS_PER_SEC)
    )

    scheduler.run_until(15 * NS_PER_SEC)
    manager.load_plugin(
        {
            "plugin": "aggregator",
            "operators": {
                "hottest": {
                    "interval_s": 5,
                    "window_s": 15,
                    "inputs": ["<bottomup, filter node>temp"],
                    "outputs": ["<topdown, filter rack>max-node-temp"],
                    "params": {"op": "max"},
                }
            },
        }
    )
    scheduler.run_until(25 * NS_PER_SEC)
    manager.load_plugin(
        {
            "plugin": "cooling-control",
            "operators": {
                "setpoint-ctl": {
                    "interval_s": 30,
                    "delay_s": 10,
                    "inputs": ["<topdown, filter rack>max-node-temp"],
                    "outputs": ["<topdown, filter rack>setpoint-cmd"],
                    "params": {"limit_c": TEMP_LIMIT_C, "margin_c": MARGIN_C},
                }
            },
        }
    )

    print(f"thermal limit {TEMP_LIMIT_C} C; warm-water loop starts at "
          f"{cooling.setpoint_c:.0f} C setpoint\n")
    print("time   setpoint[C]  inlet[C]  max-node[C]  chiller[kW]")
    start_chiller = None
    for step in range(16):
        scheduler.run_until((60 + step * 60) * NS_PER_SEC)
        agent.flush()
        hottest = agent.cache_for(
            sim.topology.rack_paths[0] + "/max-node-temp"
        ).latest().value
        if start_chiller is None:
            start_chiller = cooling.chiller_power_w
        if step % 2 == 0:
            print(
                f"{60 + step * 60:5d}  {cooling.setpoint_c:10.1f}"
                f"  {cooling.inlet_temp_c:8.1f}  {hottest:11.1f}"
                f"  {cooling.chiller_power_w / 1000:11.3f}"
            )
    saved = (1 - cooling.chiller_power_w / start_chiller) * 100
    print(
        f"\nchiller power reduced by {saved:.0f}% while the hottest node "
        f"stayed near {hottest:.1f} C (limit {TEMP_LIMIT_C} C)"
    )
    print(f"setpoint trajectory: "
          f"{[round(s, 1) for _, s in cooling.setpoint_changes]}")


if __name__ == "__main__":
    main()
