#!/usr/bin/env python3
"""Case study 3 — identification of performance anomalies (Section VI-D).

A ``clustering`` operator in the Collect Agent with one unit per compute
node.  Each unit contributes the long-window averages of node power and
temperature plus the accumulated CPU idle time; a variational Bayesian
Gaussian mixture — which prunes unused components autonomously — groups
the nodes and flags outliers whose probability is below a threshold
under every fitted component.

The script builds a 36-node cluster with three load groups (idle,
medium, heavy) and one planted anomaly drawing ~30 % more power than its
peers, then prints the cluster table and the flagged outlier.

Run:  python examples/cluster_anomalies.py      (~30 seconds)
"""

import numpy as np

from repro.common.timeutil import NS_PER_SEC
from repro.core import OperatorManager
from repro.dcdb import Broker, CollectAgent, Pusher
from repro.dcdb.plugins import ProcfsPlugin, SysfsPlugin
from repro.simulator import ClusterSimulator, ClusterSpec
from repro.simulator.clock import TaskScheduler
from repro.simulator.cluster import ClusterTopology
from repro.simulator.scheduler import Job

WINDOW_S = 180
RUN_S = 200
SAMPLE_NS = 5 * NS_PER_SEC


def main() -> None:
    spec = ClusterSpec(
        racks=1, chassis_per_rack=6, nodes_per_chassis=6,
        cpus_per_node=8, total_nodes=36,
    )
    nodes = ClusterTopology(spec).node_paths
    anomaly = nodes[-1]
    # +30% power: at this small scale (12-node groups) a weaker
    # anomaly dilutes its own cluster fit; the full-scale Fig 8 bench
    # detects +20% across 148 nodes.
    sim = ClusterSimulator(spec, seed=11, anomalies={anomaly: 1.3})
    scheduler = TaskScheduler()
    broker = Broker()

    for node in sim.node_paths:
        pusher = Pusher(node, broker, scheduler,
                        cache_window_ns=(WINDOW_S + 30) * NS_PER_SEC)
        pusher.add_plugin(SysfsPlugin(sim, node, interval_ns=SAMPLE_NS))
        pusher.add_plugin(ProcfsPlugin(sim, node, interval_ns=SAMPLE_NS))
    agent = CollectAgent(
        "agent", broker, scheduler,
        cache_window_ns=(WINDOW_S + 30) * NS_PER_SEC,
    )
    manager = OperatorManager()
    agent.attach_analytics(manager)

    # Load groups: 12 idle nodes, 12 medium (incl. the anomaly), 12
    # heavy.  The medium job occupies only ~45% of the window, so the
    # group's average power sits clearly between idle and heavy.
    medium = list(nodes[12:23]) + [anomaly]
    sim.scheduler.add_job(
        Job("med", "kripke", tuple(medium), NS_PER_SEC,
            int(0.45 * RUN_S * NS_PER_SEC))
    )
    sim.scheduler.add_job(
        Job("heavy", "hpl", tuple(nodes[23:35]), NS_PER_SEC,
            RUN_S * NS_PER_SEC)
    )

    scheduler.run_until(10 * NS_PER_SEC)
    manager.load_plugin(
        {
            "plugin": "clustering",
            "operators": {
                "node-states": {
                    "interval_s": WINDOW_S,
                    "window_s": WINDOW_S,
                    "delay_s": RUN_S - 10,
                    "inputs": [
                        "<bottomup>power",
                        "<bottomup>temp",
                        "<bottomup>idle-time",
                    ],
                    "outputs": ["<bottomup>cluster", "<bottomup>outlier"],
                    "params": {
                        "transforms": {
                            "power": "mean",
                            "temp": "mean",
                            "idle-time": "delta",
                        },
                        "n_components": 6,
                        "pdf_threshold": 5e-3,
                        "min_units": 8,
                        "seed": 5,
                    },
                }
            },
        }
    )
    scheduler.run_until(RUN_S * NS_PER_SEC)
    agent.flush()

    op = manager.operator("node-states")
    print(f"effective clusters found: {op.last_n_clusters} "
          f"(not configured — determined by the Bayesian mixture)\n")
    print("cluster   #nodes   mean power   mean temp")
    for cluster_id in sorted(set(op.last_labels.values())):
        members = [n for n, l in op.last_labels.items() if l == cluster_id]
        powers, temps = [], []
        for n in members:
            ts, p = agent.storage.query(f"{n}/power", 0, 2**62)
            _, t = agent.storage.query(f"{n}/temp", 0, 2**62)
            powers.append(np.mean(p))
            temps.append(np.mean(t))
        print(
            f"   {cluster_id}       {len(members):4d}     "
            f"{np.mean(powers):7.1f} W   {np.mean(temps):6.1f} C"
        )
    print(f"\noutliers: {op.last_outliers or 'none'}")
    if anomaly in op.last_outliers:
        _, p_anom = agent.storage.query(f"{anomaly}/power", 0, 2**62)
        peers = [n for n in medium if n != anomaly]
        p_peers = np.mean(
            [np.mean(agent.storage.query(f"{n}/power", 0, 2**62)[1])
             for n in peers]
        )
        print(
            f"-> planted anomaly {anomaly} detected: "
            f"{np.mean(p_anom):.1f} W vs {p_peers:.1f} W for peers "
            f"(+{(np.mean(p_anom) / p_peers - 1) * 100:.0f}%)"
        )


if __name__ == "__main__":
    main()
