#!/usr/bin/env python3
"""Virtual sensors: derived quantities without storing a single reading.

DCDB supports *virtual sensors* — sensors defined by an arithmetic
expression over other sensors and evaluated only when queried.  This
example defines two on the Collect Agent's Query Engine:

- ``/rack00/total-power``: the sum of every node's power draw;
- ``/rack00/efficiency``: total power divided by total instruction rate
  (a watts-per-work proxy), a virtual sensor referencing another
  virtual sensor.

A standard ``aggregator`` operator then consumes the *virtual* topic
exactly like a physical one, producing a stored moving average of a
quantity that never existed as raw data.

Run:  python examples/virtual_sensors.py
"""

from repro.common.textplot import sparkline
from repro.common.timeutil import NS_PER_SEC
from repro.core import OperatorManager
from repro.core.units import Unit
from repro.dcdb import Broker, CollectAgent, Pusher
from repro.dcdb.plugins import PerfeventPlugin, SysfsPlugin
from repro.dcdb.sensor import Sensor
from repro.plugins.aggregator import AggregatorOperator
from repro.simulator import ClusterSimulator, ClusterSpec
from repro.simulator.clock import TaskScheduler
from repro.simulator.scheduler import Job


def main() -> None:
    sim = ClusterSimulator(ClusterSpec.small(nodes=3, cpus=4), seed=17)
    scheduler = TaskScheduler()
    broker = Broker()
    for node in sim.node_paths:
        pusher = Pusher(node, broker, scheduler)
        pusher.add_plugin(SysfsPlugin(sim, node))
        pusher.add_plugin(
            PerfeventPlugin(sim, node, counters=("instructions",))
        )
    agent = CollectAgent("agent", broker, scheduler)
    manager = OperatorManager()
    agent.attach_analytics(manager)

    sim.scheduler.add_job(
        Job("load", "kripke", tuple(sim.node_paths[:2]), NS_PER_SEC,
            300 * NS_PER_SEC)
    )
    scheduler.run_until(5 * NS_PER_SEC)

    # ---- define the virtual sensors on the agent's Query Engine -------
    engine = manager.engine
    total_expr = " + ".join(f"<{n}/power>" for n in sim.node_paths)
    engine.define_virtual("/rack00/total-power", total_expr, NS_PER_SEC)
    # instruction *rate* needs deltas; approximate with a coarse virtual
    # grid: instructions counter difference over 10 s, scaled.
    engine.define_virtual(
        "/rack00/efficiency",
        f"</rack00/total-power> / 1000",  # W per kilo-unit, demo scale
        NS_PER_SEC,
    )

    # ---- a plain operator consuming the virtual topic -----------------
    from repro.core.operator import OperatorConfig

    cfg = OperatorConfig(
        name="vpower-avg",
        interval_ns=NS_PER_SEC,
        window_ns=10 * NS_PER_SEC,
        delay_ns=12 * NS_PER_SEC,
        params={"op": "mean"},
    )
    op = AggregatorOperator(cfg)
    op.bind(agent, engine)
    op.set_units(
        [
            Unit(
                name="/rack00",
                level=0,
                inputs=["/rack00/total-power"],
                outputs=[
                    Sensor("/rack00/total-power-avg", is_operator_output=True)
                ],
            )
        ]
    )
    op.start()
    scheduler.add_callback(
        "vpower", lambda ts: op.compute(ts), NS_PER_SEC,
        first_due=12 * NS_PER_SEC,
    )

    scheduler.run_until(120 * NS_PER_SEC)
    agent.flush()

    view = engine.query_relative("/rack00/total-power", 60 * NS_PER_SEC)
    print("virtual /rack00/total-power (last 60s, never stored):")
    print(f"  [{sparkline(view.values(), width=60)}]")
    print(f"  latest: {view.values()[-1]:.1f} W across 3 nodes")

    eff = engine.query_relative("/rack00/efficiency", 0)
    print(f"\nvirtual-over-virtual /rack00/efficiency: "
          f"{eff.values()[-1]:.3f} (demo scale)")

    stored = agent.storage.query("/rack00/total-power-avg", 0, 2**62)
    print(
        f"\noperator output consuming the virtual topic: "
        f"{len(stored[0])} stored averages, latest "
        f"{stored[1][-1]:.1f} W"
    )
    print("raw readings stored for /rack00/total-power itself: "
          f"{agent.storage.count('/rack00/total-power')} (query-time only)")


if __name__ == "__main__":
    main()
