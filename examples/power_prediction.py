#!/usr/bin/env python3
"""Case study 1 — online power prediction (paper Section VI-B).

An in-band ``regressor`` operator inside a compute node's Pusher:

- sysfs + perfevent monitoring at 250 ms;
- at each interval the operator extracts window statistics from every
  input sensor, forms a feature vector, and (once trained) predicts the
  node's power draw for the *next* 250 ms;
- training happens automatically online: pairs of (features, next power
  reading) accumulate until the configured training-set size, then the
  random forest fits itself — no offline step.

The script trains across two CORAL-2-style application runs, then
evaluates online on a third and prints the real-vs-predicted tail of the
series with the average relative error (the paper reports 6.2 %).

Run:  python examples/power_prediction.py      (~1 minute)
"""

import numpy as np

from repro.common.timeutil import NS_PER_MS, NS_PER_SEC
from repro.core import OperatorManager
from repro.dcdb import Broker, CollectAgent, Pusher
from repro.dcdb.plugins import PerfeventPlugin, SysfsPlugin
from repro.ml.metrics import mean_relative_error
from repro.simulator import ClusterSimulator, ClusterSpec
from repro.simulator.clock import TaskScheduler
from repro.simulator.scheduler import Job

INTERVAL_NS = 250 * NS_PER_MS
TRAINING_SAMPLES = 700


def main() -> None:
    sim = ClusterSimulator(ClusterSpec.small(nodes=1, cpus=8), seed=6)
    scheduler = TaskScheduler()
    broker = Broker()
    node = sim.node_paths[0]

    pusher = Pusher(node, broker, scheduler)
    pusher.add_plugin(SysfsPlugin(sim, node, interval_ns=INTERVAL_NS))
    pusher.add_plugin(
        PerfeventPlugin(
            sim,
            node,
            counters=("cpu-cycles", "instructions"),
            interval_ns=INTERVAL_NS,
        )
    )
    agent = CollectAgent("agent", broker, scheduler)

    manager = OperatorManager()
    pusher.attach_analytics(manager)
    manager.load_plugin(
        {
            "plugin": "regressor",
            "operators": {
                "power-pred": {
                    "interval_ns": INTERVAL_NS,
                    "window_ns": 8 * INTERVAL_NS,
                    "delay_ns": 8 * INTERVAL_NS,
                    "inputs": [
                        "<bottomup-1>power",
                        "<bottomup, filter cpu0[0-3]>cpu-cycles",
                        "<bottomup, filter cpu0[0-3]>instructions",
                    ],
                    "outputs": ["<bottomup-1>pred-power"],
                    "params": {
                        "target": "power",
                        "training_samples": TRAINING_SAMPLES,
                        "n_estimators": 10,
                        "max_depth": 9,
                        "delta_inputs": ["cpu-cycles", "instructions"],
                        "seed": 7,
                    },
                }
            },
        }
    )

    # Training phase: two app runs back-to-back (~190 s of samples).
    train_end = TRAINING_SAMPLES * 0.25 + 20
    sim.scheduler.add_job(
        Job("train-kripke", "kripke", (node,), NS_PER_SEC,
            int(train_end / 2 * NS_PER_SEC))
    )
    sim.scheduler.add_job(
        Job("train-lammps", "lammps", (node,),
            int(train_end / 2 * NS_PER_SEC), int(train_end * NS_PER_SEC))
    )
    # Evaluation run: a fresh AMG job.
    sim.scheduler.add_job(
        Job("eval-amg", "amg", (node,), int(train_end * NS_PER_SEC),
            int((train_end + 90) * NS_PER_SEC))
    )

    op = manager.operator("power-pred")
    scheduler.run_until(int(train_end * NS_PER_SEC))
    model = op._shared_model
    print(f"training: model trained = {model.trained} "
          f"after {op.compute_count} intervals")

    scheduler.run_until(int((train_end + 90) * NS_PER_SEC))
    agent.flush()

    pred_ts, pred = agent.storage.query(f"{node}/pred-power", 0, 2**62)
    pow_ts, power = agent.storage.query(f"{node}/power", 0, 2**62)
    # Prediction at t targets power at t + 250 ms.
    idx = np.searchsorted(pow_ts, np.asarray(pred_ts) + int(0.999 * INTERVAL_NS))
    keep = idx < len(pow_ts)
    actual = np.asarray(power)[idx[keep]]
    predicted = np.asarray(pred)[keep]

    print("\ntime      power[W]   predicted[W]")
    for i in range(len(predicted) - 40, len(predicted), 4):
        t = pred_ts[keep][i] / NS_PER_SEC
        print(f"{t:7.2f}s  {actual[i]:8.2f}   {predicted[i]:10.2f}")
    from repro.common.textplot import ascii_plot

    tail = slice(-240, None)
    print()
    print(
        ascii_plot(
            {"real": actual[tail], "pred": predicted[tail]},
            width=72,
            height=12,
            title="Fig 6a equivalent: real vs predicted node power (eval tail)",
        )
    )
    err = mean_relative_error(actual, predicted)
    print(f"\naverage relative error: {err * 100:.1f}%  (paper: 6.2%)")


if __name__ == "__main__":
    main()
