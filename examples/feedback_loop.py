#!/usr/bin/env python3
"""Feedback loop: pipeline ending in a control operator (Section IV-d).

"This method allows us to implement feedback loops in an HPC system, via
control operators at the end of the pipeline that use processed data to
tune system knobs."

This example builds a three-stage in-band loop on one node:

1. ``smoother`` turns the noisy node temperature into a stable signal;
2. ``health`` checks the smoothed temperature against a threshold (with
   hysteresis) and publishes a boolean ``thermal-ok`` sensor;
3. a custom ``ThrottleOperator`` — written here against the public
   plugin API, exactly how a site would extend Wintermute — consumes
   ``thermal-ok`` and adjusts a frequency-cap knob, which feeds back
   into the simulated node's power model.

The script runs a hot workload, shows the throttle engaging when the
smoothed temperature crosses the limit, and the temperature recovering.

Run:  python examples/feedback_loop.py
"""

from repro.common.timeutil import NS_PER_SEC
from repro.core import OperatorManager
from repro.core.operator import OperatorBase, OperatorConfig
from repro.core.registry import operator_plugin
from repro.dcdb import Broker, CollectAgent, Pusher
from repro.dcdb.plugins import SysfsPlugin
from repro.simulator import ClusterSimulator, ClusterSpec
from repro.simulator.clock import TaskScheduler
from repro.simulator.scheduler import Job

TEMP_LIMIT_C = 53.0


@operator_plugin("throttle")
class ThrottleOperator(OperatorBase):
    """Control operator: maps a health flag to a frequency-cap knob.

    Demonstrates the extension API: subclass OperatorBase, implement
    ``compute_unit``, register under a plugin name.  The knob setter is
    injected through host context, the same mechanism job operators use
    to reach the scheduler.
    """

    def __init__(self, config: OperatorConfig, knob=None) -> None:
        super().__init__(config)
        self.knob = knob
        self.engaged = False

    def compute_unit(self, unit, ts):
        view = self.engine.latest(unit.inputs[0])
        healthy = view.values()[-1] >= 0.5
        # Engage the throttle while unhealthy; release when healthy.
        target = 0.6 if not healthy else 1.0
        if self.knob is not None:
            self.knob(target)
        self.engaged = not healthy
        return {s.name: target for s in unit.outputs}


def main() -> None:
    sim = ClusterSimulator(ClusterSpec.small(nodes=1, cpus=8), seed=4)
    scheduler = TaskScheduler()
    broker = Broker()
    node = sim.node_paths[0]

    pusher = Pusher(node, broker, scheduler)
    pusher.add_plugin(SysfsPlugin(sim, node))
    agent = CollectAgent("agent", broker, scheduler)

    # The "knob": scale the node's dynamic power (a stand-in for a CPU
    # frequency cap acting on the same model the sensors read).
    state = sim._states[node]
    cap_history = []

    def set_power_cap(fraction: float) -> None:
        if not cap_history or cap_history[-1] != fraction:
            cap_history.append(fraction)
        state.model.power_anomaly = fraction

    manager = OperatorManager(context={"knob": set_power_cap})
    pusher.attach_analytics(manager)

    # Hot workload for the whole run.
    sim.scheduler.add_job(Job("hot", "hpl", (node,), NS_PER_SEC,
                              400 * NS_PER_SEC))

    manager.load_plugin(
        {
            "plugin": "smoother",
            "operators": {
                "temp-smooth": {
                    "interval_s": 1,
                    "window_s": 10,
                    "inputs": ["<bottomup>temp"],
                    "outputs": ["<bottomup>temp-smooth"],
                }
            },
        }
    )
    scheduler.run_until(3 * NS_PER_SEC)
    manager.load_plugin(
        {
            "plugin": "health",
            "operators": {
                "thermal": {
                    "interval_s": 1,
                    "window_s": 3,
                    "delay_s": 2,
                    "inputs": ["<bottomup>temp-smooth"],
                    "outputs": ["<bottomup>thermal-ok"],
                    "params": {
                        "bounds": {"temp-smooth": [None, TEMP_LIMIT_C]},
                        "trip_count": 3,
                    },
                }
            },
        }
    )
    scheduler.run_until(6 * NS_PER_SEC)
    manager.load_plugin(
        {
            "plugin": "throttle",
            "operators": {
                "freq-cap": {
                    "interval_s": 1,
                    "delay_s": 2,
                    "inputs": ["<bottomup>thermal-ok"],
                    "outputs": ["<bottomup>freq-cap"],
                }
            },
        }
    )

    print(f"thermal limit: {TEMP_LIMIT_C} C (smoothed), hot HPL workload\n")
    print("time   temp[C]  smoothed  thermal-ok  freq-cap")
    for step in range(0, 40):
        scheduler.run_until((7 + step * 10) * NS_PER_SEC)
        temp = pusher.cache_for(f"{node}/temp").latest()
        smooth_cache = pusher.cache_for(f"{node}/temp-smooth")
        ok_cache = pusher.cache_for(f"{node}/thermal-ok")
        cap_cache = pusher.cache_for(f"{node}/freq-cap")
        smooth = smooth_cache.latest().value if smooth_cache else float("nan")
        ok = ok_cache.latest().value if ok_cache and len(ok_cache) else 1.0
        cap = cap_cache.latest().value if cap_cache and len(cap_cache) else 1.0
        if step % 4 == 0:
            print(
                f"{temp.timestamp / NS_PER_SEC:5.0f}  {temp.value:7.2f}  "
                f"{smooth:8.2f}  {ok:10.0f}  {cap:8.1f}"
            )
    engaged = any(cap < 1.0 for cap in cap_history)
    print(f"\nknob transitions: {cap_history}")
    print(f"throttle engaged at least once: {'yes' if engaged else 'no'}")
    print(
        "loop closed: monitoring -> smoother -> health -> control "
        "operator -> power model -> monitoring"
    )


if __name__ == "__main__":
    main()
