#!/usr/bin/env python3
"""Quickstart: monitor a small simulated cluster and run one operator.

Builds the smallest meaningful Wintermute deployment:

1. a simulated 4-node cluster (the hardware stand-in);
2. one DCDB Pusher per node sampling power/temperature (sysfs plugin);
3. a Collect Agent receiving all traffic over the in-process MQTT
   broker and persisting it to the storage backend;
4. one ``aggregator`` operator per node — configured with a *single*
   pattern-unit block that resolves to one unit per node — producing a
   5-second moving average of node power;
5. a REST query showing the operator's live status.

Run:  python examples/quickstart.py
"""

from repro.common.timeutil import NS_PER_SEC
from repro.core import OperatorManager
from repro.dcdb import Broker, CollectAgent, Pusher
from repro.dcdb.plugins import SysfsPlugin
from repro.simulator import ClusterSimulator, ClusterSpec
from repro.simulator.clock import TaskScheduler


def main() -> None:
    # --- substrate: simulated hardware, shared clock, message bus -----
    sim = ClusterSimulator(ClusterSpec.small(nodes=4, cpus=4), seed=1)
    scheduler = TaskScheduler()
    broker = Broker()

    # --- DCDB: one pusher per node + one collect agent -----------------
    pushers = {}
    for node in sim.node_paths:
        pusher = Pusher(node, broker, scheduler)
        pusher.add_plugin(SysfsPlugin(sim, node))
        pushers[node] = pusher
    agent = CollectAgent("agent", broker, scheduler)

    # --- Wintermute: attach analytics to the first pusher ---------------
    node = sim.node_paths[0]
    manager = OperatorManager()
    pushers[node].attach_analytics(manager)
    manager.load_plugin(
        {
            "plugin": "aggregator",
            "operators": {
                "avg-power": {
                    "interval_s": 1,
                    "window_s": 5,
                    # One small config block; the pattern unit resolves
                    # against the pusher's sensor tree.
                    "inputs": ["<bottomup>power"],
                    "outputs": ["<bottomup>avg-power"],
                    "params": {"op": "mean"},
                }
            },
        }
    )

    # --- run 30 simulated seconds ---------------------------------------
    scheduler.run_until(30 * NS_PER_SEC)

    # --- read results ----------------------------------------------------
    raw = pushers[node].cache_for(f"{node}/power").latest()
    avg = pushers[node].cache_for(f"{node}/avg-power").latest()
    print(f"node:            {node}")
    print(f"latest power:    {raw.value:8.2f} W  @ t={raw.timestamp / 1e9:.0f}s")
    print(f"5s average:      {avg.value:8.2f} W  (operator output)")

    agent.flush()
    stored = agent.storage.count(f"{node}/avg-power")
    print(f"agent stored:    {stored} averaged readings (via MQTT)")

    status = pushers[node].rest.get("/analytics/operators").body
    op = status["operators"][0]
    print(
        f"operator status: {op['name']}: {op['computes']} computations, "
        f"{op['units']} unit(s), {op['errors']} errors"
    )


if __name__ == "__main__":
    main()
