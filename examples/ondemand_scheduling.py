#!/usr/bin/env python3
"""On-demand operation for scheduling support (Sections II-B / IV-b).

Scheduling-and-allocation use cases are *on-demand* in the paper's
taxonomy: the scheduler triggers an analysis via the RESTful API at job
submission time rather than consuming a continuous stream.

This example plays a toy scheduler placing a job on the "best" node:

- an ``aggregator`` operator on the Collect Agent is loaded in
  ``ondemand`` mode — it computes nothing on its own;
- at submission time, the scheduler issues one REST request per
  candidate node (``PUT /analytics/operators/<op>/compute?unit=...``);
- the response carries each node's recent mean power, and the job goes
  to the coolest node.

Run:  python examples/ondemand_scheduling.py
"""

from repro.common.timeutil import NS_PER_SEC
from repro.core import OperatorManager
from repro.dcdb import Broker, CollectAgent, Pusher
from repro.dcdb.plugins import SysfsPlugin
from repro.simulator import ClusterSimulator, ClusterSpec
from repro.simulator.clock import TaskScheduler
from repro.simulator.scheduler import Job


def main() -> None:
    sim = ClusterSimulator(ClusterSpec.small(nodes=6, cpus=4), seed=9)
    scheduler = TaskScheduler()
    broker = Broker()
    for node in sim.node_paths:
        pusher = Pusher(node, broker, scheduler)
        pusher.add_plugin(SysfsPlugin(sim, node))
    agent = CollectAgent("agent", broker, scheduler)
    manager = OperatorManager()
    agent.attach_analytics(manager)

    # Pre-existing load: three nodes are already busy.
    sim.scheduler.add_job(
        Job("busy", "hpl", tuple(sim.node_paths[:3]), NS_PER_SEC,
            600 * NS_PER_SEC)
    )
    scheduler.run_until(60 * NS_PER_SEC)

    # On-demand operator: no periodic task, REST-triggered only.
    manager.load_plugin(
        {
            "plugin": "aggregator",
            "operators": {
                "node-power": {
                    "mode": "ondemand",
                    "window_s": 30,
                    "inputs": ["<bottomup>power"],
                    "outputs": ["<bottomup>mean-power"],
                    "params": {"op": "mean"},
                }
            },
        }
    )

    print("scheduler: probing candidate nodes via the REST API...\n")
    print("node                              mean power (30s)")
    scores = {}
    for node in sim.node_paths:
        resp = agent.rest.put(
            "/analytics/operators/node-power/compute", unit=node
        )
        if not resp.ok:
            print(f"{node:32s}  <error: {resp.body['error']}>")
            continue
        power = resp.body["values"]["mean-power"]
        scores[node] = power
        print(f"{node:32s}  {power:8.1f} W")

    best = min(scores, key=scores.get)
    print(f"\nplacing job on {best} ({scores[best]:.1f} W - coolest node)")
    job = sim.scheduler.submit("lammps", 1, 61 * NS_PER_SEC,
                               300 * NS_PER_SEC)
    print(f"allocated: {job.job_id} -> {list(job.node_paths)}")
    # The on-demand operator never produced stream output:
    agent.flush()
    stored = agent.storage.count(f"{best}/mean-power")
    print(
        f"\nstored 'mean-power' readings: {stored} "
        "(on-demand results travel only in the REST response)"
    )


if __name__ == "__main__":
    main()
