#!/usr/bin/env python3
"""Prediction of job features (Fig 1 taxonomy): runtime from early data.

"Using heuristic techniques to predict the duration of user jobs ...
improving the effectiveness of scheduling policies and reducing waiting
times" is its own ODA class in the paper's taxonomy.  This example
implements the classic instance — predicting a job's total runtime from
its first minute of monitoring data:

- a history of jobs with varying applications and durations runs on the
  simulated cluster while a persyst pipeline produces per-job power
  medians (ordinary Wintermute operation);
- for every *completed* job, features are extracted from its first 60 s
  of per-job sensors and paired with its true duration;
- a random forest (the `repro.ml` substrate directly — this is an
  offline, on-demand analysis) is trained on the history and evaluated
  on held-out jobs.

Run:  python examples/job_duration_prediction.py      (~1 minute)
"""

import numpy as np

from repro.common.timeutil import NS_PER_SEC
from repro.deploy import Deployment
from repro.ml.forest import RandomForestRegressor
from repro.ml.stats import window_features
from repro.simulator import ClusterSpec

APPS = ["lammps", "amg", "kripke", "nekbone"]
EARLY_WINDOW_S = 60


def main() -> None:
    dep = Deployment(
        ClusterSpec.small(nodes=4, cpus=4),
        seed=21,
        monitoring=("sysfs",),
    )
    # Per-job power medians via persyst (the monitoring-side groundwork).
    dep.run(2)
    dep.agent_manager.load_plugin(
        {
            "plugin": "persyst",
            "operators": {
                "job-power": {
                    "interval_s": 2,
                    "window_s": 4,
                    "delay_s": 3,
                    "inputs": ["power"],
                    "params": {"quantiles": [0.5], "statistics": ["mean", "std"]},
                }
            },
        }
    )

    # A job history: app mix with app-dependent, noisy durations.
    rng = np.random.default_rng(3)
    base_duration = {"lammps": 180, "amg": 120, "kripke": 260, "nekbone": 220}
    jobs = []
    t = 4.0
    for i in range(26):
        app = APPS[i % len(APPS)]
        duration = base_duration[app] * float(rng.uniform(0.85, 1.15))
        # Overlapping submissions; the scheduler backfills onto the
        # earliest window with enough free nodes.
        job = dep.sim.scheduler.submit_earliest(
            app,
            n_nodes=int(rng.integers(1, 3)),
            duration_ns=int(duration * NS_PER_SEC),
            not_before_ts=int(t * NS_PER_SEC),
            job_id=f"hist{i:02d}-{app}",
        )
        jobs.append(job)
        t = max(t + duration * 0.35, job.start_ts / NS_PER_SEC)
    end_of_history = max(j.end_ts for j in jobs) / NS_PER_SEC
    dep.run(end_of_history + 30)

    # Feature extraction: first minute of the job's power series.
    def job_features(job):
        ts, values = dep.series(f"/jobs/{job.job_id}/decile5")
        start_s = job.start_ts / NS_PER_SEC
        early = values[(ts >= start_s) & (ts <= start_s + EARLY_WINDOW_S)]
        if early.size < 5:
            return None
        return np.concatenate(
            [window_features(early), [job.n_nodes, APPS.index(job.app_name)]]
        )

    X, y, kept = [], [], []
    for job in jobs:
        features = job_features(job)
        if features is not None:
            X.append(features)
            y.append((job.end_ts - job.start_ts) / NS_PER_SEC)
            kept.append(job)
    X, y = np.vstack(X), np.asarray(y)
    n_train = int(0.7 * len(y))
    forest = RandomForestRegressor(
        n_estimators=30, max_depth=8, random_state=0
    ).fit(X[:n_train], y[:n_train])

    print(f"history: {len(y)} completed jobs "
          f"({n_train} train / {len(y) - n_train} test)\n")
    print("job                  app        true[s]   predicted[s]   error")
    errors = []
    for i in range(n_train, len(y)):
        pred = float(forest.predict(X[i][None, :])[0])
        err = abs(pred - y[i]) / y[i]
        errors.append(err)
        print(
            f"{kept[i].job_id:20s} {kept[i].app_name:9s} {y[i]:8.0f}"
            f"   {pred:12.0f}   {err * 100:5.1f}%"
        )
    print(f"\nmean relative duration error: {np.mean(errors) * 100:.1f}%")
    print(
        "(features: first-minute job power statistics + node count + app "
        "id — available to the scheduler at dispatch time)"
    )


if __name__ == "__main__":
    main()
