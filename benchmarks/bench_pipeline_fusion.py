"""Pipeline fusion benchmark — fused vs staged 3-stage pipelines.

PR 4 made one operator pass cheap (compiled-plan batch queries + row
kernels); the fusion tentpole makes whole *pipelines* cheap.  A staged
smoother → aggregator → aggregator chain pays, per tick and per stage:
the store fan-out into the host's operator-output caches and a fresh
batched re-query of exactly the data the previous stage just produced.
A fused group threads the intermediate window matrices straight from
kernel to kernel — one external query, one store fan-out, zero
intermediate cache round-trips.

This bench drives both executions of the *same* pipeline over the same
input stream at ≥ 500 units and checks:

- **speedup**: the fused pass must be ≥ 2x cheaper than the three
  staged passes (relaxed under ``--smoke``, which runs a small fraction
  of the units for CI);
- **parity**: the final stage's stored series must be bit-for-bit
  identical between the two executions — every pass, every unit.

Run standalone (``python benchmarks/bench_pipeline_fusion.py [--smoke]``)
or under pytest.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # script invocation: make repo-root imports work
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np

from benchmarks.harness import (
    print_header,
    print_table,
    shape_check,
    write_bench_artifact,
)
from repro.common.timeutil import NS_PER_SEC
from repro.core.fusion import FusedGroup
from repro.core.operator import OperatorConfig
from repro.core.pipeline import FusionSpec, plan_fusion
from repro.core.queryengine import QueryEngine
from repro.core.units import Unit
from repro.dcdb.cache import SensorCache
from repro.dcdb.sensor import Sensor
from repro.plugins.aggregator import AggregatorOperator
from repro.plugins.smoother import SmootherOperator

FULL_UNITS, FULL_PASSES = 520, 40
SMOKE_UNITS, SMOKE_PASSES = 96, 12
WARM_PASSES = 8  # untimed leading ticks: fill windows, compile plans
CACHE_WINDOW_NS = 180 * NS_PER_SEC


class MiniPusher:
    """A Pusher-shaped host: caches, no storage, batched store fan-out.

    Operator outputs land in lazily created caches exactly as
    ``Pusher._cache_for_sensor`` would make them — ``for_duration`` of
    the retention window with the 1 s host interval hint — so the
    staged pipeline's downstream stages re-query real ring buffers.
    """

    def __init__(self, name: str, input_topics, rng_seed: int) -> None:
        self.name = name
        self.cache_window_ns = CACHE_WINDOW_NS
        self.caches = {}
        for topic in input_topics:
            self.caches[topic] = SensorCache.for_duration(
                self.cache_window_ns, NS_PER_SEC
            )
        self.stored: dict = {}

    @property
    def storage(self):
        return None

    def sensor_topics(self):
        return list(self.caches)

    def cache_for(self, topic):
        return self.caches.get(topic)

    def feed(self, ts: int, topics, values) -> None:
        one_ts = np.asarray([ts], dtype=np.int64)
        for topic, value in zip(topics, values):
            self.caches[topic].store_batch(one_ts, np.asarray([value]))

    def _record(self, sensor, ts: int, value: float) -> None:
        self.stored.setdefault(sensor.topic, []).append((ts, value))
        cache = self.caches.get(sensor.topic)
        if cache is None:
            cache = self.caches[sensor.topic] = SensorCache.for_duration(
                self.cache_window_ns, NS_PER_SEC
            )
        # Scalar append, exactly like ``Pusher.store_readings_batch``.
        cache.store(ts, value)

    def store_reading(self, sensor, ts, value):
        self._record(sensor, ts, float(value))

    def store_readings_batch(self, ts, readings):
        for sensor, value in readings:
            self._record(sensor, ts, value)


def _configs(n_units: int):
    """The 3-stage chain: private intermediates, published terminal."""
    return [
        (
            SmootherOperator,
            "smoother",
            OperatorConfig(
                name="sm", window_ns=10 * NS_PER_SEC, publish_outputs=False
            ),
            "power", "sm",
        ),
        (
            AggregatorOperator,
            "aggregator",
            OperatorConfig(
                name="ag", window_ns=30 * NS_PER_SEC, publish_outputs=False,
                params={"ops": {"*": "mean"}},
            ),
            "sm", "ag",
        ),
        (
            AggregatorOperator,
            "aggregator",
            OperatorConfig(
                name="mx", window_ns=60 * NS_PER_SEC,
                params={"ops": {"*": "max"}},
            ),
            "ag", "mx",
        ),
    ]


def _build_stack(label: str, n_units: int):
    """(host, engine, ops) — one independent pipeline instance."""
    input_topics = [f"/n{i}/power" for i in range(n_units)]
    host = MiniPusher(label, input_topics, rng_seed=0xF051)
    engine = QueryEngine(host)
    ops = []
    for cls, _plugin, config, in_name, out_name in _configs(n_units):
        op = cls(config)
        op.bind(host, engine)
        op.set_units(
            [
                Unit(
                    name=f"/n{i}",
                    level=0,
                    inputs=[f"/n{i}/{in_name}"],
                    outputs=[
                        Sensor(f"/n{i}/{out_name}", is_operator_output=True)
                    ],
                )
                for i in range(n_units)
            ]
        )
        op.start()
        ops.append(op)
    return host, engine, ops


def _planner_groups(n_units: int):
    """Run the real fusion planner over the bench pipeline's specs."""
    specs = []
    for _cls, plugin, config, in_name, out_name in _configs(n_units):
        specs.append(
            FusionSpec(
                name=config.name,
                label=f"{plugin}/{config.name}",
                config=config,
                supports_batch=True,
                input_topics=frozenset(
                    f"/n{i}/{in_name}" for i in range(n_units)
                ),
                output_topics=frozenset(
                    f"/n{i}/{out_name}" for i in range(n_units)
                ),
            )
        )
    return plan_fusion(specs, host_has_storage=False).groups


def run_fusion_bench(n_units: int, passes: int) -> dict:
    groups = _planner_groups(n_units)
    staged_host, _, staged_ops = _build_stack("staged", n_units)
    fused_host, fused_engine, fused_ops = _build_stack("fused", n_units)
    group = FusedGroup(
        name="bench:fused:sm+ag+mx",
        ops=fused_ops,
        host=fused_host,
        engine=fused_engine,
    )

    input_topics = [f"/n{i}/power" for i in range(n_units)]
    rng = np.random.default_rng(0xF051)
    staged_ns = fused_ns = 0
    parity = True
    total = WARM_PASSES + passes
    for tick in range(1, total + 1):
        ts = tick * NS_PER_SEC
        values = rng.random(n_units)
        staged_host.feed(ts, input_topics, values)
        fused_host.feed(ts, input_topics, values)

        t0 = time.perf_counter_ns()
        for op in staged_ops:
            op.compute(ts)
        staged_dt = time.perf_counter_ns() - t0

        t0 = time.perf_counter_ns()
        group.run(ts)
        fused_dt = time.perf_counter_ns() - t0

        if tick > WARM_PASSES:
            staged_ns += staged_dt
            fused_ns += fused_dt

    final_topics = [f"/n{i}/mx" for i in range(n_units)]
    for topic in final_topics:
        if staged_host.stored.get(topic) != fused_host.stored.get(topic):
            parity = False
            break
    readings = sum(len(fused_host.stored.get(t, ())) for t in final_topics)
    return {
        "n_units": n_units,
        "passes": passes,
        "planner_groups": groups,
        "staged_ns_per_pass": staged_ns / passes,
        "fused_ns_per_pass": fused_ns / passes,
        "speedup": staged_ns / fused_ns if fused_ns else float("nan"),
        "parity": parity,
        "final_readings": readings,
    }


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small unit count for CI (same pipeline, relaxed speedup)",
    )
    args = parser.parse_args(argv)
    n_units, passes = (
        (SMOKE_UNITS, SMOKE_PASSES) if args.smoke else (FULL_UNITS, FULL_PASSES)
    )
    min_speedup = 1.2 if args.smoke else 2.0

    print_header("Pipeline fusion - fused vs staged 3-stage pipeline")
    r = run_fusion_bench(n_units, passes)
    print_table(
        ["units", "staged us", "fused us", "speedup", "parity"],
        [(
            r["n_units"],
            r["staged_ns_per_pass"] / 1e3,
            r["fused_ns_per_pass"] / 1e3,
            f"{r['speedup']:.2f}x",
            r["parity"],
        )],
    )
    config = {"n_units": n_units, "passes": passes, "smoke": args.smoke}
    write_bench_artifact(
        "fusion",
        {"bench": "bench_pipeline_fusion", **r},
        config=config,
    )
    ok = shape_check(
        "planner fuses the whole 3-stage chain",
        r["planner_groups"] == [["sm", "ag", "mx"]],
        str(r["planner_groups"]),
    )
    ok &= shape_check(
        "fused and staged stores are bit-for-bit identical",
        r["parity"] and r["final_readings"] > 0,
        f"{r['final_readings']} final-stage readings",
    )
    ok &= shape_check(
        f"fused pass >= {min_speedup:g}x cheaper than staged",
        r["speedup"] >= min_speedup,
        f"{r['speedup']:.2f}x at {n_units} units",
    )
    return 0 if ok else 1


class TestPipelineFusionBench:
    def test_parity_and_planner(self):
        r = run_fusion_bench(SMOKE_UNITS, SMOKE_PASSES)
        assert r["planner_groups"] == [["sm", "ag", "mx"]]
        assert r["parity"] and r["final_readings"] > 0

    def test_fused_is_faster(self):
        # The standalone run asserts the full 2x claim; under pytest on
        # a shared machine allow scheduling noise on top of it.
        r = run_fusion_bench(FULL_UNITS, FULL_PASSES)
        assert r["speedup"] >= 1.5, r


if __name__ == "__main__":
    sys.exit(main())
