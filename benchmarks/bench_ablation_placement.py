"""Ablation M5 — operator placement: Pusher vs Collect Agent.

Section IV-a: Pusher placement gives data liveness, low latency and
horizontal scalability (local cache reads only); Collect Agent placement
gives whole-system visibility with cache-first/storage-fallback reads.
This bench measures both effects on the same aggregation workload:

- query path latency: local pusher cache vs agent cache vs agent
  storage fallback;
- data liveness: how stale an agent-side operator's view is relative to
  a pusher-side one, given the MQTT drain cadence.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.harness import Deployment, print_header, print_table, shape_check
from repro.common.timeutil import NS_PER_SEC
from repro.simulator import ClusterSpec


AGG = {
    "plugin": "aggregator",
    "operators": {
        "agg": {
            "interval_s": 1,
            "window_s": 5,
            "inputs": ["<bottomup-1>power"],
            "outputs": ["<bottomup-1>power-agg"],
            "params": {"op": "mean"},
        }
    },
}


@pytest.fixture(scope="module")
def deployment():
    dep = Deployment(ClusterSpec.small(nodes=4, cpus=2), seed=0xAB)
    dep.run(30)
    return dep


class TestPlacement:
    def test_query_latency_by_source(self, deployment, benchmark):
        dep = deployment
        node = dep.sim.node_paths[0]
        topic = f"{node}/power"
        dep.agent.flush()
        pusher_engine = dep.managers[node].engine
        agent_engine = dep.agent_manager.engine
        window = 5 * NS_PER_SEC

        def timed(fn, reps=3000):
            t0 = time.perf_counter_ns()
            for _ in range(reps):
                fn()
            return (time.perf_counter_ns() - t0) / reps

        t_pusher = timed(lambda: pusher_engine.query_relative(topic, window))
        t_agent_cache = timed(lambda: agent_engine.query_relative(topic, window))
        start = dep.now - 20 * NS_PER_SEC
        # Force the storage path by asking beyond the agent cache via a
        # direct storage query (the engine's fallback source).
        t_storage = timed(
            lambda: dep.agent.storage.query(topic, start, dep.now)
        )
        rows = [
            ("pusher cache", t_pusher),
            ("agent cache", t_agent_cache),
            ("agent storage", t_storage),
        ]
        print_header("M5 - query latency by placement/source")
        print_table(["source", "ns/query"], rows, fmt="{:>16}")
        assert shape_check(
            "cache-first reads are cheap on both hosts (<50us)",
            max(t_pusher, t_agent_cache) < 50_000,
            f"{t_pusher:.0f} / {t_agent_cache:.0f} ns",
        )
        benchmark(pusher_engine.query_relative, topic, window)

    def test_data_liveness(self, deployment, benchmark):
        """A pusher-side operator sees the current sample immediately;
        the agent's view trails by up to one drain interval."""
        dep = deployment
        node = dep.sim.node_paths[0]
        topic = f"{node}/power"
        dep.run(1)
        pusher_latest = dep.pushers[node].cache_for(topic).latest()
        agent_cache = dep.agent.cache_for(topic)
        agent_latest = agent_cache.latest() if agent_cache else None
        print_header("M5 - data liveness")
        lag_s = (
            (pusher_latest.timestamp - agent_latest.timestamp) / NS_PER_SEC
            if agent_latest
            else float("inf")
        )
        print(f"  pusher view age: 0.0 s; agent view lag: {lag_s:.1f} s")
        assert shape_check(
            "pusher-side data strictly fresher or equal",
            agent_latest is None
            or pusher_latest.timestamp >= agent_latest.timestamp,
        )
        assert shape_check(
            "agent lag bounded by one drain interval",
            lag_s <= 1.0 + 1e-9,
            f"{lag_s:.1f} s",
        )
        benchmark(lambda: dep.pushers[node].cache_for(topic).latest())

    def test_visibility_scope(self, deployment, benchmark):
        """Only the agent-side engine can resolve cross-node patterns."""
        dep = deployment
        print_header("M5 - sensor-space visibility")
        n_agent = len(dep.agent_manager.engine.topics())
        node = dep.sim.node_paths[0]
        n_pusher = len(dep.managers[node].engine.topics())
        print(
            f"  agent sees {n_agent} sensors; one pusher sees {n_pusher}"
        )
        assert shape_check(
            "agent sees the whole system, pushers only local sensors",
            n_agent >= n_pusher * len(dep.sim.node_paths),
            f"{n_agent} vs {n_pusher} x {len(dep.sim.node_paths)} nodes",
        )
        benchmark(dep.agent_manager.engine.topics)
