"""Micro benches M6/M7 — storage backend and end-to-end pipeline latency.

M6: the in-memory storage backend's insert/query/downsample rates — the
budget behind a Collect Agent ingesting a whole system's traffic.

M7: end-to-end pipeline freshness — how many scheduler ticks pass
between a raw sample entering a Pusher and the corresponding derived
value of a two-stage (pusher perfmetrics → agent persyst) pipeline
appearing in the Collect Agent's storage.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.harness import (
    Deployment,
    print_header,
    print_table,
    shape_check,
)
from repro.common.timeutil import NS_PER_SEC
from repro.dcdb.storage import StorageBackend
from repro.simulator import ClusterSpec
from repro.simulator.scheduler import Job


class TestStorageThroughput:
    def test_insert_and_query_rates(self, benchmark):
        print_header("M6 - storage backend rates")
        storage = StorageBackend()
        n = 200_000
        t0 = time.perf_counter_ns()
        for i in range(n):
            storage.insert("/a", i, float(i))
        insert_rate = n / ((time.perf_counter_ns() - t0) / 1e9)
        t0 = time.perf_counter_ns()
        reps = 2000
        for _ in range(reps):
            storage.query("/a", n // 4, n // 2)
        query_us = (time.perf_counter_ns() - t0) / reps / 1e3
        ts = np.arange(n, dtype=np.int64)
        batch_storage = StorageBackend()
        t0 = time.perf_counter_ns()
        batch_storage.insert_batch("/a", ts, ts.astype(np.float64))
        batch_rate = n / ((time.perf_counter_ns() - t0) / 1e9)
        rows = [
            ("scalar insert", f"{insert_rate / 1e6:.2f} M/s"),
            ("batch insert", f"{batch_rate / 1e6:.1f} M/s"),
            ("50k-row range query", f"{query_us:.1f} us"),
        ]
        print_table(["operation", "rate"], rows, fmt="{:>24}")
        # A 148-node deployment publishes ~1k readings/s; three orders
        # of magnitude headroom keeps the agent far from saturation.
        assert shape_check(
            "insert rate covers cluster-wide traffic with headroom",
            insert_rate > 1e6,
            f"{insert_rate / 1e6:.2f} M/s",
        )
        state = {"i": n}

        def one():
            state["i"] += 1
            storage.insert("/a", state["i"], 1.0)

        benchmark(one)

    def test_downsampled_query_beats_materialising(self, benchmark):
        print_header("M6 - server-side downsampling")
        storage = StorageBackend()
        n = 500_000
        ts = np.arange(n, dtype=np.int64)
        storage.insert_batch("/a", ts, np.sin(ts / 1000.0))
        t0 = time.perf_counter_ns()
        bucket_ts, values = storage.query_aggregate("/a", 0, n, n // 100, "mean")
        agg_ms = (time.perf_counter_ns() - t0) / 1e6
        print(
            f"  {n:,} rows -> {len(values)} buckets in {agg_ms:.2f} ms"
        )
        assert len(values) == 100
        assert shape_check(
            "downsampling half a million rows is interactive (<100ms)",
            agg_ms < 100,
            f"{agg_ms:.1f} ms",
        )
        benchmark(storage.query_aggregate, "/a", 0, n, n // 100, "mean")


class TestPipelineLatency:
    def test_two_stage_pipeline_freshness(self, benchmark):
        """Raw sample -> per-core CPI -> job decile, measured in ticks."""
        print_header("M7 - end-to-end pipeline freshness")
        dep = Deployment(
            ClusterSpec.small(nodes=2, cpus=4),
            seed=0xE2E,
            monitoring=("perfevent",),
            perfevent_counters=("cpu-cycles", "instructions"),
        )
        dep.sim.scheduler.add_job(
            Job(
                "job-x",
                "lammps",
                tuple(dep.sim.node_paths),
                NS_PER_SEC,
                500 * NS_PER_SEC,
            )
        )
        for node in dep.sim.node_paths:
            dep.managers[node].load_plugin(
                {
                    "plugin": "perfmetrics",
                    "operators": {
                        "cpi": {
                            "interval_s": 1,
                            "window_s": 2,
                            "delay_s": 2,
                            "inputs": [
                                "<bottomup>cpu-cycles",
                                "<bottomup>instructions",
                            ],
                            "outputs": ["<bottomup>cpi"],
                        }
                    },
                }
            )
        dep.run(5)
        dep.agent_manager.load_plugin(
            {
                "plugin": "persyst",
                "operators": {
                    "job-cpi": {
                        "interval_s": 1,
                        "window_s": 2,
                        "inputs": ["<bottomup, filter cpu>cpi"],
                        "params": {"quantiles": [0.5]},
                    }
                },
            }
        )
        dep.run(30)
        dep.agent.flush()
        node = dep.sim.node_paths[0]
        raw_latest = dep.pushers[node].cache_for(
            f"{node}/cpu00/cpu-cycles"
        ).latest()
        cpi_latest = dep.pushers[node].cache_for(f"{node}/cpu00/cpi").latest()
        decile_latest = dep.agent.storage.latest("/jobs/job-x/decile5")
        lag_cpi = (raw_latest.timestamp - cpi_latest.timestamp) / NS_PER_SEC
        lag_decile = (
            raw_latest.timestamp - decile_latest.timestamp
        ) / NS_PER_SEC
        rows = [
            ("raw counter (pusher)", 0.0),
            ("derived CPI (pusher)", lag_cpi),
            ("job decile (agent)", lag_decile),
        ]
        print_table(["stage", "staleness [s]"], rows, fmt="{:>24}")
        assert shape_check(
            "stage-1 output at most one interval behind raw data",
            lag_cpi <= 1.0,
            f"{lag_cpi:.0f} s",
        )
        assert shape_check(
            "stage-2 output at most three intervals behind raw data "
            "(sampling + drain + stage cadences)",
            lag_decile <= 3.0,
            f"{lag_decile:.0f} s",
        )
        op = dep.agent_manager.operator("job-cpi")
        benchmark(op.compute, dep.now)
