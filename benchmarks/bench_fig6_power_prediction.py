"""Figure 6 — online power consumption prediction (Section VI-B).

Paper setup: a Pusher-hosted ``regressor`` operator samples performance
metrics and node power at 250 ms, extracts window statistics per input
sensor, and trains a random forest online (training set accumulated in
memory, fit automatically at the size threshold) to predict node power
one interval ahead.  Training runs under Kripke, AMG, Nekbone and
LAMMPS; evaluation is online on fresh data.  Results: the predicted
series tracks the real one but smooths over short turbo/noise spikes;
the binned relative error sits near 5 % in the bulk of the power
distribution and degrades in the rare high/low-power bins; the average
relative error is 6.2 % at 250 ms (10.4 % at 125 ms, 6.7 % at 500 ms);
added overhead vs plain monitoring is ~0.1 %.

Scaling substitutions: an 8-core simulated node stands in for the KNL
node, and the training set is 1600 vectors rather than 30 000 (the
simulated signal needs far fewer samples than a real system).

Paper-shape expectations checked:
- the predicted series tracks reality (correlation) but is *smoother*
  (it misses short spikes, like Fig 6a);
- bulk-of-distribution bins predict better than rare tail bins (Fig 6b);
- average relative error lands in the paper's single-digit-percent
  regime, and the shortest sampling interval (125 ms) is the hardest;
- regression overhead on top of monitoring stays ~0.1 % of an interval.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.harness import (
    Deployment,
    print_header,
    print_table,
    shape_check,
)
from repro.common.timeutil import NS_PER_MS, NS_PER_SEC
from repro.ml.metrics import binned_relative_error, mean_relative_error
from repro.simulator import ClusterSpec
from repro.simulator.scheduler import Job

TRAIN_APPS = ("kripke", "amg", "nekbone", "lammps")
EVAL_APPS = ("lammps", "kripke", "amg", "nekbone")


def build_deployment(interval_ms: float, seed: int = 0xF16) -> Deployment:
    return Deployment(
        ClusterSpec.small(nodes=1, cpus=8),
        seed=seed,
        monitoring=("sysfs", "perfevent"),
        perfevent_counters=("cpu-cycles", "instructions", "flops"),
        sampling_interval_ns=int(interval_ms * NS_PER_MS),
    )


def schedule_apps(dep: Deployment, apps, start_s: float, each_s: float):
    node = dep.sim.node_paths[0]
    t = start_s
    for i, app in enumerate(apps):
        dep.sim.scheduler.add_job(
            Job(
                f"{app}-{i}-{int(t)}",
                app,
                (node,),
                int(t * NS_PER_SEC),
                int((t + each_s) * NS_PER_SEC),
            )
        )
        t += each_s
    return t


def run_experiment(
    interval_ms: float,
    training_samples: int,
    eval_s: float,
    seed: int = 0xF16,
):
    """Train online, evaluate online; returns (actual, predicted, dep)."""
    dep = build_deployment(interval_ms, seed=seed)
    node = dep.sim.node_paths[0]
    interval_ns = int(interval_ms * NS_PER_MS)
    # Size the per-app slots so that the training set spans all four
    # applications regardless of the sampling interval (the paper trains
    # across full runs of all four CORAL-2 apps).
    train_span_s = training_samples * interval_ms / 1000.0
    app_slot_s = train_span_s / len(TRAIN_APPS) * 1.1 + 10.0
    end_train = schedule_apps(dep, TRAIN_APPS * 2, 1.0, app_slot_s)
    schedule_apps(dep, EVAL_APPS, end_train, eval_s / len(EVAL_APPS))
    dep.managers[node].load_plugin(
        {
            "plugin": "regressor",
            "operators": {
                "power-pred": {
                    "interval_ns": interval_ns,
                    "window_ns": 8 * interval_ns,
                    "delay_ns": 8 * interval_ns,
                    # Power plus leading performance counters.  Node
                    # temperature is deliberately excluded: it lags power
                    # through thermal inertia, so during the training
                    # phase (node still warming) it is a spuriously
                    # predictive feature that breaks once the node
                    # saturates — a distribution shift a production
                    # deployment avoids by training at steady state.
                    "inputs": [
                        "<bottomup-1>power",
                        "<bottomup, filter cpu0[0-3]>cpu-cycles",
                        "<bottomup, filter cpu0[0-3]>instructions",
                    ],
                    "outputs": ["<bottomup-1>pred-power"],
                    "params": {
                        "target": "power",
                        "training_samples": training_samples,
                        "n_estimators": 10,
                        "max_depth": 9,
                        "delta_inputs": ["cpu-cycles", "instructions"],
                        "seed": 7,
                    },
                }
            },
        }
    )
    dep.run(end_train + eval_s)
    # Align: the prediction stored at t targets power at t + interval.
    pred_ts, pred = dep.series(f"{node}/pred-power")
    pow_ts, power = dep.series(f"{node}/power")
    interval_s = interval_ms / 1000.0
    idx = np.searchsorted(pow_ts, pred_ts + interval_s * 0.999)
    keep = idx < len(pow_ts)
    actual = power[idx[keep]]
    predicted = pred[keep]
    return actual, predicted, pred_ts[keep], dep


class TestFig6:
    @pytest.fixture(scope="class")
    def experiment(self):
        return run_experiment(
            interval_ms=250, training_samples=1600, eval_s=240.0
        )

    def test_fig6a_time_series(self, experiment, benchmark):
        actual, predicted, ts, dep = experiment
        print_header("Figure 6a - real vs predicted power time series")
        assert len(predicted) > 400, "prediction phase produced no output"
        # Print a 20-row excerpt like the Fig 6a window.
        rows = [
            (f"{ts[i]:.2f}s", float(actual[i]), float(predicted[i]))
            for i in range(0, min(len(ts), 200), 10)
        ]
        print_table(["time", "power[W]", "predicted[W]"], rows)
        # Tracking: compare on 2 s moving averages — the paper's claim is
        # that the prediction follows status changes while missing the
        # (unpredictable) sub-second turbo/noise spikes, so the tracking
        # signal lives in the smoothed series.
        kernel = np.ones(8) / 8.0
        smooth_real = np.convolve(actual, kernel, mode="valid")
        smooth_pred = np.convolve(predicted, kernel, mode="valid")
        corr = float(np.corrcoef(smooth_real, smooth_pred)[0, 1])
        # Skill vs the trivial constant-mean predictor.
        base_err = float(np.abs(actual - actual.mean()).mean())
        model_err = float(np.abs(actual - predicted).mean())
        # Smoothness: step-to-step variation of the prediction is lower.
        rough_real = float(np.abs(np.diff(actual)).mean())
        rough_pred = float(np.abs(np.diff(predicted)).mean())
        print(f"\n  correlation (2s-smoothed) real/pred: {corr:.3f}")
        print(
            f"  MAE model {model_err:.2f} W vs constant-mean {base_err:.2f} W"
        )
        print(
            f"  mean |step| real {rough_real:.2f} W vs pred {rough_pred:.2f} W"
        )
        assert shape_check(
            "predicted series tracks the real one (smoothed corr)",
            corr > 0.6,
            f"corr={corr:.3f}",
        )
        assert shape_check(
            "model beats the constant-mean baseline",
            model_err < base_err,
            f"{model_err:.2f} < {base_err:.2f} W",
        )
        assert shape_check(
            "prediction is a smoothed version (misses short spikes)",
            rough_pred < rough_real,
            f"{rough_pred:.2f} < {rough_real:.2f}",
        )
        node = dep.sim.node_paths[0]
        op = dep.managers[node].operator("power-pred")
        benchmark(op.compute, dep.now)

    def test_fig6b_binned_error(self, experiment, benchmark):
        actual, predicted, ts, dep = experiment
        print_header("Figure 6b - relative error by real power value")
        profile = binned_relative_error(actual, predicted, n_bins=12)
        rows = [
            (
                f"{c:.0f}W",
                float(e) if np.isfinite(e) else float("nan"),
                float(d),
                int(n),
            )
            for c, e, d, n in zip(
                profile.bin_centers,
                profile.mean_error,
                profile.density,
                profile.counts,
            )
        ]
        print_table(["bin", "rel-error", "density", "count"], rows)
        avg = mean_relative_error(actual, predicted)
        print(f"\n  average relative error: {avg * 100:.1f}% (paper: 6.2%)")
        assert shape_check(
            "average relative error in the paper's regime (<15%)",
            avg < 0.15,
            f"{avg * 100:.1f}%",
        )
        # Bulk vs tail: bins holding >=10% of the data beat the rare
        # bins (<2% of data) on average, as in Fig 6b.
        bulk = profile.mean_error[profile.density >= 0.10]
        tail = profile.mean_error[
            (profile.density > 0) & (profile.density < 0.02)
        ]
        if bulk.size and tail.size:
            shape_check(
                "bulk-of-distribution bins predict better than rare bins",
                np.nanmean(bulk) <= np.nanmean(tail),
                f"bulk {np.nanmean(bulk) * 100:.1f}% vs "
                f"tail {np.nanmean(tail) * 100:.1f}%",
            )
        benchmark(binned_relative_error, actual, predicted, 12)

    def test_fig6_interval_sweep(self, benchmark):
        """Text claim: 125 ms predicts worst; 250/500 ms are comparable."""
        print_header("Figure 6 (text) - sampling interval sweep")
        rows = []
        errors = {}
        for interval_ms, train in ((125, 800), (250, 800), (500, 800)):
            actual, predicted, _, _ = run_experiment(
                interval_ms=interval_ms,
                training_samples=train,
                eval_s=120.0,
                seed=0xF17,
            )
            err = mean_relative_error(actual, predicted)
            errors[interval_ms] = err
            rows.append((f"{interval_ms}ms", err * 100))
        print_table(["interval", "avg rel-error [%]"], rows)
        print("  paper: 10.4% @125ms, 6.2% @250ms, 6.7% @500ms")
        # Known divergence: the paper's 125 ms penalty comes from real
        # sensor noise growing toward fine sampling; the simulator's
        # power noise is band-limited (0.5-1 s processes), so here the
        # three intervals land in the same regime instead.  The checked
        # shape is therefore "all intervals predict comparably well,
        # none blows up" (see EXPERIMENTS.md).
        errs = np.array(list(errors.values()))
        shape_check(
            "all sampling intervals predict in the same regime",
            errs.max() < 0.15 and errs.max() <= max(2.5 * errs.min(), 0.05),
            f"spread {errs.min()*100:.1f}%..{errs.max()*100:.1f}%",
        )
        assert all(e < 0.25 for e in errors.values())
        benchmark(lambda: None)

    def test_fig6_regression_overhead(self, experiment, benchmark):
        """Text claim: regression adds ~0.1 % on top of monitoring."""
        actual, predicted, ts, dep = experiment
        print_header("Figure 6 (text) - regression overhead")
        node = dep.sim.node_paths[0]
        op = dep.managers[node].operator("power-pred")
        per_compute_ns = op.busy_ns / max(1, op.compute_count)
        overhead_pct = per_compute_ns / (250 * NS_PER_MS) * 100
        print(
            f"  mean regressor compute: {per_compute_ns / 1e6:.3f} ms per "
            f"250 ms interval = {overhead_pct:.3f}% of one core"
        )
        print("  paper: ~0.1% added overhead")
        assert shape_check(
            "regression overhead well under 1% of an interval",
            overhead_pct < 1.0,
            f"{overhead_pct:.3f}%",
        )
        benchmark(op.compute, dep.now)
