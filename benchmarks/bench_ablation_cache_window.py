"""Ablation M8 — sensor-cache window sizing.

The paper's deployments run 180 s caches; DCDB sizes them per sensor
from a time window and the sampling interval.  This ablation quantifies
the design trade-off behind that choice on the Fig 5 workload (1000
sensors at 1 s):

- memory grows linearly with the window (and must stay within the
  ~25 MB pusher budget even at generous windows);
- relative-mode query cost is independent of the window (the O(1)
  index arithmetic never touches more data than the query asks for);
- absolute-mode query cost grows only logarithmically.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.harness import print_header, print_table, shape_check
from repro.common.timeutil import NS_PER_SEC
from repro.dcdb.cache import SensorCache

WINDOWS_S = (60, 180, 600, 3600)
N_SENSORS = 1000
QUERY_SPAN_S = 30


def build_caches(window_s):
    caches = []
    ts = np.arange(window_s, dtype=np.int64) * NS_PER_SEC
    values = ts.astype(np.float64)
    for _ in range(8):  # a sample of the 1000; memory extrapolates
        cache = SensorCache.for_duration(window_s * NS_PER_SEC, NS_PER_SEC)
        cache.store_batch(ts, values)
        caches.append(cache)
    return caches


def mean_cost(fn, reps=3000):
    t0 = time.perf_counter_ns()
    for _ in range(reps):
        fn()
    return (time.perf_counter_ns() - t0) / reps


class TestCacheWindowAblation:
    def test_window_size_tradeoff(self, benchmark):
        print_header("M8 - cache window ablation (1000 sensors @ 1s)")
        rows = []
        mem = {}
        rel = {}
        absolute = {}
        for window_s in WINDOWS_S:
            caches = build_caches(window_s)
            cache = caches[0]
            newest = cache.latest().timestamp
            mem[window_s] = cache.memory_bytes() * N_SENSORS / 2**20
            rel[window_s] = mean_cost(
                lambda: cache.view_relative(QUERY_SPAN_S * NS_PER_SEC)
            )
            absolute[window_s] = mean_cost(
                lambda: cache.view_absolute(
                    newest - QUERY_SPAN_S * NS_PER_SEC, newest
                )
            )
            rows.append(
                (
                    f"{window_s}s",
                    mem[window_s],
                    rel[window_s],
                    absolute[window_s],
                )
            )
        print_table(
            ["window", "mem(1000) [MB]", "rel [ns]", "abs [ns]"], rows
        )
        assert shape_check(
            "paper's 180s window fits the 25MB pusher budget many times",
            mem[180] < 25.0 / 4,
            f"{mem[180]:.1f} MB",
        )
        assert shape_check(
            "relative query cost independent of window size",
            rel[WINDOWS_S[-1]] < rel[WINDOWS_S[0]] * 3.0,
            f"{rel[WINDOWS_S[0]]:.0f} -> {rel[WINDOWS_S[-1]]:.0f} ns",
        )
        assert shape_check(
            "absolute query cost sub-linear in window size",
            absolute[WINDOWS_S[-1]]
            < absolute[WINDOWS_S[0]] * (WINDOWS_S[-1] / WINDOWS_S[0]) / 4,
            f"{absolute[WINDOWS_S[0]]:.0f} -> {absolute[WINDOWS_S[-1]]:.0f} ns",
        )
        assert shape_check(
            "memory linear in window",
            mem[3600] == pytest.approx(mem[60] * 60, rel=0.3),
            f"{mem[60]:.2f} -> {mem[3600]:.1f} MB",
        )
        big = build_caches(3600)[0]
        newest = big.latest().timestamp
        benchmark(
            big.view_absolute, newest - QUERY_SPAN_S * NS_PER_SEC, newest
        )
