"""Figure 8 — identification of performance anomalies (Section VI-D).

Paper setup: a ``clustering`` operator in the main Collect Agent holds
one unit per compute node of CooLMUC-3 (148 nodes), each contributing
2-week averages of node power, temperature and cumulative CPU idle time.
A Bayesian Gaussian mixture — which determines its effective component
count autonomously — clusters the nodes hourly; points below a 0.001
probability threshold under all fitted components are outliers.  The
paper finds three clusters (an idle-ish cluster, the bulk, a heavily
loaded cluster), strong power/temperature/idle correlation, and one
anomalous node drawing ~20 % more power than peers with similar idle
time.

Scaling substitution: the full 148-node topology is kept, but the
aggregation window is 600 simulated seconds instead of two weeks, with a
synthetic job mix creating idle / medium / heavy load groups and one
planted +20 % power anomaly.

Paper-shape expectations checked:
- the mixture finds >= 2 effective clusters without being told how many;
- clusters order consistently: more idle time => less power, lower
  temperature (the linear trend of Fig 8);
- power and temperature are strongly correlated across nodes;
- the planted anomalous node is flagged as an outlier, and outliers
  remain a small fraction of the system.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.harness import (
    Deployment,
    print_header,
    print_table,
    shape_check,
)
from repro.common.timeutil import NS_PER_SEC
from repro.simulator import ClusterSpec
from repro.simulator.cluster import ClusterTopology
from repro.simulator.scheduler import Job

WINDOW_S = 600.0
RUN_S = 660.0
SAMPLE_S = 10
N_IDLE = 30
N_LIGHT = 40
N_MEDIUM = 52
N_HEAVY = 25  # idle+light+medium+heavy = 147, +1 anomaly node = 148


@pytest.fixture(scope="module")
def experiment():
    spec = ClusterSpec.coolmuc3()
    topo = ClusterTopology(spec)
    nodes = topo.node_paths
    groups = {
        "idle": nodes[:N_IDLE],
        "light": nodes[N_IDLE : N_IDLE + N_LIGHT],
        "medium": nodes[N_IDLE + N_LIGHT : N_IDLE + N_LIGHT + N_MEDIUM],
        "heavy": nodes[N_IDLE + N_LIGHT + N_MEDIUM : 147],
        "anomaly": [nodes[147]],
    }
    anomaly_node = groups["anomaly"][0]
    dep = Deployment(
        spec,
        seed=0xF8,
        monitoring=("sysfs", "procfs"),
        sampling_interval_ns=SAMPLE_S * NS_PER_SEC,
        cache_window_ns=int((WINDOW_S + 60) * NS_PER_SEC),
        anomalies={anomaly_node: 1.2},
    )

    def job(jid, app, node_list, start_s, end_s):
        dep.sim.scheduler.add_job(
            Job(
                jid,
                app,
                tuple(node_list),
                int(start_s * NS_PER_SEC),
                int(end_s * NS_PER_SEC),
            )
        )

    # Heavy group: continuously loaded.
    job("heavy-hpl", "hpl", groups["heavy"], 1, RUN_S)
    # Medium group (+ the anomaly node, which runs the same mix as the
    # medium peers so only its power factor differs): ~70% utilisation.
    medium = groups["medium"] + groups["anomaly"]
    job("med-kripke", "kripke", medium, 1, 250)
    job("med-amg", "amg", medium, 330, 600)
    # Light group: one short job.
    job("light-lammps", "lammps", groups["light"], 100, 260)
    # Idle group: no jobs at all.

    dep.run(10)
    dep.agent_manager.load_plugin(
        {
            "plugin": "clustering",
            "operators": {
                "node-states": {
                    "interval_s": int(WINDOW_S),
                    "window_s": int(WINDOW_S),
                    "delay_s": int(RUN_S - 15),
                    "inputs": [
                        "<bottomup>power",
                        "<bottomup>temp",
                        "<bottomup>idle-time",
                    ],
                    "outputs": ["<bottomup>cluster", "<bottomup>outlier"],
                    "operator_outputs": ["n-clusters", "n-outliers"],
                    "params": {
                        "transforms": {
                            "power": "mean",
                            "temp": "mean",
                            "idle-time": "delta",
                        },
                        "n_components": 8,
                        "pdf_threshold": 1e-3,
                        "seed": 8,
                    },
                }
            },
        }
    )
    dep.run(RUN_S - 10)
    op = dep.agent_manager.operator("node-states")
    # Per-node window averages for reporting (same features the operator
    # used, recomputed from storage).
    features = {}
    for node in nodes:
        _, power = dep.series(f"{node}/power")
        _, temp = dep.series(f"{node}/temp")
        _, idle = dep.series(f"{node}/idle-time")
        features[node] = (
            float(power.mean()),
            float(temp.mean()),
            float(idle[-1] - idle[0]),
        )
    return dep, op, groups, features, anomaly_node


class TestFig8:
    def test_fig8_clusters_found(self, experiment, benchmark):
        dep, op, groups, features, anomaly = experiment
        print_header("Figure 8 - Bayesian GMM clustering of 148 nodes")
        assert op.last_labels, "clustering pass did not run"
        labels = op.last_labels
        rows = []
        for cluster_id in sorted(set(labels.values())):
            members = [n for n, l in labels.items() if l == cluster_id]
            p = np.mean([features[n][0] for n in members])
            t = np.mean([features[n][1] for n in members])
            idle = np.mean([features[n][2] for n in members])
            rows.append(
                (f"cluster {cluster_id}", len(members), float(p), float(t),
                 float(idle))
            )
        print_table(
            ["", "#nodes", "power[W]", "temp[C]", "idle[core-s]"], rows
        )
        print(f"\n  effective clusters: {op.last_n_clusters} (paper: 3)")
        print(f"  outliers: {len(op.last_outliers)} -> {op.last_outliers}")
        assert shape_check(
            "mixture finds >= 2 effective clusters autonomously",
            op.last_n_clusters >= 2,
            f"{op.last_n_clusters}",
        )
        assert shape_check(
            "every node got a label", len(labels) == 148, f"{len(labels)}"
        )
        benchmark(op.compute, dep.now)

    def test_fig8_cluster_ordering(self, experiment, benchmark):
        """More idle time => less power and lower temperature."""
        dep, op, groups, features, anomaly = experiment
        print_header("Figure 8 - cluster ordering along the idle/power trend")
        labels = op.last_labels
        stats = {}
        for cluster_id in sorted(set(labels.values())):
            members = [n for n, l in labels.items() if l == cluster_id]
            if len(members) < 5:
                continue
            stats[cluster_id] = (
                np.mean([features[n][0] for n in members]),
                np.mean([features[n][1] for n in members]),
                np.mean([features[n][2] for n in members]),
            )
        assert len(stats) >= 2
        by_idle = sorted(stats.values(), key=lambda s: s[2])
        powers = [s[0] for s in by_idle]
        temps = [s[1] for s in by_idle]
        print_table(
            ["power[W]", "temp[C]", "idle[core-s]"],
            [(float(p), float(t), float(i)) for p, t, i in by_idle],
        )
        assert shape_check(
            "power decreases as cluster idle time increases",
            all(powers[i] > powers[i + 1] for i in range(len(powers) - 1)),
            f"{np.round(powers, 1)}",
        )
        assert shape_check(
            "temperature follows the same ordering",
            all(temps[i] > temps[i + 1] for i in range(len(temps) - 1)),
            f"{np.round(temps, 1)}",
        )
        benchmark(sorted, stats.values(), key=lambda s: s[2])

    def test_fig8_metric_correlation(self, experiment, benchmark):
        """The three metrics describe one linear trend (Fig 8's cloud)."""
        dep, op, groups, features, anomaly = experiment
        print_header("Figure 8 - power/temperature/idle correlation")
        mat = np.array([features[n] for n in sorted(features)])
        corr_pt = float(np.corrcoef(mat[:, 0], mat[:, 1])[0, 1])
        corr_pi = float(np.corrcoef(mat[:, 0], mat[:, 2])[0, 1])
        print(f"  corr(power, temp) = {corr_pt:.3f}")
        print(f"  corr(power, idle) = {corr_pi:.3f}")
        assert shape_check(
            "power and temperature strongly correlated", corr_pt > 0.9,
            f"{corr_pt:.3f}",
        )
        assert shape_check(
            "power and idle time anti-correlated", corr_pi < -0.8,
            f"{corr_pi:.3f}",
        )
        benchmark(np.corrcoef, mat[:, 0], mat[:, 1])

    def test_fig8_anomaly_flagged(self, experiment, benchmark):
        """The planted +20% power node is identified as an outlier."""
        dep, op, groups, features, anomaly = experiment
        print_header("Figure 8 - planted anomaly detection")
        peers = groups["medium"]
        peer_power = np.mean([features[n][0] for n in peers])
        anom_power = features[anomaly][0]
        print(
            f"  anomalous node {anomaly}: {anom_power:.1f} W vs "
            f"{peer_power:.1f} W for peers with similar idle time "
            f"(+{(anom_power / peer_power - 1) * 100:.0f}%)"
        )
        print(f"  flagged outliers: {op.last_outliers}")
        assert shape_check(
            "anomalous node draws ~20% more power than its peers",
            1.10 < anom_power / peer_power < 1.35,
            f"x{anom_power / peer_power:.2f}",
        )
        assert shape_check(
            "the anomalous node is flagged as an outlier",
            anomaly in op.last_outliers,
        )
        assert shape_check(
            "outliers are a small fraction of the system",
            len(op.last_outliers) <= 8,
            f"{len(op.last_outliers)}/148",
        )
        benchmark(lambda: op.last_outliers)
