"""Micro/ablation M1 — sensor cache complexity.

Validates the complexity claims of Section V-B at the data-structure
level: relative views cost O(1) (index arithmetic independent of cache
size), absolute views cost O(log N) (binary search).  Also measures the
raw store throughput that bounds Pusher sampling rates.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.harness import print_header, print_table, shape_check
from repro.common.timeutil import NS_PER_SEC
from repro.dcdb.cache import SensorCache

SIZES = (1_000, 10_000, 100_000, 1_000_000)


def filled(n):
    cache = SensorCache(n, interval_ns=NS_PER_SEC)
    ts = np.arange(n, dtype=np.int64) * NS_PER_SEC
    cache.store_batch(ts, ts.astype(np.float64))
    return cache


def time_per_call(fn, reps=2000):
    t0 = time.perf_counter_ns()
    for _ in range(reps):
        fn()
    return (time.perf_counter_ns() - t0) / reps


class TestCacheComplexity:
    def test_relative_view_is_constant_time(self, benchmark):
        print_header("M1 - relative view cost vs cache size (O(1) claim)")
        rows = []
        costs = {}
        for n in SIZES:
            cache = filled(n)
            offset = (n // 2) * NS_PER_SEC
            costs[n] = time_per_call(lambda: cache.view_relative(offset))
            rows.append((f"{n:,}", costs[n]))
        print_table(["cache size", "ns/view"], rows)
        # O(1): cost at 1M entries within a small factor of cost at 1k.
        assert shape_check(
            "relative view cost flat in cache size",
            costs[SIZES[-1]] < costs[SIZES[0]] * 4.0,
            f"{costs[SIZES[0]]:.0f} ns -> {costs[SIZES[-1]]:.0f} ns",
        )
        big = filled(SIZES[-1])
        benchmark(big.view_relative, (SIZES[-1] // 2) * NS_PER_SEC)

    def test_absolute_view_is_logarithmic(self, benchmark):
        print_header("M1 - absolute view cost vs cache size (O(log N) claim)")
        rows = []
        costs = {}
        for n in SIZES:
            cache = filled(n)
            lo = (n // 4) * NS_PER_SEC
            hi = (n // 2) * NS_PER_SEC
            costs[n] = time_per_call(lambda: cache.view_absolute(lo, hi))
            rows.append((f"{n:,}", costs[n]))
        print_table(["cache size", "ns/view"], rows)
        # Sub-linear: 1000x more data costs far less than 1000x time.
        assert shape_check(
            "absolute view cost grows sub-linearly",
            costs[SIZES[-1]] < costs[SIZES[0]] * 20.0,
            f"{costs[SIZES[0]]:.0f} ns -> {costs[SIZES[-1]]:.0f} ns",
        )
        big = filled(SIZES[-1])
        benchmark(
            big.view_absolute,
            (SIZES[-1] // 4) * NS_PER_SEC,
            (SIZES[-1] // 2) * NS_PER_SEC,
        )

    def test_store_throughput(self, benchmark):
        print_header("M1 - cache store throughput")
        cache = SensorCache(10_000, interval_ns=NS_PER_SEC)
        n = 50_000
        t0 = time.perf_counter_ns()
        for i in range(n):
            cache.store(i * NS_PER_SEC, float(i))
        per_store = (time.perf_counter_ns() - t0) / n
        rate = 1e9 / per_store
        print(f"  scalar store: {per_store:.0f} ns -> {rate / 1e6:.2f} M stores/s")
        # A pusher sampling 1000 sensors at 1 Hz needs 1 kHz of stores;
        # require well over two orders of magnitude of headroom (the
        # loose bound keeps the check robust on contended machines).
        assert shape_check(
            "store rate supports >1000 sensors at 1 Hz with headroom",
            rate > 4e5,
            f"{rate/1e6:.2f} M/s",
        )
        state = {"i": n}

        def one():
            state["i"] += 1
            cache.store(state["i"] * NS_PER_SEC, 1.0)

        benchmark(one)

    def test_batch_store_beats_scalar(self, benchmark):
        print_header("M1 - batch vs scalar store")
        n = 100_000
        ts = np.arange(n, dtype=np.int64)
        values = np.arange(n, dtype=np.float64)
        scalar_cache = SensorCache(n)
        t0 = time.perf_counter_ns()
        for i in range(0, n, 100):
            scalar_cache.store(int(ts[i]), float(values[i]))
        scalar_per = (time.perf_counter_ns() - t0) / (n // 100)
        batch_cache = SensorCache(n)
        t0 = time.perf_counter_ns()
        batch_cache.store_batch(ts, values)
        batch_per = (time.perf_counter_ns() - t0) / n
        print(
            f"  scalar {scalar_per:.0f} ns/reading vs batch "
            f"{batch_per:.1f} ns/reading"
        )
        assert shape_check(
            "batched ingest is at least 5x cheaper per reading",
            batch_per * 5 < scalar_per,
        )
        benchmark(lambda: SensorCache(n).store_batch(ts, values))
