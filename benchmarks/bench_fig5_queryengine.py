"""Figure 5 — Query Engine overhead heatmaps (Section VI-A).

Paper setup: a Pusher samples 1000 monotonic tester sensors at 1 s with a
180 s cache; tester operators perform {2, 10, 100, 500, 1000} queries per
1 s analysis interval over ranges {0, 12.5k, 25k, 50k, 100k} ms, in
absolute and relative Query Engine modes.  Overhead is the runtime
increase of an HPL run sharing the node.

Substitution: the simulator has no co-running HPL, so overhead is
measured directly at its source — the wall-clock CPU time the operator's
queries consume per analysis interval, as a percentage of the interval.
This is the fraction of one core the analytics would steal from HPL in
real time, i.e. the same quantity the paper's runtime delta estimates.

Measurement source: the live telemetry registry.  Each grid cell reads
the operator's ``operator_compute_latency_ns`` histogram (sum of
observed pass latencies) before and after its passes, so the benchmark
exercises exactly the counters a production deployment would scrape from
``GET /metrics`` instead of bespoke stopwatch code.

Paper-shape expectations checked:
- overhead < 0.5 % in all 25 cells, for both modes;
- no monotone blow-up with query count or range (good scalability);
- absolute mode (binary search, O(log N)) >= relative mode (O(1)) on
  average;
- Pusher sensor-cache memory stays below the paper's 25 MB observation.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.harness import print_header, print_heatmap, shape_check
from repro.common.timeutil import NS_PER_SEC
from repro.core.manager import OperatorManager
from repro.core.operator import OperatorConfig
from repro.core.units import Unit
from repro.dcdb import Broker, Pusher
from repro.dcdb.plugins import TesterMonitoringPlugin
from repro.dcdb.sensor import Sensor
from repro.plugins.tester import TesterOperator
from repro.simulator.clock import TaskScheduler

N_SENSORS = 1000
CACHE_S = 180
QUERY_COUNTS = (2, 10, 100, 500, 1000)
RANGES_MS = (100_000, 50_000, 25_000, 12_500, 0)
REPS = 20


@pytest.fixture(scope="module")
def warm_pusher():
    """A pusher with 1000 tester sensors and 180 s of warm cache."""
    scheduler = TaskScheduler()
    broker = Broker()
    pusher = Pusher("/r0/c0/n0", broker, scheduler)
    pusher.add_plugin(
        TesterMonitoringPlugin("/r0/c0/n0", n_sensors=N_SENSORS, publish=False)
    )
    manager = OperatorManager()
    pusher.attach_analytics(manager)
    scheduler.run_until(CACHE_S * NS_PER_SEC)
    return pusher, manager, scheduler


def make_operator(pusher, mode: str, queries: int, range_ms: float):
    cfg = OperatorConfig(
        name=f"tester-{mode}-{queries}-{range_ms}",
        params={
            "queries": queries,
            "query_mode": mode,
            "range_ms": range_ms,
        },
        publish_outputs=False,
    )
    op = TesterOperator(cfg)
    op.bind(pusher, pusher.analytics.engine)
    unit = Unit(
        name="/r0/c0/n0",
        level=0,
        inputs=sorted(pusher.sensor_topics()),
        outputs=[Sensor("/r0/c0/n0/tester-result", publish=False,
                        is_operator_output=True)],
    )
    op.set_units([unit])
    op.start()
    return op


def measure_overhead_grid(pusher, scheduler, mode: str) -> np.ndarray:
    """Overhead % for the 5x5 (range x query-count) grid of Fig 5."""
    grid = np.zeros((len(RANGES_MS), len(QUERY_COUNTS)))
    now = scheduler.clock.now
    for i, range_ms in enumerate(RANGES_MS):
        for j, queries in enumerate(QUERY_COUNTS):
            op = make_operator(pusher, mode, queries, range_ms)
            # Busy time comes from the telemetry registry: the operator's
            # compute-latency histogram accrues one sample per pass.
            hist = op.compute_latency
            sum_before = hist.sum
            count_before = hist.count
            for _ in range(REPS):
                op.compute(now)
            busy = hist.sum - sum_before
            reps = hist.count - count_before
            per_interval = busy / max(1, reps)
            grid[i, j] = per_interval / NS_PER_SEC * 100.0
    return grid


#: Overhead ceilings per mode.  The paper reports <= 0.28 % peaks on C++;
#: a Python interpreter carries a constant factor on the binary-search
#: (absolute) path, so its ceiling is scaled accordingly.  The *shape*
#: claims (flat in range/count, absolute >= relative) are unscaled.
CEILING = {"relative": 0.5, "absolute": 1.5}


def report(mode: str, grid: np.ndarray, pusher) -> None:
    print_heatmap(
        f"Fig 5 ({mode} mode): Query Engine overhead [%] "
        f"(rows: query interval [ms], cols: number of queries)",
        [f"{r / 1000:.1f}k" if r else "0" for r in RANGES_MS],
        list(QUERY_COUNTS),
        grid,
        cell_fmt="{:.3f}",
    )
    cache_mb = sum(c.memory_bytes() for c in pusher.caches.values()) / 2**20
    # Sampling-side CPU load: wall time spent in plugin sampling over
    # the warmup, as a fraction of a core (the paper reports <= 1.2 %).
    sampled_s = pusher.sampling_busy_ns / 1e9
    load_pct = pusher.sampling_busy_ns / (CACHE_S * NS_PER_SEC) * 100
    # Query Engine counters, straight from the shared host registry.
    registry = pusher.telemetry
    hits = registry.counter("qe_cache_hits_total").value
    fallbacks = registry.counter("qe_storage_fallbacks_total").value
    misses = registry.counter("qe_misses_total").value
    latency = registry.histogram("qe_query_latency_ns", mode=mode)
    print(f"\n  pusher sensor-cache memory: {cache_mb:.1f} MB")
    print(
        f"  query engine (registry): {hits} cache hits, "
        f"{fallbacks} storage fallbacks, {misses} misses; "
        f"{mode} query latency mean "
        f"{(latency.mean if latency.count else 0) / 1e3:.1f} us "
        f"over {latency.count} queries"
    )
    print(
        f"  pusher sampling CPU load: {load_pct:.2f}% of one core "
        f"({sampled_s:.2f}s busy over {CACHE_S}s of 1000-sensor sampling; "
        f"paper: <= 1.2%)"
    )
    print("  paper: overhead <= 0.28% everywhere, no trend, memory < 25 MB")
    shape_check(
        f"{mode}: overhead < {CEILING[mode]}% in all cells",
        bool((grid < CEILING[mode]).all()),
        f"max {grid.max():.3f}%",
    )
    # Flat in query range: averaging over counts, the longest range must
    # not cost much more than the shortest (the paper sees no trend).
    by_range = grid.mean(axis=1)
    shape_check(
        f"{mode}: overhead flat across query ranges",
        by_range.max() <= max(by_range.min() * 2.0, by_range.min() + 0.05),
        f"range means {np.round(by_range, 3)}",
    )
    # "No clear increase with the amount of queried sensor data": the
    # largest cell must not dwarf the per-query-scaled small cells.
    per_query_small = grid[:, 0].mean() / QUERY_COUNTS[0]
    per_query_large = grid[:, -1].mean() / QUERY_COUNTS[-1]
    shape_check(
        f"{mode}: per-query cost does not grow with query count",
        per_query_large <= per_query_small * 2.0,
        f"{per_query_small * 1000:.4f} vs {per_query_large * 1000:.4f} m%/query",
    )
    shape_check(
        f"{mode}: cache memory below 25 MB",
        cache_mb < 25.0,
        f"{cache_mb:.1f} MB",
    )


class TestFig5:
    def test_fig5a_absolute_mode(self, warm_pusher, benchmark):
        pusher, manager, scheduler = warm_pusher
        print_header("Figure 5a - Query Engine overhead, absolute mode")
        grid = measure_overhead_grid(pusher, scheduler, "absolute")
        report("absolute", grid, pusher)
        # Benchmark the heaviest cell: 1000 absolute queries over 100 s.
        op = make_operator(pusher, "absolute", 1000, 100_000)
        benchmark(op.compute, scheduler.clock.now)
        assert (grid < CEILING["absolute"]).all()

    def test_fig5b_relative_mode(self, warm_pusher, benchmark):
        pusher, manager, scheduler = warm_pusher
        print_header("Figure 5b - Query Engine overhead, relative mode")
        grid = measure_overhead_grid(pusher, scheduler, "relative")
        report("relative", grid, pusher)
        op = make_operator(pusher, "relative", 1000, 100_000)
        benchmark(op.compute, scheduler.clock.now)
        assert (grid < CEILING["relative"]).all()

    def test_fig5_sanitizer_off_on_measurement_path(self, warm_pusher):
        """The overhead grids above are only meaningful if they measure
        the *production* path: no active runtime sanitizer, unpatched
        clock functions.  With the seams disabled their entire cost is
        one module-attribute load plus an ``is None`` branch per seam,
        so the grid ceilings above are the same as before the sanitizer
        existed — this pin makes an accidental always-on activation
        (which would silently inflate every Fig 5 cell) a hard failure.
        """
        import time as time_module

        from repro.sanitizer import hooks
        from repro.sanitizer.invariants import (
            PATCH_MARKER,
            time_functions_patched,
        )

        assert hooks.CURRENT is None
        assert not time_functions_patched()
        pusher, manager, scheduler = warm_pusher
        op = make_operator(pusher, "relative", 10, 12_500)
        op.compute(scheduler.clock.now)
        # Driving the hot path activated nothing and patched nothing.
        assert hooks.CURRENT is None
        for name in ("time", "monotonic", "sleep"):
            assert not hasattr(getattr(time_module, name), PATCH_MARKER)

    def test_fig5_mode_comparison(self, warm_pusher, benchmark):
        """Absolute mode's binary search costs at least as much as the
        relative mode's O(1) index arithmetic (Section VI-A-2)."""
        pusher, manager, scheduler = warm_pusher
        print_header("Figure 5 - absolute vs relative mode")
        grid_abs = measure_overhead_grid(pusher, scheduler, "absolute")
        grid_rel = measure_overhead_grid(pusher, scheduler, "relative")
        print(
            f"  mean overhead: absolute {grid_abs.mean():.4f}% "
            f"vs relative {grid_rel.mean():.4f}%"
        )
        shape_check(
            "absolute-mode mean overhead >= relative-mode mean",
            grid_abs.mean() >= grid_rel.mean() * 0.9,
            f"{grid_abs.mean():.4f}% vs {grid_rel.mean():.4f}%",
        )
        op = make_operator(pusher, "relative", 100, 25_000)
        benchmark(op.compute, scheduler.clock.now)
