"""Shared infrastructure for the figure-reproduction benchmarks.

Each ``bench_fig*.py`` module regenerates one figure of the paper's
evaluation section (Section VI) on the simulated cluster and prints the
same rows/series the paper reports.  Absolute numbers differ from the
paper's CooLMUC-3 testbed — the substrate here is a simulator — but the
*shape* checks encoded in each bench (who wins, rough factors, where
crossovers fall) mirror the paper's conclusions.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.deploy import Deployment

__all__ = [
    "Deployment",
    "print_header",
    "print_table",
    "print_heatmap",
    "shape_check",
    "write_bench_artifact",
]

#: Where ``write_bench_artifact`` drops its JSON files (the repo root,
#: next to RESULTS.txt consumers; ``BENCH_*.json`` is gitignored).
ARTIFACT_DIR = Path(__file__).resolve().parent.parent

#: Artifact schema: 1 = bare payload, 2 = payload + ``provenance`` key.
BENCH_SCHEMA_VERSION = 2


def _git_state() -> tuple:
    """(commit SHA, dirty flag) of the repo, or ("unknown", False)."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=ARTIFACT_DIR, capture_output=True, text=True, timeout=10,
        ).stdout.strip() or "unknown"
        dirty = bool(
            subprocess.run(
                ["git", "status", "--porcelain"],
                cwd=ARTIFACT_DIR, capture_output=True, text=True,
                timeout=10,
            ).stdout.strip()
        )
        return sha, dirty
    except Exception:
        return "unknown", False


def _config_digest(config: Optional[dict]) -> str:
    """Stable sha256 of the bench configuration (key-order independent)."""
    if not config:
        return ""
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


def print_header(title: str) -> None:
    line = "=" * max(60, len(title) + 4)
    print(f"\n{line}\n  {title}\n{line}")


def print_table(
    headers: Sequence[str], rows: Sequence[Sequence], fmt: str = "{:>12}"
) -> None:
    print("".join(fmt.format(str(h)) for h in headers))
    for row in rows:
        cells = [
            f"{c:.4f}" if isinstance(c, float) else str(c) for c in row
        ]
        print("".join(fmt.format(c) for c in cells))


def print_heatmap(
    title: str,
    row_labels: Sequence,
    col_labels: Sequence,
    values: np.ndarray,
    cell_fmt: str = "{:.2f}",
) -> None:
    """Print a Fig-5-style heatmap as an aligned text grid."""
    print(f"\n{title}")
    width = max(10, max(len(str(c)) for c in col_labels) + 2)
    header = " " * 12 + "".join(f"{str(c):>{width}}" for c in col_labels)
    print(header)
    for label, row in zip(row_labels, values):
        cells = "".join(f"{cell_fmt.format(v):>{width}}" for v in row)
        print(f"{str(label):>12}{cells}")


def write_bench_artifact(
    name: str, payload: dict, config: Optional[dict] = None
) -> Path:
    """Persist one benchmark's machine-readable results as JSON.

    Artifacts land in the repo root as ``BENCH_<name>.json`` so CI (or a
    later session) can diff numbers without re-parsing stdout.  NumPy
    scalars/arrays in ``payload`` are converted to plain Python types.

    Every artifact is stamped with a ``provenance`` block — schema
    version, producing git commit (plus a dirty-tree flag), and a
    digest of ``config`` (the bench's parameter dict) — so committed
    artifacts stay attributable to the code and settings that made
    them.
    """

    def _plain(obj):
        if isinstance(obj, dict):
            return {str(k): _plain(v) for k, v in obj.items()}
        if isinstance(obj, (list, tuple)):
            return [_plain(v) for v in obj]
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        if isinstance(obj, np.generic):
            return obj.item()
        return obj

    sha, dirty = _git_state()
    doc = _plain(payload)
    doc["provenance"] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "git_sha": sha,
        "git_dirty": dirty,
        "config_digest": _config_digest(_plain(config) if config else None),
    }
    path = ARTIFACT_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"  artifact: {path.name}")
    return path


def shape_check(name: str, condition: bool, detail: str = "") -> bool:
    """Report a paper-shape expectation; prints PASS/FAIL and returns it."""
    status = "PASS" if condition else "FAIL"
    suffix = f"  ({detail})" if detail else ""
    print(f"  [{status}] {name}{suffix}")
    return condition
