"""Micro/ablation M6 — scalar vs batched unit execution.

The PR-4 tentpole claim: pushing a whole operator pass through one
compiled-plan batch query plus row-wise NumPy kernels beats the scalar
per-unit loop (one Python-level ``query_relative`` + reduction per unit)
by a widening margin as unit counts grow.  This bench drives an
aggregator operator over warm caches at 64 / 1000 / 4000 units and
times a full ``compute`` pass — queries, kernels and the batched store
fan-out included — on both paths.

Shape expectation: ≥ 3x lower per-pass cost for the batch path at 1000
units (the Section III-C scaling regime; at 64 units the fixed costs
dominate and the factor is smaller).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.harness import (
    print_header,
    print_table,
    shape_check,
    write_bench_artifact,
)
from repro.common.timeutil import NS_PER_SEC
from repro.core.operator import OperatorConfig
from repro.core.queryengine import QueryEngine
from repro.core.units import Unit
from repro.dcdb.cache import SensorCache
from repro.dcdb.sensor import Sensor
from repro.plugins.aggregator import AggregatorOperator

UNIT_COUNTS = (64, 1000, 4000)
WINDOW_NS = 30 * NS_PER_SEC
CACHE_SLOTS = 64
FILL = 40  # readings per cache: window fully covered, ring part-full


class ArrayHost:
    """Warm caches only — the minimal query/store host for one operator."""

    def __init__(self, n_units: int) -> None:
        self.caches = {}
        ts = np.arange(FILL, dtype=np.int64) * NS_PER_SEC
        rng = np.random.default_rng(0xBA7C4)
        for i in range(n_units):
            cache = SensorCache(CACHE_SLOTS, interval_ns=NS_PER_SEC)
            cache.store_batch(ts, rng.random(FILL))
            self.caches[f"/n{i}/power"] = cache
        self.stored = 0

    def cache_for(self, topic):
        return self.caches.get(topic)

    @property
    def storage(self):
        return None

    def sensor_topics(self):
        return list(self.caches)

    def store_reading(self, sensor, ts, value):
        self.stored += 1

    def store_readings_batch(self, ts, readings):
        self.stored += len(readings)


def make_operator(n_units: int, batch) -> AggregatorOperator:
    host = ArrayHost(n_units)
    op = AggregatorOperator(
        OperatorConfig(
            name=f"agg-{n_units}",
            window_ns=WINDOW_NS,
            batch=batch,
            params={"ops": {"*": "mean"}},
        )
    )
    op.bind(host, QueryEngine(host))
    op.set_units(
        [
            Unit(
                name=f"/n{i}",
                level=0,
                inputs=[f"/n{i}/power"],
                outputs=[Sensor(f"/n{i}/avg", is_operator_output=True)],
            )
            for i in range(n_units)
        ]
    )
    op.start()
    return op


def time_per_pass(op: AggregatorOperator, reps: int) -> float:
    now = FILL * NS_PER_SEC
    op.compute(now)  # warm the plan cache / interpreter state
    t0 = time.perf_counter_ns()
    for i in range(reps):
        op.compute(now + i)
    return (time.perf_counter_ns() - t0) / reps


class TestUnitBatchExecution:
    def test_batch_beats_scalar(self, benchmark):
        print_header("M6 - scalar vs batched operator pass cost")
        rows = []
        results = {}
        for n in UNIT_COUNTS:
            reps = max(3, 2000 // n)
            scalar_ns = time_per_pass(make_operator(n, batch=False), reps)
            batch_ns = time_per_pass(make_operator(n, batch=True), reps)
            speedup = scalar_ns / batch_ns
            results[n] = {
                "scalar_ns_per_pass": scalar_ns,
                "batch_ns_per_pass": batch_ns,
                "speedup": speedup,
            }
            rows.append((n, scalar_ns / 1e3, batch_ns / 1e3, f"{speedup:.1f}x"))
        print_table(["units", "scalar us", "batch us", "speedup"], rows)
        write_bench_artifact(
            "batch",
            {
                "bench": "bench_micro_unit_batch",
                "window_s": WINDOW_NS // NS_PER_SEC,
                "per_units": results,
            },
        )
        assert shape_check(
            "batch path >= 3x cheaper at 1000 units",
            results[1000]["speedup"] >= 3.0,
            f"{results[1000]['speedup']:.1f}x",
        )
        assert shape_check(
            "batch advantage grows with unit count",
            results[4000]["speedup"] >= results[64]["speedup"],
            f"{results[64]['speedup']:.1f}x @64 -> "
            f"{results[4000]['speedup']:.1f}x @4000",
        )
        op = make_operator(1000, batch=True)
        benchmark(op.compute, FILL * NS_PER_SEC)

    def test_batch_and_scalar_agree(self):
        """The speedup is only meaningful if both paths compute the same
        thing — spot-check the stored outputs match at 64 units."""
        ops = {b: make_operator(64, batch=b) for b in (False, True)}
        outs = {}
        for b, op in ops.items():
            results = op.compute(FILL * NS_PER_SEC)
            outs[b] = {r.unit.name: r.values for r in results}
        assert outs[False] == outs[True]

    def test_sanitizer_off_on_measurement_path(self):
        """Same pin as Fig 5: the numbers above measure the production
        path, not a sanitizer-instrumented one (which would force the
        batch path through the scalar fallback and void the comparison).
        """
        from repro.sanitizer import hooks

        assert hooks.CURRENT is None
        op = make_operator(64, batch=True)
        assert op.batch_enabled()
        op.compute(FILL * NS_PER_SEC)
        assert hooks.CURRENT is None
