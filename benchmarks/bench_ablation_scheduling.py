"""Ablation M4 — sequential vs parallel unit management (Section IV-c).

Sequential mode shares one model across all units and processes them in
order (race-free); parallel mode creates one model per unit and may use
a worker pool.  This bench quantifies the trade-off on a CPU-bound
clustering-style operator with many units: model count, per-pass cost,
and the (Python-specific) effect of thread workers on a GIL-bound
workload.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.harness import print_header, print_table, shape_check
from repro.common.timeutil import NS_PER_SEC
from repro.core.operator import OperatorBase, OperatorConfig
from repro.core.queryengine import QueryEngine
from repro.core.units import Unit
from repro.dcdb.cache import SensorCache
from repro.dcdb.sensor import Sensor

N_UNITS = 64
WINDOW = 50


class _Host:
    def __init__(self, n_units):
        self.caches = {}
        self.stored = []
        rng = np.random.default_rng(0)
        for i in range(n_units):
            cache = SensorCache(WINDOW + 8, interval_ns=NS_PER_SEC)
            for k in range(WINDOW):
                cache.store(k * NS_PER_SEC, float(rng.random()))
            self.caches[f"/n{i:03d}/x"] = cache

    def cache_for(self, topic):
        return self.caches.get(topic)

    @property
    def storage(self):
        return None

    def sensor_topics(self):
        return sorted(self.caches)

    def store_reading(self, sensor, ts, value):
        self.stored.append((sensor.topic, ts, value))


class StatsModelOp(OperatorBase):
    """CPU-bound toy model: per-unit exponential smoother over windows."""

    def make_model(self):
        return {"state": 0.0, "uses": 0}

    def compute_unit(self, unit, ts):
        model = self.model_for(unit)
        view = self.engine.query_relative(unit.inputs[0], WINDOW * NS_PER_SEC)
        values = view.values()
        # A few vector ops to emulate real per-unit analysis cost.
        feat = float(values.mean() + values.std() + np.median(values))
        model["state"] = 0.9 * model["state"] + 0.1 * feat
        model["uses"] += 1
        return {s.name: model["state"] for s in unit.outputs}


def make_op(unit_mode, max_workers=1):
    host = _Host(N_UNITS)
    cfg = OperatorConfig(
        name=f"abl-{unit_mode}-{max_workers}",
        unit_mode=unit_mode,
        max_workers=max_workers,
        window_ns=WINDOW * NS_PER_SEC,
    )
    op = StatsModelOp(cfg)
    op.bind(host, QueryEngine(host))
    op.set_units(
        [
            Unit(
                name=f"/n{i:03d}",
                level=0,
                inputs=[f"/n{i:03d}/x"],
                outputs=[Sensor(f"/n{i:03d}/out", is_operator_output=True,
                                publish=False)],
            )
            for i in range(N_UNITS)
        ]
    )
    op.start()
    return op


def per_pass_cost(op, reps=30):
    t0 = time.perf_counter_ns()
    for i in range(reps):
        op.compute((WINDOW + i) * NS_PER_SEC)
    return (time.perf_counter_ns() - t0) / reps / 1e6  # ms


class TestUnitScheduling:
    def test_model_placement_semantics(self, benchmark):
        print_header("M4 - model placement: sequential vs parallel")
        seq = make_op("sequential")
        par = make_op("parallel")
        seq.compute(WINDOW * NS_PER_SEC)
        par.compute(WINDOW * NS_PER_SEC)
        n_seq_models = 1 if seq._shared_model is not None else 0
        n_par_models = len(par._unit_models)
        print(f"  sequential: {n_seq_models} shared model for {N_UNITS} units")
        print(f"  parallel:   {n_par_models} per-unit models")
        assert shape_check(
            "sequential shares one model, parallel isolates per unit",
            n_seq_models == 1 and n_par_models == N_UNITS,
        )
        # In sequential mode, the shared model saw every unit.
        assert seq._shared_model["uses"] == N_UNITS
        assert all(m["uses"] == 1 for m in par._unit_models.values())
        benchmark(seq.compute, (WINDOW + 100) * NS_PER_SEC)

    def test_scheduling_cost_comparison(self, benchmark):
        print_header("M4 - per-pass cost by unit management mode")
        rows = []
        costs = {}
        for label, mode, workers in (
            ("sequential", "sequential", 1),
            ("parallel/1", "parallel", 1),
            ("parallel/4", "parallel", 4),
        ):
            op = make_op(mode, workers)
            costs[label] = per_pass_cost(op)
            rows.append((label, costs[label]))
        print_table(["mode", "ms/pass"], rows)
        print(
            "  note: with a GIL, thread workers add overhead for pure-"
            "Python models; parallel mode's value here is model isolation"
        )
        assert shape_check(
            "inline parallel mode costs about the same as sequential",
            costs["parallel/1"] < costs["sequential"] * 2.0,
            f"{costs['parallel/1']:.2f} vs {costs['sequential']:.2f} ms",
        )
        op = make_op("parallel", 4)
        benchmark(op.compute, (WINDOW + 200) * NS_PER_SEC)

    def test_sequential_results_deterministic(self, benchmark):
        """Sequential passes are order-stable: two identical operators
        produce identical outputs (the race-freedom motivation)."""
        a, b = make_op("sequential"), make_op("sequential")
        ra = a.compute(WINDOW * NS_PER_SEC)
        rb = b.compute(WINDOW * NS_PER_SEC)
        values_a = [r.values for r in ra]
        values_b = [r.values for r in rb]
        assert values_a == values_b
        benchmark(a.compute, (WINDOW + 300) * NS_PER_SEC)
