"""Ablation M9 — operator placement under network degradation.

Section IV-a argues Pusher placement is "optimal for runtime models
requiring data liveness [and] low latency" while Collect Agent placement
trades that for whole-system visibility.  The placement ablation (M5)
shows the trade-off on a perfect network; this one quantifies it when
the management network degrades: the same smoothing operator runs
in-band (in the Pusher) and out-of-band (in the Collect Agent) while
latency and loss are injected on the MQTT path.

Expectations:
- the in-band operator's output is unaffected by any network condition;
- the out-of-band operator's staleness grows with injected latency;
- under loss, the out-of-band operator sees proportionally fewer
  readings while the in-band one still sees them all.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.harness import print_header, print_table, shape_check
from repro.common.timeutil import NS_PER_MS, NS_PER_SEC
from repro.core.manager import OperatorManager
from repro.dcdb import Broker, CollectAgent, Pusher
from repro.dcdb.network import NetworkConditions
from repro.dcdb.plugins import SysfsPlugin
from repro.simulator import ClusterSimulator, ClusterSpec
from repro.simulator.clock import TaskScheduler

RUN_S = 60
SMOOTH = {
    "plugin": "smoother",
    "operators": {
        "sm": {
            "interval_s": 1,
            "window_s": 5,
            "delay_s": 2,
            "inputs": ["<bottomup>power"],
            "outputs": ["<bottomup>power-smooth"],
        }
    },
}


def build(latency_ms=0.0, jitter_ms=0.0, drop=0.0):
    sim = ClusterSimulator(ClusterSpec.small(nodes=1, cpus=2), seed=0xA9)
    scheduler = TaskScheduler()
    broker = Broker()
    link = NetworkConditions(
        broker,
        scheduler,
        latency_ns=int(latency_ms * NS_PER_MS),
        jitter_ns=int(jitter_ms * NS_PER_MS),
        drop_probability=drop,
        seed=5,
    )
    node = sim.node_paths[0]
    pusher = Pusher(node, link, scheduler)
    pusher.add_plugin(SysfsPlugin(sim, node))
    agent = CollectAgent("agent", broker, scheduler)
    pm = OperatorManager()
    pusher.attach_analytics(pm)
    pm.load_plugin(SMOOTH)
    scheduler.run_until(3 * NS_PER_SEC)
    am = OperatorManager()
    agent.attach_analytics(am)
    agent_cfg = {
        "plugin": "smoother",
        "operators": {
            "sm-agent": {
                **SMOOTH["operators"]["sm"],
                "outputs": ["<bottomup>power-smooth-agent"],
            }
        },
    }
    am.load_plugin(agent_cfg)
    scheduler.run_until(RUN_S * NS_PER_SEC)
    agent.flush()
    node_topic = f"{node}/power"
    inband = pusher.cache_for(f"{node}/power-smooth")
    outband = agent.cache_for(f"{node}/power-smooth-agent")
    raw_local = pusher.cache_for(node_topic)
    raw_remote = agent.cache_for(node_topic)
    return {
        "inband_count": len(inband) if inband else 0,
        "outband_count": len(outband) if outband else 0,
        "raw_local": len(raw_local),
        "raw_remote": len(raw_remote) if raw_remote else 0,
        "inband_age_s": (
            scheduler.clock.now - inband.latest().timestamp
        ) / NS_PER_SEC if inband and len(inband) else float("inf"),
        "outband_lag_s": (
            raw_local.latest().timestamp - raw_remote.latest().timestamp
        ) / NS_PER_SEC if raw_remote and len(raw_remote) else float("inf"),
        "link": link,
    }


class TestNetworkPlacementAblation:
    def test_latency_sweep(self, benchmark):
        print_header("M9 - placement under network latency")
        rows = []
        results = {}
        for latency_ms in (0, 500, 2500):
            r = build(latency_ms=latency_ms, jitter_ms=latency_ms / 5)
            results[latency_ms] = r
            rows.append(
                (
                    f"{latency_ms}ms",
                    r["inband_count"],
                    r["outband_count"],
                    r["outband_lag_s"],
                )
            )
        print_table(
            ["latency", "inband outs", "outband outs", "agent lag [s]"], rows
        )
        assert shape_check(
            "in-band operator output unaffected by latency",
            len({r["inband_count"] for r in results.values()}) == 1,
            f"{[r['inband_count'] for r in results.values()]}",
        )
        assert shape_check(
            "agent-side data staleness grows with latency",
            results[2500]["outband_lag_s"] > results[0]["outband_lag_s"],
            f"{results[0]['outband_lag_s']:.1f}s -> "
            f"{results[2500]['outband_lag_s']:.1f}s",
        )
        benchmark(lambda: None)

    def test_loss_sweep(self, benchmark):
        print_header("M9 - placement under packet loss")
        rows = []
        results = {}
        for drop in (0.0, 0.2, 0.5):
            r = build(drop=drop)
            results[drop] = r
            rows.append(
                (
                    f"{drop:.0%}",
                    r["raw_local"],
                    r["raw_remote"],
                    r["link"].loss_rate(),
                )
            )
        print_table(
            ["loss", "local readings", "remote readings", "measured loss"],
            rows,
        )
        assert shape_check(
            "local (in-band) view complete at any loss rate",
            len({r["raw_local"] for r in results.values()}) == 1,
        )
        assert shape_check(
            "remote view thins out proportionally to loss",
            results[0.5]["raw_remote"]
            < results[0.0]["raw_remote"] * 0.7,
            f"{results[0.0]['raw_remote']} -> {results[0.5]['raw_remote']}",
        )
        assert shape_check(
            "out-of-band analysis degrades gracefully (still produces "
            "output under 50% loss)",
            results[0.5]["outband_count"] > 0,
            f"{results[0.5]['outband_count']} outputs",
        )
        benchmark(lambda: None)
