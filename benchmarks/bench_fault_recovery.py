"""Chaos benchmark — outage injection, store-and-forward recovery.

Resilience is what separates an operational data pipeline from a demo:
DCDB's Pushers must survive management-network outages without losing
telemetry, and Wintermute operators must not melt down when one unit's
computation keeps failing.  This bench injects both fault classes and
measures the recovery envelope:

- **Outage & recovery**: the MQTT link goes down mid-run; refused
  publishes land in each Pusher's spill queue and are replayed with
  exponential backoff once the link returns.  Reported: data loss
  (must be zero while the outage fits the spill capacity), link
  refusals, spill counters, and time-to-recover (first second after
  the outage with every spill queue drained — must be bounded by the
  retry backoff ceiling).
- **Scalar/batch parity**: the same outage scenario with the pusher
  analytics in scalar and in batched mode must store bit-identical
  series — resilience must not fork the two execution paths.
- **Circuit breaking**: a tester operator with injected per-unit
  failures trips its breaker, is quarantined (stops consuming compute
  passes), probes with backoff, and recovers once the failure clears —
  observed through the REST breaker endpoint and the telemetry gauge.

Run standalone (``python benchmarks/bench_fault_recovery.py [--smoke]``)
or under pytest.
"""

from __future__ import annotations

import sys
from pathlib import Path

if __package__ in (None, ""):  # script invocation: make repo-root imports work
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np
import pytest

from benchmarks.harness import (
    print_header,
    print_table,
    shape_check,
    write_bench_artifact,
)
from repro.common.timeutil import NS_PER_SEC
from repro.deploy import build_deployment

OUTAGE_START_S = 10


def _spec(run_s: int, outage_end_s: int, batch=False) -> dict:
    return {
        "cluster": {"nodes": 2, "cpus": 2, "seed": 0xFA11},
        "monitoring": {"plugins": ["sysfs"], "interval_ms": 1000},
        "network": {
            # Constant latency: FIFO delivery, so a full in-order replay
            # can reach zero loss.  Jitter-induced reordering loss is the
            # subject of the out-of-order property tests, not this bench.
            "latency_ms": 5,
            "seed": 7,
            "outages": [{"start_s": OUTAGE_START_S, "end_s": outage_end_s}],
            "spill": {
                "capacity": 100_000,
                "retry_base_ms": 200,
                "retry_max_ms": 3000,
                "seed": 1,
            },
            "ingest": {"queue_capacity": 100_000},
        },
        "analytics": {
            "pushers": [
                {
                    "plugin": "smoother",
                    "operators": {
                        "sm": {
                            "interval_s": 1,
                            "window_s": 5,
                            "inputs": ["<bottomup>power"],
                            "outputs": ["<bottomup>power-smooth"],
                            "batch": batch,
                        }
                    },
                }
            ]
        },
    }


def _published_topics(dep):
    """(pusher, topic) pairs for every published sensor with traffic."""
    pairs = []
    for pusher in dep.pushers.values():
        for topic, sensor in sorted(pusher.sensors.items()):
            if sensor.publish and pusher.cache_for(topic) is not None:
                pairs.append((pusher, topic))
    return pairs


def run_outage_recovery(run_s: int, outage_end_s: int) -> dict:
    """Outage → spill → replay; measure loss and time-to-recover."""
    dep = build_deployment(_spec(run_s, outage_end_s))
    dep.run(outage_end_s)
    spilled_peak = sum(p.spill_depth for p in dep.pushers.values())

    # Time-to-recover: first whole second after the outage at which
    # every spill queue has drained.
    recover_s = None
    for t in range(outage_end_s + 1, run_s + 1):
        dep.run(1)
        if all(p.spill_depth == 0 for p in dep.pushers.values()):
            recover_s = t - outage_end_s
            break
    if recover_s is not None:
        dep.scheduler.run_until(run_s * NS_PER_SEC)
    # Let in-flight deliveries land and the agent drain them.
    dep.run(3)
    dep.agent.flush()

    # Compare only readings inside the run horizon: samples taken during
    # the drain margin are still in flight and are not losses.
    horizon_ns = run_s * NS_PER_SEC
    expected = stored = 0
    per_topic_loss = {}
    for pusher, topic in _published_topics(dep):
        local_ts = pusher.cache_for(topic).view_absolute(0, horizon_ns)
        ts, _ = dep.agent.storage.query(topic, 0, horizon_ns)
        loss = len(local_ts) - len(ts)
        expected += len(local_ts)
        stored += len(ts)
        if loss:
            per_topic_loss[topic] = loss
    state = dep.link.link_state()
    return {
        "run_s": run_s,
        "outage_s": outage_end_s - OUTAGE_START_S,
        "expected_readings": expected,
        "stored_readings": stored,
        "lost_readings": expected - stored,
        "per_topic_loss": per_topic_loss,
        "spilled_peak": spilled_peak,
        "recover_s": recover_s,
        "link_refused": state["refused"],
        "spill_buffered": sum(
            p._m_spill_buffered.value for p in dep.pushers.values()
        ),
        "spill_replayed": sum(
            p._m_spill_replayed.value for p in dep.pushers.values()
        ),
        "spill_dropped": sum(
            p._m_spill_dropped.value for p in dep.pushers.values()
        ),
        "ingest_dropped": dep.agent.ingest_dropped,
    }


def run_batch_parity(run_s: int, outage_end_s: int) -> dict:
    """Scalar vs batched analytics under the same outage: identical data."""
    series = {}
    for batch in (False, True):
        dep = build_deployment(_spec(run_s, outage_end_s, batch=batch))
        dep.run(run_s + 3)
        dep.agent.flush()
        out = {}
        for topic in dep.agent.storage.topics():
            if topic.endswith("power-smooth"):
                ts, vals = dep.agent.storage.query(topic, 0, 2**62)
                out[topic] = (np.asarray(ts), np.asarray(vals))
        series[batch] = out
    scalar, batched = series[False], series[True]
    identical = set(scalar) == set(batched) and all(
        np.array_equal(scalar[t][0], batched[t][0])
        and np.array_equal(scalar[t][1], batched[t][1])
        for t in scalar
    )
    return {
        "topics": sorted(scalar),
        "scalar_readings": sum(len(v[0]) for v in scalar.values()),
        "batch_readings": sum(len(v[0]) for v in batched.values()),
        "identical": identical,
    }


def run_breaker(run_s: int) -> dict:
    """Failing unit → quarantine → probe → recovery, via the real stack."""
    spec = {
        "cluster": {"nodes": 1, "cpus": 2, "seed": 0xB4EA},
        "monitoring": {"plugins": ["sysfs"], "interval_ms": 1000},
        "analytics": {
            "pushers": [
                {
                    "plugin": "tester",
                    "operators": {
                        "t0": {
                            "interval_s": 1,
                            "inputs": ["<bottomup>power"],
                            "outputs": ["<bottomup>probe"],
                            "breaker_threshold": 2,
                            "breaker_cooldown": 2,
                            "breaker_max_cooldown": 4,
                            "params": {
                                "queries": 1,
                                "fail_filter": "node00",
                                "fail_passes": 4,
                            },
                        }
                    },
                }
            ]
        },
    }
    dep = build_deployment(spec)
    node = dep.sim.node_paths[0]
    pusher = dep.pushers[node]
    op = dep.managers[node].operator("t0")

    quarantine_seen = False
    timeline = []
    for t in range(1, run_s + 1):
        dep.run(1)
        quarantined = op.quarantined_units()
        if quarantined:
            quarantine_seen = True
        timeline.append((t, len(quarantined), op.error_count))

    # REST observability: breaker endpoint + telemetry gauge.
    rest = pusher.rest.get(f"/analytics/units/t0{node}/breaker")
    metrics = pusher.rest.get("/metrics", format="prometheus")
    gauge_line = next(
        (
            line
            for line in metrics.body["exposition"].splitlines()
            if line.startswith("operator_quarantined_units")
        ),
        "",
    )
    snap = rest.body
    stats = op.stats()
    return {
        "unit": node,
        "quarantine_seen": quarantine_seen,
        "final_state": snap["state"],
        "trips": snap["trips"],
        "probes": snap["probes"],
        "recoveries": snap["recoveries"],
        "errors": stats["errors"],
        "computes": stats["computes"],
        "quarantined_now": stats["quarantined"],
        "gauge_line": gauge_line,
        "rest_status": rest.status,
    }


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="short run for CI (same scenario, smaller horizon)",
    )
    args = parser.parse_args(argv)
    run_s, outage_end_s = (45, 22) if args.smoke else (120, 40)

    print_header("Chaos - outage, store-and-forward, time-to-recover")
    outage = run_outage_recovery(run_s, outage_end_s)
    print_table(
        ["outage [s]", "expected", "stored", "lost", "peak spill",
         "recover [s]"],
        [(
            outage["outage_s"], outage["expected_readings"],
            outage["stored_readings"], outage["lost_readings"],
            outage["spilled_peak"], outage["recover_s"],
        )],
    )
    ok = shape_check(
        "zero data loss for an outage within spill capacity",
        outage["lost_readings"] == 0,
        f"{outage['lost_readings']} lost of {outage['expected_readings']}",
    )
    ok &= shape_check(
        "bounded time-to-recover (retry ceiling 3s + drain)",
        outage["recover_s"] is not None and outage["recover_s"] <= 5,
        f"{outage['recover_s']}s",
    )
    ok &= shape_check(
        "spill fully replayed, nothing dropped",
        outage["spill_replayed"] == outage["spill_buffered"]
        and outage["spill_dropped"] == 0,
        f"{outage['spill_replayed']}/{outage['spill_buffered']} replayed",
    )

    print_header("Chaos - scalar vs batched analytics under outage")
    parity = run_batch_parity(run_s, outage_end_s)
    print_table(
        ["topics", "scalar readings", "batch readings", "identical"],
        [(
            len(parity["topics"]), parity["scalar_readings"],
            parity["batch_readings"], parity["identical"],
        )],
    )
    ok &= shape_check(
        "scalar and batched paths store identical series",
        parity["identical"] and parity["scalar_readings"] > 0,
        f"{parity['scalar_readings']} readings",
    )

    print_header("Chaos - circuit breaker quarantine and recovery")
    breaker = run_breaker(max(20, run_s // 3))
    print_table(
        ["state", "trips", "probes", "recoveries", "errors", "computes"],
        [(
            breaker["final_state"], breaker["trips"], breaker["probes"],
            breaker["recoveries"], breaker["errors"], breaker["computes"],
        )],
    )
    ok &= shape_check(
        "failing unit was quarantined, then recovered",
        breaker["quarantine_seen"]
        and breaker["final_state"] == "closed"
        and breaker["recoveries"] >= 1,
        f"trips={breaker['trips']} recoveries={breaker['recoveries']}",
    )
    ok &= shape_check(
        "quarantine saved compute passes (errors < passes)",
        breaker["errors"] < breaker["computes"],
        f"{breaker['errors']} errors over {breaker['computes']} passes",
    )
    ok &= shape_check(
        "breaker observable over REST and /metrics",
        breaker["rest_status"] == 200
        and breaker["gauge_line"].startswith("operator_quarantined_units"),
        breaker["gauge_line"],
    )

    write_bench_artifact(
        "fault_recovery",
        {"outage": outage, "parity": parity, "breaker": breaker},
    )
    return 0 if ok else 1


class TestFaultRecoveryBench:
    def test_outage_zero_loss_and_bounded_recovery(self, benchmark):
        print_header("Chaos - outage recovery (pytest)")
        r = run_outage_recovery(45, 22)
        assert r["lost_readings"] == 0, r
        assert r["recover_s"] is not None and r["recover_s"] <= 5
        assert r["spill_dropped"] == 0
        benchmark(lambda: None)

    def test_batch_parity_under_outage(self, benchmark):
        r = run_batch_parity(45, 22)
        assert r["identical"] and r["scalar_readings"] > 0
        benchmark(lambda: None)

    def test_breaker_quarantine_recovery(self, benchmark):
        r = run_breaker(20)
        assert r["quarantine_seen"]
        assert r["final_state"] == "closed" and r["recoveries"] >= 1
        assert r["errors"] < r["computes"]
        benchmark(lambda: None)


if __name__ == "__main__":
    sys.exit(main())
