"""Micro benches M2/M3 — broker throughput and Unit System scale.

M2: in-process MQTT broker publish throughput under exact, single-level
and catch-all subscriptions — the data-plane budget between Pushers and
the Collect Agent.

M3: the Section III-C scaling claim — "in a large-scale HPC system, this
enables the instantiation of thousands of independent ODA models ...
using only a small configuration block".  Builds the full CooLMUC-3
sensor tree (148 nodes x 64 CPUs, ~29k sensors) and resolves one pattern
unit into 9472 per-CPU units.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.harness import print_header, print_table, shape_check
from repro.core.tree import SensorTree
from repro.core.units import UnitResolver
from repro.dcdb.mqtt import Broker
from repro.simulator.cluster import ClusterSpec, ClusterTopology


def publish_rate(broker: Broker, topic: str, n: int = 20_000) -> float:
    t0 = time.perf_counter_ns()
    for i in range(n):
        broker.publish(topic, float(i), i)
    return n / ((time.perf_counter_ns() - t0) / 1e9)


class TestBrokerThroughput:
    def test_publish_rates_by_subscription_kind(self, benchmark):
        print_header("M2 - broker publish throughput")
        sink = lambda t, v, ts: None
        rows = []
        rates = {}
        for kind, pattern in (
            ("no subscribers", None),
            ("exact", "/r0/c0/n0/power"),
            ("single-level +", "/r0/c0/+/power"),
            ("catch-all #", "/#"),
        ):
            broker = Broker()
            if pattern:
                broker.subscribe(pattern, sink)
            rates[kind] = publish_rate(broker, "/r0/c0/n0/power")
            rows.append((kind, rates[kind] / 1e3))
        print_table(["subscription", "k msgs/s"], rows, fmt="{:>18}")
        # 148 pushers x ~200 sensors at 1 Hz is ~30k msg/s system-wide.
        assert shape_check(
            "throughput covers a CooLMUC-3-scale deployment (>100k msg/s)",
            min(rates.values()) > 100_000,
            f"min {min(rates.values()) / 1e3:.0f}k msg/s",
        )
        broker = Broker()
        broker.subscribe("/#", sink)
        benchmark(broker.publish, "/r0/c0/n0/power", 1.0, 1)

    def test_fanout_scales_with_matching_subscribers(self, benchmark):
        print_header("M2 - fan-out cost")
        sink = lambda t, v, ts: None
        rows = []
        per_delivery = {}
        for n_subs in (1, 10, 100):
            broker = Broker()
            for _ in range(n_subs):
                broker.subscribe("/a/b", sink)
            rate = publish_rate(broker, "/a/b", n=5_000)
            per_delivery[n_subs] = 1e9 / (rate * n_subs)
            rows.append((n_subs, rate / 1e3, per_delivery[n_subs]))
        print_table(["#subs", "k msgs/s", "ns/delivery"], rows)
        assert shape_check(
            "per-delivery cost roughly constant under fan-out",
            per_delivery[100] < per_delivery[1] * 3,
            f"{per_delivery[1]:.0f} -> {per_delivery[100]:.0f} ns",
        )
        broker = Broker()
        for _ in range(100):
            broker.subscribe("/a/b", sink)
        benchmark(broker.publish, "/a/b", 1.0, 1)

    def test_non_matching_traffic_is_cheap(self, benchmark):
        """A trie-based topic tree must not scan unrelated subscriptions."""
        print_header("M2 - selective routing")
        sink = lambda t, v, ts: None
        broker = Broker()
        for i in range(1000):
            broker.subscribe(f"/rack{i:04d}/power", sink)
        rate = publish_rate(broker, "/other/topic", n=20_000)
        print(f"  non-matching publish with 1000 live subscriptions: "
              f"{rate / 1e3:.0f}k msg/s")
        assert shape_check(
            "unrelated subscriptions do not slow a publish (>200k msg/s)",
            rate > 200_000,
            f"{rate / 1e3:.0f}k msg/s",
        )
        benchmark(broker.publish, "/other/topic", 1.0, 1)


def coolmuc3_topics():
    topo = ClusterTopology(ClusterSpec.coolmuc3())
    topics = []
    for node in topo.node_paths:
        topics.append(f"{node}/power")
        topics.append(f"{node}/temp")
        for cpu in topo.cpus_of_node[node]:
            topics.append(f"{cpu}/cpu-cycles")
            topics.append(f"{cpu}/instructions")
    return topics


class TestUnitSystemScale:
    def test_tree_build_and_mass_instantiation(self, benchmark):
        print_header(
            "M3 - Unit System at CooLMUC-3 scale (one config block -> "
            "9472 units)"
        )
        topics = coolmuc3_topics()
        t0 = time.perf_counter_ns()
        tree = SensorTree.from_topics(topics)
        build_ms = (time.perf_counter_ns() - t0) / 1e6
        resolver = UnitResolver(
            ["<bottomup>cpu-cycles", "<bottomup>instructions"],
            ["<bottomup>cpi"],
        )
        t0 = time.perf_counter_ns()
        units = resolver.resolve(tree)
        resolve_ms = (time.perf_counter_ns() - t0) / 1e6
        print(f"  sensors: {len(topics):,}  tree build: {build_ms:.1f} ms")
        print(f"  units resolved: {len(units):,}  in {resolve_ms:.1f} ms")
        assert len(units) == 148 * 64
        assert shape_check(
            "thousands of units instantiate in interactive time (<2s)",
            build_ms + resolve_ms < 2000,
            f"{build_ms + resolve_ms:.0f} ms total",
        )
        benchmark(resolver.resolve, tree)

    def test_node_level_units_collect_cpu_fanin(self, benchmark):
        """148 node units each binding 128 CPU counters resolve fast."""
        tree = SensorTree.from_topics(coolmuc3_topics())
        resolver = UnitResolver(
            ["<bottomup, filter cpu>cpu-cycles", "<bottomup-1>power"],
            ["<bottomup-1>healthy"],
        )
        units = resolver.resolve(tree)
        assert len(units) == 148
        assert all(len(u.inputs) == 65 for u in units)
        benchmark(resolver.resolve, tree)
