"""Tiered storage benchmark — parity, crash replay, rollups, latency.

Production DCDB persists readings in Cassandra with age-based
downsampling; the reproduction's :class:`TieredStorageBackend` seals
in-memory series into on-disk columnar segments and compacts old raw
segments into 10s/1min rollups.  A disk tier is only acceptable if it
is *invisible* to readers and loses nothing across restarts, so this
bench measures exactly those properties:

- **Tier identity**: the same reading stream (including out-of-order
  offenders) driven into a memory-only backend and a tiered backend
  that flushes aggressively must answer every range query
  bit-identically, with hits spanning both tiers.
- **Restart replay**: seal everything, reopen the segment directory in
  a fresh backend (the crash-recovery path) and compare every series —
  zero lost readings, and the seal boundary still refuses stale
  inserts after the restart.
- **Rollup compaction**: age raw segments through the 10s and 1min
  levels; report the compression ratio and the aggregate mass error
  (``sum(mean x count)`` vs the raw sum — must be ~0: the rollups
  redistribute readings, they must not invent or lose signal).
- **Query/insert throughput**: memory-only vs tiered on identical
  workloads, so the disk tier's overhead is a number, not a feeling.

Run standalone (``python benchmarks/bench_storage_tiers.py [--smoke]``)
or under pytest.
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import time
from pathlib import Path

if __package__ in (None, ""):  # script invocation: make repo-root imports work
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np

from benchmarks.harness import (
    print_header,
    print_table,
    shape_check,
    write_bench_artifact,
)
from repro.common.timeutil import NS_PER_SEC
from repro.dcdb.segments import TieredStorageBackend
from repro.dcdb.storage import StorageBackend

CONFIG = {
    "identity": {"topics": 8, "seconds": 30, "ooo_every": 13},
    "rollup": {"topics": 3, "seconds": 1800, "flush_chunks": 6},
    "throughput": {"topics": 4, "readings": 25_000},
}


def _stream(topics: int, seconds: int, ooo_every: int, seed: int = 0xD15C):
    """Deterministic reading stream with periodic out-of-order offenders.

    Yields (topic, timestamps, values) batches; every ``ooo_every``-th
    batch carries one timestamp rewound behind the previous batch, which
    every tier must refuse identically.
    """
    rng = np.random.default_rng(seed)
    names = [f"/rack00/node{i:02d}/power" for i in range(topics)]
    for sec in range(seconds):
        for t, topic in enumerate(names):
            base = sec * NS_PER_SEC + t * 1000
            ts = base + np.arange(0, 4, dtype=np.int64) * (NS_PER_SEC // 4)
            val = rng.normal(100.0, 5.0, size=4)
            if ooo_every and sec and sec % ooo_every == 0 and t == 0:
                ts = ts.copy()
                ts[1] -= 2 * NS_PER_SEC  # rewind: must be dropped
            yield topic, ts, val


def run_identity(topics: int, seconds: int, ooo_every: int) -> dict:
    """Memory-only vs aggressively-flushing tiered: bit-identical?"""
    tmp = tempfile.mkdtemp(prefix="bench-tiers-")
    try:
        mem = StorageBackend()
        tiered = TieredStorageBackend(tmp, flush_mb=64)
        for i, (topic, ts, val) in enumerate(
            _stream(topics, seconds, ooo_every)
        ):
            if i % 2:
                mem.insert_batch(topic, ts, val)
                tiered.insert_batch(topic, ts, val)
            else:
                for t, v in zip(ts, val):
                    mem.insert(topic, int(t), float(v))
                    tiered.insert(topic, int(t), float(v))
            # Seal mid-stream so queries span segments AND memory.
            if i and i % (topics * (seconds // 3)) == 0:
                tiered.flush(int(ts[-1]))
        identical = True
        horizon = seconds * NS_PER_SEC
        windows = [(0, 2**62), (horizon // 4, 3 * horizon // 4)]
        for topic in mem.topics():
            for lo, hi in windows:
                m_ts, m_val = mem.query(topic, lo, hi)
                t_ts, t_val = tiered.query(topic, lo, hi)
                if not (
                    np.array_equal(m_ts, t_ts)
                    and np.array_equal(m_val, t_val)
                ):
                    identical = False
        return {
            "topics": len(mem.topics()),
            "readings": mem.total_readings(),
            "ooo_dropped_memory": mem.ooo_dropped,
            "ooo_dropped_tiered": tiered.ooo_dropped,
            "segments": len(tiered.store.segments),
            "segment_points": tiered.store.total_points(),
            "tier_hits": dict(tiered.tier_hits),
            "identical": identical,
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def run_restart_replay(topics: int, seconds: int) -> dict:
    """Flush everything, reopen the directory, compare every series."""
    tmp = tempfile.mkdtemp(prefix="bench-tiers-")
    try:
        first = TieredStorageBackend(tmp, flush_mb=64)
        last_ts = 0
        for topic, ts, val in _stream(topics, seconds, ooo_every=0):
            first.insert_batch(topic, ts, val)
            last_ts = max(last_ts, int(ts[-1]))
        mid = seconds * NS_PER_SEC // 2
        first.flush(mid)  # two generations of segments
        for topic, ts, val in _stream(topics, seconds, ooo_every=0,
                                      seed=0xB007):
            first.insert_batch(topic, ts + mid + NS_PER_SEC, val)
            last_ts = max(last_ts, int(ts[-1]) + mid + NS_PER_SEC)
        flushed = first.total_readings()
        expected = {
            topic: first.query(topic, 0, 2**62) for topic in first.topics()
        }
        first.flush(last_ts)

        # "Restart": a brand-new backend over the same directory.
        second = TieredStorageBackend(tmp, flush_mb=64)
        mismatched = 0
        lost = flushed - second.total_readings()
        for topic, (e_ts, e_val) in expected.items():
            g_ts, g_val = second.query(topic, 0, 2**62)
            if not (
                np.array_equal(e_ts, g_ts) and np.array_equal(e_val, g_val)
            ):
                mismatched += 1
        probe = first.topics()[0]
        before = second.count(probe)
        second.insert(probe, last_ts + NS_PER_SEC, 1.0)
        insert_ok = second.count(probe) == before + 1
        second.insert(probe, 0, 1.0)  # stale replay: must be refused
        ooo_refused = second.ooo_dropped == 1
        return {
            "flushed_readings": flushed,
            "replayed_readings": second.replayed_points,
            "lost_readings": lost,
            "mismatched_series": mismatched,
            "segments": len(second.store.segments),
            "post_restart_insert_ok": insert_ok,
            "post_restart_ooo_refused": ooo_refused,
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def run_rollup(topics: int, seconds: int, flush_chunks: int) -> dict:
    """Age raw segments into 10s and 1min rollups; check mass."""
    tmp = tempfile.mkdtemp(prefix="bench-tiers-")
    try:
        backend = TieredStorageBackend(
            tmp,
            flush_mb=64,
            rollup_after_ns=(seconds // 6) * NS_PER_SEC,
            rollup_minute_after_ns=(seconds // 3) * NS_PER_SEC,
        )
        rng = np.random.default_rng(0x5EED)
        names = [f"/rack00/node{i:02d}/power" for i in range(topics)]
        raw_sum = 0.0
        raw_readings = 0
        chunk = seconds // flush_chunks
        for c in range(flush_chunks):
            for topic in names:
                ts = (
                    np.arange(c * chunk, (c + 1) * chunk, dtype=np.int64)
                    * NS_PER_SEC
                )
                val = rng.normal(200.0, 20.0, size=len(ts))
                backend.insert_batch(topic, ts, val)
                raw_sum += float(val.sum())
                raw_readings += len(ts)
            backend.flush((c + 1) * chunk * NS_PER_SEC)
        backend.maintain(seconds * NS_PER_SEC)

        represented = 0
        mass = 0.0
        for seg in backend.store.segments:
            for topic in seg.series:
                cols = seg.topic_columns(topic, seg.min_ts, seg.max_ts)
                if seg.level:
                    represented += int(cols["count"].sum())
                    mass += float((cols["mean"] * cols["count"]).sum())
                else:
                    represented += len(cols["ts"])
                    mass += float(cols["val"].sum())
        stored = backend.store.total_points()
        levels = sorted({seg.level for seg in backend.store.segments})
        return {
            "raw_readings": raw_readings,
            "represented_readings": represented,
            "stored_points": stored,
            "compression": raw_readings / stored if stored else 0.0,
            "levels": levels,
            "mass_error": abs(mass - raw_sum) / abs(raw_sum),
            "disk_bytes": backend.disk_bytes(),
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def run_throughput(topics: int, readings: int) -> dict:
    """Insert and full-window query rates, memory-only vs tiered."""
    names = [f"/rack00/node{i:02d}/power" for i in range(topics)]
    per_topic = readings // topics
    ts = np.arange(per_topic, dtype=np.int64) * (NS_PER_SEC // 10)
    rng = np.random.default_rng(0xBE7)
    vals = {t: rng.normal(100.0, 5.0, size=per_topic) for t in names}

    def _drive(backend) -> dict:
        t0 = time.perf_counter()
        for topic in names:
            # Chunked batches: the realistic drain-interval granularity.
            for lo in range(0, per_topic, 1000):
                backend.insert_batch(
                    topic, ts[lo : lo + 1000], vals[topic][lo : lo + 1000]
                )
        insert_s = time.perf_counter() - t0
        flush = getattr(backend, "flush", None)
        if flush is not None:
            flush(int(ts[-1]))  # worst case for the tiered reader
        t0 = time.perf_counter()
        window = 0
        for topic in names:
            q_ts, _ = backend.query(topic, 0, 2**62)
            window = max(window, len(q_ts))
        query_s = time.perf_counter() - t0
        return {
            "insert_per_s": (topics * per_topic) / insert_s,
            "query_ms": query_s * 1000 / topics,
            "window_readings": window,
        }

    tmp = tempfile.mkdtemp(prefix="bench-tiers-")
    try:
        return {
            "memory": _drive(StorageBackend()),
            "tiered": _drive(TieredStorageBackend(tmp, flush_mb=64)),
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="short run for CI (same scenarios, smaller horizons)",
    )
    args = parser.parse_args(argv)
    cfg = CONFIG
    if args.smoke:
        cfg = {
            "identity": {"topics": 4, "seconds": 12, "ooo_every": 5},
            "rollup": {"topics": 2, "seconds": 600, "flush_chunks": 4},
            "throughput": {"topics": 2, "readings": 5_000},
        }

    print_header("Storage tiers - memory vs tiered identity")
    identity = run_identity(**cfg["identity"])
    print_table(
        ["topics", "readings", "segments", "ooo dropped", "identical"],
        [(
            identity["topics"], identity["readings"],
            identity["segments"], identity["ooo_dropped_tiered"],
            identity["identical"],
        )],
    )
    ok = shape_check(
        "tiered query results bit-identical to memory-only",
        identity["identical"],
    )
    ok &= shape_check(
        "ordering drops identical across backends",
        identity["ooo_dropped_memory"] == identity["ooo_dropped_tiered"]
        and identity["ooo_dropped_memory"] > 0,
        f"{identity['ooo_dropped_tiered']} dropped",
    )
    ok &= shape_check(
        "queries spanned both tiers",
        identity["tier_hits"]["memory"] > 0
        and identity["tier_hits"]["segment"] > 0,
        str(identity["tier_hits"]),
    )
    assert identity["identical"], "tier identity violated"

    print_header("Storage tiers - restart replay (crash recovery)")
    replay = run_restart_replay(
        cfg["identity"]["topics"], cfg["identity"]["seconds"]
    )
    print_table(
        ["flushed", "replayed", "lost", "mismatched", "segments"],
        [(
            replay["flushed_readings"], replay["replayed_readings"],
            replay["lost_readings"], replay["mismatched_series"],
            replay["segments"],
        )],
    )
    ok &= shape_check(
        "restart replay loses zero readings",
        replay["lost_readings"] == 0 and replay["mismatched_series"] == 0,
        f"{replay['lost_readings']} lost",
    )
    ok &= shape_check(
        "seal boundary survives the restart",
        replay["post_restart_insert_ok"]
        and replay["post_restart_ooo_refused"],
    )
    assert replay["lost_readings"] == 0, "restart replay lost readings"

    print_header("Storage tiers - rollup compaction")
    rollup = run_rollup(**cfg["rollup"])
    print_table(
        ["raw", "represented", "stored", "compression", "mass err"],
        [(
            rollup["raw_readings"], rollup["represented_readings"],
            rollup["stored_points"], round(rollup["compression"], 2),
            f"{rollup['mass_error']:.2e}",
        )],
    )
    ok &= shape_check(
        "every raw reading represented in some tier",
        rollup["represented_readings"] == rollup["raw_readings"],
    )
    ok &= shape_check(
        "rollups preserve aggregate mass",
        rollup["mass_error"] < 1e-12,
        f"{rollup['mass_error']:.2e}",
    )
    ok &= shape_check(
        "compaction reached the 1min level and compressed",
        max(rollup["levels"]) == 2 and rollup["compression"] > 2,
        f"levels {rollup['levels']}, {rollup['compression']:.1f}x",
    )

    print_header("Storage tiers - throughput (memory vs tiered)")
    throughput = run_throughput(**cfg["throughput"])
    print_table(
        ["backend", "insert/s", "query ms", "window"],
        [
            (
                name,
                f"{r['insert_per_s']:,.0f}",
                f"{r['query_ms']:.3f}",
                r["window_readings"],
            )
            for name, r in throughput.items()
        ],
    )
    ok &= shape_check(
        "tiered reads the same window the memory backend does",
        throughput["tiered"]["window_readings"]
        == throughput["memory"]["window_readings"],
    )

    write_bench_artifact(
        "storage_tiers",
        {
            "identity": identity,
            "restart_replay": replay,
            "rollup": rollup,
            "throughput": throughput,
        },
        config=cfg,
    )
    return 0 if ok else 1


class TestStorageTiersBench:
    def test_tier_identity(self, benchmark):
        r = run_identity(topics=4, seconds=12, ooo_every=5)
        assert r["identical"], r
        assert r["ooo_dropped_memory"] == r["ooo_dropped_tiered"] > 0
        benchmark(lambda: None)

    def test_restart_replay_zero_loss(self, benchmark):
        r = run_restart_replay(topics=4, seconds=12)
        assert r["lost_readings"] == 0 and r["mismatched_series"] == 0, r
        assert r["post_restart_insert_ok"] and r["post_restart_ooo_refused"]
        benchmark(lambda: None)

    def test_rollup_mass_preserved(self, benchmark):
        r = run_rollup(topics=2, seconds=600, flush_chunks=4)
        assert r["represented_readings"] == r["raw_readings"], r
        assert r["mass_error"] < 1e-12
        assert max(r["levels"]) == 2
        benchmark(lambda: None)


if __name__ == "__main__":
    sys.exit(main())
