"""Figure 7 — per-job CPI decile analysis (Section VI-C).

Paper setup: a two-stage pipeline re-implementing PerSyst on Wintermute.
Stage 1 (``perfmetrics`` in the Pushers) derives per-core CPI at 1 s;
stage 2 (``persyst`` in the Collect Agent) instantiates one unit per
running job and outputs the deciles of the job's per-core CPI
distribution.  Four jobs run LAMMPS, AMG, Kripke and Nekbone on 32 nodes
(2048 cores) each; Fig 7 plots deciles 0, 2, 5, 8 and 10 over time.

Scaling substitution: 2 nodes x 16 cores per job (64 samples per decile
instead of 2048) on the simulated cluster.

Paper-shape expectations checked:
- LAMMPS: low CPI (~1.6 in the paper) with minimal decile spread;
- AMG: low bulk CPI but deciles 8/10 spike to ~10x the median
  (network-bound upper tail);
- Kripke: iterations clearly separable — the decile series swings
  periodically (strong autocorrelation at the iteration period);
- Nekbone: compute-bound first half, then the spread across deciles
  blows up as the working set exceeds the HBM capacity.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.harness import (
    Deployment,
    print_header,
    print_table,
    shape_check,
)
from repro.common.timeutil import NS_PER_SEC
from repro.simulator import ClusterSpec
from repro.simulator.scheduler import Job
from repro.simulator.workload import KripkeProfile

APPS = ("lammps", "amg", "kripke", "nekbone")
RUN_S = 430.0
JOB_START_S = 4.0
NODES_PER_JOB = 2
DECILES = (0, 2, 5, 8, 10)


@pytest.fixture(scope="module")
def experiment():
    dep = Deployment(
        ClusterSpec.small(nodes=len(APPS) * NODES_PER_JOB, cpus=16),
        seed=0xF7,
        monitoring=("perfevent",),
        perfevent_counters=("cpu-cycles", "instructions"),
    )
    nodes = dep.sim.node_paths
    for i, app in enumerate(APPS):
        dep.sim.scheduler.add_job(
            Job(
                f"{app}-job",
                app,
                tuple(nodes[i * NODES_PER_JOB : (i + 1) * NODES_PER_JOB]),
                int(JOB_START_S * NS_PER_SEC),
                int((JOB_START_S + RUN_S) * NS_PER_SEC),
            )
        )
    # Stage 1: per-core CPI in every pusher.
    for node in nodes:
        dep.managers[node].load_plugin(
            {
                "plugin": "perfmetrics",
                "operators": {
                    "cpi": {
                        "interval_s": 1,
                        "window_s": 2,
                        "delay_s": 2,
                        "inputs": [
                            "<bottomup>cpu-cycles",
                            "<bottomup>instructions",
                        ],
                        "outputs": ["<bottomup>cpi"],
                    }
                },
            }
        )
    # Let stage-1 outputs appear so stage 2 can resolve them.
    dep.run(6.0)
    dep.agent_manager.load_plugin(
        {
            "plugin": "persyst",
            "operators": {
                "job-cpi": {
                    "interval_s": 1,
                    "window_s": 3,
                    "delay_s": 2,
                    "inputs": ["<bottomup, filter cpu>cpi"],
                }
            },
        }
    )
    dep.run(JOB_START_S + RUN_S - 4.0)
    series = {}
    for app in APPS:
        series[app] = {
            d: dep.series(f"/jobs/{app}-job/decile{d}") for d in DECILES
        }
    return dep, series


def summarize(app, app_series):
    d5_ts, d5 = app_series[5]
    rows = []
    for d in DECILES:
        _, values = app_series[d]
        rows.append(
            (
                f"decile{d}",
                float(np.median(values)),
                float(values.min()),
                float(values.max()),
            )
        )
    print(f"\n{app.upper()} - CPI decile summary "
          f"({len(d5)} time points):")
    print_table(["series", "median", "min", "max"], rows)
    return rows


class TestFig7:
    def test_pipeline_produces_all_series(self, experiment, benchmark):
        dep, series = experiment
        print_header("Figure 7 - per-job CPI deciles (pipeline output)")
        for app in APPS:
            for d in DECILES:
                ts, values = series[app][d]
                assert len(values) > RUN_S * 0.8, (
                    f"{app} decile{d} series too short: {len(values)}"
                )
        print(
            "  pipeline: perfmetrics (8 pushers, 128 CPI units) -> "
            "persyst (collect agent, 1 unit/job)"
        )
        print(f"  {len(APPS)} jobs x {len(DECILES)} deciles, "
              f"{len(series[APPS[0]][5][1])} samples each")
        op = dep.agent_manager.operator("job-cpi")
        benchmark(op.compute, dep.now)

    def test_pipeline_batch_vs_scalar_path(self, experiment):
        """The persyst stage (2048-sample gather per job in the paper)
        is where the batched data plane pays off: report both paths on
        the finished deployment.  The batch path must not be slower."""
        import time

        dep, _ = experiment
        op = dep.agent_manager.operator("job-cpi")
        assert op.batch_enabled()  # default batch: "auto" + kernel

        def time_pass(reps=50):
            t0 = time.perf_counter_ns()
            for _ in range(reps):
                op.compute(dep.now)
            return (time.perf_counter_ns() - t0) / reps

        batch_ns = time_pass()
        op.config.batch = False
        try:
            scalar_ns = time_pass()
        finally:
            op.config.batch = "auto"
        print_table(
            ["path", "us/pass"],
            [("scalar", scalar_ns / 1e3), ("batch", batch_ns / 1e3)],
        )
        assert shape_check(
            "persyst batch path not slower than scalar",
            batch_ns <= scalar_ns,
            f"{scalar_ns / 1e3:.0f} us -> {batch_ns / 1e3:.0f} us "
            f"({scalar_ns / batch_ns:.1f}x)",
        )

    def test_lammps_low_and_tight(self, experiment, benchmark):
        dep, series = experiment
        summarize("lammps", series["lammps"])
        _, d0 = series["lammps"][0]
        _, d5 = series["lammps"][5]
        _, d10 = series["lammps"][10]
        n = min(len(d0), len(d5), len(d10))
        med = float(np.median(d5))
        spread = float(np.median(d10[:n] - d0[:n]))
        assert shape_check(
            "LAMMPS median CPI low (paper ~1.6)", 1.0 < med < 2.5,
            f"median {med:.2f}",
        )
        assert shape_check(
            "LAMMPS decile spread minimal", spread < 1.5,
            f"median d10-d0 = {spread:.2f}",
        )
        benchmark(np.median, d5)

    def test_amg_upper_decile_spikes(self, experiment, benchmark):
        dep, series = experiment
        summarize("amg", series["amg"])
        _, d5 = series["amg"][5]
        _, d8 = series["amg"][8]
        _, d10 = series["amg"][10]
        med5 = float(np.median(d5))
        peak10 = float(np.percentile(d10, 95))
        assert shape_check(
            "AMG bulk CPI stays low", med5 < 5.0, f"median d5 {med5:.2f}"
        )
        assert shape_check(
            "AMG deciles 8/10 spike high (paper: up to ~30)",
            peak10 > 15.0 and float(np.percentile(d8, 95)) > 8.0,
            f"p95(d10) {peak10:.1f}",
        )
        assert shape_check(
            "AMG spikes are an upper-tail phenomenon",
            peak10 > 4.0 * med5,
            f"{peak10:.1f} vs median {med5:.2f}",
        )
        benchmark(np.percentile, d10, 95)

    def test_kripke_iterations_separable(self, experiment, benchmark):
        dep, series = experiment
        summarize("kripke", series["kripke"])
        _, d5 = series["kripke"][5]
        swing = float(d5.max() - d5.min())
        lag = int(KripkeProfile().instance_cls.ITERATION_S)
        a = d5[:-lag] - d5[:-lag].mean()
        b = d5[lag:] - d5[lag:].mean()
        autocorr = float(
            (a @ b) / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12)
        )
        assert shape_check(
            "Kripke CPI swings across iterations", swing > 5.0,
            f"swing {swing:.1f}",
        )
        assert shape_check(
            "Kripke iterations periodic (autocorr at iteration lag)",
            autocorr > 0.5,
            f"autocorr@{lag}s = {autocorr:.2f}",
        )
        benchmark(np.corrcoef, a, b)

    def test_nekbone_second_half_blowup(self, experiment, benchmark):
        dep, series = experiment
        summarize("nekbone", series["nekbone"])
        ts, d5 = series["nekbone"][5]
        _, d10 = series["nekbone"][10]
        n = min(len(d5), len(d10))
        spread = d10[:n] - d5[:n]
        half = n // 2
        first, second = float(np.mean(spread[:half])), float(
            np.mean(spread[half:])
        )
        assert shape_check(
            "Nekbone first half compute-bound (tight deciles)",
            first < 2.0,
            f"mean d10-d5 = {first:.2f}",
        )
        assert shape_check(
            "Nekbone spread blows up in the second half (paper: >=20% of "
            "cores affected past the 16GB HBM)",
            second > 3.0 * max(first, 0.2),
            f"{second:.2f} vs {first:.2f}",
        )
        benchmark(np.mean, spread)
