"""Seeded defect: S009 — callbacks invoked while holding their guard."""

import threading


class Emitter:
    def __init__(self):
        self._lock = threading.Lock()
        self._listeners = []

    def subscribe(self, fn):
        with self._lock:
            self._listeners.append(fn)

    def emit(self, event):
        with self._lock:
            for listener in self._listeners:
                listener(event)  # user code runs under our lock
