"""Seeded defect: S006 — static lock-order cycle (potential deadlock)."""

import threading


class Transfer:
    def __init__(self):
        self._in_lock = threading.Lock()
        self._out_lock = threading.Lock()

    def inbound(self):
        with self._in_lock:
            with self._out_lock:
                pass

    def outbound(self):
        with self._out_lock:  # opposite order: classic ABBA deadlock
            with self._in_lock:
                pass
