"""Seeded defect: S003 — claimed attribute accessed under the wrong lock."""

import threading


class Ledger:
    def __init__(self):
        self._balance_lock = threading.Lock()
        self._audit_lock = threading.Lock()
        self.balance = 0

    def credit(self, amount):
        with self._balance_lock:
            self.balance += amount

    def debit(self, amount):
        with self._balance_lock:
            self.balance -= amount

    def audit(self):
        with self._audit_lock:
            return self.balance  # holds a lock — just not balance's
