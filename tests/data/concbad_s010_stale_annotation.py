"""Seeded defect: S010 — guarded-by annotation naming an unknown lock."""

import threading


class Tally:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _register_lock

    def bump(self):
        with self._lock:
            self.hits += 1
