"""Seeded defect: S008 — lock created per call instead of per instance."""

import threading


class Meter:
    def __init__(self):
        self.value = 0

    def record(self, amount):
        lock = threading.Lock()  # every caller gets a private lock
        with lock:
            self.value += amount
