"""Seeded defect: S007 — object published, then mutated without its guard."""

import threading


class Mailbox:
    def __init__(self):
        self._lock = threading.Lock()
        self._inbox = []

    def deliver(self, payload):
        letter = {"payload": payload}
        with self._lock:
            self._inbox.append(letter)
        letter["read"] = False  # a drain() may already hold the letter

    def drain(self):
        with self._lock:
            items = list(self._inbox)
            self._inbox.clear()
        return items
