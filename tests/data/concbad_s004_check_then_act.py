"""Seeded defect: S004 — check-then-act on a claimed attribute."""

import threading


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value

    def put_if_absent(self, key, value):
        if key not in self._entries:  # the check runs outside the lock
            with self._lock:
                self._entries[key] = value  # two racers both get here
