"""Seeded defect: S001 — write to a claimed attribute without its guard."""

import threading


class Stats:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        with self._lock:
            self.count += 1

    def bump_again(self):
        with self._lock:
            self.count += 2

    def racy_reset(self):
        self.count = 0  # rebinds the guarded counter with no lock held
