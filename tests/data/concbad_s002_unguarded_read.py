"""Seeded defect: S002 — read of a claimed attribute without its guard."""

import threading


class Queue:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    def push(self, item):
        with self._lock:
            self._items.append(item)

    def pop(self):
        with self._lock:
            return self._items.pop()

    def depth(self):
        return len(self._items)  # racy: len during a concurrent push
