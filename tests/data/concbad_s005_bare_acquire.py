"""Seeded defect: S005 — acquire() without with / try-finally."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def add(self, amount):
        self._lock.acquire()
        self.total += amount  # an exception here leaks the lock forever
        self._lock.release()
