"""Tests for the sensor tree (Section III-A)."""

import pytest

from repro.common.errors import TopicError
from repro.core.tree import SensorTree


class TestConstruction:
    def test_from_topics(self, fig2_tree):
        assert fig2_tree.max_level == 3
        # 2 root sensors + 12 chassis * 2 + 48 servers * 1 + 96 cpus * 2
        assert fig2_tree.n_sensors == 2 + 24 + 48 + 192

    def test_add_sensor_creates_components(self):
        tree = SensorTree()
        tree.add_sensor("/a/b/c/power")
        assert tree.node("/a") is not None
        assert tree.node("/a/b/c").sensors == {"power": "/a/b/c/power"}

    def test_root_sensors(self):
        tree = SensorTree.from_topics(["/db-uptime"])
        assert tree.root.sensors == {"db-uptime": "/db-uptime"}
        assert tree.max_level == -1

    def test_duplicate_sensor_is_idempotent(self):
        tree = SensorTree()
        tree.add_sensor("/a/power")
        tree.add_sensor("/a/power")
        assert tree.n_sensors == 1

    def test_sensor_name_clashing_with_component_rejected(self):
        tree = SensorTree()
        tree.add_sensor("/a/b/power")
        with pytest.raises(TopicError):
            tree.add_sensor("/a/b")  # 'b' is a component of /a

    def test_add_component_without_sensors(self):
        tree = SensorTree()
        tree.add_component("/a/b")
        assert tree.node("/a/b").sensors == {}
        assert tree.max_level == 1


class TestLevels:
    def test_levels_are_zero_based_below_root(self, fig2_tree):
        assert fig2_tree.node("/r01").level == 0
        assert fig2_tree.node("/r01/c01").level == 1
        assert fig2_tree.node("/r01/c01/s01").level == 2
        assert fig2_tree.node("/r01/c01/s01/cpu0").level == 3

    def test_nodes_at_level(self, fig2_tree):
        assert len(fig2_tree.nodes_at_level(0)) == 4  # racks
        assert len(fig2_tree.nodes_at_level(1)) == 12  # chassis
        assert len(fig2_tree.nodes_at_level(2)) == 48  # servers
        assert len(fig2_tree.nodes_at_level(3)) == 96  # cpus
        assert fig2_tree.nodes_at_level(9) == []

    def test_resolve_level_topdown(self, fig2_tree):
        assert fig2_tree.resolve_level("topdown", 0) == 0
        assert fig2_tree.resolve_level("topdown", 3) == 3

    def test_resolve_level_bottomup(self, fig2_tree):
        assert fig2_tree.resolve_level("bottomup", 0) == 3
        assert fig2_tree.resolve_level("bottomup", 1) == 2

    def test_resolve_level_out_of_range(self, fig2_tree):
        with pytest.raises(TopicError):
            fig2_tree.resolve_level("topdown", 4)
        with pytest.raises(TopicError):
            fig2_tree.resolve_level("bottomup", 4)

    def test_resolve_level_bad_anchor(self, fig2_tree):
        with pytest.raises(TopicError):
            fig2_tree.resolve_level("sideways", 0)


class TestLookups:
    def test_node_by_path(self, fig2_tree):
        assert fig2_tree.node("/r01/c02").name == "c02"
        assert fig2_tree.node("r01/c02/") is not None  # tolerant form
        assert fig2_tree.node("/nope") is None
        assert fig2_tree.node("/") is fig2_tree.root

    def test_has_sensor(self, fig2_tree):
        assert fig2_tree.has_sensor("/r01/c01/power")
        assert fig2_tree.has_sensor("/db-uptime")
        assert not fig2_tree.has_sensor("/r01/c01/bogus")

    def test_all_sensor_topics_count(self, fig2_tree):
        topics = fig2_tree.all_sensor_topics()
        assert len(topics) == fig2_tree.n_sensors
        assert len(set(topics)) == len(topics)

    def test_remove_sensor(self, fig2_tree):
        assert fig2_tree.remove_sensor("/r01/c01/power")
        assert not fig2_tree.has_sensor("/r01/c01/power")
        assert not fig2_tree.remove_sensor("/r01/c01/power")

    def test_sensor_topic_lookup(self, fig2_tree):
        node = fig2_tree.node("/r01/c01")
        assert node.sensor_topic("power") == "/r01/c01/power"
        assert node.sensor_topic("bogus") is None


class TestTraversal:
    def test_iter_subtree(self, fig2_tree):
        sub = list(fig2_tree.node("/r01/c01").iter_subtree())
        # chassis + 4 servers + 8 cpus
        assert len(sub) == 13

    def test_ancestors(self, fig2_tree):
        cpu = fig2_tree.node("/r01/c01/s01/cpu0")
        paths = [n.path for n in cpu.ancestors()]
        assert paths == ["/r01/c01/s01", "/r01/c01", "/r01"]

    def test_hierarchically_related(self, fig2_tree):
        a = fig2_tree.node("/r01/c01")
        b = fig2_tree.node("/r01/c01/s02/cpu1")
        c = fig2_tree.node("/r02")
        assert fig2_tree.hierarchically_related(a, b)
        assert fig2_tree.hierarchically_related(b, a)
        assert fig2_tree.hierarchically_related(a, a)
        assert not fig2_tree.hierarchically_related(a, c)

    def test_siblings_not_related(self, fig2_tree):
        a = fig2_tree.node("/r01/c01/s01")
        b = fig2_tree.node("/r01/c01/s02")
        assert not fig2_tree.hierarchically_related(a, b)
