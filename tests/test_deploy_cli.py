"""Tests for declarative deployments, the CLI, the wall-clock driver and
the terminal plotting helpers."""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.common.errors import ConfigError
from repro.common.textplot import ascii_plot, sparkline
from repro.common.timeutil import NS_PER_SEC
from repro.deploy import Deployment, build_deployment, load_deployment
from repro.runtime import WallClockDriver
from repro.simulator import ClusterSpec
from repro.simulator.clock import TaskScheduler


BASIC_SPEC = {
    "cluster": {"nodes": 2, "cpus": 2, "seed": 3},
    "monitoring": {"plugins": ["sysfs"], "interval_ms": 1000},
    "jobs": [{"app": "hpl", "nodes": 1, "start_s": 1, "end_s": 40}],
    "analytics": {
        "pushers": [
            {
                "plugin": "aggregator",
                "operators": {
                    "avgp": {
                        "interval_s": 1,
                        "window_s": 5,
                        "inputs": ["<bottomup>power"],
                        "outputs": ["<bottomup>avg-power"],
                        "params": {"op": "mean"},
                    }
                },
            }
        ],
        "agent": [],
    },
}


class TestDeployment:
    def test_programmatic_build_and_run(self):
        dep = Deployment(ClusterSpec.small(nodes=2, cpus=2), seed=1)
        dep.run(5)
        node = dep.sim.node_paths[0]
        ts, values = dep.series(f"{node}/power")
        assert len(values) >= 5

    def test_unknown_monitoring_plugin_rejected(self):
        with pytest.raises(ConfigError):
            Deployment(
                ClusterSpec.small(nodes=1, cpus=1), monitoring=("bogus",)
            )

    def test_latest_prefers_cache_then_storage(self):
        dep = Deployment(ClusterSpec.small(nodes=1, cpus=1))
        dep.run(3)
        node = dep.sim.node_paths[0]
        reading = dep.latest(f"{node}/power")
        assert reading is not None
        assert reading.timestamp == dep.now

    def test_tester_monitoring(self):
        dep = Deployment(
            ClusterSpec.small(nodes=1, cpus=1),
            monitoring=("tester",),
            tester_sensors=7,
        )
        dep.run(2)
        node = dep.sim.node_paths[0]
        assert len(dep.pushers[node].sensor_topics()) == 7


class TestBuildDeployment:
    def test_from_spec(self):
        dep = build_deployment(BASIC_SPEC)
        dep.run(10)
        node = dep.sim.node_paths[0]
        assert dep.latest(f"{node}/avg-power") is not None
        assert len(dep.sim.scheduler.all_jobs()) == 1

    def test_missing_cluster_section(self):
        with pytest.raises(ConfigError):
            build_deployment({})

    def test_explicit_job_nodes(self):
        spec = json.loads(json.dumps(BASIC_SPEC))
        spec["jobs"] = [
            {
                "app": "lammps",
                "id": "explicit",
                "node_paths": ["/rack00/chassis00/node01"],
                "start_s": 0,
                "end_s": 10,
            }
        ]
        dep = build_deployment(spec)
        job = dep.sim.scheduler.job("explicit")
        assert job is not None
        assert job.node_paths == ("/rack00/chassis00/node01",)

    def test_grid_cluster_spec(self):
        dep = build_deployment(
            {
                "cluster": {
                    "racks": 2,
                    "chassis_per_rack": 1,
                    "nodes_per_chassis": 2,
                    "cpus": 2,
                }
            }
        )
        assert len(dep.sim.node_paths) == 4

    def test_coolmuc3_preset(self):
        dep = build_deployment({"cluster": {"preset": "coolmuc3"}})
        assert len(dep.sim.node_paths) == 148

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "dep.json"
        path.write_text(json.dumps(BASIC_SPEC))
        dep = load_deployment(str(path))
        assert len(dep.pushers) == 2

    def test_job_operator_block_resolves_after_traffic(self):
        spec = json.loads(json.dumps(BASIC_SPEC))
        spec["analytics"]["agent"] = [
            {
                "plugin": "persyst",
                "operators": {
                    "jp": {
                        "interval_s": 2,
                        "window_s": 4,
                        "delay_s": 3,
                        "inputs": ["power"],
                        "params": {"quantiles": [0.5]},
                    }
                },
            }
        ]
        dep = build_deployment(spec)
        dep.run(15)
        dep.agent.flush()
        jobs = dep.sim.scheduler.all_jobs()
        topic = f"/jobs/{jobs[0].job_id}/decile5"
        assert dep.agent.storage.count(topic) > 0
        assert dep.agent_manager.operator("jp").error_count == 0


class TestCli:
    @pytest.fixture
    def config_file(self, tmp_path):
        path = tmp_path / "dep.json"
        path.write_text(json.dumps(BASIC_SPEC))
        return str(path)

    def test_run_command(self, config_file, capsys):
        assert cli_main(["run", "--config", config_file, "--duration", "5"]) == 0
        out = capsys.readouterr().out
        assert "simulated 5s" in out
        assert "avgp" in out

    def test_sensors_command(self, config_file, capsys):
        code = cli_main(
            ["sensors", "--config", config_file, "--duration", "2",
             "--match", "power$"]
        )
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert all(line.endswith("power") for line in out)
        assert len(out) >= 2

    def test_query_command(self, config_file, capsys):
        code = cli_main(
            [
                "query",
                "--config",
                config_file,
                "--duration",
                "5",
                "--topic",
                "/rack00/chassis00/node00/power",
                "--tail",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "readings" in out

    def test_query_unknown_topic_fails(self, config_file, capsys):
        code = cli_main(
            ["query", "--config", config_file, "--duration", "2",
             "--topic", "/nope"]
        )
        assert code == 1

    def test_plugins_command(self, capsys):
        assert cli_main(["plugins"]) == 0
        out = capsys.readouterr().out
        assert "aggregator" in out and "persyst" in out


class TestWallClockDriver:
    def test_paces_simulation_against_wall_time(self):
        scheduler = TaskScheduler()
        ticks = []
        scheduler.add_callback("t", ticks.append, NS_PER_SEC)
        driver = WallClockDriver(scheduler, speedup=50.0, tick_s=0.01)
        driver.run_for(0.3)
        # ~15 simulated seconds in 0.3 wall seconds at 50x.
        assert scheduler.clock.now > 5 * NS_PER_SEC
        assert len(ticks) >= 5
        assert not driver.running

    def test_start_is_idempotent_and_stop_joins(self):
        driver = WallClockDriver(TaskScheduler(), speedup=10.0, tick_s=0.01)
        driver.start()
        driver.start()
        assert driver.running
        driver.stop()
        assert not driver.running

    def test_validation(self):
        with pytest.raises(ValueError):
            WallClockDriver(TaskScheduler(), speedup=0)
        with pytest.raises(ValueError):
            WallClockDriver(TaskScheduler(), tick_s=0)

    def test_pause_gives_consistent_reads(self):
        scheduler = TaskScheduler()
        driver = WallClockDriver(scheduler, speedup=100.0, tick_s=0.005)
        driver.start()
        with driver.pause():
            a = scheduler.clock.now
            b = scheduler.clock.now
        driver.stop()
        assert a == b


class TestTextPlot:
    def test_sparkline_shape(self):
        line = sparkline(np.sin(np.linspace(0, 6, 200)), width=40)
        assert len(line) == 40
        assert len(set(line)) > 3  # uses multiple intensity levels

    def test_sparkline_short_series(self):
        assert len(sparkline([1.0, 2.0, 3.0], width=40)) == 3

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_sparkline_constant(self):
        line = sparkline([5.0] * 10)
        assert len(set(line)) == 1

    def test_ascii_plot_contains_markers_and_range(self):
        plot = ascii_plot(
            {"real": [1, 2, 3, 4], "pred": [1.5, 2.5, 3.5, 4.5]},
            width=30,
            height=8,
            title="demo",
        )
        assert "demo" in plot
        assert "*=real" in plot and "+=pred" in plot
        assert "*" in plot and "+" in plot

    def test_ascii_plot_no_data(self):
        assert ascii_plot({"x": []}) == "(no data)"

    def test_ascii_plot_handles_nan(self):
        plot = ascii_plot({"x": [1.0, np.nan, 3.0]}, width=10, height=4)
        assert "(no data)" not in plot


class TestFacilityDeployment:
    def test_attach_facility_programmatically(self):
        dep = Deployment(ClusterSpec.small(nodes=2, cpus=2), seed=4)
        cooling = dep.attach_facility(setpoint_c=35.0)
        dep.run(30)
        dep.agent.flush()
        assert dep.agent.storage.count("/facility/cooling/inlet-temp") >= 2
        assert cooling.setpoint_c == 35.0
        # Cooling context reaches analytics managers.
        assert dep.agent_manager._context["cooling"] is cooling

    def test_attach_facility_twice_rejected(self):
        dep = Deployment(ClusterSpec.small(nodes=1, cpus=1))
        dep.attach_facility()
        with pytest.raises(ConfigError):
            dep.attach_facility()

    def test_facility_from_spec(self):
        spec = json.loads(json.dumps(BASIC_SPEC))
        spec["facility"] = {"enabled": True, "setpoint_c": 42, "interval_s": 5}
        dep = build_deployment(spec)
        dep.run(12)
        dep.agent.flush()
        assert dep.cooling is not None
        assert dep.cooling.setpoint_c == 42.0
        ts, values = dep.series("/facility/cooling/setpoint")
        assert len(values) >= 2
        assert values[-1] == 42.0

    def test_facility_disabled_by_default(self):
        dep = build_deployment(BASIC_SPEC)
        assert dep.cooling is None


class TestCliReportSnapshot:
    @pytest.fixture
    def config_file(self, tmp_path):
        path = tmp_path / "dep.json"
        path.write_text(json.dumps(BASIC_SPEC))
        return str(path)

    def test_report_command(self, config_file, capsys):
        assert cli_main(
            ["report", "--config", config_file, "--duration", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "# Deployment report" in out
        assert "## Analytics" in out
        assert "avgp" in out
        assert "Busiest sensors" in out

    def test_run_with_snapshot(self, config_file, tmp_path, capsys):
        snap = str(tmp_path / "out.npz")
        assert cli_main(
            ["run", "--config", config_file, "--duration", "5",
             "--snapshot", snap]
        ) == 0
        from repro.dcdb.storage import StorageBackend

        restored = StorageBackend.load(snap)
        assert restored.total_readings() > 0


class TestCliTree:
    def test_tree_command(self, tmp_path, capsys):
        path = tmp_path / "dep.json"
        path.write_text(json.dumps(BASIC_SPEC))
        assert cli_main(
            ["tree", "--config", str(path), "--duration", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "rack00/" in out
        assert "power" in out
        assert "sensors," in out
