"""Property-based tests for virtual-sensor expressions."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.dcdb.virtual import Binary, Const, Ref, Unary, parse_expression

finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
)


def expression_trees(max_depth=4):
    """Random expression ASTs paired with their textual form."""
    leaves = st.one_of(
        finite.map(lambda v: (Const(abs(v)), f"{abs(v)!r}")),
        st.sampled_from(["/a", "/b", "/c"]).map(
            lambda t: (Ref(t), f"<{t}>")
        ),
    )

    def extend(children):
        ops = st.sampled_from("+-*/")
        return st.one_of(
            st.tuples(children, ops, children).map(
                lambda t: (
                    Binary(t[1], t[0][0], t[2][0]),
                    f"({t[0][1]} {t[1]} {t[2][1]})",
                )
            ),
            children.map(lambda c: (Unary(c[0]), f"(-{c[1]})")),
        )

    return st.recursive(leaves, extend, max_leaves=8)


INPUTS = {
    "/a": np.array([1.0, 2.0, 3.0]),
    "/b": np.array([4.0, 5.0, 6.0]),
    "/c": np.array([-1.0, 0.5, 2.0]),
}


class TestExpressionProperties:
    @given(tree_text=expression_trees())
    def test_parse_of_rendered_form_evaluates_identically(self, tree_text):
        tree, text = tree_text
        parsed = parse_expression(text)
        with np.errstate(all="ignore"):
            expected = tree.eval(INPUTS)
            got = parsed.eval(INPUTS)
        expected = np.broadcast_to(np.asarray(expected, dtype=float), (3,))
        got = np.broadcast_to(np.asarray(got, dtype=float), (3,))
        same = (got == expected) | (np.isnan(got) & np.isnan(expected))
        assert same.all()

    @given(tree_text=expression_trees())
    def test_topics_subset_of_known(self, tree_text):
        tree, text = tree_text
        assert set(parse_expression(text).topics()) <= set(INPUTS)

    @given(a=finite, b=finite)
    def test_arithmetic_matches_python(self, a, b):
        ctx = {"/a": np.float64(a), "/b": np.float64(b)}
        assert parse_expression("</a> + </b>").eval(ctx) == a + b
        assert parse_expression("</a> - </b>").eval(ctx) == a - b
        assert parse_expression("</a> * </b>").eval(ctx) == np.float64(a) * b
