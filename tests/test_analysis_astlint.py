"""Tests for the repo-specific AST lint pass."""

import textwrap

from repro.analysis import lint_paths, lint_source


def lint(code, path="src/repro/plugins/x.py"):
    return lint_source(textwrap.dedent(code), path=path)


def codes(diags):
    return [d.code for d in diags]


class TestLockDiscipline:
    GUARDED = """
    import threading

    class Buffer:
        def __init__(self):
            self._lock = threading.Lock()
            self._rows = []

        def append(self, row):
            with self._lock:
                self._rows = self._rows + [row]

        def clear(self):
            self._rows = []
    """

    def test_unlocked_mutation_flagged(self):
        diags = lint(self.GUARDED, path="src/repro/core/x.py")
        assert codes(diags) == ["L001"]
        assert "clear" in diags[0].message
        assert "_rows" in diags[0].message

    def test_init_is_exempt(self):
        diags = lint(self.GUARDED, path="src/repro/core/x.py")
        assert all("__init__" not in d.message for d in diags)

    def test_locked_mutations_pass(self):
        clean = """
        import threading

        class Buffer:
            def __init__(self):
                self._lock = threading.Lock()
                self._rows = []

            def append(self, row):
                with self._lock:
                    self._rows = self._rows + [row]

            def clear(self):
                with self._lock:
                    self._rows = []
        """
        assert lint(clean, path="src/repro/core/x.py") == []

    def test_nested_locked_block_not_flagged(self):
        nested = """
        class Buffer:
            def maybe(self, flag):
                if flag:
                    with self._lock:
                        self._rows = []
        """
        assert lint(nested, path="src/repro/core/x.py") == []

    def test_unguarded_class_untouched(self):
        plain = """
        class Plain:
            def set(self, v):
                self.value = v
        """
        assert lint(plain, path="src/repro/core/x.py") == []


class TestWallClock:
    def test_time_time_in_simulator_flagged(self):
        diags = lint(
            "import time\nts = time.time()\n",
            path="src/repro/simulator/x.py",
        )
        assert codes(diags) == ["L002"]

    def test_time_monotonic_in_plugins_flagged(self):
        diags = lint(
            "import time\nts = time.monotonic()\n",
            path="src/repro/plugins/x.py",
        )
        assert codes(diags) == ["L002"]

    def test_outside_scoped_dirs_allowed(self):
        diags = lint(
            "import time\nts = time.time()\n",
            path="src/repro/core/x.py",
        )
        assert diags == []

    def test_perf_counter_allowed(self):
        # perf_counter_ns is the sanctioned busy-time instrumentation.
        diags = lint(
            "import time\nts = time.perf_counter_ns()\n",
            path="src/repro/simulator/x.py",
        )
        assert diags == []


class TestSilentExcept:
    def test_except_exception_pass(self):
        diags = lint("""
        try:
            risky()
        except Exception:
            pass
        """)
        assert codes(diags) == ["L003"]

    def test_bare_except_pass(self):
        diags = lint("""
        try:
            risky()
        except:
            pass
        """)
        assert codes(diags) == ["L003"]

    def test_handled_exception_ok(self):
        diags = lint("""
        try:
            risky()
        except Exception as exc:
            log(exc)
        """)
        assert diags == []

    def test_narrow_except_pass_ok(self):
        diags = lint("""
        try:
            risky()
        except KeyError:
            pass
        """)
        assert diags == []


class TestComputeState:
    def test_self_write_in_compute_unit_flagged(self):
        diags = lint("""
        from repro.core.registry import operator_plugin

        @operator_plugin("x")
        class XOperator:
            def compute_unit(self, unit, ts):
                self.state = 1
                return {}
        """)
        assert codes(diags) == ["L004"]

    def test_subscript_write_flagged(self):
        diags = lint("""
        class XOperator(OperatorBase):
            def compute_unit(self, unit, ts):
                self.counts[unit.name] = 1
                return {}
        """)
        assert codes(diags) == ["L004"]

    def test_model_state_ok(self):
        diags = lint("""
        class XOperator(OperatorBase):
            def compute_unit(self, unit, ts):
                model = self.model_for(unit)
                model["n"] = 1
                return {}
        """)
        assert diags == []

    def test_only_applies_to_plugin_dirs(self):
        diags = lint("""
        class XOperator(OperatorBase):
            def compute_unit(self, unit, ts):
                self.state = 1
                return {}
        """, path="src/repro/core/operator.py")
        assert diags == []

    def test_non_compute_methods_ok(self):
        diags = lint("""
        class XOperator(OperatorBase):
            def configure(self):
                self.state = 1
        """)
        assert diags == []


class TestThreadLifecycle:
    def test_thread_without_daemon_or_join_flagged(self):
        diags = lint("""
        import threading

        class Runner:
            def start(self):
                self._thread = threading.Thread(target=self._loop)
                self._thread.start()
        """, path="src/repro/core/x.py")
        assert codes(diags) == ["L005"]
        assert "daemon" in diags[0].message

    def test_daemon_kwarg_ok(self):
        diags = lint("""
        import threading

        class Runner:
            def start(self):
                self._thread = threading.Thread(
                    target=self._loop, daemon=True
                )
                self._thread.start()
        """, path="src/repro/core/x.py")
        assert diags == []

    def test_join_in_same_class_ok(self):
        diags = lint("""
        import threading

        class Runner:
            def start(self):
                self._thread = threading.Thread(target=self._loop)
                self._thread.start()

            def stop(self):
                self._thread.join()
        """, path="src/repro/core/x.py")
        assert diags == []

    def test_str_join_does_not_count(self):
        diags = lint("""
        import threading

        class Runner:
            def start(self):
                self._thread = threading.Thread(target=self._loop)
                self._thread.start()

            def label(self, parts):
                return ", ".join(parts)
        """, path="src/repro/core/x.py")
        assert codes(diags) == ["L005"]

    def test_module_level_thread_flagged(self):
        diags = lint("""
        import threading

        worker = threading.Thread(target=run)
        worker.start()
        """, path="src/repro/core/x.py")
        assert codes(diags) == ["L005"]

    def test_suppression(self):
        diags = lint("""
        import threading

        class Runner:
            def start(self):
                t = threading.Thread(target=run)  # lint: allow(L005)
                t.start()
        """, path="src/repro/core/x.py")
        assert diags == []


class TestSleepInCompute:
    def test_sleep_in_compute_unit_flagged(self):
        diags = lint("""
        import time
        from repro.core.registry import operator_plugin

        @operator_plugin("x")
        class XOperator:
            def compute_unit(self, unit, ts):
                time.sleep(0.1)
                return {}
        """, path="src/repro/core/x.py")
        assert codes(diags) == ["L006"]
        assert "sleep" in diags[0].message

    def test_bare_sleep_flagged(self):
        diags = lint("""
        from time import sleep

        class XOperator(OperatorBase):
            def trigger(self, ts):
                sleep(1)
        """, path="src/repro/core/x.py")
        assert codes(diags) == ["L006"]

    def test_sleep_outside_compute_path_ok(self):
        diags = lint("""
        import time

        class XOperator(OperatorBase):
            def wait_for_warmup(self):
                time.sleep(0.1)
        """, path="src/repro/core/x.py")
        assert diags == []

    def test_sleep_in_non_operator_class_ok(self):
        diags = lint("""
        import time

        class Driver:
            def compute(self):
                time.sleep(0.1)
        """, path="src/repro/core/x.py")
        assert diags == []

    def test_suppression(self):
        diags = lint("""
        import time

        class XOperator(OperatorBase):
            def compute_unit(self, unit, ts):
                time.sleep(0.1)  # lint: allow(L006)
                return {}
        """, path="src/repro/core/x.py")
        assert diags == []


class TestScalarQueryInLoop:
    def test_loop_query_in_batch_capable_class_flagged(self):
        diags = lint("""
        class XOperator(OperatorBase):
            supports_batch = True

            def compute_unit(self, unit, ts):
                return [
                    self.engine.query_relative(t, 0) for t in unit.inputs
                ]
        """, path="src/repro/plugins/x.py")
        assert codes(diags) == ["L007"]
        assert "query_relative" in diags[0].message

    def test_for_loop_in_compute_batch_flagged(self):
        diags = lint("""
        class XOperator(OperatorBase):
            def compute_batch(self, units, ts):
                out = []
                for unit in units:
                    for t in unit.inputs:
                        out.append(self.engine.query_absolute(t, 0, 1))
                return out
        """, path="src/repro/plugins/x.py")
        assert codes(diags) == ["L007"]

    def test_without_batch_support_not_flagged(self):
        diags = lint("""
        class XOperator(OperatorBase):
            def compute_unit(self, unit, ts):
                return [
                    self.engine.query_relative(t, 0) for t in unit.inputs
                ]
        """, path="src/repro/plugins/x.py")
        assert diags == []

    def test_query_outside_loop_not_flagged(self):
        diags = lint("""
        class XOperator(OperatorBase):
            supports_batch = True

            def compute_unit(self, unit, ts):
                return self.engine.query_relative(unit.inputs[0], 0)
        """, path="src/repro/plugins/x.py")
        assert diags == []

    def test_suppression(self):
        diags = lint("""
        class XOperator(OperatorBase):
            supports_batch = True

            def compute_unit(self, unit, ts):
                return [
                    self.engine.query_relative(t, 0)  # lint: allow(L007)
                    for t in unit.inputs
                ]
        """, path="src/repro/plugins/x.py")
        assert diags == []


class TestMutableClassDefault:
    def test_list_default_flagged(self):
        diags = lint("""
        class XOperator(OperatorBase):
            history = []

            def compute_unit(self, unit, ts):
                return {}
        """)
        assert codes(diags) == ["L008"]
        assert "history" in diags[0].message

    def test_dict_and_constructor_flagged(self):
        diags = lint("""
        class XOperator(OperatorBase):
            cache = {}
            seen = set()
            by_unit = dict()
        """)
        assert codes(diags) == ["L008", "L008", "L008"]

    def test_annotated_default_flagged(self):
        diags = lint("""
        class XOperator(OperatorBase):
            rows: list = []
        """)
        assert codes(diags) == ["L008"]

    def test_constant_convention_exempt(self):
        diags = lint("""
        class XOperator(OperatorBase):
            _METRICS = {"cpi": ("cpu-cycles", "instructions")}
            DEFAULT_OPS = ["mean", "max"]
        """)
        assert diags == []

    def test_immutable_defaults_not_flagged(self):
        diags = lint("""
        class XOperator(OperatorBase):
            window = 10
            name = "x"
            pair = (1, 2)
        """)
        assert diags == []

    def test_non_plugin_class_not_flagged(self):
        diags = lint("""
        class Registry:
            entries = []
        """)
        assert diags == []

    def test_init_assignment_not_flagged(self):
        diags = lint("""
        class XOperator(OperatorBase):
            def __init__(self):
                self.history = []
        """)
        assert diags == []

    def test_suppression(self):
        diags = lint("""
        class XOperator(OperatorBase):
            shared = []  # lint: allow(L008)
        """)
        assert diags == []


class TestSuppressionAndEntryPoints:
    def test_allow_comment_suppresses(self):
        diags = lint("""
        try:
            risky()
        except Exception:
            pass  # lint: allow(L003)
        """)
        assert diags == []

    def test_allow_wrong_code_does_not_suppress(self):
        diags = lint("""
        try:
            risky()
        except Exception:
            pass  # lint: allow(L001)
        """)
        assert codes(diags) == ["L003"]

    def test_syntax_error_reported_not_raised(self):
        diags = lint_source("def broken(:\n", path="x.py")
        assert codes(diags) == ["L000"]

    def test_lint_paths_walks_directories(self, tmp_path):
        pkg = tmp_path / "plugins"
        pkg.mkdir()
        (pkg / "bad.py").write_text(
            "try:\n    x()\nexcept Exception:\n    pass\n"
        )
        (pkg / "good.py").write_text("x = 1\n")
        diags = lint_paths([str(tmp_path)])
        assert codes(diags) == ["L003"]
        assert diags[0].file.endswith("bad.py")

    def test_repo_tree_is_clean(self):
        import os

        import repro

        pkg_dir = os.path.dirname(os.path.abspath(repro.__file__))
        assert lint_paths([pkg_dir]) == []
