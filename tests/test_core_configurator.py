"""Tests for the Configurator and plugin registry."""

import pytest

from repro.common.errors import ConfigError, PluginError
from repro.common.timeutil import NS_PER_MS, NS_PER_SEC
from repro.core.configurator import Configurator, parse_operator_config
from repro.core.operator import OperatorBase, OperatorConfig
from repro.core.registry import (
    available_plugins,
    create_operator,
    operator_plugin,
    register_operator_plugin,
)


class TestParseOperatorConfig:
    def test_time_spellings(self):
        cfg = parse_operator_config(
            "x", {"interval_ms": 250, "window_s": 2, "delay_ns": 7}
        )
        assert cfg.interval_ns == 250 * NS_PER_MS
        assert cfg.window_ns == 2 * NS_PER_SEC
        assert cfg.delay_ns == 7

    def test_defaults(self):
        cfg = parse_operator_config("x", {})
        assert cfg.interval_ns == NS_PER_SEC
        assert cfg.window_ns == 0

    def test_conflicting_time_spellings(self):
        with pytest.raises(ConfigError):
            parse_operator_config("x", {"interval_ms": 1, "interval_s": 1})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError):
            parse_operator_config("x", {"intervall_ms": 5})

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigError):
            parse_operator_config("x", {"interval_ms": -1})

    def test_lists_validated(self):
        with pytest.raises(ConfigError):
            parse_operator_config("x", {"inputs": "not-a-list"})
        with pytest.raises(ConfigError):
            parse_operator_config("x", {"inputs": [1, 2]})

    def test_bools_validated(self):
        with pytest.raises(ConfigError):
            parse_operator_config("x", {"relaxed": "yes"})

    def test_params_must_be_dict(self):
        with pytest.raises(ConfigError):
            parse_operator_config("x", {"params": [1]})

    def test_full_block(self):
        cfg = parse_operator_config(
            "avg",
            {
                "interval_s": 1,
                "mode": "ondemand",
                "unit_mode": "parallel",
                "max_workers": 4,
                "relaxed": True,
                "publish_outputs": False,
                "inputs": ["<bottomup>power"],
                "outputs": ["<bottomup>avg"],
                "operator_outputs": ["overall"],
                "params": {"op": "mean"},
            },
        )
        assert cfg.mode == "ondemand"
        assert cfg.max_workers == 4
        assert cfg.operator_outputs == ["overall"]


class TestConfigurator:
    def test_requires_plugin_name(self):
        with pytest.raises(ConfigError):
            Configurator({"operators": {"x": {}}})

    def test_requires_operators(self):
        with pytest.raises(ConfigError):
            Configurator({"plugin": "aggregator"})
        with pytest.raises(ConfigError):
            Configurator({"plugin": "aggregator", "operators": {}})

    def test_builds_all_declared_operators(self):
        config = {
            "plugin": "aggregator",
            "operators": {
                "a": {
                    "inputs": ["<bottomup>x"],
                    "outputs": ["<bottomup>ax"],
                    "params": {"op": "mean"},
                },
                "b": {
                    "inputs": ["<bottomup>x"],
                    "outputs": ["<bottomup>bx"],
                    "params": {"op": "max"},
                },
            },
        }
        ops = Configurator(config).build()
        assert sorted(op.name for op in ops) == ["a", "b"]


class TestRegistry:
    def test_bundled_plugins_available(self):
        names = available_plugins()
        for expected in (
            "tester",
            "aggregator",
            "smoother",
            "perfmetrics",
            "persyst",
            "regressor",
            "classifier",
            "clustering",
            "health",
        ):
            assert expected in names

    def test_unknown_plugin(self):
        with pytest.raises(PluginError):
            create_operator("not-a-plugin", OperatorConfig(name="x"), {})

    def test_register_rejects_non_operator(self):
        with pytest.raises(PluginError):
            register_operator_plugin("bad", dict)

    def test_context_injection(self):
        @operator_plugin("ctx-test")
        class CtxOp(OperatorBase):
            def __init__(self, config, job_source):
                super().__init__(config)
                self.job_source = job_source

            def compute_unit(self, unit, ts):
                return {}

        op = create_operator(
            "ctx-test", OperatorConfig(name="x"), {"job_source": "JS"}
        )
        assert op.job_source == "JS"

    def test_missing_required_context(self):
        @operator_plugin("ctx-test2")
        class CtxOp2(OperatorBase):
            def __init__(self, config, job_source):
                super().__init__(config)

            def compute_unit(self, unit, ts):
                return {}

        with pytest.raises(PluginError):
            create_operator("ctx-test2", OperatorConfig(name="x"), {})

    def test_optional_context_defaults(self):
        @operator_plugin("ctx-test3")
        class CtxOp3(OperatorBase):
            def __init__(self, config, job_source=None):
                super().__init__(config)
                self.job_source = job_source

            def compute_unit(self, unit, ts):
                return {}

        op = create_operator("ctx-test3", OperatorConfig(name="x"), {})
        assert op.job_source is None
