"""Tests for the in-memory time-series storage backend."""

import numpy as np
import pytest

from repro.common.errors import StorageError
from repro.dcdb.sensor import SensorReading
from repro.dcdb.storage import StorageBackend


class TestInsertQuery:
    def test_roundtrip(self):
        s = StorageBackend()
        s.insert("/a/power", 10, 1.0)
        s.insert("/a/power", 20, 2.0)
        ts, val = s.query("/a/power", 0, 100)
        assert list(ts) == [10, 20]
        assert list(val) == [1.0, 2.0]

    def test_range_bounds_inclusive(self):
        s = StorageBackend()
        for t in (10, 20, 30):
            s.insert("/a", t, float(t))
        ts, _ = s.query("/a", 10, 20)
        assert list(ts) == [10, 20]

    def test_unknown_topic_empty(self):
        s = StorageBackend()
        ts, val = s.query("/nope", 0, 10)
        assert len(ts) == 0 and len(val) == 0

    def test_inverted_range_rejected(self):
        s = StorageBackend()
        with pytest.raises(StorageError):
            s.query("/a", 10, 5)

    def test_out_of_order_insert_dropped(self):
        s = StorageBackend()
        s.insert("/a", 100, 1.0)
        s.insert("/a", 50, 2.0)
        assert s.count("/a") == 1

    def test_latest(self):
        s = StorageBackend()
        assert s.latest("/a") is None
        s.insert("/a", 10, 1.0)
        s.insert("/a", 20, 2.0)
        assert s.latest("/a") == SensorReading(20, 2.0)

    def test_query_readings(self):
        s = StorageBackend()
        s.insert("/a", 10, 1.0)
        assert s.query_readings("/a", 0, 100) == [SensorReading(10, 1.0)]

    def test_contains(self):
        s = StorageBackend()
        assert "/a" not in s
        s.insert("/a", 1, 1.0)
        assert "/a" in s

    def test_growth_beyond_initial_capacity(self):
        s = StorageBackend()
        for i in range(1000):
            s.insert("/a", i, float(i))
        assert s.count("/a") == 1000
        ts, _ = s.query("/a", 500, 509)
        assert len(ts) == 10


class TestBatch:
    def test_insert_batch(self):
        s = StorageBackend()
        ts = np.arange(100, dtype=np.int64)
        s.insert_batch("/a", ts, ts.astype(float))
        assert s.count("/a") == 100

    def test_batch_length_mismatch(self):
        s = StorageBackend()
        with pytest.raises(StorageError):
            s.insert_batch("/a", np.arange(3), np.arange(2).astype(float))


class TestMaintenance:
    def test_ttl_expiry(self):
        s = StorageBackend(ttl_ns=100)
        for t in (0, 50, 150, 200):
            s.insert("/a", t, float(t))
        dropped = s.expire(now_ns=200)
        assert dropped == 2  # 0 and 50 are older than 200-100
        ts, _ = s.query("/a", 0, 1000)
        assert list(ts) == [150, 200]

    def test_no_ttl_no_expiry(self):
        s = StorageBackend()
        s.insert("/a", 0, 1.0)
        assert s.expire(10**12) == 0

    def test_drop(self):
        s = StorageBackend()
        s.insert("/a", 1, 1.0)
        assert s.drop("/a") is True
        assert s.drop("/a") is False
        assert s.count("/a") == 0

    def test_counters_and_totals(self):
        s = StorageBackend()
        s.insert("/a", 1, 1.0)
        s.insert("/b", 2, 2.0)
        s.query("/a", 0, 10)
        assert s.insert_count == 2
        assert s.query_count == 1
        assert s.total_readings() == 2
        assert set(s.topics()) == {"/a", "/b"}
        assert s.memory_bytes() > 0


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        s = StorageBackend()
        for i in range(50):
            s.insert("/a/power", i * 10, float(i))
            s.insert("/b/temp", i * 10, float(-i))
        path = str(tmp_path / "snap.npz")
        assert s.save(path) == 2
        restored = StorageBackend.load(path)
        assert set(restored.topics()) == {"/a/power", "/b/temp"}
        for topic in s.topics():
            ts_a, val_a = s.query(topic, 0, 10**6)
            ts_b, val_b = restored.query(topic, 0, 10**6)
            assert list(ts_a) == list(ts_b)
            assert list(val_a) == list(val_b)

    def test_empty_snapshot(self, tmp_path):
        path = str(tmp_path / "empty.npz")
        assert StorageBackend().save(path) == 0
        restored = StorageBackend.load(path)
        assert restored.total_readings() == 0

    def test_restore_does_not_count_as_inserts(self, tmp_path):
        s = StorageBackend()
        s.insert("/a", 1, 1.0)
        path = str(tmp_path / "snap.npz")
        s.save(path)
        restored = StorageBackend.load(path)
        assert restored.insert_count == 0
        assert restored.total_readings() == 1


class TestBatchOrderingRegression:
    """Regression: a misordered ``insert_batch`` used to bypass the
    out-of-order guard that scalar ``insert`` enforces, breaking the
    sorted-timestamp invariant every binary-search ``range()`` relies
    on — queries silently returned wrong windows."""

    def test_intra_batch_disorder_dropped(self):
        s = StorageBackend()
        s.insert_batch(
            "/a", np.array([10, 30, 20, 40]), np.array([1.0, 3.0, 2.0, 4.0])
        )
        ts, val = s.query("/a", 0, 100)
        assert list(ts) == [10, 30, 40]
        assert list(val) == [1.0, 3.0, 4.0]
        assert s.ooo_dropped == 1

    def test_batch_vs_tail_disorder_dropped(self):
        s = StorageBackend()
        s.insert("/a", 100, 1.0)
        s.insert_batch("/a", np.array([50, 150]), np.array([0.5, 1.5]))
        ts, _ = s.query("/a", 0, 1000)
        assert list(ts) == [100, 150]
        assert s.ooo_dropped == 1

    def test_range_not_corrupted_by_disorder(self):
        # Before the fix this stored [100, 10, 20]: searchsorted then
        # located range(0, 50) as an empty window even though 10 and 20
        # were "stored".  Now the offenders are dropped instead.
        s = StorageBackend()
        s.insert_batch(
            "/a", np.array([100, 10, 20]), np.array([1.0, 2.0, 3.0])
        )
        ts, _ = s.query("/a", 0, 50)
        assert list(ts) == []  # nothing below the kept tail survived
        ts, _ = s.query("/a", 0, 200)
        assert list(ts) == [100]
        assert np.all(np.diff(s.query("/a", 0, 2**62)[0]) >= 0)

    def test_batch_semantics_match_scalar(self):
        stream_ts = [10, 5, 20, 20, 15, 30]
        stream_val = [float(t) for t in stream_ts]
        scalar = StorageBackend()
        for t, v in zip(stream_ts, stream_val):
            scalar.insert("/a", t, v)
        batched = StorageBackend()
        batched.insert_batch(
            "/a", np.array(stream_ts), np.array(stream_val)
        )
        assert list(scalar.query("/a", 0, 100)[0]) == list(
            batched.query("/a", 0, 100)[0]
        )
        assert scalar.ooo_dropped == batched.ooo_dropped == 2
        assert scalar.insert_count == batched.insert_count == 4

    def test_equal_timestamps_kept(self):
        s = StorageBackend()
        s.insert_batch("/a", np.array([10, 10, 10]), np.array([1.0, 2.0, 3.0]))
        assert s.count("/a") == 3 and s.ooo_dropped == 0


class TestExpiryReclamation:
    """Regression: ``expire_before`` compacted in place but never
    released capacity, so a long-retention host kept peak-sized buffers
    forever — ``memory_bytes()`` never went down."""

    def test_memory_released_after_mass_expiry(self):
        s = StorageBackend(ttl_ns=10)
        n = 100_000
        s.insert_batch(
            "/a", np.arange(n, dtype=np.int64), np.ones(n)
        )
        before = s.memory_bytes()
        dropped = s.expire(n + 9)  # keep only the last handful
        assert dropped == n - 1
        assert s.memory_bytes() < before / 4
        # Still correct after the reallocation.
        ts, _ = s.query("/a", 0, 2**62)
        assert list(ts) == [n - 1]
        s.insert("/a", n + 50, 1.0)
        assert s.count("/a") == 2

    def test_partial_expiry_keeps_buffers(self):
        s = StorageBackend(ttl_ns=100)
        n = 4096
        s.insert_batch("/a", np.arange(n, dtype=np.int64), np.ones(n))
        before = s.memory_bytes()
        s.expire(n // 2)  # drops less than 3/4: shift in place
        assert s.memory_bytes() == before

    def test_shrink_never_below_initial_capacity(self):
        s = StorageBackend(ttl_ns=1)
        n = 10_000
        s.insert_batch("/a", np.arange(n, dtype=np.int64), np.ones(n))
        s.expire(n + 100)  # expire everything
        assert s.count("/a") == 0
        floor = 256 * (8 + 8)  # _Series._INITIAL int64+float64 pairs
        assert s.memory_bytes() == floor
