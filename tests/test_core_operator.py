"""Tests for the operator base classes (Sections IV / V-C)."""


import pytest

from repro.common.errors import ConfigError
from repro.common.timeutil import NS_PER_SEC
from repro.core.operator import (
    JobOperatorBase,
    OperatorBase,
    OperatorConfig,
)
from repro.core.queryengine import QueryEngine
from repro.core.tree import SensorTree
from repro.core.units import Unit
from repro.dcdb.cache import SensorCache
from repro.dcdb.sensor import Sensor


class RecordingHost:
    """Host capturing stored readings."""

    def __init__(self, topics=()):
        self.caches = {}
        self.stored = []
        for t in topics:
            cache = SensorCache(64, interval_ns=NS_PER_SEC)
            for i in range(10):
                cache.store(i * NS_PER_SEC, float(i))
            self.caches[t] = cache

    def cache_for(self, topic):
        return self.caches.get(topic)

    @property
    def storage(self):
        return None

    def sensor_topics(self):
        return sorted(self.caches)

    def store_reading(self, sensor, ts, value):
        self.stored.append((sensor.topic, ts, value))


class DoubleLatest(OperatorBase):
    """Toy operator: output = 2 * latest value of first input."""

    def compute_unit(self, unit, ts):
        view = self.engine.latest(unit.inputs[0])
        return {s.name: 2.0 * view.values()[-1] for s in unit.outputs}


class CountingModelOp(OperatorBase):
    """Operator whose models count how often they are used."""

    made = 0

    def make_model(self):
        CountingModelOp.made += 1
        return {"uses": 0, "id": CountingModelOp.made}

    def compute_unit(self, unit, ts):
        model = self.model_for(unit)
        model["uses"] += 1
        return {s.name: float(model["id"]) for s in unit.outputs}


def make_unit(name, inputs, out_names):
    return Unit(
        name=name,
        level=0,
        inputs=list(inputs),
        outputs=[
            Sensor(f"{name}/{o}", is_operator_output=True) for o in out_names
        ],
    )


def bound(op_cls, config, host):
    op = op_cls(config)
    op.bind(host, QueryEngine(host))
    return op


class TestOperatorConfig:
    def test_defaults(self):
        cfg = OperatorConfig(name="x")
        assert cfg.mode == "online"
        assert cfg.unit_mode == "sequential"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "bogus"},
            {"unit_mode": "bogus"},
            {"interval_ns": 0},
            {"window_ns": -1},
            {"delay_ns": -5},
            {"max_workers": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            OperatorConfig(name="x", **kwargs)


class TestComputeFlow:
    def test_results_stored_to_outputs(self):
        host = RecordingHost(["/n0/power"])
        op = bound(DoubleLatest, OperatorConfig(name="t"), host)
        op.set_units([make_unit("/n0", ["/n0/power"], ["twice"])])
        op.start()
        results = op.compute(100)
        assert results[0].values == {"twice": 18.0}
        assert host.stored == [("/n0/twice", 100, 18.0)]

    def test_disabled_operator_is_inert(self):
        host = RecordingHost(["/n0/power"])
        op = bound(DoubleLatest, OperatorConfig(name="t"), host)
        op.set_units([make_unit("/n0", ["/n0/power"], ["twice"])])
        assert op.compute(100) == []
        assert host.stored == []

    def test_failing_unit_counted_not_fatal(self):
        host = RecordingHost(["/n0/power"])
        op = bound(DoubleLatest, OperatorConfig(name="t"), host)
        op.set_units(
            [
                make_unit("/bad", ["/missing/topic"], ["twice"]),
                make_unit("/n0", ["/n0/power"], ["twice"]),
            ]
        )
        op.start()
        results = op.compute(50)
        assert len(results) == 1
        assert op.error_count == 1
        assert "/bad" in op.last_errors[-1]

    def test_empty_result_stores_nothing(self):
        class Silent(OperatorBase):
            def compute_unit(self, unit, ts):
                return {}

        host = RecordingHost(["/n0/power"])
        op = bound(Silent, OperatorConfig(name="t"), host)
        op.set_units([make_unit("/n0", ["/n0/power"], ["o"])])
        op.start()
        assert op.compute(10) == []
        assert host.stored == []

    def test_stats(self):
        host = RecordingHost(["/n0/power"])
        op = bound(DoubleLatest, OperatorConfig(name="t"), host)
        op.set_units([make_unit("/n0", ["/n0/power"], ["twice"])])
        op.start()
        op.compute(1)
        s = op.stats()
        assert s["computes"] == 1
        assert s["units"] == 1
        assert s["busy_ns"] > 0


class TestModelPlacement:
    def setup_method(self):
        CountingModelOp.made = 0

    def test_sequential_shares_one_model(self):
        host = RecordingHost(["/a/x", "/b/x"])
        op = bound(
            CountingModelOp,
            OperatorConfig(name="t", unit_mode="sequential"),
            host,
        )
        op.set_units(
            [make_unit("/a", ["/a/x"], ["o"]), make_unit("/b", ["/b/x"], ["o"])]
        )
        op.start()
        results = op.compute(1)
        assert CountingModelOp.made == 1
        assert {r.values["o"] for r in results} == {1.0}

    def test_parallel_gets_model_per_unit(self):
        host = RecordingHost(["/a/x", "/b/x"])
        op = bound(
            CountingModelOp,
            OperatorConfig(name="t", unit_mode="parallel"),
            host,
        )
        op.set_units(
            [make_unit("/a", ["/a/x"], ["o"]), make_unit("/b", ["/b/x"], ["o"])]
        )
        op.start()
        results = op.compute(1)
        assert CountingModelOp.made == 2
        assert {r.values["o"] for r in results} == {1.0, 2.0}

    def test_parallel_with_workers_runs_all_units(self):
        host = RecordingHost([f"/n{i}/x" for i in range(8)])
        op = bound(
            DoubleLatest,
            OperatorConfig(name="t", unit_mode="parallel", max_workers=4),
            host,
        )
        op.set_units(
            [make_unit(f"/n{i}", [f"/n{i}/x"], ["o"]) for i in range(8)]
        )
        op.start()
        assert len(op.compute(1)) == 8

    def test_set_units_resets_models(self):
        host = RecordingHost(["/a/x"])
        op = bound(
            CountingModelOp,
            OperatorConfig(name="t", unit_mode="sequential"),
            host,
        )
        op.set_units([make_unit("/a", ["/a/x"], ["o"])])
        op.start()
        op.compute(1)
        op.set_units([make_unit("/a", ["/a/x"], ["o"])])
        op.compute(2)
        assert CountingModelOp.made == 2


class TestOperatorOutputs:
    def test_default_aggregate_is_mean(self):
        host = RecordingHost(["/a/x", "/b/x"])
        cfg = OperatorConfig(name="t", operator_outputs=["twice"])
        op = bound(DoubleLatest, cfg, host)
        op.set_units(
            [
                make_unit("/a", ["/a/x"], ["twice"]),
                make_unit("/b", ["/b/x"], ["twice"]),
            ]
        )
        op.start()
        op.compute(5)
        agg = [s for s in host.stored if s[0] == "/analytics/t/twice"]
        assert agg == [("/analytics/t/twice", 5, 18.0)]

    def test_no_operator_outputs_no_aggregate(self):
        host = RecordingHost(["/a/x"])
        op = bound(DoubleLatest, OperatorConfig(name="t"), host)
        op.set_units([make_unit("/a", ["/a/x"], ["twice"])])
        op.start()
        op.compute(5)
        assert not any("/analytics" in s[0] for s in host.stored)


class TestOnDemand:
    def test_trigger_returns_without_storing(self, fig2_tree):
        host = RecordingHost(["/n0/power"])
        op = bound(DoubleLatest, OperatorConfig(name="t", mode="ondemand"), host)
        op.set_units([make_unit("/n0", ["/n0/power"], ["twice"])])
        values = op.trigger("/n0", 100, fig2_tree)
        assert values == {"twice": 18.0}
        assert host.stored == []

    def test_trigger_builds_unit_on_the_fly(self):
        host = RecordingHost(["/r0/n0/power"])
        cfg = OperatorConfig(
            name="t",
            mode="ondemand",
            inputs=["<bottomup>power"],
            outputs=["<bottomup>twice"],
        )
        op = bound(DoubleLatest, cfg, host)
        tree = SensorTree.from_topics(["/r0/n0/power"])
        values = op.trigger("/r0/n0", 1, tree)
        assert values == {"twice": 18.0}


class TestJobOperator:
    class JobEcho(JobOperatorBase):
        def job_output_names(self):
            return ["count"]

        def compute_unit(self, unit, ts):
            return {"count": float(len(unit.inputs))}

    class FakeJobs:
        def __init__(self, jobs):
            self.jobs = jobs

        def running_jobs(self, ts):
            return [j for j in self.jobs if j.start <= ts < j.end]

    class FakeJob:
        def __init__(self, jid, nodes, start, end):
            self.job_id = jid
            self.node_paths = nodes
            self.start, self.end = start, end

    def test_units_follow_running_jobs(self):
        host = RecordingHost(["/r0/n0/power", "/r0/n1/power"])
        tree = SensorTree.from_topics(host.sensor_topics())
        jobs = self.FakeJobs(
            [
                self.FakeJob("j1", ["/r0/n0"], 0, 100),
                self.FakeJob("j2", ["/r0/n0", "/r0/n1"], 100, 200),
            ]
        )
        cfg = OperatorConfig(name="t", inputs=["power"])
        op = self.JobEcho(cfg, job_source=jobs)
        op.bind(host, QueryEngine(host))
        op.init_units(tree)
        op.start()
        r1 = op.compute(50)
        assert [u.unit.tag for u in r1] == ["j1"]
        assert r1[0].values["count"] == 1.0
        r2 = op.compute(150)
        assert [u.unit.tag for u in r2] == ["j2"]
        assert r2[0].values["count"] == 2.0
        r3 = op.compute(250)
        assert r3 == []

    def test_job_outputs_under_jobs_root(self):
        host = RecordingHost(["/r0/n0/power"])
        tree = SensorTree.from_topics(host.sensor_topics())
        jobs = self.FakeJobs([self.FakeJob("j9", ["/r0/n0"], 0, 100)])
        op = self.JobEcho(
            OperatorConfig(name="t", inputs=["power"]), job_source=jobs
        )
        op.bind(host, QueryEngine(host))
        op.init_units(tree)
        op.start()
        op.compute(10)
        assert host.stored == [("/jobs/j9/count", 10, 1.0)]


class TestUnitCadence:
    def test_units_staggered_across_passes(self):
        host = RecordingHost([f"/n{i}/x" for i in range(4)])
        cfg = OperatorConfig(name="t", unit_cadence=2)
        op = bound(DoubleLatest, cfg, host)
        op.set_units(
            [make_unit(f"/n{i}", [f"/n{i}/x"], ["o"]) for i in range(4)]
        )
        op.start()
        r1 = {r.unit.name for r in op.compute(1)}
        r2 = {r.unit.name for r in op.compute(2)}
        assert r1 == {"/n0", "/n2"}
        assert r2 == {"/n1", "/n3"}
        # Over a full cadence cycle every unit is covered exactly once.
        assert r1 | r2 == {f"/n{i}" for i in range(4)}

    def test_cadence_one_computes_all(self):
        host = RecordingHost([f"/n{i}/x" for i in range(3)])
        op = bound(DoubleLatest, OperatorConfig(name="t"), host)
        op.set_units(
            [make_unit(f"/n{i}", [f"/n{i}/x"], ["o"]) for i in range(3)]
        )
        op.start()
        assert len(op.compute(1)) == 3

    def test_cadence_validation(self):
        with pytest.raises(ConfigError):
            OperatorConfig(name="t", unit_cadence=0)
