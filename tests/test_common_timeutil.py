"""Tests for nanosecond time arithmetic."""

import pytest

from repro.common.timeutil import (
    NS_PER_MS,
    Interval,
    from_millis,
    from_seconds,
    to_millis,
    to_seconds,
)


class TestConversions:
    def test_from_seconds(self):
        assert from_seconds(1.5) == 1_500_000_000

    def test_from_millis(self):
        assert from_millis(250) == 250 * NS_PER_MS

    def test_roundtrip(self):
        assert to_seconds(from_seconds(3.25)) == pytest.approx(3.25)
        assert to_millis(from_millis(12.5)) == pytest.approx(12.5)

    def test_rounding(self):
        # Sub-nanosecond fractions round rather than truncate.
        assert from_seconds(1e-9 * 0.6) == 1


class TestInterval:
    def test_span(self):
        assert Interval(10, 25).span == 15

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Interval(5, 4)

    def test_empty_allowed(self):
        assert Interval(5, 5).span == 0

    def test_contains_half_open(self):
        iv = Interval(10, 20)
        assert iv.contains(10)
        assert iv.contains(19)
        assert not iv.contains(20)
        assert not iv.contains(9)

    def test_overlaps(self):
        assert Interval(0, 10).overlaps(Interval(5, 15))
        assert not Interval(0, 10).overlaps(Interval(10, 20))
        assert Interval(0, 100).overlaps(Interval(40, 50))

    def test_clamp(self):
        iv = Interval(10, 20)
        assert iv.clamp(5) == 10
        assert iv.clamp(25) == 20
        assert iv.clamp(15) == 15
