"""Property-based tests: the sensor cache against a list reference model."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.dcdb.cache import SensorCache

# Monotone-ish timestamp deltas (>= 0) and arbitrary float values.
reading_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10_000),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
    ),
    max_size=120,
)


def build(readings, capacity, interval=0):
    """Apply readings (cumulative timestamps) to a cache and a reference."""
    cache = SensorCache(capacity, interval_ns=interval)
    reference = []
    ts = 0
    for delta, value in readings:
        ts += delta
        cache.store(ts, value)
        reference.append((ts, value))
        reference = reference[-capacity:]
    return cache, reference


class TestCacheModel:
    @given(readings=reading_lists, capacity=st.integers(1, 32))
    def test_size_and_order_match_reference(self, readings, capacity):
        cache, ref = build(readings, capacity)
        assert len(cache) == len(ref)
        got = list(cache.view_absolute(0, 10**18))
        assert [(r.timestamp, r.value) for r in got] == [
            (t, v) for t, v in ref
        ]

    @given(readings=reading_lists, capacity=st.integers(1, 32))
    def test_latest_and_oldest(self, readings, capacity):
        cache, ref = build(readings, capacity)
        if not ref:
            assert cache.latest() is None
            assert cache.oldest() is None
        else:
            assert (cache.latest().timestamp, cache.latest().value) == ref[-1]
            assert (cache.oldest().timestamp, cache.oldest().value) == ref[0]

    @given(
        readings=reading_lists,
        capacity=st.integers(1, 32),
        lo=st.integers(0, 12_000 * 120),
        span=st.integers(0, 12_000 * 120),
    )
    def test_absolute_view_equals_filtered_reference(
        self, readings, capacity, lo, span
    ):
        cache, ref = build(readings, capacity)
        hi = lo + span
        got = [(r.timestamp, r.value) for r in cache.view_absolute(lo, hi)]
        expected = [(t, v) for t, v in ref if lo <= t <= hi]
        assert got == expected

    @given(
        readings=reading_lists,
        capacity=st.integers(1, 32),
        offset=st.integers(0, 2_000_000),
    )
    def test_relative_view_without_hint_equals_time_filter(
        self, readings, capacity, offset
    ):
        cache, ref = build(readings, capacity, interval=0)
        if not ref:
            assert len(cache.view_relative(offset)) == 0
            return
        newest = ref[-1][0]
        got = [(r.timestamp, r.value) for r in cache.view_relative(offset)]
        if offset == 0:
            assert got == [ref[-1]]
        else:
            expected = [(t, v) for t, v in ref if t >= newest - offset]
            assert got == expected

    @given(readings=reading_lists, capacity=st.integers(1, 32))
    def test_timestamps_always_sorted(self, readings, capacity):
        cache, _ = build(readings, capacity)
        view = cache.view_absolute(0, 10**18)
        ts = view.timestamps()
        assert (np.diff(ts) >= 0).all()

    @given(
        readings=reading_lists,
        capacity=st.integers(2, 32),
        k=st.integers(1, 200),
    )
    def test_relative_with_hint_is_clamped_tail(self, readings, capacity, k):
        # With an interval hint, a relative view is always a suffix of
        # the cache contents, never longer than offset//interval + 1.
        interval = 100
        cache, ref = build(readings, capacity, interval=interval)
        view = cache.view_relative(k * interval)
        assert len(view) <= min(len(ref), k + 1)
        got = [(r.timestamp, r.value) for r in view]
        assert got == ref[len(ref) - len(got):] if ref else got == []


class TestBatchEquivalence:
    @given(
        n=st.integers(0, 200),
        capacity=st.integers(1, 64),
    )
    def test_store_batch_equals_store_loop(self, n, capacity):
        ts = np.arange(n, dtype=np.int64) * 7
        values = np.arange(n, dtype=np.float64)
        a = SensorCache(capacity)
        a.store_batch(ts, values)
        b = SensorCache(capacity)
        for t, v in zip(ts, values):
            b.store(int(t), float(v))
        va = list(a.view_absolute(0, 10**18))
        vb = list(b.view_absolute(0, 10**18))
        assert va == vb
