"""Tests for lock-order tracking and lock-related R-rules (R001-R003)."""

import threading
import time

import pytest

from repro.sanitizer import hooks, make_sanitizer
from repro.sanitizer.locks import LockOrderGraph


def codes(diags):
    return [d.code for d in diags]


class TestLockOrderGraph:
    def test_cycle_detected(self):
        g = LockOrderGraph()
        g.add_edge("A", "B", "t1", "x.py:1")
        g.add_edge("B", "A", "t2", "y.py:2")
        assert g.cycles() == [["A", "B"]]

    def test_cycle_reported_once_regardless_of_rotation(self):
        g = LockOrderGraph()
        g.add_edge("B", "A", "t2", "y.py:2")
        g.add_edge("A", "B", "t1", "x.py:1")
        assert len(g.cycles()) == 1

    def test_acyclic_order_is_clean(self):
        g = LockOrderGraph()
        g.add_edge("A", "B", "t1", "x.py:1")
        g.add_edge("B", "C", "t1", "x.py:2")
        g.add_edge("A", "C", "t2", "y.py:3")
        assert g.cycles() == []

    def test_three_lock_cycle(self):
        g = LockOrderGraph()
        g.add_edge("A", "B", "t1", "s")
        g.add_edge("B", "C", "t2", "s")
        g.add_edge("C", "A", "t3", "s")
        assert g.cycles() == [["A", "B", "C"]]


class TestLockInversion:
    def test_r001_from_conflicting_acquisition_orders(self):
        """Two threads taking A/B in opposite orders -> R001, without
        needing the fatal interleaving to actually occur."""
        san = make_sanitizer(track_wall_clock=False)
        with san.activate():
            a = hooks.make_lock("A")
            b = hooks.make_lock("B")

            def forward():
                with a:
                    with b:
                        pass

            def backward():
                with b:
                    with a:
                        pass

            t1 = threading.Thread(target=forward)
            t1.start()
            t1.join()
            t2 = threading.Thread(target=backward)
            t2.start()
            t2.join()
        diags = san.finish()
        assert codes(diags) == ["R001"]
        assert "A -> B -> A" in diags[0].message

    def test_consistent_order_is_clean(self):
        san = make_sanitizer(track_wall_clock=False)
        with san.activate():
            a = hooks.make_lock("A")
            b = hooks.make_lock("B")
            for _ in range(3):
                with a:
                    with b:
                        pass
        assert san.finish() == []

    def test_self_deadlock_reported_not_hung(self):
        san = make_sanitizer(track_wall_clock=False)
        with san.activate():
            a = hooks.make_lock("A")
            assert a.acquire()
            # The second acquire would block forever on a plain Lock;
            # the tracked one reports and refuses.
            assert a.acquire() is False
            a.release()
        diags = san.finish()
        assert codes(diags) == ["R001"]
        assert "self-deadlock" in diags[0].message


class TestBlockingUnderLock:
    def test_r002_note_blocking_while_holding(self):
        san = make_sanitizer(track_wall_clock=False)
        with san.activate():
            a = hooks.make_lock("A")
            with a:
                hooks.note_blocking("socket send")
        diags = san.finish()
        assert codes(diags) == ["R002"]
        assert "socket send" in diags[0].message
        assert "A" in diags[0].message

    def test_r002_sleep_under_lock_via_timepatch(self):
        san = make_sanitizer()
        with san.activate():
            a = hooks.make_lock("A")
            with a:
                time.sleep(0.001)
        diags = san.finish()
        assert "R002" in codes(diags)
        r002 = next(d for d in diags if d.code == "R002")
        assert "time.sleep" in r002.message
        # Attributed to this test, not the sanitizer's sleep shim.
        assert r002.file.endswith("test_sanitizer_locks.py")

    def test_blocking_without_lock_is_clean(self):
        san = make_sanitizer(track_wall_clock=False)
        with san.activate():
            hooks.note_blocking("socket send")
        assert san.finish() == []


class TestLongHold:
    def test_r003_over_threshold(self):
        san = make_sanitizer(long_hold_ms=1.0, track_wall_clock=False)
        with san.activate():
            a = hooks.make_lock("A")
            with a:
                time.sleep(0.02)
        diags = san.finish()
        assert codes(diags) == ["R003"]
        assert diags[0].severity == "warning"
        assert "A" in diags[0].message

    def test_short_hold_is_clean(self):
        san = make_sanitizer(long_hold_ms=5000.0, track_wall_clock=False)
        with san.activate():
            a = hooks.make_lock("A")
            with a:
                pass
        assert san.finish() == []


class TestZeroCostWhenDisabled:
    def test_make_lock_returns_plain_lock(self):
        assert hooks.CURRENT is None
        lock = hooks.make_lock("X")
        assert isinstance(lock, type(threading.Lock()))

    def test_note_blocking_is_noop(self):
        assert hooks.CURRENT is None
        hooks.note_blocking("anything")  # must not raise

    def test_activation_is_exclusive(self):
        san1 = make_sanitizer(track_wall_clock=False)
        san2 = make_sanitizer(track_wall_clock=False)
        with san1.activate():
            with pytest.raises(RuntimeError):
                with san2.activate():
                    pass
        assert hooks.CURRENT is None
