"""Tests for the persyst plugin (per-job quantile aggregation)."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.common.timeutil import NS_PER_SEC
from repro.core.operator import OperatorConfig
from repro.core.queryengine import QueryEngine
from repro.core.tree import SensorTree
from repro.dcdb.cache import SensorCache
from repro.plugins.persyst import PerSystOperator, quantile_output_name


class Host:
    def __init__(self):
        self.caches = {}
        self.stored = []

    def set_latest(self, topic, value):
        cache = self.caches.get(topic)
        if cache is None:
            cache = self.caches[topic] = SensorCache(8, interval_ns=NS_PER_SEC)
        ts = (cache.latest().timestamp + NS_PER_SEC) if len(cache) else 0
        cache.store(ts, float(value))

    def cache_for(self, topic):
        return self.caches.get(topic)

    @property
    def storage(self):
        return None

    def sensor_topics(self):
        return sorted(self.caches)

    def store_reading(self, sensor, ts, value):
        self.stored.append((sensor.topic, ts, value))


class FakeJob:
    def __init__(self, jid, nodes, start=0, end=10**18):
        self.job_id = jid
        self.node_paths = nodes
        self._range = (start, end)

    def is_running(self, ts):
        return self._range[0] <= ts < self._range[1]


class FakeJobSource:
    def __init__(self, jobs):
        self.jobs = jobs

    def running_jobs(self, ts):
        return [j for j in self.jobs if j.is_running(ts)]


def build_rig(core_values_by_node):
    """Host + tree where each node has per-cpu 'cpi' sensors."""
    host = Host()
    topics = []
    for node, values in core_values_by_node.items():
        for k, v in enumerate(values):
            topic = f"{node}/cpu{k}/cpi"
            host.set_latest(topic, v)
            topics.append(topic)
    tree = SensorTree.from_topics(topics)
    return host, tree


def make_op(job_source, window_s=2, **params):
    cfg = OperatorConfig(
        name="ps",
        window_ns=window_s * NS_PER_SEC,
        inputs=["<bottomup, filter cpu>cpi"],
        params=params,
    )
    return PerSystOperator(cfg, job_source=job_source)


class TestQuantileNaming:
    def test_deciles(self):
        assert quantile_output_name(0.0) == "decile0"
        assert quantile_output_name(0.5) == "decile5"
        assert quantile_output_name(1.0) == "decile10"

    def test_non_decile_quantiles(self):
        assert quantile_output_name(0.25) == "q25"
        assert quantile_output_name(0.99) == "q99"


class TestPerSyst:
    def test_deciles_across_job_cores(self):
        host, tree = build_rig(
            {"/r0/n0": list(range(0, 11)), "/r0/n1": list(range(100, 111))}
        )
        job = FakeJob("j1", ["/r0/n0", "/r0/n1"])
        op = make_op(FakeJobSource([job]))
        op.bind(host, QueryEngine(host))
        op.init_units(tree)
        op.start()
        results = op.compute(0)
        assert len(results) == 1
        values = results[0].values
        # 22 samples: min 0, max 110.
        assert values["decile0"] == 0.0
        assert values["decile10"] == 110.0
        assert values["decile5"] == pytest.approx(np.percentile(
            list(range(11)) + list(range(100, 111)), 50))

    def test_one_unit_per_running_job(self):
        host, tree = build_rig(
            {"/r0/n0": [1.0], "/r0/n1": [2.0], "/r0/n2": [3.0]}
        )
        jobs = FakeJobSource(
            [
                FakeJob("j1", ["/r0/n0"], 0, 100),
                FakeJob("j2", ["/r0/n1", "/r0/n2"], 0, 50),
            ]
        )
        op = make_op(jobs)
        op.bind(host, QueryEngine(host))
        op.init_units(tree)
        op.start()
        assert {r.unit.tag for r in op.compute(10)} == {"j1", "j2"}
        assert {r.unit.tag for r in op.compute(60)} == {"j1"}

    def test_outputs_stored_under_jobs_tree(self):
        host, tree = build_rig({"/r0/n0": [1.0, 2.0]})
        op = make_op(FakeJobSource([FakeJob("j7", ["/r0/n0"])]))
        op.bind(host, QueryEngine(host))
        op.init_units(tree)
        op.start()
        op.compute(0)
        topics = {t for t, _, _ in host.stored}
        assert "/jobs/j7/decile0" in topics
        assert "/jobs/j7/decile10" in topics

    def test_extra_statistics(self):
        host, tree = build_rig({"/r0/n0": [1.0, 3.0]})
        op = make_op(
            FakeJobSource([FakeJob("j1", ["/r0/n0"])]),
            quantiles=[0.5],
            statistics=["mean", "std"],
        )
        op.bind(host, QueryEngine(host))
        op.init_units(tree)
        op.start()
        values = op.compute(0)[0].values
        assert values["mean"] == pytest.approx(2.0)
        assert values["std"] == pytest.approx(1.0)

    def test_custom_quantiles(self):
        host, tree = build_rig({"/r0/n0": list(range(101))})
        op = make_op(
            FakeJobSource([FakeJob("j1", ["/r0/n0"])]), quantiles=[0.25, 0.75]
        )
        op.bind(host, QueryEngine(host))
        op.init_units(tree)
        op.start()
        values = op.compute(0)[0].values
        assert values["q25"] == pytest.approx(25.0)
        assert values["q75"] == pytest.approx(75.0)

    def test_missing_metric_sensors_skip_silently(self):
        # Node n1 has no cpi sensors at all: unit still aggregates n0.
        host, tree = build_rig({"/r0/n0": [5.0]})
        tree.add_component("/r0/n1")
        op = make_op(FakeJobSource([FakeJob("j1", ["/r0/n0", "/r0/n1"])]))
        op.config.relaxed = True
        op.bind(host, QueryEngine(host))
        op.init_units(tree)
        op.start()
        values = op.compute(0)[0].values
        assert values["decile5"] == 5.0

    @pytest.mark.parametrize(
        "params",
        [
            {"quantiles": []},
            {"quantiles": [1.5]},
            {"statistics": ["variance"]},
        ],
    )
    def test_validation(self, params):
        with pytest.raises(ConfigError):
            make_op(FakeJobSource([]), **params)
