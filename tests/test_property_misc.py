"""Property-based tests: streaming stats, quantiles, broker and storage."""

import math

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.common.topics import join_topic, normalize_topic, split_topic
from repro.dcdb.mqtt import Broker
from repro.dcdb.storage import StorageBackend
from repro.ml.stats import StreamingStats, deciles, window_features

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e9, max_value=1e9
)
segments = st.lists(
    st.from_regex(r"[a-z][a-z0-9-]{0,6}", fullmatch=True), min_size=1, max_size=5
)


class TestTopicsRoundtrip:
    @given(parts=segments)
    def test_join_split_roundtrip(self, parts):
        assert split_topic(join_topic(parts)) == parts

    @given(parts=segments)
    def test_normalize_idempotent(self, parts):
        t = join_topic(parts)
        assert normalize_topic(normalize_topic(t)) == normalize_topic(t)


class TestStreamingStatsProperties:
    @given(data=st.lists(finite_floats, min_size=1, max_size=200))
    def test_matches_numpy(self, data):
        s = StreamingStats()
        s.push_many(np.asarray(data))
        arr = np.asarray(data)
        assert math.isclose(s.mean, arr.mean(), rel_tol=1e-9, abs_tol=1e-6)
        assert s.minimum == arr.min()
        assert s.maximum == arr.max()
        assert s.count == len(data)

    @given(
        a=st.lists(finite_floats, max_size=100),
        b=st.lists(finite_floats, max_size=100),
    )
    def test_merge_associates_with_concatenation(self, a, b):
        sa, sb, sc = StreamingStats(), StreamingStats(), StreamingStats()
        sa.push_many(np.asarray(a))
        sb.push_many(np.asarray(b))
        sc.push_many(np.asarray(a + b))
        merged = sa.merge(sb)
        assert merged.count == sc.count
        if merged.count:
            assert math.isclose(
                merged.mean, sc.mean, rel_tol=1e-9, abs_tol=1e-6
            )
            assert math.isclose(
                merged.variance, sc.variance, rel_tol=1e-6, abs_tol=1e-5
            )


class TestQuantileProperties:
    @given(data=st.lists(finite_floats, min_size=1, max_size=200))
    def test_deciles_are_monotone_and_bounded(self, data):
        arr = np.asarray(data)
        d = deciles(arr)
        assert (np.diff(d) >= -1e-9).all()
        assert d[0] == arr.min()
        assert d[-1] == arr.max()

    @given(data=st.lists(finite_floats, min_size=1, max_size=50))
    def test_window_features_bounded_by_extremes(self, data):
        arr = np.asarray(data)
        f = window_features(arr)
        # Mean/median stay within the extremes up to accumulation ulps.
        slack = 8 * np.spacing(np.abs(arr).max() + 1.0)
        assert arr.min() - slack <= f[0] <= arr.max() + slack  # mean
        assert f[2] == arr.min()
        assert f[3] == arr.max()
        assert arr.min() - slack <= f[5] <= arr.max() + slack  # median


class TestBrokerProperties:
    @given(parts=segments, value=finite_floats)
    def test_exact_subscription_always_delivered(self, parts, value):
        broker = Broker()
        topic = join_topic(parts)
        got = []
        broker.subscribe(topic, lambda t, v, ts: got.append((t, v)))
        broker.subscribe("/#", lambda t, v, ts: got.append(("wild", v)))
        n = broker.publish(topic, value, 1)
        assert n == 2
        assert (topic, value) in got

    @given(parts=segments)
    def test_plus_wildcard_matches_same_depth_only(self, parts):
        broker = Broker()
        pattern = join_topic(["+"] * len(parts))
        hits = []
        broker.subscribe(pattern, lambda t, v, ts: hits.append(t))
        topic = join_topic(parts)
        broker.publish(topic, 1.0, 1)
        broker.publish(join_topic(parts + ["extra"]), 1.0, 1)
        assert hits == [topic]


class TestStorageProperties:
    @given(
        deltas=st.lists(st.integers(0, 1000), min_size=1, max_size=100),
        lo=st.integers(0, 50_000),
        span=st.integers(0, 50_000),
    )
    def test_range_query_equals_filter(self, deltas, lo, span):
        storage = StorageBackend()
        ts, ref = 0, []
        for i, d in enumerate(deltas):
            ts += d
            storage.insert("/t", ts, float(i))
            ref.append((ts, float(i)))
        hi = lo + span
        got_ts, got_val = storage.query("/t", lo, hi)
        expected = [(t, v) for t, v in ref if lo <= t <= hi]
        assert list(got_ts) == [t for t, _ in expected]
        assert list(got_val) == [v for _, v in expected]


class TestSchedulerProperties:
    @given(
        intervals=st.lists(st.integers(1, 20), min_size=1, max_size=6),
        horizon=st.integers(0, 200),
    )
    def test_fire_counts_match_arithmetic(self, intervals, horizon):
        from repro.simulator.clock import TaskScheduler

        scheduler = TaskScheduler()
        tasks = [
            scheduler.add_callback(f"t{i}", lambda ts: None, iv)
            for i, iv in enumerate(intervals)
        ]
        scheduler.run_until(horizon)
        for task, iv in zip(tasks, intervals):
            # Fires at 0, iv, 2iv, ... <= horizon.
            assert task.fire_count == horizon // iv + 1

    @given(
        dues=st.lists(st.integers(0, 100), min_size=1, max_size=20),
        horizon=st.integers(0, 120),
    )
    def test_one_shots_fire_exactly_when_due(self, dues, horizon):
        from repro.simulator.clock import TaskScheduler

        scheduler = TaskScheduler()
        fired = []
        for due in dues:
            scheduler.add_once("o", fired.append, due)
        scheduler.run_until(horizon)
        assert sorted(fired) == sorted(d for d in dues if d <= horizon)


class TestUnitCadenceProperty:
    @given(
        n_units=st.integers(1, 12),
        cadence=st.integers(1, 5),
    )
    def test_full_cycle_covers_every_unit_once(self, n_units, cadence):
        from repro.core.operator import OperatorBase, OperatorConfig
        from repro.core.queryengine import QueryEngine
        from repro.core.units import Unit
        from repro.dcdb.sensor import Sensor

        class Echo(OperatorBase):
            def compute_unit(self, unit, ts):
                return {s.name: 1.0 for s in unit.outputs}

        class Host:
            caches: dict = {}

            def cache_for(self, topic):
                return None

            @property
            def storage(self):
                return None

            def sensor_topics(self):
                return []

            def store_reading(self, sensor, ts, value):
                pass

        op = Echo(OperatorConfig(name="e", unit_cadence=cadence))
        op.bind(Host(), QueryEngine(Host()))
        op.set_units(
            [
                Unit(
                    name=f"/u{i}",
                    level=0,
                    inputs=[],
                    outputs=[Sensor(f"/u{i}/o", is_operator_output=True)],
                )
                for i in range(n_units)
            ]
        )
        op.start()
        seen = []
        for tick in range(cadence):
            seen.extend(r.unit.name for r in op.compute(tick))
        assert sorted(seen) == sorted(f"/u{i}" for i in range(n_units))
