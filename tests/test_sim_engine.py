"""Tests for the cluster simulation engine."""

import numpy as np
import pytest

from repro.common.timeutil import NS_PER_SEC
from repro.simulator import ClusterSimulator, ClusterSpec
from repro.simulator.engine import CPU_COUNTERS


@pytest.fixture
def sim():
    return ClusterSimulator(ClusterSpec.small(nodes=2, cpus=4), seed=9)


class TestCounters:
    def test_counters_monotonic(self, sim):
        node = sim.node_paths[0]
        prev = 0.0
        for t in range(1, 6):
            v = sim.read_cpu_counter(node, 0, "cpu-cycles", t * NS_PER_SEC)
            assert v >= prev
            prev = v

    def test_all_counters_exposed(self, sim):
        node = sim.node_paths[0]
        for counter in CPU_COUNTERS:
            v = sim.read_cpu_counter(node, 1, counter, NS_PER_SEC)
            assert np.isfinite(v)

    def test_vectorised_read_matches_scalar(self, sim):
        node = sim.node_paths[0]
        all_vals = sim.read_cpu_counters(node, "instructions", 2 * NS_PER_SEC)
        single = sim.read_cpu_counter(node, 2, "instructions", 2 * NS_PER_SEC)
        assert all_vals[2] == single

    def test_backwards_sampling_rejected(self, sim):
        node = sim.node_paths[0]
        sim.read_node(node, "power", 5 * NS_PER_SEC)
        with pytest.raises(ValueError):
            sim.read_node(node, "power", 4 * NS_PER_SEC)

    def test_same_timestamp_idempotent(self, sim):
        node = sim.node_paths[0]
        a = sim.read_cpu_counter(node, 0, "flops", 3 * NS_PER_SEC)
        b = sim.read_cpu_counter(node, 0, "flops", 3 * NS_PER_SEC)
        assert a == b


class TestNodeSensors:
    def test_gauges_present(self, sim):
        node = sim.node_paths[0]
        for name in ("power", "temp", "memfree", "freq"):
            assert np.isfinite(sim.read_node(node, name, NS_PER_SEC))

    def test_counters_present(self, sim):
        node = sim.node_paths[0]
        sim.read_node(node, "power", NS_PER_SEC)
        for name in ("energy", "idle-time", "xmit-bytes", "rcv-bytes"):
            assert sim.read_node(node, name, NS_PER_SEC) >= 0.0

    def test_unknown_sensor_raises(self, sim):
        with pytest.raises(KeyError):
            sim.read_node(sim.node_paths[0], "quux", NS_PER_SEC)

    def test_idle_node_low_power(self, sim):
        node = sim.node_paths[0]
        p = sim.read_node(node, "power", 10 * NS_PER_SEC)
        assert p < 120  # no job scheduled: near idle power


class TestJobsDriveLoad:
    def test_job_raises_power_and_counters(self):
        sim = ClusterSimulator(ClusterSpec.small(nodes=2, cpus=4), seed=9)
        node = sim.node_paths[0]
        other = sim.node_paths[1]
        sim.scheduler.add_job(
            __import__("repro.simulator.scheduler", fromlist=["Job"]).Job(
                "j1", "hpl", (node,), 0, 600 * NS_PER_SEC
            )
        )
        # sample both nodes over a minute
        for t in range(0, 61, 10):
            sim.read_node(node, "power", t * NS_PER_SEC)
            sim.read_node(other, "power", t * NS_PER_SEC)
        busy = sim.read_node(node, "power", 70 * NS_PER_SEC)
        idle = sim.read_node(other, "power", 70 * NS_PER_SEC)
        assert busy > idle + 80
        busy_instr = sim.read_cpu_counter(node, 0, "instructions", 71 * NS_PER_SEC)
        idle_instr = sim.read_cpu_counter(other, 0, "instructions", 71 * NS_PER_SEC)
        assert busy_instr > idle_instr * 5
        assert sim.current_job(node) == "j1"
        assert sim.current_job(other) is None

    def test_job_end_returns_to_idle(self):
        from repro.simulator.scheduler import Job

        sim = ClusterSimulator(ClusterSpec.small(nodes=1, cpus=4), seed=9)
        node = sim.node_paths[0]
        sim.scheduler.add_job(Job("j1", "hpl", (node,), 0, 30 * NS_PER_SEC))
        sim.read_node(node, "power", 10 * NS_PER_SEC)
        assert sim.current_job(node) == "j1"
        sim.read_node(node, "power", 40 * NS_PER_SEC)
        assert sim.current_job(node) is None

    def test_anomalous_node_draws_more_power(self):
        spec = ClusterSpec.small(nodes=2, cpus=4)
        plain = ClusterSimulator(spec, seed=9)
        node = plain.node_paths[0]
        hot = ClusterSimulator(spec, seed=9, anomalies={node: 1.2})
        p_plain = np.mean(
            [plain.read_node(node, "power", t * NS_PER_SEC) for t in range(30)]
        )
        p_hot = np.mean(
            [hot.read_node(node, "power", t * NS_PER_SEC) for t in range(30)]
        )
        assert p_hot == pytest.approx(p_plain * 1.2, rel=0.05)

    def test_determinism_across_instances(self):
        a = ClusterSimulator(ClusterSpec.small(nodes=2, cpus=2), seed=5)
        b = ClusterSimulator(ClusterSpec.small(nodes=2, cpus=2), seed=5)
        node = a.node_paths[0]
        for t in range(5):
            assert a.read_node(node, "power", t * NS_PER_SEC) == b.read_node(
                node, "power", t * NS_PER_SEC
            )
