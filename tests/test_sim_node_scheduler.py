"""Tests for the node model and job scheduler."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.common.timeutil import NS_PER_SEC
from repro.simulator.node import NodeModel, NodePowerParams
from repro.simulator.scheduler import Job, JobScheduler


class TestNodeModel:
    def make(self, seed=1, anomaly=1.0):
        return NodeModel("/r0/c0/n0", 64, seed, power_anomaly=anomaly)

    def test_idle_power_near_idle_constant(self):
        m = self.make()
        p = m.instantaneous_power(10.0, activity=0.0)
        assert 0.8 * 75 < p < 1.2 * 75

    def test_power_rises_with_activity(self):
        m = self.make()
        idle = np.mean([m.instantaneous_power(t, 0.0) for t in range(50)])
        busy = np.mean([m.instantaneous_power(t, 0.9) for t in range(50)])
        assert busy > idle + 100

    def test_anomaly_scales_power(self):
        base = self.make(seed=1).instantaneous_power(5.0, 0.5)
        hot = self.make(seed=1, anomaly=1.2).instantaneous_power(5.0, 0.5)
        assert hot == pytest.approx(base * 1.2)

    def test_efficiency_varies_between_nodes(self):
        effs = {NodeModel("/n", 64, s).efficiency for s in range(20)}
        assert len(effs) > 10
        assert all(0.9 <= e <= 1.1 for e in effs)

    def test_update_integrates_energy(self):
        m = self.make()
        m.update(0, 0.5, 0.5)
        m.update(10 * NS_PER_SEC, 0.5, 0.5)
        assert m.energy_j > 0
        # Energy ≈ power * 10 s within noise.
        assert m.energy_j == pytest.approx(m.power_w * 10, rel=0.3)

    def test_update_accumulates_idle_time(self):
        m = self.make()
        m.update(0, 0.0, 0.0)
        m.update(10 * NS_PER_SEC, 0.0, 0.0)
        # Fully idle: 64 cores * 10 s of idle time.
        assert m.idle_time_s == pytest.approx(640.0)

    def test_temperature_lags_toward_target(self):
        params = NodePowerParams()
        m = self.make()
        m.update(0, 0.9, 0.9)
        t0 = m.temperature_c
        for k in range(1, 60):
            m.update(k * 10 * NS_PER_SEC, 0.9, 0.9)
        # After ~10 thermal time constants the temperature approaches
        # ambient + c * power.
        target = params.ambient_c + params.c_per_watt * m.power_w
        assert abs(m.temperature_c - target) < 3.0
        assert m.temperature_c > t0

    def test_update_rejects_backwards_time(self):
        m = self.make()
        m.update(10, 0.5, 0.5)
        with pytest.raises(ValueError):
            m.update(5, 0.5, 0.5)

    def test_turbo_spikes_occur_under_load(self):
        m = self.make()
        powers = [m.instantaneous_power(t * 1.0, 0.9) for t in range(400)]
        base = np.median(powers)
        assert max(powers) > base + 15  # occasional turbo burst


def mk_job(jid, nodes, start, end, app="hpl"):
    return Job(jid, app, tuple(nodes), start, end)


class TestJob:
    def test_validation(self):
        with pytest.raises(ConfigError):
            mk_job("j1", ["/n0"], 10, 10)
        with pytest.raises(ConfigError):
            mk_job("j1", [], 0, 10)

    def test_is_running_half_open(self):
        j = mk_job("j1", ["/n0"], 10, 20)
        assert not j.is_running(9)
        assert j.is_running(10)
        assert j.is_running(19)
        assert not j.is_running(20)


class TestJobScheduler:
    def setup_method(self):
        self.nodes = [f"/r0/c0/n{i}" for i in range(4)]
        self.sched = JobScheduler(self.nodes)

    def test_add_and_query(self):
        self.sched.add_job(mk_job("j1", self.nodes[:2], 0, 100))
        assert [j.job_id for j in self.sched.running_jobs(50)] == ["j1"]
        assert self.sched.running_jobs(100) == []

    def test_rejects_unknown_node(self):
        with pytest.raises(ConfigError):
            self.sched.add_job(mk_job("j1", ["/bogus"], 0, 10))

    def test_rejects_overlap(self):
        self.sched.add_job(mk_job("j1", self.nodes[:2], 0, 100))
        with pytest.raises(ConfigError):
            self.sched.add_job(mk_job("j2", self.nodes[1:3], 50, 150))

    def test_adjacent_jobs_allowed(self):
        self.sched.add_job(mk_job("j1", self.nodes[:2], 0, 100))
        self.sched.add_job(mk_job("j2", self.nodes[:2], 100, 200))

    def test_rejects_duplicate_id(self):
        self.sched.add_job(mk_job("j1", self.nodes[:1], 0, 10))
        with pytest.raises(ConfigError):
            self.sched.add_job(mk_job("j1", self.nodes[1:2], 20, 30))

    def test_job_on_node(self):
        self.sched.add_job(mk_job("j1", self.nodes[:2], 0, 100))
        assert self.sched.job_on_node(self.nodes[0], 50).job_id == "j1"
        assert self.sched.job_on_node(self.nodes[3], 50) is None
        assert self.sched.job_on_node(self.nodes[0], 200) is None

    def test_submit_fcfs(self):
        j1 = self.sched.submit("hpl", 2, 0, 100)
        j2 = self.sched.submit("amg", 2, 0, 100)
        assert set(j1.node_paths).isdisjoint(j2.node_paths)
        with pytest.raises(ConfigError):
            self.sched.submit("lammps", 1, 50, 60)

    def test_submit_reuses_after_completion(self):
        self.sched.submit("hpl", 4, 0, 100)
        j = self.sched.submit("amg", 4, 100, 200)
        assert j.n_nodes == 4

    def test_utilization(self):
        self.sched.add_job(mk_job("j1", self.nodes[:2], 0, 100))
        assert self.sched.utilization(50) == pytest.approx(0.5)
        assert self.sched.utilization(150) == 0.0

    def test_all_jobs_and_lookup(self):
        j = self.sched.submit("hpl", 1, 0, 10)
        assert self.sched.job(j.job_id) is j
        assert self.sched.job("nope") is None
        assert len(self.sched.all_jobs()) == 1


class TestSubmitEarliest:
    def setup_method(self):
        self.nodes = [f"/r0/c0/n{i}" for i in range(4)]
        self.sched = JobScheduler(self.nodes)

    def test_immediate_when_free(self):
        job = self.sched.submit_earliest("hpl", 2, duration_ns=100,
                                         not_before_ts=10)
        assert job.start_ts == 10
        assert job.end_ts == 110

    def test_backfills_after_blocking_job(self):
        self.sched.add_job(mk_job("block", self.nodes, 0, 500))
        job = self.sched.submit_earliest("amg", 2, duration_ns=100)
        assert job.start_ts == 500

    def test_picks_earliest_partial_release(self):
        # Two nodes free at t=100, the others at t=500.
        self.sched.add_job(mk_job("a", self.nodes[:2], 0, 100))
        self.sched.add_job(mk_job("b", self.nodes[2:], 0, 500))
        job = self.sched.submit_earliest("amg", 2, duration_ns=50)
        assert job.start_ts == 100
        assert set(job.node_paths) == set(self.nodes[:2])

    def test_whole_cluster_waits_for_everything(self):
        self.sched.add_job(mk_job("a", self.nodes[:2], 0, 100))
        self.sched.add_job(mk_job("b", self.nodes[2:], 0, 500))
        job = self.sched.submit_earliest("hpl", 4, duration_ns=50)
        assert job.start_ts == 500

    def test_respects_not_before(self):
        job = self.sched.submit_earliest("hpl", 1, duration_ns=10,
                                         not_before_ts=42)
        assert job.start_ts == 42

    def test_infeasible_raises(self):
        with pytest.raises(ConfigError):
            self.sched.submit_earliest("hpl", 99, duration_ns=10)
