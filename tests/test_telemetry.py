"""Tests for the telemetry subsystem: registry semantics, Prometheus
exposition, the ``GET /metrics`` REST route, and end-to-end agreement
between component-level statistics and the registry they are backed by."""

import math
import re

import pytest

from repro.common.timeutil import NS_PER_SEC
from repro.core.manager import OperatorManager
from repro.core.operator import OperatorConfig
from repro.core.units import Unit
from repro.core.queryengine import QueryEngine
from repro.dcdb import Broker, CollectAgent, Pusher
from repro.dcdb.cache import SensorCache
from repro.dcdb.plugins import TesterMonitoringPlugin
from repro.dcdb.restapi import RestApi
from repro.dcdb.storage import StorageBackend
from repro.plugins.tester import TesterOperator
from repro.simulator.clock import TaskScheduler
from repro.telemetry import (
    LATENCY_BUCKETS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    overhead_report,
    register_metrics_route,
    render_prometheus,
    time_histogram,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("events_total", {})
        assert c.value == 0
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_negative_increment_rejected(self):
        c = Counter("events_total", {})
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.value == 0  # monotonicity preserved after the error

    def test_sample_shape(self):
        c = Counter("events_total", {"op": "x"})
        c.inc(3)
        assert c.sample() == {
            "name": "events_total",
            "type": "counter",
            "labels": {"op": "x"},
            "value": 3,
        }


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth", {})
        g.set(10.0)
        g.inc(5.0)
        g.dec(2.0)
        assert g.value == 13.0

    def test_callback_gauge_evaluates_lazily(self):
        box = {"v": 1}
        g = Gauge("depth", {}, fn=lambda: box["v"])
        assert g.value == 1.0
        box["v"] = 7
        assert g.value == 7.0

    def test_callback_gauge_rejects_set(self):
        g = Gauge("depth", {}, fn=lambda: 0)
        with pytest.raises(ValueError):
            g.set(1.0)


class TestHistogram:
    def test_bucket_boundaries_are_inclusive_upper_edges(self):
        h = Histogram("lat", {}, buckets=(10, 100))
        h.observe(10)    # on the first edge -> first bucket
        h.observe(11)    # just past it -> second bucket
        h.observe(100)   # on the second edge -> second bucket
        h.observe(101)   # past every edge -> overflow
        assert h.bucket_counts() == [1, 2, 1]
        assert h.cumulative_buckets() == [
            (10.0, 1), (100.0, 3), (float("inf"), 4)
        ]

    def test_count_sum_mean_min_max(self):
        h = Histogram("lat", {}, buckets=(1_000,))
        for v in (100, 200, 300):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 600
        assert h.mean == 200
        assert math.isnan(Histogram("e", {}, buckets=(1,)).mean)

    def test_default_latency_ladder(self):
        h = Histogram("lat", {})
        assert h.bounds == [float(b) for b in LATENCY_BUCKETS_NS]

    def test_quantile_upper_edge(self):
        h = Histogram("lat", {}, buckets=(10, 100, 1000))
        for _ in range(9):
            h.observe(5)
        h.observe(500)
        assert h.quantile(0.5) == 10.0
        assert h.quantile(1.0) == 1000.0

    def test_merge_requires_same_layout(self):
        a = Histogram("lat", {}, buckets=(10,))
        b = Histogram("lat", {}, buckets=(10, 100))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_timer_context_observes_once(self):
        h = Histogram("lat", {})
        with time_histogram(h):
            pass
        assert h.count == 1
        assert h.sum > 0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricRegistry()
        assert reg.counter("c") is reg.counter("c")
        assert reg.counter("c", op="x") is not reg.counter("c", op="y")
        assert reg.histogram("h", mode="a") is reg.histogram("h", mode="a")

    def test_label_order_is_irrelevant(self):
        reg = MetricRegistry()
        a = reg.counter("c", x="1", y="2")
        b = reg.counter("c", y="2", x="1")
        assert a is b

    def test_type_conflict_rejected(self):
        reg = MetricRegistry()
        reg.counter("m")
        with pytest.raises(ValueError):
            reg.gauge("m")

    def test_contains_and_len(self):
        reg = MetricRegistry()
        reg.counter("a")
        reg.counter("a", op="x")
        reg.gauge("b")
        assert len(reg) == 3
        assert "a" in reg and "b" in reg and "z" not in reg

    def test_absorb_folds_counters_and_histograms(self):
        private, shared = MetricRegistry(), MetricRegistry()
        private.counter("c", op="x").inc(5)
        private.histogram("h").observe(123)
        shared.counter("c", op="x").inc(1)
        shared.absorb(private)
        assert shared.counter("c", op="x").value == 6
        assert shared.histogram("h").count == 1
        assert shared.histogram("h").sum == 123


class TestPrometheusExposition:
    def make_registry(self):
        reg = MetricRegistry()
        reg.counter("events_total", op="a\\b\"c\nd").inc(2)
        reg.gauge("depth", fn=lambda: 4)
        reg.histogram("lat_ns", buckets=(10, 100)).observe(50)
        return reg

    def test_type_lines_and_series(self):
        page = render_prometheus(self.make_registry())
        assert "# TYPE events_total counter" in page
        assert "# TYPE depth gauge" in page
        assert "# TYPE lat_ns histogram" in page
        assert 'lat_ns_bucket{le="10"} 0' in page
        assert 'lat_ns_bucket{le="100"} 1' in page
        assert 'lat_ns_bucket{le="+Inf"} 1' in page
        assert "lat_ns_sum 50" in page
        assert "lat_ns_count 1" in page
        assert page.endswith("\n")

    def test_label_escaping(self):
        page = render_prometheus(self.make_registry())
        assert 'op="a\\\\b\\"c\\nd"' in page

    def test_match_filters_by_name(self):
        page = render_prometheus(self.make_registry(), match="^lat")
        assert "lat_ns_count" in page
        assert "events_total" not in page


class TestMetricsRoute:
    def make_api(self):
        reg = MetricRegistry()
        reg.counter("events_total").inc(7)
        reg.histogram("lat_ns", buckets=(10,)).observe(3)
        rest = RestApi()
        register_metrics_route(rest, reg)
        return rest

    def test_json_round_trip(self):
        resp = self.make_api().get("/metrics")
        assert resp.ok
        by_name = {m["name"]: m for m in resp.body["metrics"]}
        assert by_name["events_total"]["value"] == 7
        assert by_name["lat_ns"]["count"] == 1

    def test_prometheus_format(self):
        resp = self.make_api().get("/metrics", format="prometheus")
        assert resp.ok
        assert resp.body["content_type"].startswith("text/plain")
        assert "events_total 7" in resp.body["exposition"]

    def test_match_filter(self):
        resp = self.make_api().get("/metrics", match="^lat")
        assert [m["name"] for m in resp.body["metrics"]] == ["lat_ns"]

    def test_bad_match_is_400(self):
        resp = self.make_api().get("/metrics", match="(")
        assert resp.status == 400

    def test_bad_format_is_400(self):
        resp = self.make_api().get("/metrics", format="xml")
        assert resp.status == 400


class FakeHost:
    """Minimal Query Engine host without a telemetry attribute."""

    def __init__(self, storage=None):
        self.caches = {}
        self._storage = storage

    def cache_for(self, topic):
        return self.caches.get(topic)

    @property
    def storage(self):
        return self._storage

    def sensor_topics(self):
        return sorted(self.caches)


def filled_cache(n=10):
    c = SensorCache(64, interval_ns=NS_PER_SEC)
    for i in range(n):
        c.store(i * NS_PER_SEC, float(i))
    return c


class TestQueryEngineTelemetry:
    def test_counters_match_attributes(self):
        """The public cache_hits/storage_fallbacks/misses attributes are
        views over the registry counters — they must agree exactly."""
        storage = StorageBackend()
        for i in range(5):
            storage.insert("/stored", i * NS_PER_SEC, float(i))
        host = FakeHost(storage)
        host.caches["/a"] = filled_cache()
        qe = QueryEngine(host)

        qe.query_relative("/a", 3 * NS_PER_SEC)          # cache hit
        qe.query_relative("/stored", 3 * NS_PER_SEC)     # storage fallback
        with pytest.raises(Exception):
            qe.query_relative("/absent", NS_PER_SEC)     # miss

        reg = qe.telemetry
        assert qe.cache_hits == reg.counter("qe_cache_hits_total").value == 1
        assert (qe.storage_fallbacks
                == reg.counter("qe_storage_fallbacks_total").value == 1)
        assert qe.misses == reg.counter("qe_misses_total").value == 1

    def test_query_latency_histograms_per_mode(self):
        host = FakeHost()
        host.caches["/a"] = filled_cache()
        qe = QueryEngine(host)
        qe.query_relative("/a", 3 * NS_PER_SEC)
        qe.query_relative("/a", 3 * NS_PER_SEC)
        qe.query_absolute("/a", 0, 3 * NS_PER_SEC)
        reg = qe.telemetry
        assert reg.histogram("qe_query_latency_ns", mode="relative").count == 2
        assert reg.histogram("qe_query_latency_ns", mode="absolute").count == 1

    def test_host_registry_shared_when_available(self):
        host = FakeHost()
        host.caches["/a"] = filled_cache()
        host.telemetry = MetricRegistry()
        qe = QueryEngine(host)
        assert qe.telemetry is host.telemetry
        qe.query_relative("/a", 3 * NS_PER_SEC)
        assert host.telemetry.counter("qe_cache_hits_total").value == 1


class TestEndToEnd:
    """A live Pusher + Collect Agent expose coherent /metrics pages."""

    @pytest.fixture()
    def stack(self):
        scheduler = TaskScheduler()
        broker = Broker()
        pusher = Pusher("/r0/c0/n0", broker, scheduler)
        pusher.add_plugin(
            TesterMonitoringPlugin("/r0/c0/n0", n_sensors=5, publish=True)
        )
        agent = CollectAgent("agent", broker, scheduler)
        manager = OperatorManager()
        pusher.attach_analytics(manager)
        cfg = OperatorConfig(
            name="t0",
            params={"queries": 3, "query_mode": "relative",
                    "range_ms": 2_000},
            publish_outputs=False,
        )
        op = TesterOperator(cfg)
        op.bind(pusher, pusher.analytics.engine)
        op.set_units([
            Unit(
                name="/r0/c0/n0",
                level=0,
                inputs=sorted(pusher.sensor_topics()),
                outputs=[],
            )
        ])
        scheduler.run_until(10 * NS_PER_SEC)
        return pusher, agent, manager, op, scheduler

    def test_pusher_metrics_page(self, stack):
        pusher, agent, manager, op, scheduler = stack
        resp = pusher.rest.get("/metrics")
        assert resp.ok
        names = {m["name"] for m in resp.body["metrics"]}
        assert "sampling_busy_ns_total" in names
        assert "sampling_latency_ns" in names
        assert "cache_occupancy_readings" in names
        by_name = {m["name"]: m for m in resp.body["metrics"]}
        assert by_name["cache_sensor_count"]["value"] == 5
        assert by_name["sampling_busy_ns_total"]["value"] > 0

    def test_operator_latency_on_pusher_page(self, stack):
        pusher, agent, manager, op, scheduler = stack
        op.start()
        op.compute(scheduler.clock.now)
        resp = pusher.rest.get("/metrics", match="operator_")
        series = {
            (m["name"], m["labels"].get("operator"))
            for m in resp.body["metrics"]
        }
        assert ("operator_compute_latency_ns", "t0") in series
        assert ("operator_computes_total", "t0") in series
        hist = pusher.telemetry.histogram(
            "operator_compute_latency_ns", operator="t0"
        )
        assert hist.count == op.compute_count == 1
        assert op.busy_ns == hist.sum

    def test_agent_metrics_page(self, stack):
        pusher, agent, manager, op, scheduler = stack
        agent.flush()
        resp = agent.rest.get("/metrics")
        assert resp.ok
        by_name = {m["name"]: m for m in resp.body["metrics"]}
        assert by_name["forwarded_readings_total"]["value"] > 0
        assert by_name["forwarded_readings_total"]["value"] == \
            agent.forwarded_count
        assert by_name["drain_latency_ns"]["count"] > 0
        assert by_name["storage_stored_readings"]["value"] > 0

    def test_overhead_report_from_live_registry(self, stack):
        pusher, agent, manager, op, scheduler = stack
        report = overhead_report(
            pusher.telemetry, elapsed_ns=10 * NS_PER_SEC
        )
        assert report["sampling_busy_ns"] > 0
        assert 0 < report["sampling_overhead_pct"] < 100
        assert report["gauges"]["cache_sensor_count"] == 5
