"""Tests for the in-process MQTT-style broker."""

import pytest

from repro.common.errors import TopicError
from repro.dcdb.mqtt import Broker, Message, QueuedSubscriber


class Recorder:
    def __init__(self):
        self.messages = []

    def __call__(self, topic, value, ts):
        self.messages.append((topic, value, ts))


class TestExactSubscriptions:
    def test_deliver_to_exact_match(self):
        b = Broker()
        rec = Recorder()
        b.subscribe("/a/b/power", rec)
        n = b.publish("/a/b/power", 1.5, 10)
        assert n == 1
        assert rec.messages == [("/a/b/power", 1.5, 10)]

    def test_no_delivery_to_other_topics(self):
        b = Broker()
        rec = Recorder()
        b.subscribe("/a/b/power", rec)
        assert b.publish("/a/b/temp", 1.0, 10) == 0
        assert rec.messages == []

    def test_multiple_subscribers(self):
        b = Broker()
        r1, r2 = Recorder(), Recorder()
        b.subscribe("/x/y", r1)
        b.subscribe("/x/y", r2)
        assert b.publish("/x/y", 2.0, 1) == 2


class TestWildcardSubscriptions:
    def test_plus_matches_single_level(self):
        b = Broker()
        rec = Recorder()
        b.subscribe("/rack/+/power", rec)
        b.publish("/rack/n1/power", 1.0, 1)
        b.publish("/rack/n2/power", 2.0, 2)
        b.publish("/rack/n1/x/power", 3.0, 3)  # too deep
        assert [m[1] for m in rec.messages] == [1.0, 2.0]

    def test_hash_matches_subtree(self):
        b = Broker()
        rec = Recorder()
        b.subscribe("/rack/#", rec)
        b.publish("/rack/n1/power", 1.0, 1)
        b.publish("/rack/n1/cpu0/cycles", 2.0, 2)
        b.publish("/other/n1/power", 3.0, 3)
        assert len(rec.messages) == 2

    def test_root_hash_sees_everything(self):
        b = Broker()
        rec = Recorder()
        b.subscribe("/#", rec)
        b.publish("/a", 1.0, 1)
        b.publish("/a/b/c/d", 2.0, 2)
        assert len(rec.messages) == 2

    def test_hash_not_last_rejected(self):
        b = Broker()
        with pytest.raises(TopicError):
            b.subscribe("/a/#/b", Recorder())

    def test_mixed_wildcards(self):
        b = Broker()
        rec = Recorder()
        b.subscribe("/+/n1/#", rec)
        b.publish("/r1/n1/cpu/x", 1.0, 1)
        b.publish("/r2/n2/cpu/x", 2.0, 2)
        assert len(rec.messages) == 1


class TestUnsubscribe:
    def test_unsubscribe_stops_delivery(self):
        b = Broker()
        rec = Recorder()
        sid = b.subscribe("/a", rec)
        assert b.unsubscribe(sid) is True
        b.publish("/a", 1.0, 1)
        assert rec.messages == []

    def test_unsubscribe_unknown(self):
        assert Broker().unsubscribe(999) is False

    def test_unsubscribe_wildcard(self):
        b = Broker()
        rec = Recorder()
        sid = b.subscribe("/a/#", rec)
        b.unsubscribe(sid)
        b.publish("/a/b", 1.0, 1)
        assert rec.messages == []

    def test_subscription_count(self):
        b = Broker()
        sid = b.subscribe("/a", Recorder())
        b.subscribe("/b", Recorder())
        assert b.subscription_count() == 2
        b.unsubscribe(sid)
        assert b.subscription_count() == 1


class TestRetained:
    def test_retained_replayed_on_subscribe(self):
        b = Broker()
        b.publish("/a/conf", 42.0, 5, retain=True)
        rec = Recorder()
        b.subscribe("/a/conf", rec, replay_retained=True)
        assert rec.messages == [("/a/conf", 42.0, 5)]

    def test_retained_replay_honours_wildcards(self):
        b = Broker()
        b.publish("/a/x", 1.0, 1, retain=True)
        b.publish("/b/x", 2.0, 2, retain=True)
        rec = Recorder()
        b.subscribe("/a/#", rec, replay_retained=True)
        assert len(rec.messages) == 1

    def test_retained_lookup(self):
        b = Broker()
        b.publish("/a", 1.0, 1, retain=True)
        assert b.retained("/a") == Message("/a", 1.0, 1)
        assert b.retained("/b") is None

    def test_no_replay_without_flag(self):
        b = Broker()
        b.publish("/a", 1.0, 1, retain=True)
        rec = Recorder()
        b.subscribe("/a", rec)
        assert rec.messages == []


class TestCounters:
    def test_published_and_delivered(self):
        b = Broker()
        b.subscribe("/#", Recorder())
        b.subscribe("/a", Recorder())
        b.publish("/a", 1.0, 1)
        b.publish("/b", 2.0, 2)
        assert b.published_count == 2
        assert b.delivered_count == 3


class TestQueuedSubscriber:
    def test_enqueue_and_drain(self):
        b = Broker()
        q = QueuedSubscriber()
        q.attach(b, "/#")
        b.publish("/a", 1.0, 1)
        b.publish("/b", 2.0, 2)
        assert len(q) == 2
        msgs = q.drain()
        assert [m.topic for m in msgs] == ["/a", "/b"]
        assert len(q) == 0

    def test_drain_limit(self):
        b = Broker()
        q = QueuedSubscriber()
        q.attach(b, "/#")
        for i in range(5):
            b.publish("/t", float(i), i)
        assert len(q.drain(limit=2)) == 2
        assert len(q) == 3

    def test_bounded_queue_drops_and_counts(self):
        b = Broker()
        q = QueuedSubscriber(maxlen=2)
        q.attach(b, "/#")
        for i in range(4):
            b.publish("/t", float(i), i)
        assert len(q) == 2
        assert q.dropped == 2
        # deque(maxlen) keeps the newest entries
        assert [m.value for m in q.drain()] == [2.0, 3.0]


class TestPublishValidation:
    def test_wildcards_rejected_in_publish_topics(self):
        b = Broker()
        with pytest.raises(TopicError):
            b.publish("/a/+/b", 1.0, 1)
        with pytest.raises(TopicError):
            b.publish("/a/#", 1.0, 1)
