"""Tests for pattern expressions (Sections III-B/III-C)."""

import pytest

from repro.common.errors import ConfigError
from repro.core.pattern import PatternExpression, parse_expressions


class TestParsing:
    def test_paper_examples(self):
        e = PatternExpression.parse("<topdown+1>power")
        assert (e.anchor, e.offset, e.sensor, e.filter) == (
            "topdown", 1, "power", None,
        )
        e = PatternExpression.parse("<bottomup, filter cpu>cpu-cycles")
        assert (e.anchor, e.offset, e.sensor, e.filter) == (
            "bottomup", 0, "cpu-cycles", "cpu",
        )
        e = PatternExpression.parse("<bottomup-1>healthy")
        assert (e.anchor, e.offset) == ("bottomup", 1)

    def test_bare_sensor_name(self):
        e = PatternExpression.parse("power")
        assert e.anchor == "unit"
        assert e.sensor == "power"

    def test_whitespace_tolerated(self):
        e = PatternExpression.parse("< topdown + 2 , filter cpu[01] >x")
        assert e.offset == 2
        assert e.filter == "cpu[01]"

    def test_roundtrip_str(self):
        for text in (
            "<topdown+1>power",
            "<bottomup, filter cpu>cpu-cycles",
            "<bottomup-1>healthy",
            "power",
            "<topdown>x",
        ):
            assert str(PatternExpression.parse(text)) == text

    def test_rejects_wrong_direction(self):
        with pytest.raises(ConfigError):
            PatternExpression.parse("<topdown-1>x")
        with pytest.raises(ConfigError):
            PatternExpression.parse("<bottomup+1>x")

    def test_rejects_garbage(self):
        for bad in ("<sideways>x", "<topdown+>x", "<topdown", "", "<>x"):
            with pytest.raises(ConfigError):
                PatternExpression.parse(bad)

    def test_rejects_path_as_bare_name(self):
        with pytest.raises(ConfigError):
            PatternExpression.parse("/a/b/power")

    def test_rejects_bad_regex(self):
        with pytest.raises(ConfigError):
            PatternExpression.parse("<bottomup, filter [>x")

    def test_parse_expressions_helper(self):
        exprs = parse_expressions(["power", "<topdown>x"])
        assert len(exprs) == 2

    def test_zero_offset_explicit(self):
        assert PatternExpression.parse("<topdown+0>x").offset == 0


class TestDomains:
    def test_topdown_domain_is_racks(self, fig2_tree):
        e = PatternExpression.parse("<topdown>any")
        assert {n.name for n in e.domain(fig2_tree)} == {
            "r01", "r02", "r03", "r04",
        }

    def test_bottomup_domain_is_cpus(self, fig2_tree):
        e = PatternExpression.parse("<bottomup>any")
        assert len(e.domain(fig2_tree)) == 96

    def test_filter_restricts_domain(self, fig2_tree):
        e = PatternExpression.parse("<bottomup, filter cpu0>x")
        dom = e.domain(fig2_tree)
        assert len(dom) == 48
        assert all(n.name == "cpu0" for n in dom)

    def test_filter_is_regex(self, fig2_tree):
        e = PatternExpression.parse("<topdown, filter r0[12]>x")
        assert {n.name for n in e.domain(fig2_tree)} == {"r01", "r02"}

    def test_filter_on_full_path(self, fig2_tree):
        e = PatternExpression.parse("<bottomup-1, filter r01/c01/.*>x")
        assert len(e.domain(fig2_tree)) == 4

    def test_unit_anchor_needs_unit_node(self, fig2_tree):
        e = PatternExpression.parse("power")
        with pytest.raises(ConfigError):
            e.domain(fig2_tree)
        node = fig2_tree.node("/r01/c01")
        assert e.domain(fig2_tree, node) == [node]

    def test_empty_domain(self, fig2_tree):
        e = PatternExpression.parse("<topdown, filter zzz>x")
        assert e.domain(fig2_tree) == []
