"""Smoke tests for the example scripts.

Every example must at least byte-compile; the fastest ones run to
completion under a subprocess so API drift in the examples is caught by
the suite (the longer case-study examples are exercised through the
figure benchmarks instead).
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
BENCHMARKS_DIR = EXAMPLES_DIR.parent / "benchmarks"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))
ALL_CONFIG_SOURCES = ALL_EXAMPLES + sorted(BENCHMARKS_DIR.glob("*.py"))

#: Examples fast enough to execute inside the test suite.
FAST_EXAMPLES = ["quickstart.py", "ondemand_scheduling.py"]


def test_examples_exist():
    names = {p.name for p in ALL_EXAMPLES}
    for expected in (
        "quickstart.py",
        "power_prediction.py",
        "job_analysis.py",
        "cluster_anomalies.py",
        "feedback_loop.py",
        "ondemand_scheduling.py",
        "app_fingerprinting.py",
        "infrastructure_cooling.py",
        "job_duration_prediction.py",
        "virtual_sensors.py",
    ):
        assert expected in names


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize(
    "path", ALL_CONFIG_SOURCES, ids=lambda p: f"{p.parent.name}/{p.name}"
)
def test_static_analyzer_accepts_config_blocks(path):
    """Every config block shipped in examples/ and benchmarks/ must pass
    the static analyzer without errors (``wintermute-sim check``)."""
    from repro.analysis import (
        analyze_deployment,
        analyze_pipeline_blocks,
        extract_configs,
    )

    result = extract_configs(str(path))
    diags = []
    blocks = []
    for cfg in result.configs:
        if cfg.kind == "block":
            blocks.append(cfg.value)
        elif cfg.kind == "blocks":
            blocks.extend(cfg.value)
        else:  # full deployment spec: tree-based analysis
            diags.extend(
                analyze_deployment(
                    cfg.value, known_plugins=result.local_plugins
                )
            )
    diags.extend(
        analyze_pipeline_blocks(blocks, known_plugins=result.local_plugins)
    )
    errors = [d.format() for d in diags if d.severity == "error"]
    assert not errors, errors


ALL_JSON_SPECS = sorted(EXAMPLES_DIR.glob("*.json"))


def test_json_specs_exist():
    assert {p.name for p in ALL_JSON_SPECS} >= {
        "quickstart_deployment.json",
        "parallel_analytics.json",
    }


@pytest.mark.parametrize("path", ALL_JSON_SPECS, ids=lambda p: p.name)
def test_flow_analyzer_accepts_json_spec(path):
    """Every shipped JSON deployment spec must be F-error-free under the
    dataflow analyzer (``wintermute-sim check --flow``)."""
    import json

    from repro.analysis.flow import analyze_flow

    spec = json.loads(path.read_text())
    diags = analyze_flow(spec)
    errors = [d.format() for d in diags if d.severity == "error"]
    assert not errors, errors


@pytest.mark.parametrize(
    "path", ALL_CONFIG_SOURCES, ids=lambda p: f"{p.parent.name}/{p.name}"
)
def test_flow_analyzer_accepts_config_deployments(path):
    """Deployment specs embedded in examples/ and benchmarks/ must also
    pass the dataflow pass (analyze_deployment with flow=True)."""
    from repro.analysis import analyze_deployment, extract_configs

    result = extract_configs(str(path))
    for cfg in result.configs:
        if cfg.kind in ("block", "blocks"):
            continue
        diags = analyze_deployment(
            cfg.value, known_plugins=result.local_plugins, flow=True
        )
        errors = [
            d.format() for d in diags
            if d.severity == "error" and d.code.startswith("F")
        ]
        assert not errors, errors


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"
