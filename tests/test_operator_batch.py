"""Batched data plane: compiled plans, kernel parity, batched sinks.

Covers the PR-4 tentpole: ``QueryEngine.query_relative_batch`` backed by
compiled query plans with generation-counter invalidation, vectorized
``compute_batch`` implementations (bit-for-bit parity with the scalar
per-unit path), the persistent operator worker pool, and the batched
store/publish fan-out.
"""

import math

import numpy as np
import pytest

from repro.common.errors import ConfigError, TopicError
from repro.common.timeutil import NS_PER_SEC
from repro.core.operator import OperatorBase, OperatorConfig
from repro.core.queryengine import QueryEngine
from repro.dcdb.cache import SensorCache
from repro.dcdb.mqtt import Broker, Message
from repro.dcdb.pusher import Pusher
from repro.dcdb.sensor import Sensor
from repro.core.units import Unit
from repro.plugins.aggregator import AggregatorOperator
from repro.plugins.health import HealthOperator
from repro.plugins.persyst import PerSystOperator
from repro.plugins.smoother import SmootherOperator
from repro.sanitizer import hooks
from repro.simulator.clock import TaskScheduler

WINDOW = 5 * NS_PER_SEC
NOW = 100 * NS_PER_SEC


class Host:
    """Minimal query/store host over hand-built caches."""

    def __init__(self, topic_readings):
        self.caches = {}
        self.stored = []
        for topic, readings in topic_readings.items():
            cache = SensorCache(64, interval_ns=NS_PER_SEC)
            for ts, value in readings:
                cache.store(ts, value)
            self.caches[topic] = cache

    def cache_for(self, topic):
        return self.caches.get(topic)

    @property
    def storage(self):
        return None

    def sensor_topics(self):
        return sorted(self.caches)

    def store_reading(self, sensor, ts, value):
        self.stored.append((sensor.topic, ts, value))


def series(n, scale=1.0, start_ts=0):
    """n noisy-but-deterministic readings, one per second."""
    return [
        (start_ts + i * NS_PER_SEC, math.sin(i * 0.7) * scale + i * 0.01)
        for i in range(n)
    ]


def make_unit(name, inputs, out_names):
    return Unit(
        name=name,
        level=0,
        inputs=list(inputs),
        outputs=[
            Sensor(f"{name}/{o}", is_operator_output=True) for o in out_names
        ],
    )


def bound(op_cls, config, host, **kwargs):
    op = op_cls(config, **kwargs)
    op.bind(host, QueryEngine(host))
    return op


def assert_same_results(scalar, batch):
    assert [r.unit.name for r in scalar] == [r.unit.name for r in batch]
    for rs, rb in zip(scalar, batch):
        assert set(rs.values) == set(rb.values)
        for key in rs.values:
            vs, vb = rs.values[key], rb.values[key]
            if math.isnan(vs) or math.isnan(vb):
                assert math.isnan(vs) and math.isnan(vb), (key, vs, vb)
            else:
                assert vs == vb, (key, vs, vb)


def run_both(op_cls, cfg_kwargs, units, topic_readings, passes=1, **op_kwargs):
    """Run scalar and batch twins over identical hosts; return results."""
    out = []
    for batch in (False, True):
        host = Host(topic_readings)
        cfg = OperatorConfig(batch=batch, **cfg_kwargs)
        op = bound(op_cls, cfg, host, **op_kwargs)
        op.set_units(units)
        op.start()
        results = None
        for i in range(passes):
            results = op.compute(NOW + i * NS_PER_SEC)
        out.append((op, host, results))
    (op_s, host_s, res_s), (op_b, host_b, res_b) = out
    assert op_s.batch_enabled() is False
    assert op_b.batch_enabled() is True
    assert_same_results(res_s, res_b)
    assert len(host_s.stored) == len(host_b.stored)
    for (topic_s, ts_s, val_s), (topic_b, ts_b, val_b) in zip(
        host_s.stored, host_b.stored
    ):
        assert (topic_s, ts_s) == (topic_b, ts_b)
        assert val_s == val_b or (math.isnan(val_s) and math.isnan(val_b))
    assert op_s.error_count == op_b.error_count
    return res_s, res_b


# ----------------------------------------------------------------------
# Engine-level batch queries
# ----------------------------------------------------------------------


class TestQueryRelativeBatch:
    def test_rows_match_scalar_queries(self):
        host = Host({
            "/n0/power": series(10),
            "/n1/power": series(3, scale=2.0),
        })
        engine = QueryEngine(host)
        win = engine.query_relative_batch(
            ["/n0/power", "/n1/power", "/n2/missing"], WINDOW
        )
        assert win.width == 6  # 5 s window at 1 s sampling -> 6 readings
        v0 = engine.query_relative("/n0/power", WINDOW)
        assert np.array_equal(win.row_values(0), v0.values())
        assert np.array_equal(win.row_timestamps(0), v0.timestamps())
        v1 = engine.query_relative("/n1/power", WINDOW)
        assert int(win.counts[1]) == 3  # short window: right-aligned
        assert np.array_equal(win.row_values(1), v1.values())
        assert int(win.counts[2]) == 0  # scalar path would raise

    def test_mask_and_padding(self):
        host = Host({"/a/x": series(2), "/a/y": series(6)})
        engine = QueryEngine(host)
        win = engine.query_relative_batch(["/a/x", "/a/y"], WINDOW)
        mask = win.mask
        assert mask.shape == (2, 6)
        assert mask[0].tolist() == [False] * 4 + [True] * 2
        assert mask[1].all()
        assert np.isnan(win.values[0, :4]).all()
        assert (win.timestamps[0, :4] == 0).all()

    def test_window_zero_returns_latest(self):
        host = Host({"/a/x": series(5)})
        engine = QueryEngine(host)
        win = engine.query_relative_batch(["/a/x"], 0)
        assert win.width == 1
        latest = engine.latest("/a/x")
        assert win.last_values()[0] == latest.values()[-1]
        assert win.newest_timestamps()[0] == latest.timestamps()[-1]

    def test_ring_wraparound_rows(self):
        cache = SensorCache(8, interval_ns=NS_PER_SEC)
        host = Host({})
        host.caches["/a/x"] = cache
        for ts, v in series(20):  # wraps the 8-slot ring twice
            cache.store(ts, v)
        engine = QueryEngine(host)
        win = engine.query_relative_batch(["/a/x"], WINDOW)
        view = engine.query_relative("/a/x", WINDOW)
        assert np.array_equal(win.row_values(0), view.values())
        assert np.array_equal(win.row_timestamps(0), view.timestamps())


class TestQueryPlans:
    def test_plan_cached_and_hit_counted(self):
        host = Host({"/a/x": series(10)})
        engine = QueryEngine(host)
        engine.query_relative_batch(["/a/x"], WINDOW, key="op")
        engine.query_relative_batch(["/a/x"], WINDOW, key="op")
        engine.query_relative_batch(["/a/x"], WINDOW, key="op")
        reg = engine.telemetry
        assert reg.counter("qe_plan_compiles_total").value == 1
        assert reg.counter("qe_plan_hits_total").value == 2
        assert reg.counter("qe_plan_invalidations_total").value == 0

    def test_hot_plugged_topic_invalidates_plan(self):
        """Regression: a topic appearing after compile time must be
        picked up once the sensor space is refreshed.  Fails without the
        navigator/tree generation counter (the stale plan would keep
        returning the empty miss row forever)."""
        host = Host({"/a/x": series(10)})
        engine = QueryEngine(host)
        win = engine.query_relative_batch(["/a/x", "/a/new"], WINDOW, key="op")
        assert int(win.counts[1]) == 0
        # Hot-plug the sensor on the host, then refresh the sensor space.
        cache = SensorCache(64, interval_ns=NS_PER_SEC)
        for ts, v in series(10):
            cache.store(ts, v)
        host.caches["/a/new"] = cache
        engine.refresh_navigator()
        win = engine.query_relative_batch(["/a/x", "/a/new"], WINDOW, key="op")
        assert int(win.counts[1]) == 6
        assert np.array_equal(
            win.row_values(1), engine.query_relative("/a/new", WINDOW).values()
        )
        assert engine.telemetry.counter("qe_plan_invalidations_total").value == 1
        assert engine.telemetry.counter("qe_plan_compiles_total").value == 2

    def test_in_place_tree_mutation_invalidates_plan(self):
        host = Host({"/a/x": series(10)})
        engine = QueryEngine(host)
        engine.query_relative_batch(["/a/x"], WINDOW, key="op")
        gen_before = engine.navigator.generation
        engine.navigator.tree.add_sensor("/a/hotplug")
        assert engine.navigator.generation != gen_before
        engine.query_relative_batch(["/a/x"], WINDOW, key="op")
        assert engine.telemetry.counter("qe_plan_invalidations_total").value == 1

    def test_changed_topics_or_window_recompile(self):
        host = Host({"/a/x": series(10), "/a/y": series(10)})
        engine = QueryEngine(host)
        engine.query_relative_batch(["/a/x"], WINDOW, key="op")
        engine.query_relative_batch(["/a/y"], WINDOW, key="op")
        engine.query_relative_batch(["/a/y"], 2 * WINDOW, key="op")
        assert engine.telemetry.counter("qe_plan_compiles_total").value == 3
        assert engine.telemetry.counter("qe_plan_invalidations_total").value == 2

    def test_sanitizer_active_uses_scalar_path(self, monkeypatch):
        host = Host({"/a/x": series(10)})
        engine = QueryEngine(host)

        class _San:
            views = 0

            def on_query_view(self, topic, view):
                _San.views += 1

        monkeypatch.setattr(hooks, "CURRENT", _San())
        win = engine.query_relative_batch(["/a/x"], WINDOW)
        assert int(win.counts[0]) == 6
        assert _San.views == 1  # per-view invariant hook still fired
        assert engine.telemetry.counter("qe_plan_compiles_total").value == 0


# ----------------------------------------------------------------------
# Batch/scalar parity per plugin
# ----------------------------------------------------------------------


AGG_OPS = {
    "out_mean": "mean", "out_std": "std", "out_min": "min", "out_max": "max",
    "out_sum": "sum", "out_median": "median", "out_count": "count",
    "out_last": "last", "out_q90": "q90", "out_delta": "delta",
    "out_rate": "rate",
}


class TestAggregatorParity:
    def unit_for(self, name, inputs):
        return make_unit(name, inputs, list(AGG_OPS))

    def test_uniform_single_input(self):
        topics = {f"/n{i}/power": series(10, scale=1.0 + i) for i in range(4)}
        units = [self.unit_for(f"/n{i}", [f"/n{i}/power"]) for i in range(4)]
        run_both(
            AggregatorOperator,
            dict(name="agg", window_ns=WINDOW, params={"ops": AGG_OPS}),
            units, topics,
        )

    def test_multi_input_pooled(self):
        topics = {f"/n0/c{i}/load": series(10, scale=0.5 * i) for i in range(3)}
        units = [self.unit_for("/n0", sorted(topics))]
        run_both(
            AggregatorOperator,
            dict(name="agg", window_ns=WINDOW, params={"ops": AGG_OPS}),
            units, topics,
        )

    def test_short_and_ragged_windows(self):
        topics = {
            "/n0/power": series(10),
            "/n1/power": series(2),   # shorter than the window
            "/n2/power": series(1),   # single reading: delta/rate are NaN
        }
        units = [
            self.unit_for(f"/n{i}", [f"/n{i}/power"]) for i in range(3)
        ]
        run_both(
            AggregatorOperator,
            dict(name="agg", window_ns=WINDOW, params={"ops": AGG_OPS}),
            units, topics,
        )

    def test_all_missing_unit_errors_match(self):
        topics = {"/n0/power": series(10)}
        units = [
            self.unit_for("/n0", ["/n0/power"]),
            self.unit_for("/gone", ["/gone/power"]),
        ]
        res_s, res_b = run_both(
            AggregatorOperator,
            dict(name="agg", window_ns=WINDOW, params={"ops": AGG_OPS}),
            units, topics,
        )
        assert [r.unit.name for r in res_b] == ["/n0"]

    def test_window_zero_latest_only(self):
        topics = {f"/n{i}/power": series(10) for i in range(2)}
        units = [self.unit_for(f"/n{i}", [f"/n{i}/power"]) for i in range(2)]
        run_both(
            AggregatorOperator,
            dict(name="agg", window_ns=0, params={"ops": AGG_OPS}),
            units, topics,
        )


class TestSmootherParity:
    @pytest.mark.parametrize("alpha", [None, 0.3])
    def test_uniform(self, alpha):
        topics = {f"/n{i}/temp": series(10, scale=3.0) for i in range(4)}
        units = [
            make_unit(f"/n{i}", [f"/n{i}/temp"], ["smooth"]) for i in range(4)
        ]
        params = {} if alpha is None else {"alpha": alpha}
        run_both(
            SmootherOperator,
            dict(name="sm", window_ns=WINDOW, params=params),
            units, topics,
        )

    @pytest.mark.parametrize("alpha", [None, 0.5])
    def test_ragged_missing_and_inputless(self, alpha):
        topics = {"/n0/temp": series(10), "/n1/temp": series(3)}
        units = [
            make_unit("/n0", ["/n0/temp"], ["smooth"]),
            make_unit("/n1", ["/n1/temp"], ["smooth"]),
            make_unit("/gone", ["/gone/temp"], ["smooth"]),
            make_unit("/empty", [], ["smooth"]),
        ]
        params = {} if alpha is None else {"alpha": alpha}
        run_both(
            SmootherOperator,
            dict(name="sm", window_ns=WINDOW, params=params),
            units, topics,
        )


class TestPerSystParity:
    def test_decile_reduction(self):
        topics = {
            f"/n{i}/cpu{c}/cpi": series(10, scale=0.1 + 0.2 * c)
            for i in range(2) for c in range(8)
        }
        out_names = PerSystOperator(
            OperatorConfig(name="tmp", params={"statistics": ["mean", "std"]})
        ).job_output_names()
        units = [
            make_unit(
                f"/job{i}",
                sorted(t for t in topics if t.startswith(f"/n{i}/")),
                out_names,
            )
            for i in range(2)
        ]
        run_both(
            PerSystOperator,
            dict(
                name="ps", window_ns=WINDOW,
                params={"statistics": ["mean", "std"]},
            ),
            units, topics,
        )

    def test_partially_missing_cores_skipped(self):
        topics = {"/n0/cpu0/cpi": series(10), "/n0/cpu1/cpi": series(4)}
        out_names = PerSystOperator(OperatorConfig(name="t")).job_output_names()
        units = [
            make_unit(
                "/job0",
                ["/n0/cpu0/cpi", "/n0/cpu1/cpi", "/n0/cpu2/cpi"],
                out_names,
            ),
            make_unit("/job1", ["/gone/cpu0/cpi"], out_names),
        ]
        res_s, res_b = run_both(
            PerSystOperator,
            dict(name="ps", window_ns=WINDOW),
            units, topics,
        )
        # job1 has no data at all: silently skipped, not an error.
        assert [r.unit.name for r in res_b] == ["/job0"]


class TestHealthParity:
    CFG = dict(
        name="hp", window_ns=WINDOW,
        params={"bounds": {"temp": [-1.0, 1.0]}, "trip_count": 2},
    )

    def test_hysteresis_over_passes(self):
        topics = {
            "/n0/temp": series(10, scale=0.5),   # in bounds
            "/n1/temp": series(10, scale=50.0),  # violates repeatedly
            "/n0/other": series(10),             # unbounded: never queried
        }
        units = [
            make_unit("/n0", ["/n0/temp", "/n0/other"], ["healthy"]),
            make_unit("/n1", ["/n1/temp"], ["healthy"]),
        ]
        res_s, res_b = run_both(
            HealthOperator, self.CFG, units, topics, passes=3
        )
        by_name = {r.unit.name: r.values for r in res_b}
        assert by_name["/n0"]["healthy"] == 1.0
        assert by_name["/n1"]["healthy"] == 0.0  # tripped after 2 passes

    def test_missing_bounded_topic_errors_both_paths(self):
        topics = {"/n0/temp": series(10, scale=0.5)}
        units = [
            make_unit("/n0", ["/n0/temp"], ["healthy"]),
            make_unit("/n1", ["/n1/temp"], ["healthy"]),
        ]
        res_s, res_b = run_both(HealthOperator, self.CFG, units, topics)
        assert [r.unit.name for r in res_b] == ["/n0"]

    def test_ragged_windows(self):
        topics = {"/n0/temp": series(10, scale=0.5), "/n1/temp": series(2, scale=0.5)}
        units = [
            make_unit("/n0", ["/n0/temp"], ["healthy"]),
            make_unit("/n1", ["/n1/temp"], ["healthy"]),
        ]
        run_both(HealthOperator, self.CFG, units, topics)


# ----------------------------------------------------------------------
# Operator-level batch plumbing
# ----------------------------------------------------------------------


class TestBatchKnob:
    def test_bad_value_rejected(self):
        with pytest.raises(ConfigError):
            OperatorConfig(name="x", batch="sometimes")

    def test_default_fallback_used_without_override(self):
        """batch=true on a plugin without a kernel still produces the
        scalar results through the default compute_batch."""

        class Doubler(OperatorBase):
            def compute_unit(self, unit, ts):
                view = self.engine.latest(unit.inputs[0])
                return {s.name: 2.0 * view.values()[-1] for s in unit.outputs}

        host = Host({"/n0/x": series(10)})
        op = bound(Doubler, OperatorConfig(name="d", batch=True), host)
        op.set_units([make_unit("/n0", ["/n0/x"], ["twice"])])
        op.start()
        assert op.batch_enabled()
        results = op.compute(NOW)
        assert len(results) == 1
        view = op.engine.latest("/n0/x")
        assert results[0].values == {"twice": 2.0 * view.values()[-1]}

    def test_auto_requires_supports_batch(self):
        host = Host({"/a/x": series(5)})
        agg = bound(
            AggregatorOperator,
            OperatorConfig(name="a", params={"ops": {"*": "mean"}}),
            host,
        )
        assert agg.supports_batch and agg.batch_enabled()
        assert not bound(
            AggregatorOperator,
            OperatorConfig(name="b", batch=False, params={"ops": {"*": "mean"}}),
            host,
        ).batch_enabled()

    def test_sanitizer_vetoes_batch(self, monkeypatch):
        host = Host({"/a/x": series(5)})
        agg = bound(
            AggregatorOperator,
            OperatorConfig(name="a", batch=True, params={"ops": {"*": "mean"}}),
            host,
        )
        monkeypatch.setattr(hooks, "CURRENT", object())
        assert not agg.batch_enabled()


class TestPersistentPool:
    def make_op(self):
        class Noop(OperatorBase):
            def compute_unit(self, unit, ts):
                return {s.name: 1.0 for s in unit.outputs}

        host = Host({"/n0/x": series(5), "/n1/x": series(5)})
        op = bound(
            Noop,
            OperatorConfig(name="p", unit_mode="parallel", max_workers=2),
            host,
        )
        op.set_units([
            make_unit("/n0", ["/n0/x"], ["o"]),
            make_unit("/n1", ["/n1/x"], ["o"]),
        ])
        return op

    def test_pool_persists_across_passes(self):
        op = self.make_op()
        op.start()
        pool = op._pool
        assert pool is not None
        op.compute(NOW)
        op.compute(NOW + NS_PER_SEC)
        assert op._pool is pool  # not rebuilt per pass
        op.stop()
        assert op._pool is None

    def test_chunked_results_preserve_unit_order(self):
        op = self.make_op()
        op.start()
        results = op.compute(NOW)
        assert [r.unit.name for r in results] == ["/n0", "/n1"]
        op.stop()

    def test_sequential_operator_never_builds_pool(self):
        class Noop(OperatorBase):
            def compute_unit(self, unit, ts):
                return {}

        host = Host({})
        op = bound(Noop, OperatorConfig(name="s"), host)
        op.start()
        assert op._pool is None
        op.stop()


class TestBatchedSinks:
    def test_broker_publish_batch_matches_sequential(self):
        seen = []
        broker = Broker()
        broker.subscribe("/a/#", lambda t, v, ts: seen.append((t, v, ts)))
        n = broker.publish_batch([
            Message("/a/x", 1.0, 10),
            Message("/a/y", 2.0, 10),
            Message("/b/z", 3.0, 10),  # no subscriber
        ])
        assert n == 2
        assert seen == [("/a/x", 1.0, 10), ("/a/y", 2.0, 10)]
        assert broker.published_count == 3
        assert broker.delivered_count == 2

    def test_publish_batch_rejects_wildcards(self):
        broker = Broker()
        with pytest.raises(TopicError):
            broker.publish_batch([Message("/a/+", 1.0, 0)])

    def test_pusher_store_readings_batch(self):
        broker = Broker()
        pusher = Pusher("/n0", broker, TaskScheduler())
        seen = []
        broker.subscribe("/#", lambda t, v, ts: seen.append((t, v)))
        outs = [
            Sensor("/n0/out_a", is_operator_output=True),
            Sensor("/n0/out_b", publish=False, is_operator_output=True),
        ]
        pusher.store_readings_batch(NOW, [(outs[0], 1.5), (outs[1], 2.5)])
        # Lazy cache creation + caching match store_reading semantics.
        assert pusher.cache_for("/n0/out_a").latest().value == 1.5
        assert pusher.cache_for("/n0/out_b").latest().value == 2.5
        # Only publishable sensors hit the broker, in order.
        assert seen == [("/n0/out_a", 1.5)]

    def test_operator_uses_batched_sink(self):
        calls = []

        class SinkHost(Host):
            def store_readings_batch(self, ts, readings):
                calls.append((ts, list(readings)))
                for sensor, value in readings:
                    self.stored.append((sensor.topic, ts, value))

        host = SinkHost({"/n0/x": series(10)})
        op = bound(
            AggregatorOperator,
            OperatorConfig(
                name="a", window_ns=WINDOW, params={"ops": {"*": "mean"}}
            ),
            host,
        )
        op.set_units([make_unit("/n0", ["/n0/x"], ["m"])])
        op.start()
        op.compute(NOW)
        assert len(calls) == 1 and len(host.stored) == 1


class TestCacheViewReadings:
    def test_readings_fast_path_and_iter(self):
        cache = SensorCache(8, interval_ns=NS_PER_SEC)
        for ts, v in series(5):
            cache.store(ts, v)
        view = cache.view_relative(WINDOW)
        readings = view.readings()
        assert readings == list(view)
        assert all(
            isinstance(r.timestamp, int) and isinstance(r.value, float)
            for r in readings
        )
        assert [r.value for r in readings] == view.values().tolist()
