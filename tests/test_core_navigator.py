"""Tests for the Sensor Navigator."""

import pytest

from repro.common.errors import QueryError
from repro.core.navigator import SensorNavigator


@pytest.fixture
def nav(fig2_tree):
    return SensorNavigator(fig2_tree)


class TestNavigation:
    def test_sensors_of_component(self, nav):
        assert nav.sensors_of("/r01/c01") == [
            "/r01/c01/inlet-temp",
            "/r01/c01/power",
        ]

    def test_subtree_sensors(self, nav):
        sensors = nav.subtree_sensors("/r01/c01/s01")
        assert len(sensors) == 5  # memfree + 2 cpus * 2 counters

    def test_children(self, nav):
        assert nav.children("/r01") == ["/r01/c01", "/r01/c02", "/r01/c03"]

    def test_parent(self, nav):
        assert nav.parent("/r01/c01") == "/r01"
        assert nav.parent("/r01") is None

    def test_level_of(self, nav):
        assert nav.level_of("/r01/c01/s01") == 2

    def test_components_at_level(self, nav):
        assert len(nav.components_at_level(0)) == 4

    def test_depth(self, nav):
        assert nav.depth == 3

    def test_has_sensor(self, nav):
        assert nav.has_sensor("/r01/c01/power")
        assert not nav.has_sensor("/r01/c01/zzz")

    def test_unknown_component_raises(self, nav):
        with pytest.raises(QueryError):
            nav.sensors_of("/nope")


class TestSearch:
    def test_regex_search(self, nav):
        hits = nav.search_sensors(r"r02/.*power$")
        assert len(hits) == 3  # 3 chassis in r02

    def test_bad_regex_raises(self, nav):
        with pytest.raises(QueryError):
            nav.search_sensors("[")


class TestCommonAncestor:
    def test_same_chassis(self, nav):
        assert (
            nav.common_ancestor("/r01/c01/s01", "/r01/c01/s02") == "/r01/c01"
        )

    def test_cross_rack_is_root(self, nav):
        assert nav.common_ancestor("/r01/c01", "/r02/c01") == "/"

    def test_ancestor_of_itself(self, nav):
        assert nav.common_ancestor("/r01/c01", "/r01/c01") == "/r01/c01"

    def test_direct_line(self, nav):
        assert (
            nav.common_ancestor("/r01/c01", "/r01/c01/s01/cpu0") == "/r01/c01"
        )


class TestRebuild:
    def test_rebuild_replaces_tree(self, nav):
        nav.rebuild(["/x/y/new-sensor"])
        assert nav.has_sensor("/x/y/new-sensor")
        assert not nav.has_sensor("/r01/c01/power")

    def test_from_topics(self):
        nav = SensorNavigator.from_topics(["/a/b/c"])
        assert nav.has_sensor("/a/b/c")
