"""Tests for `check --runtime`, --fail-on, schema_version and env gating."""

import json
import pathlib

from repro.cli import main

DATA_DIR = pathlib.Path(__file__).resolve().parent / "data"
RACY = DATA_DIR / "racy_deployment.json"
CLEAN = DATA_DIR / "clean_deployment.json"
RUNTIME_GOLDEN = DATA_DIR / "racy_deployment.runtime.golden.json"


def run_check(capsys, *argv):
    code = main(["check", *argv])
    return code, capsys.readouterr().out


class TestRuntimeCheck:
    def test_racy_fixture_matches_golden(self, capsys):
        code, out = run_check(
            capsys, "--runtime", str(RACY), "--format", "json"
        )
        assert code == 1
        got = json.loads(out)
        expected = json.loads(RUNTIME_GOLDEN.read_text())
        # Normalize the invocation path (absolute here, repo-relative in
        # the golden file) in both diagnostics and the runtime section.
        rel = "tests/data/racy_deployment.json"
        for diag in got["diagnostics"]:
            assert diag["file"].endswith("racy_deployment.json")
            diag["file"] = rel
        got["runtime"] = {
            rel: events for events in got["runtime"].values()
        }
        assert got == expected

    def test_clean_fixture_passes(self, capsys):
        code, out = run_check(capsys, "--runtime", str(CLEAN))
        assert code == 0
        assert "0 error(s)" in out
        assert "R00" not in out

    def test_racy_text_output_names_rules(self, capsys):
        code, out = run_check(capsys, "--runtime", str(RACY))
        assert code == 1
        assert "error R004" in out
        assert "error R005" in out
        assert "runtime" in out  # event summary line

    def test_runtime_duration_flag(self, capsys):
        code, out = run_check(
            capsys, "--runtime", str(CLEAN), "--runtime-duration", "2",
            "--format", "json",
        )
        assert code == 0
        got = json.loads(out)
        events = next(iter(got["runtime"].values()))
        # 2 simulated seconds: far fewer passes than the default 10 s
        # run of the same fixture (22).
        assert 0 < events["compute_passes"] <= 8

    def test_combines_with_static_and_lint(self, capsys):
        code, out = run_check(
            capsys, "--config", str(RACY), "--runtime", str(CLEAN), "-q"
        )
        assert code == 0


class TestFailOn:
    def warn_config(self, tmp_path):
        path = tmp_path / "warn.json"
        path.write_text(json.dumps({
            "plugin": "aggregator",
            "operators": {
                "a": {"relaxed": True,
                      "inputs": ["<bottomup>power"],
                      "outputs": ["<bottomup>x"]},
                "b": {"relaxed": True,
                      "inputs": ["<bottomup>power"],
                      "outputs": ["<bottomup, filter z>x"]},
            },
        }))
        return path

    def test_default_passes_on_warnings(self, capsys, tmp_path):
        code, _ = run_check(capsys, "--config", str(self.warn_config(tmp_path)))
        assert code == 0

    def test_fail_on_warning(self, capsys, tmp_path):
        code, _ = run_check(
            capsys, "--config", str(self.warn_config(tmp_path)),
            "--fail-on", "warning",
        )
        assert code == 1

    def test_fail_on_info(self, capsys, tmp_path):
        # W013 unit-cardinality notes are info-severity.
        code, _ = run_check(
            capsys, "--config", str(CLEAN), "--fail-on", "info"
        )
        assert code == 1

    def test_strict_still_implies_fail_on_warning(self, capsys, tmp_path):
        code, _ = run_check(
            capsys, "--config", str(self.warn_config(tmp_path)), "--strict"
        )
        assert code == 1


class TestSchemaVersion:
    def test_json_carries_schema_version(self, capsys):
        code, out = run_check(
            capsys, "--config", str(CLEAN), "--format", "json"
        )
        got = json.loads(out)
        assert got["schema_version"] == 4
        assert "runtime" not in got  # only present for --runtime runs

    def test_nothing_to_do_mentions_runtime(self, capsys):
        code = main(["check"])
        assert code == 2
        assert "--runtime" in capsys.readouterr().err


class TestEnvActivation:
    def test_sanitized_run_reports_to_stderr(self, capsys, monkeypatch):
        monkeypatch.setenv("WINTERMUTE_SANITIZE", "1")
        code = main([
            "run", "--config", str(CLEAN), "--duration", "3",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "sanitizer: 0 finding(s)" in captured.err

    def test_findings_do_not_change_exit_code(self, capsys, monkeypatch):
        monkeypatch.setenv("WINTERMUTE_SANITIZE", "1")
        code = main([
            "run", "--config", str(RACY), "--duration", "3",
        ])
        assert code == 0  # observability switch, not a gate
        captured = capsys.readouterr()
        assert "R004" in captured.err
        assert "finding(s)" in captured.err

    def test_env_off_means_no_sanitizer_output(self, capsys, monkeypatch):
        monkeypatch.delenv("WINTERMUTE_SANITIZE", raising=False)
        code = main([
            "run", "--config", str(CLEAN), "--duration", "2",
        ])
        assert code == 0
        assert "sanitizer" not in capsys.readouterr().err
