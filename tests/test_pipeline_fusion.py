"""Pipeline fusion: planner, fused runtime, parity, fallback, analysis.

The fusion contract is *strict semantics preservation*: a fused group
must store bit-for-bit what the staged pipeline would have stored, under
missing data, quarantined units, hot-plugged sensor spaces and an active
sanitizer (which vetoes fusion entirely for the pass).  Every parity
test here runs the same pipeline twice — staged computes vs one
:class:`~repro.core.fusion.FusedGroup` — over identical input streams
and compares the terminal stores exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.flow import analyze_flow
from repro.common.errors import ConfigError
from repro.common.timeutil import NS_PER_SEC
from repro.core.fusion import FusedGroup
from repro.core.operator import OperatorConfig
from repro.core.pipeline import FusionSpec, plan_fusion
from repro.core.queryengine import QueryEngine
from repro.core.units import Unit
from repro.dcdb.cache import SensorCache
from repro.dcdb.sensor import Sensor
from repro.deploy import build_deployment
from repro.plugins.aggregator import AggregatorOperator
from repro.plugins.health import HealthOperator
from repro.plugins.persyst import PerSystOperator
from repro.plugins.smoother import SmootherOperator
from repro.sanitizer.core import Sanitizer
from repro.telemetry import MetricRegistry

N_UNITS = 8
CACHE_WINDOW_NS = 180 * NS_PER_SEC


class Host:
    """Pusher-shaped test host: caches, no storage, recorded stores."""

    def __init__(self, input_topics) -> None:
        self.name = "host"
        self.cache_window_ns = CACHE_WINDOW_NS
        self.caches = {
            t: SensorCache.for_duration(self.cache_window_ns, NS_PER_SEC)
            for t in input_topics
        }
        self.stored: dict = {}

    @property
    def storage(self):
        return None

    def sensor_topics(self):
        return list(self.caches)

    def cache_for(self, topic):
        return self.caches.get(topic)

    def feed(self, ts, topic, value):
        self.caches[topic].store_batch(
            np.asarray([ts], dtype=np.int64), np.asarray([value])
        )

    def store_reading(self, sensor, ts, value):
        self.stored.setdefault(sensor.topic, []).append((ts, float(value)))
        cache = self.caches.get(sensor.topic)
        if cache is None:
            cache = self.caches[sensor.topic] = SensorCache.for_duration(
                self.cache_window_ns, NS_PER_SEC
            )
        cache.store_batch(
            np.asarray([ts], dtype=np.int64), np.asarray([value])
        )

    def store_readings_batch(self, ts, readings):
        for sensor, value in readings:
            self.store_reading(sensor, ts, value)


def unit_for(i: int, in_name: str, out_name: str) -> Unit:
    return Unit(
        name=f"/n{i}",
        level=0,
        inputs=[f"/n{i}/{in_name}"],
        outputs=[Sensor(f"/n{i}/{out_name}", is_operator_output=True)],
    )


def build_chain(n_units: int = N_UNITS):
    """One pipeline instance: smoother -> aggregator -> aggregator."""
    host = Host([f"/n{i}/power" for i in range(n_units)])
    engine = QueryEngine(host)
    stages = [
        (SmootherOperator, OperatorConfig(
            name="sm", window_ns=5 * NS_PER_SEC, publish_outputs=False,
        ), "power", "sm"),
        (AggregatorOperator, OperatorConfig(
            name="ag", window_ns=10 * NS_PER_SEC, publish_outputs=False,
            params={"ops": {"*": "mean"}},
        ), "sm", "ag"),
        (AggregatorOperator, OperatorConfig(
            name="mx", window_ns=20 * NS_PER_SEC,
            params={"ops": {"*": "max"}},
        ), "ag", "mx"),
    ]
    ops = []
    for cls, config, in_name, out_name in stages:
        op = cls(config)
        op.bind(host, engine)
        op.set_units([unit_for(i, in_name, out_name) for i in range(n_units)])
        op.start()
        ops.append(op)
    return host, engine, ops


def run_both(ticks, feed=None, skip=(), n_units: int = N_UNITS):
    """Run staged and fused executions over one input stream.

    ``feed(tick, i)`` produces unit ``i``'s reading (None = no reading);
    ``skip`` unit indices never produce at all (missing-data parity).
    Returns (staged_host, fused_host, staged_ops, fused_ops, group).
    """
    rng = np.random.default_rng(7)
    staged_host, _, staged_ops = build_chain(n_units)
    fused_host, fused_engine, fused_ops = build_chain(n_units)
    group = FusedGroup(
        name="t:fused", ops=fused_ops, host=fused_host, engine=fused_engine
    )
    for tick in range(1, ticks + 1):
        ts = tick * NS_PER_SEC
        for i in range(n_units):
            if i in skip:
                continue
            value = feed(tick, i) if feed else float(rng.random())
            if value is None:
                continue
            staged_host.feed(ts, f"/n{i}/power", value)
            fused_host.feed(ts, f"/n{i}/power", value)
        for op in staged_ops:
            op.compute(ts)
        group.run(ts)
    return staged_host, fused_host, staged_ops, fused_ops, group


def final_series(host, n_units: int = N_UNITS, out: str = "mx"):
    return {
        f"/n{i}/{out}": host.stored.get(f"/n{i}/{out}")
        for i in range(n_units)
    }


# ----------------------------------------------------------------------
# The fusion knob
# ----------------------------------------------------------------------

class TestFusionKnob:
    def test_invalid_value_rejected(self):
        with pytest.raises(ConfigError, match="fusion must be"):
            OperatorConfig(name="x", fusion="sometimes")

    def test_modes_accepted(self):
        for mode in (True, False, "auto"):
            assert OperatorConfig(name="x", fusion=mode).fusion == mode

    def test_analyzer_flags_bad_fusion_value(self):
        from repro.core.configurator import parse_operator_config

        with pytest.raises(ConfigError) as err:
            parse_operator_config("op", {
                "interval_s": 1, "fusion": "bogus",
                "inputs": ["<bottomup>p"], "outputs": ["<bottomup>q"],
            })
        assert any(d.code == "W005" for d in err.value.diagnostics)

    def test_fusion_is_a_known_key(self):
        from repro.core.configurator import parse_operator_config

        config = parse_operator_config("op", {
            "interval_s": 1, "fusion": False,
            "inputs": ["<bottomup>p"], "outputs": ["<bottomup>q"],
        })
        assert config.fusion is False


# ----------------------------------------------------------------------
# The planner
# ----------------------------------------------------------------------

def spec(
    name,
    inputs=(),
    outputs=(),
    interval=1,
    delay=0,
    mode="online",
    batch="auto",
    fusion="auto",
    supports=True,
    job=False,
    publish=False,
    op_outputs=(),
):
    return FusionSpec(
        name=name,
        config=OperatorConfig(
            name=name,
            interval_ns=interval * NS_PER_SEC,
            delay_ns=delay * NS_PER_SEC,
            mode=mode,
            batch=batch,
            fusion=fusion,
            publish_outputs=publish,
            operator_outputs=list(op_outputs),
        ),
        supports_batch=supports,
        is_job_plugin=job,
        input_topics=frozenset(inputs),
        output_topics=frozenset(outputs),
    )


class TestFusionPlanner:
    def chain(self, **kw2):
        a = spec("a", inputs=["/p"], outputs=["/x"])
        b = spec("b", inputs=["/x"], outputs=["/y"], **kw2)
        return a, b

    def test_linear_chain_fuses(self):
        a, b = self.chain()
        c = spec("c", inputs=["/y"], outputs=["/z"], publish=True)
        plan = plan_fusion([a, b, c])
        assert plan.groups == [["a", "b", "c"]]
        assert plan.blocked == []

    def test_unchained_operators_stay_single(self):
        a = spec("a", inputs=["/p"], outputs=["/x"])
        b = spec("b", inputs=["/q"], outputs=["/y"])
        plan = plan_fusion([a, b])
        assert plan.groups == [] and plan.blocked == []

    def test_period_mismatch_blocks_and_reports(self):
        a, b = self.chain(interval=2)
        plan = plan_fusion([a, b])
        assert plan.groups == []
        assert [blk.reason for blk in plan.blocked] == ["period-mismatch"]

    def test_delay_mismatch_is_a_period_mismatch(self):
        a, b = self.chain(delay=3)
        plan = plan_fusion([a, b])
        assert [blk.reason for blk in plan.blocked] == ["period-mismatch"]

    def test_batch_false_blocks_and_reports(self):
        a, b = self.chain(batch=False)
        plan = plan_fusion([a, b])
        assert [blk.reason for blk in plan.blocked] == ["batch-disabled"]

    def test_published_intermediate_blocks(self):
        a = spec("a", inputs=["/p"], outputs=["/x"], publish=True)
        b = spec("b", inputs=["/x"], outputs=["/y"])
        plan = plan_fusion([a, b])
        assert [blk.reason for blk in plan.blocked] == ["external-subscriber"]

    def test_host_storage_blocks(self):
        plan = plan_fusion(list(self.chain()), host_has_storage=True)
        assert [blk.reason for blk in plan.blocked] == ["external-subscriber"]

    def test_operator_outputs_block(self):
        a = spec("a", inputs=["/p"], outputs=["/x"], op_outputs=["err"])
        b = spec("b", inputs=["/x"], outputs=["/y"])
        plan = plan_fusion([a, b])
        assert [blk.reason for blk in plan.blocked] == ["external-subscriber"]

    def test_outside_consumer_blocks(self):
        a, b = self.chain()
        other = spec("other", inputs=["/x"], outputs=["/w"])
        plan = plan_fusion([a, b, other])
        assert plan.groups == []
        assert [blk.reason for blk in plan.blocked] == ["external-subscriber"]

    def test_fusion_false_opts_out_silently(self):
        a, b = self.chain(fusion=False)
        plan = plan_fusion([a, b])
        assert plan.groups == [] and plan.blocked == []

    def test_ondemand_breaks_chain_silently(self):
        a, b = self.chain(mode="ondemand")
        plan = plan_fusion([a, b])
        assert plan.groups == [] and plan.blocked == []

    def test_job_terminal_needs_forced_fusion(self):
        a, b = self.chain(job=True)
        assert plan_fusion([a, b]).groups == []
        a2, b2 = self.chain(job=True, fusion=True)
        assert plan_fusion([a2, b2]).groups == [["a", "b"]]

    def test_job_cannot_produce_intermediates(self):
        a = spec("a", inputs=["/p"], outputs=["/x"], job=True, fusion=True)
        b = spec("b", inputs=["/x"], outputs=["/y"])
        plan = plan_fusion([a, b])
        assert plan.groups == [] and plan.blocked == []

    def test_group_restarts_after_block(self):
        a, b = self.chain(batch=False)
        c = spec("c", inputs=["/y"], outputs=["/z"])
        d = spec("d", inputs=["/z"], outputs=["/w"], publish=True)
        plan = plan_fusion([a, b, c, d])
        # a|b breaks (reported); b cannot lead (batch: false); c starts
        # a fresh group that d joins.
        assert plan.groups == [["c", "d"]]
        assert [blk.reason for blk in plan.blocked] == ["batch-disabled"]


# ----------------------------------------------------------------------
# Fused vs staged parity
# ----------------------------------------------------------------------

class TestFusedParity:
    def test_three_stage_bitwise_parity(self):
        staged, fused, s_ops, f_ops, _ = run_both(30)
        assert final_series(staged) == final_series(fused)
        assert any(v for v in final_series(fused).values())
        # Fused intermediates never touch the host: no cache, no store.
        assert "/n0/sm" in staged.stored and "/n0/sm" not in fused.stored
        assert fused.cache_for("/n0/sm") is None

    def test_missing_units_and_error_accounting(self):
        staged, fused, s_ops, f_ops, _ = run_both(12, skip={2, 5})
        assert final_series(staged) == final_series(fused)
        assert final_series(staged)["/n2/mx"] is None
        for s_op, f_op in zip(s_ops, f_ops):
            assert s_op.error_count == f_op.error_count
        assert s_ops[0].error_count > 0  # the skipped units did error

    def test_short_window_warmup_parity(self):
        # Windows larger than the data seen so far: both paths serve the
        # short tail; already at tick 1 stores must agree.
        staged, fused, *_ = run_both(3)
        assert final_series(staged) == final_series(fused)

    def test_intermittent_readings_parity(self):
        # Misses start after tick 1 so every intermediate cache exists
        # before downstream staged plans bind (bootstrap MISS rows need
        # a refresh_sensor_space to heal, which this loop never issues;
        # fused channels have no such bind-time dependency).
        def feed(tick, i):
            if tick > 1 and (tick + i) % 3 == 0:
                return None  # sensor skipped a beat
            return float((tick * 31 + i * 7) % 11) / 11.0

        staged, fused, *_ = run_both(25, feed=feed)
        assert final_series(staged) == final_series(fused)

    def test_quarantined_units_parity(self):
        staged, fused, s_ops, f_ops, group = run_both(10)
        # Quarantine the middle stage's unit 3 on both executions.
        for ops in (s_ops, f_ops):
            ops[1].set_breaker("/n3", "trip")
        rng = np.random.default_rng(99)
        for tick in range(11, 25):
            ts = tick * NS_PER_SEC
            for i in range(N_UNITS):
                v = float(rng.random())
                staged.feed(ts, f"/n{i}/power", v)
                fused.feed(ts, f"/n{i}/power", v)
            if tick == 18:
                for ops in (s_ops, f_ops):
                    ops[1].set_breaker("/n3", "reset")
            for op in s_ops:
                op.compute(ts)
            group.run(ts)
        assert s_ops[1].quarantined_units() == f_ops[1].quarantined_units()
        assert final_series(staged) == final_series(fused)

    def test_health_terminal_parity(self):
        def stack():
            host = Host([f"/n{i}/power" for i in range(N_UNITS)])
            engine = QueryEngine(host)
            sm = SmootherOperator(OperatorConfig(
                name="sm", window_ns=5 * NS_PER_SEC, publish_outputs=False,
            ))
            hc = HealthOperator(OperatorConfig(
                name="hc", window_ns=10 * NS_PER_SEC,
                params={"bounds": {"sm": [0.25, 0.75]}},
            ))
            for op, in_name, out_name in ((sm, "power", "sm"), (hc, "sm", "flag")):
                op.bind(host, engine)
                op.set_units(
                    [unit_for(i, in_name, out_name) for i in range(N_UNITS)]
                )
                op.start()
            return host, engine, [sm, hc]

        s_host, _, s_ops = stack()
        f_host, f_engine, f_ops = stack()
        group = FusedGroup("t:health", f_ops, f_host, f_engine)
        rng = np.random.default_rng(3)
        for tick in range(1, 40):
            ts = tick * NS_PER_SEC
            for i in range(N_UNITS):
                v = float(rng.random())
                s_host.feed(ts, f"/n{i}/power", v)
                f_host.feed(ts, f"/n{i}/power", v)
            for op in s_ops:
                op.compute(ts)
            group.run(ts)
        assert final_series(s_host, out="flag") == final_series(f_host, out="flag")
        assert any(final_series(f_host, out="flag").values())

    def test_persyst_forced_job_terminal_parity(self):
        deciles = [0.0, 0.5, 1.0]

        def stack():
            host = Host([f"/n{i}/power" for i in range(N_UNITS)])
            engine = QueryEngine(host)
            ag = AggregatorOperator(OperatorConfig(
                name="ag", window_ns=5 * NS_PER_SEC, publish_outputs=False,
                params={"ops": {"*": "mean"}},
            ))
            ps = PerSystOperator(OperatorConfig(
                name="ps", window_ns=5 * NS_PER_SEC, fusion=True,
                params={"quantiles": deciles},
            ))
            ag.bind(host, engine)
            ag.set_units(
                [unit_for(i, "power", "ag") for i in range(N_UNITS)]
            )
            ag.start()
            ps.bind(host, engine)
            ps.set_units([
                Unit(
                    name="job1",
                    level=0,
                    inputs=[f"/n{i}/ag" for i in range(N_UNITS)],
                    outputs=[
                        Sensor(f"/job1/decile{d}", is_operator_output=True)
                        for d in (0, 5, 10)
                    ],
                )
            ])
            ps.start()
            return host, engine, [ag, ps]

        # The planner admits the job plugin only as a forced terminal.
        plan = plan_fusion([
            spec("ag", inputs=["/p"], outputs=["/x"]),
            spec("ps", inputs=["/x"], outputs=["/d"], job=True, fusion=True),
        ])
        assert plan.groups == [["ag", "ps"]]

        s_host, _, s_ops = stack()
        f_host, f_engine, f_ops = stack()
        group = FusedGroup("t:persyst", f_ops, f_host, f_engine)
        rng = np.random.default_rng(11)
        for tick in range(1, 20):
            ts = tick * NS_PER_SEC
            for i in range(N_UNITS):
                v = float(rng.random())
                s_host.feed(ts, f"/n{i}/power", v)
                f_host.feed(ts, f"/n{i}/power", v)
            for op in s_ops:
                op.compute(ts)
            group.run(ts)
        s_out = {t: v for t, v in s_host.stored.items() if t.startswith("/job1/")}
        f_out = {t: v for t, v in f_host.stored.items() if t.startswith("/job1/")}
        assert s_out == f_out and len(f_out) == 3


# ----------------------------------------------------------------------
# Plan invalidation and fallback
# ----------------------------------------------------------------------

class TestPlanLifecycle:
    def test_hot_plug_recompiles_and_keeps_history(self):
        staged, fused, s_ops, f_ops, group = run_both(15)
        plan_before = group._plan
        assert plan_before is not None
        # Hot-plug: a new sensor appears on both hosts; navigators move.
        for host in (staged, fused):
            host.caches["/n99/power"] = SensorCache.for_duration(
                CACHE_WINDOW_NS, NS_PER_SEC
            )
        for ops in (s_ops, f_ops):
            ops[0].engine.refresh_navigator()
        rng = np.random.default_rng(5)
        for tick in range(16, 30):
            ts = tick * NS_PER_SEC
            for i in range(N_UNITS):
                v = float(rng.random())
                staged.feed(ts, f"/n{i}/power", v)
                fused.feed(ts, f"/n{i}/power", v)
            for op in s_ops:
                op.compute(ts)
            group.run(ts)
        assert group._plan is not plan_before  # generation bump recompiled
        # Window history survived the recompile: series stay identical,
        # including the passes right after the hot-plug.
        assert final_series(staged) == final_series(fused)

    def test_unit_churn_recompiles(self):
        staged, fused, s_ops, f_ops, group = run_both(5)
        plan_before = group._plan
        f_ops[0].set_units(
            [unit_for(i, "power", "sm") for i in range(N_UNITS)]
        )
        group.run(6 * NS_PER_SEC)
        assert group._plan is not plan_before

    def test_sanitizer_veto_falls_back_and_counts(self):
        registry = MetricRegistry()
        fallback = registry.counter("fusion_fallbacks_total")
        rng = np.random.default_rng(13)
        staged_host, _, staged_ops = build_chain()
        fused_host, fused_engine, fused_ops = build_chain()
        group = FusedGroup(
            "t:san", fused_ops, fused_host, fused_engine,
            fallback_counter=fallback,
        )

        def one_tick(tick):
            ts = tick * NS_PER_SEC
            for i in range(N_UNITS):
                v = float(rng.random())
                staged_host.feed(ts, f"/n{i}/power", v)
                fused_host.feed(ts, f"/n{i}/power", v)
            for op in staged_ops:
                op.compute(ts)
            group.run(ts)

        for tick in range(1, 10):
            one_tick(tick)
        assert fallback.value == 0
        san = Sanitizer(track_wall_clock=False)
        with san.activate():
            for tick in range(10, 14):
                one_tick(tick)
        assert fallback.value == 4
        # Fallback passes store intermediates like any staged pass ...
        assert fused_host.stored.get("/n0/sm")
        # ... and fused execution resumes afterwards, still in parity.
        for tick in range(14, 22):
            one_tick(tick)
        assert fallback.value == 4
        assert final_series(staged_host) == final_series(fused_host)


# ----------------------------------------------------------------------
# Manager + deployment integration
# ----------------------------------------------------------------------

def deployment_spec(fusion_mode):
    return {
        "cluster": {"nodes": 2, "cpus": 1, "seed": 42},
        "monitoring": {"plugins": ["sysfs"], "interval_ms": 1000},
        "analytics": {
            "pushers": [
                {
                    "plugin": "smoother",
                    "operators": {
                        "sm1": {
                            "interval_s": 1,
                            "window_s": 5,
                            "publish_outputs": False,
                            "fusion": fusion_mode,
                            "inputs": ["<bottomup>power"],
                            "outputs": ["<bottomup>ps"],
                        }
                    },
                },
                {
                    "plugin": "smoother",
                    "operators": {
                        "sm2": {
                            "interval_s": 1,
                            "window_s": 5,
                            "inputs": ["<bottomup>ps"],
                            "outputs": ["<bottomup>pss"],
                        }
                    },
                },
            ]
        },
    }


class TestManagerFusion:
    def test_deployment_forms_groups_and_matches_staged(self):
        stores = {}
        for mode in ("auto", False):
            dep = build_deployment(deployment_spec(mode))
            managers = list(dep.managers.values())
            groups = [g for m in managers for g in m.fused_groups()]
            if mode == "auto":
                assert groups and groups[0].members() == ["sm1", "sm2"]
                assert all(
                    m._m_fusion_pass.count == 0 for m in managers
                )
            else:
                assert not groups
            dep.run(20)
            dep.agent.flush()
            if mode == "auto":
                # The group driver ran and timed its passes.
                assert any(m._m_fusion_pass.count > 0 for m in managers)
                assert all(m._m_fusion_fallbacks.value == 0 for m in managers)
            out = {}
            for topic in dep.agent.storage.topics():
                if topic.endswith("pss"):
                    ts, vals = dep.agent.storage.query(topic, 0, 2**62)
                    out[topic] = (list(ts), list(vals))
            stores[mode] = out
        assert stores["auto"] == stores[False]
        assert stores["auto"]  # the pipeline did publish data

    def test_agent_chains_never_fuse(self):
        dep = build_deployment(deployment_spec("auto"))
        # Agent analytics load once data flows (the agent's sensor tree
        # is fed by the pushers' published topics).
        dep.run(3)
        dep.agent.flush()
        dep.agent_manager.load_plugin({
            "plugin": "aggregator",
            "operators": {
                "ag1": {
                    "interval_s": 1,
                    "window_s": 5,
                    "publish_outputs": False,
                    "inputs": ["<bottomup>power"],
                    "outputs": ["<bottomup>apow"],
                    "params": {"ops": {"*": "mean"}},
                }
            },
        })
        dep.agent_manager.load_plugin({
            "plugin": "smoother",
            "operators": {
                "ag2": {
                    "interval_s": 1,
                    "window_s": 5,
                    "inputs": ["<bottomup>apow"],
                    "outputs": ["<bottomup>apows"],
                }
            },
        })
        # The Collect Agent persists everything: external subscriber.
        assert dep.agent_manager.refresh_fusion() == []
        assert dep.agent_manager.fused_groups() == []
        blocked = plan_fusion(
            dep.agent_manager._fusion_specs(), host_has_storage=True
        ).blocked
        assert [b.reason for b in blocked] == ["external-subscriber"]

    def test_unload_dissolves_group(self):
        dep = build_deployment(deployment_spec("auto"))
        manager = next(iter(dep.managers.values()))
        assert manager.fused_groups()
        manager.unload_operator("sm2")
        assert manager.fused_groups() == []
        dep.run(5)  # staged sm1 keeps running on its own slot


# ----------------------------------------------------------------------
# Static flow analysis (F013 + F011 refinement)
# ----------------------------------------------------------------------

def flow_spec(**first_stage_overrides):
    first = {
        "interval_s": 1,
        "window_s": 5,
        "publish_outputs": False,
        "inputs": ["<bottomup>power"],
        "outputs": ["<bottomup>ps"],
    }
    first.update(first_stage_overrides)
    return {
        "cluster": {"nodes": 2, "cpus": 1, "seed": 1},
        "monitoring": {"plugins": ["sysfs"], "interval_ms": 1000},
        "analytics": {
            "pushers": [
                {"plugin": "smoother", "operators": {"s1": first}},
                {
                    "plugin": "smoother",
                    "operators": {
                        "s2": {
                            "interval_s": first["interval_s"],
                            "window_s": 5,
                            "inputs": ["<bottomup>ps"],
                            "outputs": ["<bottomup>pss"],
                        }
                    },
                },
            ]
        },
    }


class TestFlowFusion:
    def test_eligible_chain_emits_no_f013_and_no_f011(self):
        codes = [d.code for d in analyze_flow(flow_spec())]
        assert "F013" not in codes
        # Same-tick tie inside a fused group: the fused driver orders
        # the members, so the old first-pass warning would be wrong.
        assert "F011" not in codes

    def test_published_intermediate_reports_f013_and_keeps_f011(self):
        diags = analyze_flow(flow_spec(publish_outputs=True))
        f013 = [d for d in diags if d.code == "F013"]
        assert len(f013) == 1
        assert "external-subscriber" in f013[0].message
        assert f013[0].severity == "info"
        assert any(d.code == "F011" for d in diags)

    def test_period_mismatch_reports_f013(self):
        spec_doc = flow_spec()
        spec_doc["analytics"]["pushers"][1]["operators"]["s2"][
            "interval_s"
        ] = 2
        diags = analyze_flow(spec_doc)
        f013 = [d for d in diags if d.code == "F013"]
        assert len(f013) == 1 and "period-mismatch" in f013[0].message

    def test_batch_disabled_reports_f013(self):
        spec_doc = flow_spec()
        spec_doc["analytics"]["pushers"][1]["operators"]["s2"][
            "batch"
        ] = False
        f013 = [
            d for d in analyze_flow(spec_doc) if d.code == "F013"
        ]
        assert len(f013) == 1 and "batch-disabled" in f013[0].message

    def test_report_shows_fused_groups(self):
        from repro.analysis.flow import build_flow_model, render_flow_report

        model = build_flow_model(flow_spec())
        assert model.fused_groups == [
            ("pushers", ["smoother/s1", "smoother/s2"])
        ]
        report = render_flow_report(model)
        assert "fusion: [pushers] smoother/s1 + smoother/s2" in report

    def test_report_shows_blocked_chains(self):
        from repro.analysis.flow import build_flow_model, render_flow_report

        model = build_flow_model(flow_spec(publish_outputs=True))
        assert model.fused_groups == []
        assert [b[3] for b in model.fusion_blocked] == ["external-subscriber"]
        assert "stays staged (external-subscriber)" in render_flow_report(model)
