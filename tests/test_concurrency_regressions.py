"""Failing-before regression tests for the bugs S001-S010 flagged.

The static concurrency pass (``check --concurrency``) surfaced three
real defects in the shipped sources; each test below reproduces the
pre-fix failure deterministically (events/barriers force the racy
interleaving instead of hoping a scheduler hits it):

- ``MetricRegistry._get_or_create`` was check-then-act (S004): two
  threads registering the same series could each observe "absent" and
  create distinct metric objects, silently losing one side's counts.
- ``OperatorBase.last_errors`` was rebound outside any lock (S001):
  concurrent notes from pool workers both read the old list and the
  second assignment erased the first entry.
- ``Pusher._replay_spill`` set ``_replaying`` without checking it
  first: a second replay entering mid-drain would interleave its
  popleft/publish pairs with the owner's and break in-order replay.
"""

import threading

from repro.core.operator import OperatorBase
from repro.dcdb import Broker, Pusher
from repro.dcdb.mqtt import Message
from repro.simulator.clock import TaskScheduler
from repro.telemetry import MetricRegistry


class TestRegistryGetOrCreateAtomic:
    """S004 fix: get-or-insert happens under the registry lock."""

    class RacyDict(dict):
        """A dict whose miss path parks at a barrier, so two racing
        registrations both observe the pre-insert state before either
        can act on it (the pre-fix interleaving)."""

        def __init__(self, barrier):
            super().__init__()
            self._barrier = barrier

        def get(self, key, default=None):
            value = super().get(key, default)
            if value is None:
                try:
                    self._barrier.wait(timeout=0.3)
                except threading.BrokenBarrierError:
                    pass
            return value

    def test_concurrent_counter_registration_returns_one_object(self):
        reg = MetricRegistry()
        barrier = threading.Barrier(2)
        reg._metrics = self.RacyDict(barrier)

        got = []

        def register():
            got.append(reg.counter("races_total"))

        threads = [threading.Thread(target=register) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert len(got) == 2
        # Pre-fix: both threads pass the None check together, each
        # inserts its own Counter and one side's increments are lost.
        assert got[0] is got[1], "registration raced: two distinct series"
        got[0].inc()
        assert reg.counter("races_total").value == 1


class TestLastErrorsLockedRebind:
    """S001 fix: the last_errors rebind happens under _breaker_lock."""

    class GatedList(list):
        """A list whose ``+`` holds the read-modify-write window open
        so both racers compute their snapshot from the same old list."""

        def __init__(self, items, barrier):
            super().__init__(items)
            self._barrier = barrier

        def __add__(self, other):
            snapshot = list(self) + list(other)
            try:
                self._barrier.wait(timeout=0.3)
            except threading.BrokenBarrierError:
                pass
            return snapshot

    def test_concurrent_notes_keep_both_entries(self):
        barrier = threading.Barrier(2)
        op = object.__new__(OperatorBase)
        op._breaker_lock = threading.Lock()
        op._m_errors = MetricRegistry().counter("operator_errors_total")
        op.last_errors = self.GatedList([], barrier)

        def note(label):
            op._note_error(label, ValueError("boom"))

        threads = [
            threading.Thread(target=note, args=(name,))
            for name in ("cpu0", "cpu1")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        # Pre-fix: both workers read the empty list, both append their
        # own entry to it, and whichever assignment lands second wins.
        assert len(op.last_errors) == 2, f"lost update: {op.last_errors}"
        assert {e.split(":")[0] for e in op.last_errors} == {"cpu0", "cpu1"}
        assert op._m_errors.value == 2


class TestReplaySpillSingleOwner:
    """Re-entrance fix: one replay owns the queue at a time."""

    class ReentrantBroker:
        """Accepts publishes, but the first one triggers a nested
        ``flush_spill()`` — the shape of a management-thread flush
        racing a scheduled retry, collapsed onto one thread so the
        interleaving is deterministic."""

        def __init__(self):
            self.order = []
            self.pusher = None
            self._fired = False

        def publish(self, topic, value, timestamp):
            if not self._fired:
                self._fired = True
                self.pusher.flush_spill()
            self.order.append(topic)
            return 1

    def test_nested_flush_does_not_reorder_replay(self):
        broker = self.ReentrantBroker()
        pusher = Pusher("/n0", broker, TaskScheduler())
        broker.pusher = pusher
        for i in range(3):
            pusher._spill_message(Message(f"/m{i}", float(i), i + 1))
        assert pusher.spill_depth == 3

        pusher.flush_spill()

        # Pre-fix: the nested flush drains /m1 and /m2 while the outer
        # replay is still mid-publish of /m0 -> delivery order
        # [/m1, /m2, /m0].  The guard makes the late-comer yield.
        assert broker.order == ["/m0", "/m1", "/m2"]
        assert pusher.spill_depth == 0
        assert pusher.telemetry.get("spill_replayed_total").value == 3

    def test_replay_still_reschedules_after_refusal(self):
        """The early-return guard must not eat the retry path."""
        from repro.dcdb.network import LinkDownError

        class DownBroker(Broker):
            def publish(self, topic, value, timestamp, retain=False):
                raise LinkDownError("down")

        scheduler = TaskScheduler()
        pusher = Pusher("/n0", DownBroker(), scheduler)
        pusher._spill_message(Message("/m0", 0.0, 1))
        pusher.flush_spill()
        assert pusher.spill_depth == 1  # message went back on the queue
        assert pusher._retry_pending is True
        assert pusher._replaying is False
