"""Tests for the facility cooling substrate."""

import pytest

from repro.common.timeutil import NS_PER_SEC
from repro.dcdb import Broker, Pusher
from repro.simulator import (
    ClusterSimulator,
    ClusterSpec,
    CoolingSystem,
    FacilityPlugin,
)
from repro.simulator.clock import TaskScheduler
from repro.simulator.scheduler import Job


@pytest.fixture
def rig():
    class NS:
        pass

    ns = NS()
    ns.sim = ClusterSimulator(ClusterSpec.small(nodes=2, cpus=4), seed=7)
    ns.cooling = CoolingSystem(ns.sim)
    return ns


def drive(ns, seconds, step_s=10):
    """Advance nodes and the cooling loop together."""
    start = ns.cooling._last_ts if ns.cooling._last_ts > 0 else 0
    for t in range(int(start / NS_PER_SEC) + step_s,
                   int(start / NS_PER_SEC) + seconds + 1, step_s):
        ts = t * NS_PER_SEC
        for node in ns.sim.node_paths:
            ns.sim.read_node(node, "power", ts)
        ns.cooling.update(ts)


class TestCoolingDynamics:
    def test_inlet_tracks_setpoint_plus_load(self, rig):
        drive(rig, 600)
        p = rig.cooling.params
        expected = rig.cooling.setpoint_c + p.load_c_per_w * rig.cooling.it_power_w
        assert rig.cooling.inlet_temp_c == pytest.approx(expected, abs=0.5)

    def test_load_raises_inlet_temperature(self, rig):
        drive(rig, 300)
        idle_inlet = rig.cooling.inlet_temp_c
        rig.sim.scheduler.add_job(
            Job("hot", "hpl", tuple(rig.sim.node_paths),
                310 * NS_PER_SEC, 2000 * NS_PER_SEC)
        )
        drive(rig, 900)
        assert rig.cooling.inlet_temp_c > idle_inlet

    def test_setpoint_knob_clamped(self, rig):
        assert rig.cooling.set_setpoint(80.0) == rig.cooling.params.setpoint_max_c
        assert rig.cooling.set_setpoint(0.0) == rig.cooling.params.setpoint_min_c
        assert rig.cooling.setpoint_changes[-1][1] == 30.0

    def test_higher_setpoint_cheaper_cooling(self, rig):
        drive(rig, 100)
        rig.cooling.set_setpoint(30.0)
        rig.cooling.update(200 * NS_PER_SEC)
        cold = rig.cooling.chiller_power_w
        rig.cooling.set_setpoint(50.0)
        rig.cooling.update(210 * NS_PER_SEC)
        warm = rig.cooling.chiller_power_w
        assert warm < cold

    def test_nodes_follow_inlet_temperature(self, rig):
        node = rig.sim.node_paths[0]
        drive(rig, 600)
        cool_temp = rig.sim.read_node(node, "temp", 610 * NS_PER_SEC)
        rig.cooling.set_setpoint(50.0)
        drive(rig, 900)
        warm_temp = rig.sim.read_node(node, "temp", 1520 * NS_PER_SEC)
        assert warm_temp > cool_temp + 3.0

    def test_total_facility_power(self, rig):
        drive(rig, 60)
        total = rig.cooling.total_facility_power_w
        assert total == pytest.approx(
            rig.cooling.it_power_w + rig.cooling.chiller_power_w
        )
        assert total > rig.cooling.it_power_w

    def test_backwards_time_rejected(self, rig):
        rig.cooling.update(10 * NS_PER_SEC)
        with pytest.raises(ValueError):
            rig.cooling.update(5 * NS_PER_SEC)


class TestFacilityPlugin:
    def test_sensors_published(self):
        sim = ClusterSimulator(ClusterSpec.small(nodes=2, cpus=2), seed=1)
        cooling = CoolingSystem(sim)
        scheduler = TaskScheduler()
        broker = Broker()
        pusher = Pusher("facility", broker, scheduler)
        pusher.add_plugin(FacilityPlugin(cooling, interval_ns=NS_PER_SEC))
        scheduler.run_until(5 * NS_PER_SEC)
        for name in ("inlet-temp", "setpoint", "chiller-power", "it-power"):
            cache = pusher.cache_for(f"/facility/cooling/{name}")
            assert cache is not None and len(cache) == 6

    def test_sampling_advances_the_loop(self):
        sim = ClusterSimulator(ClusterSpec.small(nodes=1, cpus=2), seed=1)
        cooling = CoolingSystem(sim)
        scheduler = TaskScheduler()
        pusher = Pusher("facility", Broker(), scheduler)
        pusher.add_plugin(FacilityPlugin(cooling, interval_ns=NS_PER_SEC))
        scheduler.run_until(3 * NS_PER_SEC)
        assert cooling._last_ts == 3 * NS_PER_SEC
