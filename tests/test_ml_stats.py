"""Tests for window statistics and streaming accumulators."""

import math

import numpy as np
import pytest

from repro.ml.stats import (
    FEATURE_NAMES,
    N_FEATURES,
    StreamingStats,
    deciles,
    feature_matrix,
    quantiles,
    window_features,
)


class TestWindowFeatures:
    def test_feature_vector_shape(self):
        f = window_features(np.array([1.0, 2.0, 3.0]))
        assert f.shape == (N_FEATURES,)
        assert len(FEATURE_NAMES) == N_FEATURES

    def test_values(self):
        f = window_features(np.array([1.0, 2.0, 3.0, 4.0]))
        named = dict(zip(FEATURE_NAMES, f))
        assert named["mean"] == pytest.approx(2.5)
        assert named["min"] == 1.0
        assert named["max"] == 4.0
        assert named["last"] == 4.0
        assert named["median"] == pytest.approx(2.5)
        assert named["slope"] == pytest.approx(1.0)  # rises 1 per sample
        assert named["p25"] == pytest.approx(1.75)
        assert named["p75"] == pytest.approx(3.25)

    def test_constant_window_zero_slope_std(self):
        f = dict(zip(FEATURE_NAMES, window_features(np.full(5, 7.0))))
        assert f["std"] == 0.0
        assert f["slope"] == 0.0

    def test_single_element(self):
        f = dict(zip(FEATURE_NAMES, window_features(np.array([3.0]))))
        assert f["mean"] == 3.0
        assert f["std"] == 0.0
        assert f["slope"] == 0.0

    def test_empty_is_nan(self):
        assert np.isnan(window_features(np.array([]))).all()

    def test_feature_matrix_concatenates(self):
        m = feature_matrix([np.array([1.0, 2.0]), np.array([3.0])])
        assert m.shape == (2 * N_FEATURES,)


class TestQuantiles:
    def test_deciles_count(self):
        d = deciles(np.arange(101, dtype=float))
        assert len(d) == 11
        assert d[0] == 0.0
        assert d[5] == 50.0
        assert d[10] == 100.0

    def test_quantiles_arbitrary(self):
        q = quantiles(np.arange(11, dtype=float), [0.25, 0.75])
        assert q[0] == pytest.approx(2.5)
        assert q[1] == pytest.approx(7.5)

    def test_empty_is_nan(self):
        assert np.isnan(quantiles(np.array([]), [0.5])).all()

    def test_nan_inputs_ignored(self):
        q = quantiles(np.array([1.0, np.nan, 3.0]), [0.5])
        assert q[0] == pytest.approx(2.0)

    def test_all_nan_is_nan(self):
        assert np.isnan(quantiles(np.array([np.nan]), [0.5])).all()


class TestStreamingStats:
    def test_empty(self):
        s = StreamingStats()
        assert s.count == 0
        assert math.isnan(s.mean)
        assert math.isnan(s.std)

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5, 2, 500)
        s = StreamingStats()
        s.push_many(data)
        assert s.mean == pytest.approx(data.mean())
        assert s.std == pytest.approx(data.std(), rel=1e-9)
        assert s.minimum == data.min()
        assert s.maximum == data.max()
        assert s.last == data[-1]

    def test_merge_equals_combined(self):
        rng = np.random.default_rng(1)
        a_data, b_data = rng.normal(0, 1, 100), rng.normal(3, 2, 150)
        a, b = StreamingStats(), StreamingStats()
        a.push_many(a_data)
        b.push_many(b_data)
        merged = a.merge(b)
        combined = np.concatenate([a_data, b_data])
        assert merged.count == 250
        assert merged.mean == pytest.approx(combined.mean())
        assert merged.std == pytest.approx(combined.std(), rel=1e-9)
        assert merged.minimum == combined.min()

    def test_merge_with_empty(self):
        a = StreamingStats()
        a.push(1.0)
        merged = a.merge(StreamingStats())
        assert merged.count == 1
        assert merged.mean == 1.0
        assert merged.last == 1.0

    def test_merge_two_empty(self):
        assert StreamingStats().merge(StreamingStats()).count == 0
