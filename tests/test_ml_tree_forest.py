"""Tests for the CART trees and random forests."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


@pytest.fixture
def regression_data():
    rng = np.random.default_rng(0)
    X = rng.random((600, 4))
    y = 3.0 * X[:, 0] - 2.0 * X[:, 1] + 0.05 * rng.standard_normal(600)
    return X[:450], y[:450], X[450:], y[450:]


@pytest.fixture
def classification_data():
    rng = np.random.default_rng(1)
    X = rng.random((600, 3))
    y = (X[:, 0] + X[:, 2] > 1.0).astype(int)
    return X[:450], y[:450], X[450:], y[450:]


class TestDecisionTreeRegressor:
    def test_fits_step_function_exactly(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 10.0, 10.0])
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert list(tree.predict(X)) == [0.0, 0.0, 10.0, 10.0]

    def test_generalises(self, regression_data):
        Xtr, ytr, Xte, yte = regression_data
        tree = DecisionTreeRegressor(max_depth=10, random_state=0).fit(Xtr, ytr)
        rmse = np.sqrt(np.mean((tree.predict(Xte) - yte) ** 2))
        assert rmse < 0.5

    def test_max_depth_bounds_nodes(self):
        X = np.random.default_rng(2).random((200, 2))
        y = X[:, 0]
        shallow = DecisionTreeRegressor(max_depth=2).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=8).fit(X, y)
        assert shallow.n_nodes <= 7
        assert deep.n_nodes > shallow.n_nodes

    def test_min_samples_leaf(self):
        X = np.arange(10, dtype=float)[:, None]
        y = np.arange(10, dtype=float)
        tree = DecisionTreeRegressor(min_samples_leaf=5).fit(X, y)
        # Only one split possible (5|5).
        assert tree.n_nodes == 3

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(3).random((50, 2))
        tree = DecisionTreeRegressor().fit(X, np.full(50, 4.2))
        assert tree.n_nodes == 1
        assert np.allclose(tree.predict(X), 4.2)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)

    def test_predict_validates_features(self):
        tree = DecisionTreeRegressor().fit(np.zeros((4, 2)), np.arange(4.0))
        with pytest.raises(ValueError):
            tree.predict(np.zeros((3, 5)))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.zeros((1, 1)))

    def test_deterministic_under_seed(self, regression_data):
        Xtr, ytr, Xte, _ = regression_data
        a = DecisionTreeRegressor(max_features=2, random_state=5).fit(Xtr, ytr)
        b = DecisionTreeRegressor(max_features=2, random_state=5).fit(Xtr, ytr)
        assert (a.predict(Xte) == b.predict(Xte)).all()


class TestDecisionTreeClassifier:
    def test_fits_simple_rule(self, classification_data):
        Xtr, ytr, Xte, yte = classification_data
        tree = DecisionTreeClassifier(max_depth=8, random_state=0).fit(Xtr, ytr)
        acc = (tree.predict(Xte) == yte).mean()
        assert acc > 0.9

    def test_predict_proba_sums_to_one(self, classification_data):
        Xtr, ytr, Xte, _ = classification_data
        tree = DecisionTreeClassifier(random_state=0).fit(Xtr, ytr)
        proba = tree.predict_proba(Xte)
        assert proba.shape == (len(Xte), 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_explicit_n_classes(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 0])
        tree = DecisionTreeClassifier(n_classes=3).fit(X, y)
        assert tree.predict_proba(X).shape == (2, 3)

    def test_label_outside_declared_classes(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(n_classes=2).fit(
                np.zeros((3, 1)), np.array([0, 1, 2])
            )

    def test_negative_labels_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((2, 1)), np.array([-1, 0]))


class TestRandomForestRegressor:
    def test_beats_or_matches_single_tree(self, regression_data):
        Xtr, ytr, Xte, yte = regression_data
        tree = DecisionTreeRegressor(max_depth=6, random_state=0).fit(Xtr, ytr)
        # Compare with all features per split so bagging is the only
        # difference between the two models.
        forest = RandomForestRegressor(
            n_estimators=20, max_depth=6, max_features=None, random_state=0
        ).fit(Xtr, ytr)
        tree_rmse = np.sqrt(np.mean((tree.predict(Xte) - yte) ** 2))
        forest_rmse = np.sqrt(np.mean((forest.predict(Xte) - yte) ** 2))
        assert forest_rmse <= tree_rmse * 1.05

    def test_deterministic_under_seed(self, regression_data):
        Xtr, ytr, Xte, _ = regression_data
        a = RandomForestRegressor(n_estimators=5, random_state=7).fit(Xtr, ytr)
        b = RandomForestRegressor(n_estimators=5, random_state=7).fit(Xtr, ytr)
        assert (a.predict(Xte) == b.predict(Xte)).all()

    def test_is_fitted_flag(self):
        f = RandomForestRegressor(n_estimators=2)
        assert not f.is_fitted
        f.fit(np.zeros((4, 1)), np.arange(4.0))
        assert f.is_fitted

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.zeros((1, 1)))

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            RandomForestRegressor().fit(np.zeros((0, 1)), np.zeros(0))

    def test_bad_estimator_count(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)

    @pytest.mark.parametrize("mf", ["sqrt", "third", None, 2])
    def test_max_features_modes(self, mf, regression_data):
        Xtr, ytr, Xte, _ = regression_data
        f = RandomForestRegressor(
            n_estimators=3, max_features=mf, random_state=0
        ).fit(Xtr, ytr)
        assert np.isfinite(f.predict(Xte)).all()

    def test_bad_max_features(self):
        f = RandomForestRegressor(max_features="lots")
        with pytest.raises(ValueError):
            f.fit(np.zeros((4, 2)), np.arange(4.0))

    def test_no_bootstrap_mode(self, regression_data):
        Xtr, ytr, Xte, yte = regression_data
        f = RandomForestRegressor(
            n_estimators=5, bootstrap=False, random_state=0
        ).fit(Xtr, ytr)
        rmse = np.sqrt(np.mean((f.predict(Xte) - yte) ** 2))
        assert rmse < 0.5


class TestRandomForestClassifier:
    def test_accuracy(self, classification_data):
        Xtr, ytr, Xte, yte = classification_data
        f = RandomForestClassifier(
            n_estimators=15, max_depth=8, random_state=0
        ).fit(Xtr, ytr)
        assert (f.predict(Xte) == yte).mean() > 0.92

    def test_proba_shape(self, classification_data):
        Xtr, ytr, Xte, _ = classification_data
        f = RandomForestClassifier(n_estimators=5, random_state=0).fit(Xtr, ytr)
        proba = f.predict_proba(Xte)
        assert proba.shape == (len(Xte), 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_bootstrap_missing_class_handled(self):
        # Tiny skewed dataset: some bootstrap resamples will miss class 1.
        rng = np.random.default_rng(5)
        X = rng.random((20, 2))
        y = np.zeros(20, dtype=int)
        y[:2] = 1
        f = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        assert f.predict_proba(X).shape == (20, 2)
