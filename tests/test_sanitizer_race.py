"""Tests for unit-state race detection (R004/R005) on bounded runs."""

import pytest

from repro.sanitizer import run_runtime_check


def spec(misbehave=None, unit_mode="parallel"):
    op = {
        "interval_s": 1,
        "unit_mode": unit_mode,
        "inputs": ["<bottomup>cpu-cycles"],
        "outputs": ["<bottomup>race-out"],
        "params": {"queries": 2},
    }
    if unit_mode == "parallel":
        op["max_workers"] = 4
    if misbehave is not None:
        op["params"]["misbehave"] = misbehave
    return {
        "cluster": {"nodes": 1, "cpus": 4, "seed": 5},
        "monitoring": {"plugins": ["perfevent"], "interval_ms": 1000},
        "analytics": {
            "pushers": [{"plugin": "tester", "operators": {"racer": op}}]
        },
    }


def codes(result):
    return [d.code for d in result.diagnostics]


class TestSharedModelRace:
    def test_r004_shared_model_across_parallel_units(self):
        result = run_runtime_check(spec("shared_model"), duration_s=4.0)
        assert "R004" in codes(result)
        r004 = next(d for d in result.diagnostics if d.code == "R004")
        # The four per-CPU units of the node appear by name.
        for cpu in range(4):
            assert f"cpu{cpu:02d}" in r004.message

    def test_finding_is_deduplicated_across_passes(self):
        result = run_runtime_check(spec("shared_model"), duration_s=4.0)
        assert codes(result).count("R004") == 1
        assert result.events["compute_passes"] > 1

    def test_sequential_shared_model_not_flagged(self):
        # Sequential unit mode processes units in order on one thread:
        # a shared model is the documented design, not a race.
        result = run_runtime_check(
            spec("shared_model", unit_mode="sequential"), duration_s=4.0
        )
        assert "R004" not in codes(result)


class TestSelfStateMutation:
    def test_r005_self_attribute_rebound(self):
        result = run_runtime_check(spec("self_state"), duration_s=4.0)
        assert codes(result) == ["R005"]
        assert "last_unit_seen" in result.diagnostics[0].message
        assert "4 unit(s)" in result.diagnostics[0].message

    def test_sequential_self_state_not_flagged(self):
        result = run_runtime_check(
            spec("self_state", unit_mode="sequential"), duration_s=4.0
        )
        assert "R005" not in codes(result)


class TestCleanRuns:
    def test_clean_parallel_run_has_no_findings(self):
        result = run_runtime_check(spec(), duration_s=4.0)
        assert result.clean, codes(result)

    def test_events_prove_instrumentation_ran(self):
        result = run_runtime_check(spec(), duration_s=4.0)
        assert result.events["compute_passes"] > 0
        assert result.events["model_accesses"] == 0  # no models in use
        assert result.events["views_tracked"] > 0

    def test_programmatic_factory_path(self):
        from repro.deploy import build_deployment
        from repro.sanitizer import make_sanitizer, run_deployment_sanitized

        san = make_sanitizer()
        result = run_deployment_sanitized(
            lambda: build_deployment(spec()), duration_s=3.0, sanitizer=san
        )
        assert result.clean
        passes = san.telemetry.get("sanitizer_passes_total")
        assert passes is not None and passes.value > 0
