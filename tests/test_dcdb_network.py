"""Tests for one-shot scheduling and the network-conditions link."""

import pytest

from repro.common.errors import ConfigError
from repro.common.timeutil import NS_PER_MS, NS_PER_SEC
from repro.dcdb import Broker, CollectAgent, Pusher
from repro.dcdb.network import NetworkConditions
from repro.dcdb.plugins import TesterMonitoringPlugin
from repro.simulator.clock import TaskScheduler


class TestOneShotTasks:
    def test_fires_once_at_due_time(self):
        scheduler = TaskScheduler()
        calls = []
        scheduler.add_once("once", calls.append, 5 * NS_PER_SEC)
        scheduler.run_until(10 * NS_PER_SEC)
        assert calls == [5 * NS_PER_SEC]

    def test_not_listed_in_registry(self):
        scheduler = TaskScheduler()
        scheduler.add_once("once", lambda ts: None, NS_PER_SEC)
        assert scheduler.tasks() == []

    def test_past_due_clamped_to_now(self):
        scheduler = TaskScheduler()
        scheduler.run_until(10 * NS_PER_SEC)
        calls = []
        scheduler.add_once("late", calls.append, 0)
        scheduler.run_until(11 * NS_PER_SEC)
        assert calls == [10 * NS_PER_SEC]

    def test_interleaves_with_periodic(self):
        scheduler = TaskScheduler()
        order = []
        scheduler.add_callback("p", lambda ts: order.append(("p", ts)),
                               NS_PER_SEC)
        scheduler.add_once("o", lambda ts: order.append(("o", ts)),
                           int(1.5 * NS_PER_SEC))
        scheduler.run_until(2 * NS_PER_SEC)
        assert ("o", int(1.5 * NS_PER_SEC)) in order
        times = [ts for _, ts in order]
        assert times == sorted(times)


class TestNetworkConditions:
    def rig(self, **kwargs):
        scheduler = TaskScheduler()
        broker = Broker()
        received = []
        broker.subscribe("/#", lambda t, v, ts: received.append((t, v, ts)))
        link = NetworkConditions(broker, scheduler, **kwargs)
        return scheduler, broker, link, received

    def test_zero_latency_is_synchronous(self):
        _, _, link, received = self.rig()
        link.publish("/a", 1.0, 7)
        assert received == [("/a", 1.0, 7)]
        assert link.delivered == 1

    def test_latency_defers_delivery(self):
        scheduler, _, link, received = self.rig(latency_ns=100 * NS_PER_MS)
        scheduler.run_until(NS_PER_SEC)
        link.publish("/a", 1.0, NS_PER_SEC)
        assert received == []
        assert link.in_flight == 1
        scheduler.run_until(2 * NS_PER_SEC)
        # Message arrives with its ORIGINAL timestamp.
        assert received == [("/a", 1.0, NS_PER_SEC)]
        assert link.in_flight == 0

    def test_jitter_spreads_arrivals(self):
        scheduler, _, link, received = self.rig(
            latency_ns=100 * NS_PER_MS, jitter_ns=50 * NS_PER_MS, seed=1
        )
        for i in range(20):
            link.publish("/a", float(i), 0)
        scheduler.run_until(NS_PER_SEC)
        assert len(received) == 20

    def test_drops_are_deterministic_and_counted(self):
        scheduler, _, link, received = self.rig(
            drop_probability=0.5, seed=42
        )
        for i in range(200):
            link.publish("/a", float(i), i)
        assert link.dropped + link.delivered == 200
        assert 0.3 < link.loss_rate() < 0.7
        assert len(received) == link.delivered

    def test_validation(self):
        scheduler = TaskScheduler()
        broker = Broker()
        with pytest.raises(ConfigError):
            NetworkConditions(broker, scheduler, latency_ns=-1)
        with pytest.raises(ConfigError):
            NetworkConditions(broker, scheduler, drop_probability=1.0)
        with pytest.raises(ConfigError):
            NetworkConditions(
                broker, scheduler, latency_ns=10, jitter_ns=20
            )

    def test_subscribe_passthrough(self):
        scheduler, broker, link, _ = self.rig()
        hits = []
        sid = link.subscribe("/x", lambda t, v, ts: hits.append(v))
        broker.publish("/x", 1.0, 1)
        assert hits == [1.0]
        assert link.unsubscribe(sid)


class TestLossyDeployment:
    def test_pipeline_survives_lossy_link(self):
        """A pusher publishing through a 10%-loss, 200ms-latency link
        still fills the collect agent's storage (gappy but usable)."""
        scheduler = TaskScheduler()
        broker = Broker()
        link = NetworkConditions(
            broker,
            scheduler,
            latency_ns=200 * NS_PER_MS,
            jitter_ns=100 * NS_PER_MS,
            drop_probability=0.1,
            seed=3,
        )
        # The pusher publishes through the lossy link.
        pusher = Pusher("/n0", link, scheduler)
        pusher.add_plugin(TesterMonitoringPlugin("/n0", n_sensors=2))
        agent = CollectAgent("agent", broker, scheduler)
        scheduler.run_until(30 * NS_PER_SEC)
        agent.flush()
        stored = agent.storage.count("/n0/tester0000")
        assert 20 <= stored <= 31
        assert link.dropped > 0
        # Local cache is complete regardless of the network (in-band
        # analytics see everything).
        assert len(pusher.cache_for("/n0/tester0000")) == 31
