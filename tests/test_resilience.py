"""Tests for the resilient data plane: outages, store-and-forward,
bounded ingest, and operator circuit breakers."""

import threading

import pytest

from repro.common.errors import ConfigError, LinkDownError
from repro.common.timeutil import NS_PER_MS, NS_PER_SEC
from repro.core.breaker import CLOSED, HALF_OPEN, OPEN, UnitBreaker
from repro.core.configurator import (
    collect_operator_diagnostics,
    parse_operator_config,
)
from repro.core.manager import OperatorManager
from repro.dcdb import Broker, CollectAgent, Pusher
from repro.dcdb.mqtt import Message, QueuedSubscriber
from repro.dcdb.network import NetworkConditions, Outage
from repro.dcdb.plugins import TesterMonitoringPlugin
from repro.dcdb.resilience import ExponentialBackoff, SpillQueue
from repro.dcdb.sensor import Sensor
from repro.deploy import build_deployment
from repro.simulator.clock import TaskScheduler


def metric_value(rest, name, **labels):
    """One series' value from a host's JSON ``GET /metrics`` body."""
    for sample in rest.get("/metrics").body["metrics"]:
        if sample["name"] == name and sample["labels"] == labels:
            return sample["value"]
    return None


def link_rig(**kwargs):
    scheduler = TaskScheduler()
    broker = Broker()
    received = []
    broker.subscribe("/#", lambda t, v, ts: received.append((t, v, ts)))
    link = NetworkConditions(broker, scheduler, **kwargs)
    return scheduler, broker, link, received


class TestOutages:
    def test_publish_refused_during_outage(self):
        scheduler, _, link, received = link_rig()
        link.schedule_outage(5 * NS_PER_SEC, 10 * NS_PER_SEC)
        scheduler.run_until(6 * NS_PER_SEC)
        with pytest.raises(LinkDownError) as exc:
            link.publish("/a", 1.0, scheduler.clock.now)
        assert exc.value.until_ns == 10 * NS_PER_SEC
        assert received == []
        assert link.refused == 1
        assert link.sent == 0  # refused messages never entered the wire

    def test_link_recovers_after_outage(self):
        scheduler, _, link, received = link_rig()
        link.schedule_outage(5 * NS_PER_SEC, 10 * NS_PER_SEC)
        scheduler.run_until(10 * NS_PER_SEC)
        link.publish("/a", 1.0, scheduler.clock.now)
        assert len(received) == 1

    def test_partition_refuses_only_matching_destinations(self):
        scheduler, _, link, received = link_rig()
        link.schedule_outage(
            0, 10 * NS_PER_SEC, destinations=["/rack00/chassis01"]
        )
        link.publish("/rack00/chassis00/node00/power", 1.0, 0)
        assert len(received) == 1
        with pytest.raises(LinkDownError):
            link.publish("/rack00/chassis01/node00/power", 1.0, 0)

    def test_is_up_and_link_state(self):
        scheduler, _, link, _ = link_rig()
        link.schedule_outage(5 * NS_PER_SEC, 10 * NS_PER_SEC)
        assert link.is_up()
        state = link.link_state()
        assert state["up"] and state["next_outage_ns"] == 5 * NS_PER_SEC
        scheduler.run_until(7 * NS_PER_SEC)
        assert not link.is_up()
        state = link.link_state()
        assert not state["up"]
        assert state["down_until_ns"] == 10 * NS_PER_SEC

    def test_per_destination_is_up(self):
        _, _, link, _ = link_rig()
        link.schedule_outage(0, NS_PER_SEC, destinations=["/r1"])
        assert link.is_up("/r0/n0")
        assert not link.is_up("/r1/n0")
        # Whole-link queries only reflect whole-link outages.
        assert link.is_up()

    def test_in_flight_messages_survive_outage_start(self):
        scheduler, _, link, received = link_rig(latency_ns=2 * NS_PER_SEC)
        link.schedule_outage(NS_PER_SEC, 10 * NS_PER_SEC)
        link.publish("/a", 1.0, 0)  # on the wire before the outage
        scheduler.run_until(5 * NS_PER_SEC)
        assert len(received) == 1

    def test_publish_batch_refuses_partitioned_subset(self):
        scheduler, _, link, received = link_rig()
        link.schedule_outage(0, 10 * NS_PER_SEC, destinations=["/down"])
        batch = [
            Message("/up/a", 1.0, 0),
            Message("/down/b", 2.0, 0),
            Message("/up/c", 3.0, 0),
        ]
        with pytest.raises(LinkDownError) as exc:
            link.publish_batch(batch)
        assert [m.topic for m in exc.value.refused] == ["/down/b"]
        assert [t for t, _, _ in received] == ["/up/a", "/up/c"]

    def test_outage_validation(self):
        _, _, link, _ = link_rig()
        with pytest.raises(ConfigError):
            link.schedule_outage(5, 5)
        with pytest.raises(ConfigError):
            link.schedule_outage(0, 5, destinations=[])

    def test_random_outages_deterministic(self):
        def schedule(seed):
            _, _, link, _ = link_rig(seed=seed)
            return link.schedule_random_outages(
                3, 100 * NS_PER_SEC, 5 * NS_PER_SEC
            )

        a, b = schedule(7), schedule(7)
        assert a == b
        assert all(isinstance(o, Outage) for o in a)
        assert schedule(8) != a


class TestSpillQueue:
    def test_fifo(self):
        q = SpillQueue(4)
        for i in range(3):
            assert q.append(i) is None
        assert q.popleft() == 0
        assert q.peek() == 1
        assert len(q) == 2

    def test_drop_oldest_evicts_head(self):
        q = SpillQueue(2, policy="drop-oldest")
        q.append("a")
        q.append("b")
        assert q.append("c") == "a"
        assert q.popleft() == "b"
        assert q.popleft() == "c"

    def test_drop_newest_refuses_arrival(self):
        q = SpillQueue(2, policy="drop-newest")
        q.append("a")
        q.append("b")
        assert q.append("c") == "c"
        assert q.popleft() == "a"

    def test_appendleft_restores_order(self):
        q = SpillQueue(4)
        q.append("b")
        q.appendleft("a")
        assert q.popleft() == "a"

    def test_empty_popleft_returns_none(self):
        assert SpillQueue(2).popleft() is None

    def test_validation(self):
        with pytest.raises(ConfigError):
            SpillQueue(0)
        with pytest.raises(ConfigError):
            SpillQueue(4, policy="bogus")


class TestExponentialBackoff:
    def test_growth_and_cap(self):
        b = ExponentialBackoff(100, 1000, jitter=0.0)
        delays = [b.next_delay() for _ in range(6)]
        assert delays == [100, 200, 400, 800, 1000, 1000]

    def test_jitter_stays_bounded_and_deterministic(self):
        mk = lambda: ExponentialBackoff(1000, 100000, jitter=0.2, seed=3)
        a = [mk().next_delay() for _ in range(3)]
        assert len(set(a)) == 1  # same seed, same sequence
        assert 800 <= a[0] <= 1200

    def test_reset(self):
        b = ExponentialBackoff(100, 1000, jitter=0.0)
        b.next_delay()
        b.next_delay()
        b.reset()
        assert b.next_delay() == 100

    def test_validation(self):
        with pytest.raises(ConfigError):
            ExponentialBackoff(0, 100)
        with pytest.raises(ConfigError):
            ExponentialBackoff(200, 100)
        with pytest.raises(ConfigError):
            ExponentialBackoff(100, 200, factor=0.5)
        with pytest.raises(ConfigError):
            ExponentialBackoff(100, 200, jitter=1.0)


def pusher_rig(outage=(2, 6), **pusher_kwargs):
    scheduler = TaskScheduler()
    broker = Broker()
    received = []
    broker.subscribe("/#", lambda t, v, ts: received.append((t, v, ts)))
    link = NetworkConditions(broker, scheduler)
    if outage is not None:
        link.schedule_outage(
            outage[0] * NS_PER_SEC, outage[1] * NS_PER_SEC
        )
    pusher = Pusher(
        "/n0", link, scheduler,
        retry_base_ns=200 * NS_PER_MS,
        retry_max_ns=NS_PER_SEC,
        **pusher_kwargs,
    )
    sensor = Sensor("/n0/power")
    return scheduler, pusher, sensor, received, link


class TestStoreAndForward:
    def test_refused_publish_spills_and_replays_in_order(self):
        scheduler, pusher, sensor, received, _ = pusher_rig()
        for s in range(10):
            scheduler.run_until(s * NS_PER_SEC)
            pusher.store_reading(sensor, scheduler.clock.now, float(s))
        scheduler.run_until(10 * NS_PER_SEC)
        assert pusher.spill_depth == 0
        timestamps = [ts for _, _, ts in received]
        assert len(received) == 10  # zero loss
        assert timestamps == sorted(timestamps)  # in order
        # t=2..5 refused by the link; publishes issued while the spill
        # was still draining queued behind it as well.
        assert pusher._m_spill_buffered.value >= 4
        assert (
            pusher._m_spill_replayed.value == pusher._m_spill_buffered.value
        )
        assert pusher._m_spill_dropped.value == 0
        assert pusher._m_link_refusals.value >= 1

    def test_local_cache_unaffected_by_outage(self):
        scheduler, pusher, sensor, _, _ = pusher_rig()
        for s in range(8):
            scheduler.run_until(s * NS_PER_SEC)
            pusher.store_reading(sensor, scheduler.clock.now, float(s))
        assert len(pusher.cache_for("/n0/power")) == 8

    def test_overflow_drop_oldest(self):
        scheduler, pusher, sensor, received, _ = pusher_rig(
            outage=(0, 5), spill_capacity=2
        )
        for s in range(4):
            scheduler.run_until(s * NS_PER_SEC)
            pusher.store_reading(sensor, scheduler.clock.now, float(s))
        scheduler.run_until(8 * NS_PER_SEC)
        # Capacity 2: of 4 refused readings the oldest 2 were evicted.
        assert pusher._m_spill_dropped.value == 2
        assert [v for _, v, _ in received] == [2.0, 3.0]

    def test_overflow_drop_newest(self):
        scheduler, pusher, sensor, received, _ = pusher_rig(
            outage=(0, 5), spill_capacity=2, spill_policy="drop-newest"
        )
        for s in range(4):
            scheduler.run_until(s * NS_PER_SEC)
            pusher.store_reading(sensor, scheduler.clock.now, float(s))
        scheduler.run_until(8 * NS_PER_SEC)
        assert pusher._m_spill_dropped.value == 2
        assert [v for _, v, _ in received] == [0.0, 1.0]

    def test_new_publishes_queue_behind_pending_spill(self):
        scheduler, pusher, sensor, received, link = pusher_rig(outage=(0, 2))
        pusher.store_reading(sensor, 0, 0.0)  # refused, spilled
        assert pusher.spill_depth == 1
        # Publish while the spill is non-empty but before any replay:
        # must line up behind the spilled reading, not overtake it.
        pusher.store_reading(sensor, 1, 1.0)
        assert pusher.spill_depth == 2
        scheduler.run_until(5 * NS_PER_SEC)
        assert [v for _, v, _ in received] == [0.0, 1.0]
        assert pusher.spill_depth == 0

    def test_batch_store_spills_refused_subset(self):
        scheduler = TaskScheduler()
        broker = Broker()
        received = []
        broker.subscribe("/#", lambda t, v, ts: received.append(t))
        link = NetworkConditions(broker, scheduler)
        link.schedule_outage(0, 2 * NS_PER_SEC, destinations=["/n0/b"])
        pusher = Pusher("/n0", link, scheduler, retry_base_ns=100 * NS_PER_MS)
        readings = [
            (Sensor("/n0/a"), 1.0),
            (Sensor("/n0/b"), 2.0),
        ]
        pusher.store_readings_batch(0, readings)
        assert received == ["/n0/a"]
        assert pusher.spill_depth == 1
        scheduler.run_until(4 * NS_PER_SEC)
        assert received == ["/n0/a", "/n0/b"]

    def test_flush_spill_replays_immediately(self):
        scheduler, pusher, sensor, received, _ = pusher_rig(outage=(0, 2))
        pusher.store_reading(sensor, 0, 1.0)
        assert pusher.flush_spill() == 1  # still down: nothing replayed
        scheduler.run_until(3 * NS_PER_SEC)
        pusher.store_reading(sensor, scheduler.clock.now, 2.0)
        assert pusher.spill_depth == 0
        assert len(received) == 2

    def test_spill_knob_validation(self):
        scheduler = TaskScheduler()
        with pytest.raises(ConfigError):
            Pusher("/n0", Broker(), scheduler, spill_capacity=0)
        with pytest.raises(ConfigError):
            Pusher("/n0", Broker(), scheduler, spill_policy="bogus")


class TestBoundedIngestQueue:
    def test_unbounded_by_default(self):
        q = QueuedSubscriber()
        for i in range(100):
            q.handler(f"/t{i}", float(i), i)
        assert len(q) == 100 and q.dropped == 0

    def test_drop_oldest_keeps_newest(self):
        q = QueuedSubscriber(maxlen=2)
        for i in range(4):
            q.handler("/t", float(i), i)
        assert q.dropped == 2
        assert [m.value for m in q.drain()] == [2.0, 3.0]

    def test_drop_newest_keeps_oldest(self):
        q = QueuedSubscriber(maxlen=2, policy="drop-newest")
        for i in range(4):
            q.handler("/t", float(i), i)
        assert q.dropped == 2
        assert [m.value for m in q.drain()] == [0.0, 1.0]

    def test_validation(self):
        with pytest.raises(ConfigError):
            QueuedSubscriber(maxlen=0)
        with pytest.raises(ConfigError):
            QueuedSubscriber(policy="bogus")

    def test_agent_exports_ingest_dropped_total(self):
        scheduler = TaskScheduler()
        broker = Broker()
        agent = CollectAgent(
            "agent", broker, scheduler, ingest_queue_capacity=5
        )
        for i in range(12):
            broker.publish("/n0/s", float(i), i)
        agent.flush()
        assert agent.ingest_dropped == 7
        body = agent.rest.get("/stats").body
        assert body["ingest_dropped"] == 7
        assert metric_value(agent.rest, "ingest_dropped_total") == 7

    def test_drop_accounting_survives_concurrent_publishes(self):
        # Satellite regression: the unguarded queue lost drop counts
        # under concurrent handler calls.  With the lock seam the
        # invariant (kept + dropped == published) must hold exactly.
        q = QueuedSubscriber(maxlen=64)
        n_threads, per_thread = 8, 500
        barrier = threading.Barrier(n_threads)

        def blast(tid):
            barrier.wait()
            for i in range(per_thread):
                q.handler(f"/t{tid}", float(i), i)

        threads = [
            threading.Thread(target=blast, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(q) + q.dropped == n_threads * per_thread
        assert len(q) == 64


class TestUnitBreaker:
    def test_trips_after_threshold(self):
        b = UnitBreaker(3, cooldown_passes=2)
        b.record_failure()
        b.record_failure()
        assert b.state == CLOSED
        b.record_failure()
        assert b.state == OPEN and b.trips == 1 and b.quarantined

    def test_success_resets_consecutive_count(self):
        b = UnitBreaker(2)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == CLOSED  # not consecutive

    def test_cooldown_then_half_open_probe(self):
        b = UnitBreaker(1, cooldown_passes=2)
        b.record_failure()
        assert not b.allow()  # pass 1 of cooldown
        assert b.allow()  # pass 2: probe granted
        assert b.state == HALF_OPEN and b.probes == 1

    def test_failed_probe_doubles_cooldown_capped(self):
        b = UnitBreaker(1, cooldown_passes=2, max_cooldown_passes=4)
        b.record_failure()  # open, cooldown 2
        assert not b.allow()
        assert b.allow()
        b.record_failure()  # failed probe -> cooldown 4
        assert b.snapshot()["cooldown_passes"] == 4
        for _ in range(3):
            assert not b.allow()
        assert b.allow()
        b.record_failure()  # capped at 4
        assert b.snapshot()["cooldown_passes"] == 4

    def test_probe_success_closes_and_counts_recovery(self):
        b = UnitBreaker(1, cooldown_passes=1)
        b.record_failure()
        assert b.allow()
        b.record_success()
        assert b.state == CLOSED and b.recoveries == 1
        assert b.snapshot()["cooldown_passes"] == 1  # backoff reset

    def test_manual_trip_and_reset(self):
        b = UnitBreaker(0)  # threshold 0: no automatic tripping
        for _ in range(10):
            b.record_failure()
        assert b.state == CLOSED
        b.trip()
        assert b.state == OPEN
        b.reset()
        assert b.state == CLOSED and b.recoveries == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            UnitBreaker(-1)
        with pytest.raises(ConfigError):
            UnitBreaker(1, cooldown_passes=0)


TESTER_BREAKER_CONFIG = {
    "plugin": "tester",
    "operators": {
        "t0": {
            "interval_s": 1,
            "inputs": ["<bottomup>tester0000"],
            "outputs": ["<bottomup>probe"],
            "breaker_threshold": 2,
            "breaker_cooldown": 2,
            "breaker_max_cooldown": 4,
            "params": {
                "queries": 1,
                "fail_filter": "n0",
                "fail_passes": 4,
            },
        }
    },
}


@pytest.fixture
def breaker_rig():
    class NS:
        pass

    ns = NS()
    ns.scheduler = TaskScheduler()
    ns.broker = Broker()
    ns.pusher = Pusher("/r0/c0/n0", ns.broker, ns.scheduler)
    ns.pusher.add_plugin(TesterMonitoringPlugin("/r0/c0/n0", n_sensors=3))
    ns.manager = OperatorManager()
    ns.pusher.attach_analytics(ns.manager)
    return ns


class TestOperatorBreaker:
    def test_failing_unit_quarantined_then_recovers(self, breaker_rig):
        rig = breaker_rig
        rig.manager.load_plugin(TESTER_BREAKER_CONFIG)
        op = rig.manager.operator("t0")
        saw_quarantine = False
        for s in range(1, 20):
            rig.scheduler.run_until(s * NS_PER_SEC)
            if op.quarantined_units():
                saw_quarantine = True
        assert saw_quarantine
        # fail_passes=4 exhausted: the probe succeeded and closed it.
        assert op.quarantined_units() == []
        snap = op.breaker_state("/r0/c0/n0")
        assert snap["state"] == CLOSED
        assert snap["trips"] >= 1 and snap["recoveries"] == 1
        # Quarantine skipped compute passes: fewer errors than passes.
        assert op.error_count == 4
        assert op.error_count < op.compute_count

    def test_quarantined_unit_consumes_no_compute(self, breaker_rig):
        rig = breaker_rig
        rig.manager.load_plugin(TESTER_BREAKER_CONFIG)
        op = rig.manager.operator("t0")
        rig.scheduler.run_until(3 * NS_PER_SEC)  # 2 failures -> open
        assert op.quarantined_units() == ["/r0/c0/n0"]
        attempts = op._fail_counts.get("/r0/c0/n0", 0)
        rig.scheduler.run_until(4 * NS_PER_SEC)  # cooldown pass: skipped
        assert op._fail_counts.get("/r0/c0/n0", 0) == attempts

    def test_stats_and_metrics_expose_quarantine(self, breaker_rig):
        rig = breaker_rig
        rig.manager.load_plugin(TESTER_BREAKER_CONFIG)
        op = rig.manager.operator("t0")
        rig.scheduler.run_until(3 * NS_PER_SEC)
        assert op.stats()["quarantined"] == 1
        rest = rig.pusher.rest
        assert (
            metric_value(rest, "operator_quarantined_units", operator="t0")
            == 1
        )
        # Initial trip at pass 2, plus a failed half-open probe re-trip.
        assert metric_value(rest, "breaker_trips_total", operator="t0") == 2

    def test_breaker_disabled_by_default(self, breaker_rig):
        rig = breaker_rig
        config = {
            "plugin": "tester",
            "operators": {
                "t1": {
                    "interval_s": 1,
                    "inputs": ["<bottomup>tester0000"],
                    "outputs": ["<bottomup>probe"],
                    "params": {"queries": 1, "fail_filter": "n0"},
                }
            },
        }
        rig.manager.load_plugin(config)
        op = rig.manager.operator("t1")
        rig.scheduler.run_until(10 * NS_PER_SEC)
        assert op.quarantined_units() == []
        # Passes fire at t=0..10 inclusive and every one is attempted.
        assert op.error_count == 11

    def test_rest_get_and_put_breaker(self, breaker_rig):
        rig = breaker_rig
        rig.manager.load_plugin(TESTER_BREAKER_CONFIG)
        resp = rig.pusher.rest.get("/analytics/units/t0/r0/c0/n0/breaker")
        assert resp.ok
        assert resp.body["unit"] == "/r0/c0/n0"
        assert resp.body["state"] == CLOSED
        tripped = rig.pusher.rest.put(
            "/analytics/units/t0/r0/c0/n0/breaker", action="trip"
        )
        assert tripped.ok and tripped.body["state"] == OPEN
        rig.scheduler.run_until(NS_PER_SEC)
        assert rig.manager.operator("t0").quarantined_units() == [
            "/r0/c0/n0"
        ]
        reset = rig.pusher.rest.put(
            "/analytics/units/t0/r0/c0/n0/breaker", action="reset"
        )
        assert reset.ok and reset.body["state"] == CLOSED

    def test_rest_manual_trip_with_breaker_disabled(self, breaker_rig):
        # Manual REST control works even with automatic tripping off.
        rig = breaker_rig
        config = {
            "plugin": "tester",
            "operators": {
                "t2": {
                    "interval_s": 1,
                    "inputs": ["<bottomup>tester0000"],
                    "outputs": ["<bottomup>probe"],
                    "params": {"queries": 1},
                }
            },
        }
        rig.manager.load_plugin(config)
        op = rig.manager.operator("t2")
        resp = rig.pusher.rest.put(
            "/analytics/units/t2/r0/c0/n0/breaker", action="trip"
        )
        assert resp.ok
        assert op.quarantined_units() == ["/r0/c0/n0"]
        assert op.breaker_state("/r0/c0/n0")["state"] == OPEN
        # The quarantined unit skips passes until a half-open probe
        # succeeds (computes are healthy here), after which it heals.
        rig.scheduler.run_until(5 * NS_PER_SEC)
        assert op.quarantined_units() == []
        assert op.breaker_state("/r0/c0/n0")["state"] == CLOSED
        assert 0 < op.unit_results_count < 6

    def test_rest_errors(self, breaker_rig):
        rig = breaker_rig
        rig.manager.load_plugin(TESTER_BREAKER_CONFIG)
        rest = rig.pusher.rest
        assert rest.get("/analytics/units/zzz/r0/c0/n0/breaker").status == 404
        assert rest.get("/analytics/units/t0/r9/c9/n9/breaker").status == 404
        assert rest.get("/analytics/units/t0/breaker").status == 400
        assert (
            rest.put("/analytics/units/t0/r0/c0/n0/breaker").status == 400
        )
        assert (
            rest.put(
                "/analytics/units/t0/r0/c0/n0/breaker", action="zap"
            ).status
            == 400
        )

    def test_breaker_config_validation(self):
        diags = collect_operator_diagnostics(
            "x",
            {
                "breaker_threshold": -1,
                "breaker_cooldown": 0,
                "breaker_max_cooldown": True,
            },
        )
        codes = sorted(d.code for d in diags)
        assert codes == ["W005", "W005", "W005"]
        cfg = parse_operator_config(
            "x",
            {
                "outputs": ["<bottomup>y"],
                "breaker_threshold": 3,
                "breaker_cooldown": 2,
                "breaker_max_cooldown": 1,
            },
        )
        assert cfg.breaker_threshold == 3
        # Ceiling never below the base cooldown.
        assert cfg.breaker_max_cooldown == 2

    def test_unknown_breaker_key_warns(self):
        diags = collect_operator_diagnostics("x", {"breaker_treshold": 1})
        assert any(d.code == "W003" for d in diags)


class TestDeploymentNetworkSection:
    SPEC = {
        "cluster": {"nodes": 2, "cpus": 2, "seed": 1},
        "monitoring": {"plugins": ["sysfs"], "interval_ms": 1000},
        "network": {
            "latency_ms": 5,
            "seed": 3,
            "outages": [{"start_s": 3, "end_s": 6}],
            "spill": {"capacity": 777, "retry_base_ms": 100,
                      "retry_max_ms": 1000},
            "ingest": {"queue_capacity": 50000},
        },
    }

    def test_network_section_builds_link_and_spill(self):
        dep = build_deployment(self.SPEC)
        assert isinstance(dep.link, NetworkConditions)
        pusher = next(iter(dep.pushers.values()))
        assert pusher.broker is dep.link
        assert pusher._spill.capacity == 777
        assert dep.agent._queue._maxlen == 50000

    def test_outage_recovery_is_lossless(self):
        dep = build_deployment(self.SPEC)
        dep.run(12)
        dep.run(2)  # drain margin for in-flight deliveries
        dep.agent.flush()
        node = dep.sim.node_paths[0]
        ts, _ = dep.agent.storage.query(
            f"{node}/power", 0, 12 * NS_PER_SEC
        )
        local = dep.pushers[node].cache_for(f"{node}/power")
        assert len(ts) == len(local.view_absolute(0, 12 * NS_PER_SEC))
        assert dep.link.refused > 0
        assert dep.agent.ingest_dropped == 0

    def test_no_network_section_keeps_plain_broker(self):
        dep = build_deployment(
            {"cluster": {"nodes": 1, "cpus": 2, "seed": 1}}
        )
        assert dep.link is None
        assert next(iter(dep.pushers.values())).broker is dep.broker
