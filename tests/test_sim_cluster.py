"""Tests for cluster topology construction."""

import pytest

from repro.simulator.cluster import ClusterSpec, ClusterTopology


class TestClusterSpec:
    def test_default_is_coolmuc3_like(self):
        spec = ClusterSpec.coolmuc3()
        assert spec.total_nodes == 148
        assert spec.cpus_per_node == 64

    def test_small_factory(self):
        spec = ClusterSpec.small(nodes=3, cpus=2)
        assert spec.total_nodes == 3
        assert spec.cpus_per_node == 2

    def test_rejects_overfull(self):
        with pytest.raises(ValueError):
            ClusterSpec(racks=1, chassis_per_rack=1, nodes_per_chassis=2,
                        total_nodes=3)

    def test_rejects_zero_dims(self):
        with pytest.raises(ValueError):
            ClusterSpec(racks=0, total_nodes=1)


class TestClusterTopology:
    def test_node_count(self):
        topo = ClusterTopology(ClusterSpec.coolmuc3())
        assert topo.n_nodes == 148
        assert topo.n_cpus == 148 * 64

    def test_truncation_within_grid(self):
        # 148 nodes over a 5x5x6 grid: last chassis partially filled.
        topo = ClusterTopology(ClusterSpec.coolmuc3())
        assert len(topo.rack_paths) == 5
        assert len(topo.node_paths) == 148
        assert len(set(topo.node_paths)) == 148

    def test_paths_are_hierarchical(self):
        topo = ClusterTopology(ClusterSpec.small(nodes=2, cpus=2))
        node = topo.node_paths[0]
        assert node.startswith("/rack00/chassis00/")
        cpus = topo.cpus_of_node[node]
        assert cpus == [f"{node}/cpu00", f"{node}/cpu01"]

    def test_node_index_lookup(self):
        topo = ClusterTopology(ClusterSpec.small(nodes=3, cpus=1))
        for i, path in enumerate(topo.node_paths):
            assert topo.node_index[path] == i

    def test_node_of_cpu(self):
        topo = ClusterTopology(ClusterSpec.small(nodes=1, cpus=2))
        node = topo.node_paths[0]
        assert topo.node_of_cpu(f"{node}/cpu01") == node

    def test_iter_cpu_paths_is_node_major(self):
        topo = ClusterTopology(ClusterSpec.small(nodes=2, cpus=2))
        paths = list(topo.iter_cpu_paths())
        assert len(paths) == 4
        assert paths[0].startswith(topo.node_paths[0])
        assert paths[-1].startswith(topo.node_paths[1])

    def test_empty_containers_excluded(self):
        # A spec using only part of the grid should not list unused racks.
        spec = ClusterSpec(
            racks=3, chassis_per_rack=2, nodes_per_chassis=2,
            cpus_per_node=1, total_nodes=4,
        )
        topo = ClusterTopology(spec)
        assert len(topo.rack_paths) == 1
        assert len(topo.chassis_paths) == 2
