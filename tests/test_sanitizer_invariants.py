"""Tests for invariant sanitizers: caches, views, tree, wall clock."""

import time

from repro.core.tree import SensorTree
from repro.dcdb.cache import SensorCache
from repro.sanitizer import make_sanitizer
from repro.sanitizer.invariants import scan_cache, time_functions_patched


def codes(diags):
    return [d.code for d in diags]


class FakeHost:
    def __init__(self, name, caches):
        self.name = name
        self.caches = caches


class FakeDeployment:
    def __init__(self, hosts):
        self._hosts = hosts

    def all_hosts(self):
        return self._hosts


class TestCacheOrder:
    def test_monotonic_cache_is_clean(self):
        cache = SensorCache(8)
        for i in range(5):
            cache.store(i * 1000, float(i))
        order, stale = scan_cache("h", "t", cache)
        assert order is None and stale is None

    def test_r006_corrupted_timestamps(self):
        cache = SensorCache(8)
        for i in range(5):
            cache.store(i * 1000, float(i))
        cache._ts[2] = 0  # corrupt the live segment behind the API's back
        san = make_sanitizer(track_wall_clock=False)
        san.check_deployment(
            FakeDeployment([FakeHost("node0", {"power": cache})])
        )
        diags = san.finish()
        assert codes(diags) == ["R006"]
        assert diags[0].path == "hosts.node0.caches.power"

    def test_r010_stale_drops_surfaced(self):
        cache = SensorCache(8)
        cache.store(1000, 1.0)
        cache.store(500, 2.0)  # out of order: dropped by the guard
        assert cache.stale_drops == 1
        san = make_sanitizer(track_wall_clock=False)
        san.check_deployment(
            FakeDeployment([FakeHost("node0", {"power": cache})])
        )
        diags = san.finish()
        assert codes(diags) == ["R010"]
        assert diags[0].severity == "warning"
        assert "1 out-of-order" in diags[0].message


class TestViewImmutability:
    def make_view(self, cache=None):
        cache = cache or SensorCache(16)
        for i in range(8):
            cache.store(i * 1000, float(i))
        return cache.view_absolute(0, 10_000)

    def test_untouched_view_is_clean(self):
        san = make_sanitizer(track_wall_clock=False)
        with san.activate():
            san.on_query_view("t", self.make_view())
        assert san.finish() == []

    def test_r007_value_mutation(self):
        san = make_sanitizer(track_wall_clock=False)
        with san.activate():
            view = self.make_view()
            san.on_query_view("t", view)
            view.values()[0] += 7.0
        diags = san.finish()
        assert codes(diags) == ["R007"]
        assert "values changed" in diags[0].message
        assert diags[0].path == "views.t"

    def test_concurrent_writer_cannot_touch_snapshot(self):
        # Views are point-in-time snapshots (the cache-aliasing fix);
        # wrapping the ring buffer after hand-out must leave them intact,
        # and the sanitizer is the regression guard for that property.
        cache = SensorCache(8)
        san = make_sanitizer(track_wall_clock=False)
        with san.activate():
            view = self.make_view(cache)
            san.on_query_view("t", view)
            for i in range(8, 20):
                cache.store(i * 1000, float(i))
        assert san.finish() == []


class TestTreeFreeze:
    def test_r008_mutation_after_freeze(self):
        tree = SensorTree.from_topics(["/rack00/node00/power"])
        tree.freeze()
        san = make_sanitizer(track_wall_clock=False)
        with san.activate():
            tree.add_sensor("/rack00/node00/temp")
        diags = san.finish()
        assert codes(diags) == ["R008"]
        assert "add_sensor" in diags[0].message

    def test_mutation_before_freeze_is_fine(self):
        san = make_sanitizer(track_wall_clock=False)
        with san.activate():
            tree = SensorTree.from_topics(["/rack00/node00/power"])
            tree.add_sensor("/rack00/node00/temp")
            tree.freeze()
        assert san.finish() == []


class TestWallClockDiscipline:
    def _disciplined_reader(self):
        """A clock reader whose frame claims to live under simulator/."""
        code = compile(
            "import time\n"
            "def read_clock():\n"
            "    return time.time()\n",
            "src/repro/simulator/fake_clock_user.py",
            "exec",
        )
        ns = {}
        exec(code, ns)
        return ns["read_clock"]

    def test_r009_wall_clock_read_in_simulator_code(self):
        reader = self._disciplined_reader()
        san = make_sanitizer()
        with san.activate():
            reader()
        diags = san.finish()
        assert codes(diags) == ["R009"]
        assert "time.time" in diags[0].message
        assert diags[0].file.endswith("fake_clock_user.py")

    def test_reads_outside_disciplined_code_not_flagged(self):
        san = make_sanitizer()
        with san.activate():
            time.time()  # this test file is not clock-disciplined
        diags = san.finish()
        assert codes(diags) == []

    def test_patch_installed_only_while_active(self):
        assert not time_functions_patched()
        san = make_sanitizer()
        with san.activate():
            assert time_functions_patched()
        assert not time_functions_patched()

    def test_no_patch_when_tracking_disabled(self):
        san = make_sanitizer(track_wall_clock=False)
        with san.activate():
            assert not time_functions_patched()
