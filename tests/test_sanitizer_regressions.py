"""Regression tests for the lock-audit fixes in runtime.py / network.py.

The sanitizer surfaced two violations in the seed code (documented in
docs/STATIC_ANALYSIS.md): the wall-clock driver drained arbitrarily
large backlogs in one monolithic locked ``run_until`` (rule R003), and
holding a shared-link lock across ``broker.publish`` ran unbounded
subscriber callbacks under the lock (rule R002).  These tests pin the
fixed behaviour and prove the sanitizer still catches the anti-pattern.
"""

import threading

from repro.dcdb.mqtt import Broker
from repro.dcdb.network import NetworkConditions
from repro.runtime import WallClockDriver
from repro.sanitizer import hooks, make_sanitizer
from repro.simulator.clock import SimClock, TaskScheduler
from repro.common.timeutil import NS_PER_SEC


def codes(diags):
    return [d.code for d in diags]


class FakeClock:
    def __init__(self):
        self.now = 0


class FakeScheduler:
    """Records every run_until target so slice sizes can be asserted."""

    def __init__(self):
        self.clock = FakeClock()
        self.calls = []

    def run_until(self, target):
        self.calls.append(target - self.clock.now)
        self.clock.now = target


class TestBoundedAdvance:
    def test_backlog_drains_in_bounded_slices(self):
        sched = FakeScheduler()
        driver = WallClockDriver(sched, speedup=1.0, tick_s=0.05)
        max_slice = int(driver.speedup * driver.tick_s * NS_PER_SEC)
        # A 2-simulated-second backlog (a 40-tick stall at this pace).
        driver._advance(2 * NS_PER_SEC)
        assert sched.clock.now == 2 * NS_PER_SEC
        assert len(sched.calls) > 1
        assert max(sched.calls) <= max_slice

    def test_no_work_when_caught_up(self):
        sched = FakeScheduler()
        sched.clock.now = NS_PER_SEC
        driver = WallClockDriver(sched, speedup=1.0, tick_s=0.05)
        driver._advance(NS_PER_SEC)
        assert sched.calls == []

    def test_sanitized_driver_run_has_no_long_holds(self):
        san = make_sanitizer(long_hold_ms=250.0)
        with san.activate():
            clock = SimClock()
            sched = TaskScheduler(clock)
            driver = WallClockDriver(sched, speedup=50.0, tick_s=0.01)
            driver.run_for(0.3)
        diags = [d for d in san.finish() if d.code == "R003"]
        assert diags == []


class TestNetworkPublishLocking:
    def test_concurrent_publishers_keep_counters_consistent(self):
        broker = Broker()
        sched = TaskScheduler(SimClock())
        net = NetworkConditions(broker, sched)
        n_threads, per_thread = 4, 200

        def blast(k):
            for i in range(per_thread):
                net.publish(f"/n{k}/s", float(i), i)

        threads = [
            threading.Thread(target=blast, args=(k,))
            for k in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert net.sent == n_threads * per_thread
        assert net.delivered == n_threads * per_thread
        assert net.in_flight == 0

    def test_publish_does_not_hold_lock_across_broker(self):
        """The fixed path publishes outside the link lock: a subscriber
        that re-enters the link must not find the lock held."""
        san = make_sanitizer(track_wall_clock=False)
        with san.activate():
            broker = Broker()
            sched = TaskScheduler(SimClock())
            net = NetworkConditions(broker, sched)
            seen = []
            broker.subscribe(
                "#", lambda t, v, ts: seen.append(san.locks.held_locks())
            )
            net.publish("/n0/power", 1.0, 100)
        assert seen == [()]
        assert codes(san.finish()) == []

    def test_sanitizer_catches_publish_under_lock_antipattern(self):
        """Re-introducing the audited bug (holding the link lock across
        the broker fan-out) must trip rule R002."""
        san = make_sanitizer(track_wall_clock=False)
        with san.activate():
            broker = Broker()
            sched = TaskScheduler(SimClock())
            net = NetworkConditions(broker, sched)
            with net._lock:  # the pre-audit locking scope
                broker.publish("/n0/power", 1.0, 100)
        diags = san.finish()
        assert codes(diags) == ["R002"]
        assert "NetworkConditions" in diags[0].message


class TestDriverStop:
    def test_stop_while_holding_lock_is_flagged(self):
        san = make_sanitizer(track_wall_clock=False)
        with san.activate():
            sched = TaskScheduler(SimClock())
            driver = WallClockDriver(sched, speedup=10.0, tick_s=0.01)
            driver.start()
            guard = hooks.make_lock("caller-guard")
            with guard:  # joining a thread while holding a lock
                driver.stop()
        diags = san.finish()
        assert "R002" in codes(diags)
        r002 = next(d for d in diags if d.code == "R002")
        assert "thread join" in r002.message

    def test_clean_stop_without_lock(self):
        san = make_sanitizer(track_wall_clock=False)
        with san.activate():
            sched = TaskScheduler(SimClock())
            driver = WallClockDriver(sched, speedup=10.0, tick_s=0.01)
            driver.start()
            driver.stop()
        assert [d for d in san.finish() if d.code == "R002"] == []
