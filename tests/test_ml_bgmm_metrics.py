"""Tests for the variational Bayesian GMM and the error metrics."""

import numpy as np
import pytest

from repro.ml.bgmm import BayesianGaussianMixture
from repro.ml.metrics import (
    binned_relative_error,
    mean_relative_error,
    relative_error,
)


def three_blobs(rng, n=150, spread=0.25):
    return np.vstack(
        [
            rng.normal([0, 0], spread, (n, 2)),
            rng.normal([5, 5], spread, (n, 2)),
            rng.normal([0, 5], spread, (n, 2)),
        ]
    )


class TestBGMM:
    def test_finds_three_effective_components(self):
        rng = np.random.default_rng(0)
        X = three_blobs(rng)
        m = BayesianGaussianMixture(n_components=10, random_state=1).fit(X)
        assert len(m.effective_components()) == 3
        # Effective weights each near 1/3.
        eff = m.weights_[m.effective_components()]
        assert np.allclose(eff, 1 / 3, atol=0.05)

    def test_overcapacity_prunes_rather_than_splits(self):
        rng = np.random.default_rng(2)
        X = rng.normal(0, 1, (300, 2))
        m = BayesianGaussianMixture(n_components=8, random_state=1).fit(X)
        assert len(m.effective_components()) <= 2

    def test_predict_labels_consistent_with_blobs(self):
        rng = np.random.default_rng(3)
        X = three_blobs(rng)
        m = BayesianGaussianMixture(n_components=8, random_state=1).fit(X)
        labels = m.predict(X)
        # Each blob maps to a single dominant label.
        for i in range(3):
            blob = labels[i * 150 : (i + 1) * 150]
            dominant = np.bincount(blob).max() / len(blob)
            assert dominant > 0.95

    def test_outlier_mask(self):
        rng = np.random.default_rng(4)
        X = three_blobs(rng)
        m = BayesianGaussianMixture(n_components=8, random_state=1).fit(X)
        probe = np.array([[0.0, 0.0], [50.0, -50.0]])
        mask = m.outlier_mask(probe, pdf_threshold=1e-3)
        assert not mask[0]
        assert mask[1]

    def test_score_samples_orders_density(self):
        rng = np.random.default_rng(5)
        X = rng.normal(0, 1, (300, 2))
        m = BayesianGaussianMixture(n_components=4, random_state=1).fit(X)
        dense = m.score_samples(np.array([[0.0, 0.0]]))[0]
        sparse = m.score_samples(np.array([[8.0, 8.0]]))[0]
        assert dense > sparse

    def test_deterministic_under_seed(self):
        rng = np.random.default_rng(6)
        X = three_blobs(rng)
        a = BayesianGaussianMixture(n_components=6, random_state=9).fit(X)
        b = BayesianGaussianMixture(n_components=6, random_state=9).fit(X)
        assert np.allclose(a.weights_, b.weights_)

    def test_moderate_rescaling_preserves_structure(self):
        # The Wishart prior is data-scaled, so moderate unit changes keep
        # the recovered structure.  (Extreme anisotropic scaling defeats
        # the Euclidean k-means init — which is why the clustering
        # plugin standardizes its features before fitting.)
        rng = np.random.default_rng(7)
        X = three_blobs(rng)
        scaled = X * np.array([10.0, 0.5])
        m = BayesianGaussianMixture(n_components=8, random_state=1).fit(scaled)
        assert len(m.effective_components()) == 3

    def test_input_validation(self):
        with pytest.raises(ValueError):
            BayesianGaussianMixture().fit(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            BayesianGaussianMixture().fit(np.zeros(5))
        with pytest.raises(ValueError):
            BayesianGaussianMixture(n_components=0)

    def test_unfitted_access_rejected(self):
        m = BayesianGaussianMixture()
        with pytest.raises(RuntimeError):
            m.predict(np.zeros((1, 2)))

    def test_more_components_than_points(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0], [0.5, 0.5]])
        m = BayesianGaussianMixture(n_components=8, random_state=0).fit(X)
        assert np.isfinite(m.weights_).all()


class TestRelativeError:
    def test_elementwise(self):
        err = relative_error(np.array([100.0, 200.0]), np.array([110.0, 180.0]))
        assert err[0] == pytest.approx(0.1)
        assert err[1] == pytest.approx(0.1)

    def test_zero_actual_is_nan(self):
        err = relative_error(np.array([0.0]), np.array([1.0]))
        assert np.isnan(err[0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_error(np.zeros(2), np.zeros(3))

    def test_mean_ignores_nan(self):
        m = mean_relative_error(
            np.array([0.0, 100.0]), np.array([5.0, 110.0])
        )
        assert m == pytest.approx(0.1)

    def test_mean_all_undefined(self):
        assert np.isnan(mean_relative_error(np.zeros(3), np.ones(3)))


class TestBinnedErrorProfile:
    def test_profile_shape_and_density(self):
        rng = np.random.default_rng(0)
        actual = rng.uniform(100, 200, 1000)
        predicted = actual * (1 + rng.normal(0, 0.05, 1000))
        prof = binned_relative_error(actual, predicted, n_bins=10)
        assert len(prof.bin_centers) == 10
        assert prof.density.sum() == pytest.approx(1.0)
        assert prof.counts.sum() == 1000

    def test_rare_bins_show_higher_error(self):
        # Construct data where rare high values predict badly.
        rng = np.random.default_rng(1)
        bulk = rng.uniform(100, 150, 950)
        rare = rng.uniform(250, 300, 50)
        actual = np.concatenate([bulk, rare])
        predicted = np.concatenate(
            [bulk * 1.05, rare * 0.7]  # 5% vs 30% error
        )
        prof = binned_relative_error(actual, predicted, n_bins=8)
        low_err = prof.mean_error[0]
        high_err = prof.mean_error[-1]
        assert high_err > low_err * 3

    def test_empty_bins_are_nan(self):
        actual = np.array([1.0, 10.0])
        prof = binned_relative_error(actual, actual, n_bins=5)
        assert np.isnan(prof.mean_error[2])

    def test_explicit_range(self):
        actual = np.array([5.0, 6.0])
        prof = binned_relative_error(
            actual, actual, n_bins=4, value_range=(0.0, 8.0)
        )
        assert prof.bin_centers[0] == 1.0

    def test_degenerate_range(self):
        actual = np.array([5.0, 5.0])
        prof = binned_relative_error(actual, actual, n_bins=3)
        assert np.isfinite(prof.bin_centers).all()
