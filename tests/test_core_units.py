"""Tests for unit resolution (Sections III-B/C and V-C-2)."""

import pytest

from repro.common.errors import UnitResolutionError
from repro.core.tree import SensorTree
from repro.core.units import UnitResolver, resolve_job_unit


PAPER_INPUTS = [
    "<topdown+1>power",
    "<bottomup, filter cpu>cpu-cycles",
    "<bottomup, filter cpu>cache-misses",
]
PAPER_OUTPUTS = ["<bottomup-1>healthy"]


class TestPaperExample:
    """The exact pattern instantiation walked through in Section III-C."""

    def test_one_unit_per_server(self, fig2_tree):
        units = UnitResolver(PAPER_INPUTS, PAPER_OUTPUTS).resolve(fig2_tree)
        assert len(units) == 48
        assert {u.level for u in units} == {2}

    def test_s02_unit_contents(self, fig2_tree):
        units = UnitResolver(PAPER_INPUTS, PAPER_OUTPUTS).resolve(fig2_tree)
        unit = next(u for u in units if u.name == "/r03/c02/s02")
        assert sorted(unit.inputs) == [
            "/r03/c02/power",
            "/r03/c02/s02/cpu0/cache-misses",
            "/r03/c02/s02/cpu0/cpu-cycles",
            "/r03/c02/s02/cpu1/cache-misses",
            "/r03/c02/s02/cpu1/cpu-cycles",
        ]
        assert [s.topic for s in unit.outputs] == ["/r03/c02/s02/healthy"]

    def test_output_sensors_marked_operator_outputs(self, fig2_tree):
        units = UnitResolver(PAPER_INPUTS, PAPER_OUTPUTS).resolve(fig2_tree)
        assert all(s.is_operator_output for u in units for s in u.outputs)


class TestResolutionRules:
    def test_inputs_must_exist_in_tree(self, fig2_tree):
        resolver = UnitResolver(["<bottomup>nonexistent"], PAPER_OUTPUTS)
        with pytest.raises(UnitResolutionError):
            resolver.resolve(fig2_tree)

    def test_relaxed_skips_unbuildable_units(self):
        tree = SensorTree.from_topics(
            ["/r1/n1/cpu0/cycles", "/r1/n2/other"]
        )
        resolver = UnitResolver(
            ["<bottomup, filter cpu>cycles"],
            ["<bottomup-1>out"],
            relaxed=True,
        )
        units = resolver.resolve(tree)
        assert [u.name for u in units] == ["/r1/n1"]

    def test_strict_fails_on_any_unbuildable_unit(self):
        tree = SensorTree.from_topics(
            ["/r1/n1/cpu0/cycles", "/r1/n2/cpu0/other"]
        )
        resolver = UnitResolver(
            ["<bottomup>cycles"], ["<bottomup-1>out"], relaxed=False
        )
        with pytest.raises(UnitResolutionError):
            resolver.resolve(tree)

    def test_empty_output_domain_fails(self, fig2_tree):
        resolver = UnitResolver(
            ["<bottomup>cpu-cycles"], ["<bottomup, filter zzz>out"]
        )
        with pytest.raises(UnitResolutionError):
            resolver.resolve(fig2_tree)

    def test_empty_output_domain_relaxed_returns_nothing(self, fig2_tree):
        resolver = UnitResolver(
            ["<bottomup>cpu-cycles"],
            ["<bottomup, filter zzz>out"],
            relaxed=True,
        )
        assert resolver.resolve(fig2_tree) == []

    def test_needs_at_least_one_output(self):
        with pytest.raises(UnitResolutionError):
            UnitResolver(["<bottomup>x"], [])

    def test_unit_defining_output_cannot_be_bare(self, fig2_tree):
        resolver = UnitResolver(["<bottomup>cpu-cycles"], ["healthy"])
        with pytest.raises(UnitResolutionError):
            resolver.resolve(fig2_tree)

    def test_only_hierarchically_related_inputs_bind(self, fig2_tree):
        # power at chassis level: each server unit must only see ITS
        # chassis' power, not all 12 chassis.
        units = UnitResolver(
            ["<topdown+1>power"], ["<bottomup-1>out"]
        ).resolve(fig2_tree)
        for unit in units:
            assert len(unit.inputs) == 1
            assert unit.name.startswith(unit.inputs[0].rsplit("/", 1)[0])

    def test_descending_inputs_collect_all_matching(self, fig2_tree):
        # A chassis-level unit collects sensors from all its cpus.
        units = UnitResolver(
            ["<bottomup>cpu-cycles"], ["<topdown+1>out"]
        ).resolve(fig2_tree)
        assert len(units) == 12
        assert all(len(u.inputs) == 8 for u in units)  # 4 servers * 2 cpus

    def test_publish_flag_propagates(self, fig2_tree):
        units = UnitResolver(
            PAPER_INPUTS, PAPER_OUTPUTS, publish_outputs=False
        ).resolve(fig2_tree)
        assert all(not s.publish for u in units for s in u.outputs)


class TestResolveForName:
    def test_builds_single_unit(self, fig2_tree):
        resolver = UnitResolver(PAPER_INPUTS, PAPER_OUTPUTS)
        unit = resolver.resolve_for_name(fig2_tree, "/r03/c02/s02")
        assert unit.name == "/r03/c02/s02"
        assert len(unit.inputs) == 5

    def test_rejects_unknown_node(self, fig2_tree):
        resolver = UnitResolver(PAPER_INPUTS, PAPER_OUTPUTS)
        with pytest.raises(UnitResolutionError):
            resolver.resolve_for_name(fig2_tree, "/nope")

    def test_rejects_node_outside_domain(self, fig2_tree):
        resolver = UnitResolver(PAPER_INPUTS, PAPER_OUTPUTS)
        with pytest.raises(UnitResolutionError):
            resolver.resolve_for_name(fig2_tree, "/r01/c01")  # chassis


class TestUnitHelpers:
    def test_output_by_name(self, fig2_tree):
        unit = UnitResolver(PAPER_INPUTS, PAPER_OUTPUTS).resolve(fig2_tree)[0]
        assert unit.output_by_name("healthy").topic.endswith("/healthy")
        with pytest.raises(KeyError):
            unit.output_by_name("nope")

    def test_inputs_named(self, fig2_tree):
        unit = next(
            u
            for u in UnitResolver(PAPER_INPUTS, PAPER_OUTPUTS).resolve(fig2_tree)
            if u.name == "/r03/c02/s02"
        )
        assert len(unit.inputs_named("cpu-cycles")) == 2
        assert unit.inputs_named("power") == ["/r03/c02/power"]
        assert unit.inputs_named("zzz") == []


class TestJobUnits:
    def test_collects_inputs_across_job_nodes(self, fig2_tree):
        unit = resolve_job_unit(
            fig2_tree,
            "job42",
            ["/r01/c01/s01", "/r01/c01/s02"],
            ["<bottomup, filter cpu>cpu-cycles"],
            ["decile0", "decile5"],
        )
        assert unit.tag == "job42"
        assert unit.name == "/jobs/job42"
        assert len(unit.inputs) == 4  # 2 nodes * 2 cpus
        assert [s.topic for s in unit.outputs] == [
            "/jobs/job42/decile0",
            "/jobs/job42/decile5",
        ]

    def test_unit_anchor_reads_node_level_sensor(self, fig2_tree):
        unit = resolve_job_unit(
            fig2_tree,
            "j",
            ["/r01/c01/s01"],
            ["memfree"],
            ["out"],
        )
        assert unit.inputs == ["/r01/c01/s01/memfree"]

    def test_unknown_node_strict_raises(self, fig2_tree):
        with pytest.raises(UnitResolutionError):
            resolve_job_unit(fig2_tree, "j", ["/nope"], ["memfree"], ["o"])

    def test_unknown_node_relaxed_skips(self, fig2_tree):
        unit = resolve_job_unit(
            fig2_tree,
            "j",
            ["/nope", "/r01/c01/s01"],
            ["memfree"],
            ["o"],
            relaxed=True,
        )
        assert len(unit.inputs) == 1

    def test_no_inputs_strict_raises(self, fig2_tree):
        with pytest.raises(UnitResolutionError):
            resolve_job_unit(
                fig2_tree, "j", ["/r01/c01/s01"], ["bogus"], ["o"]
            )
