"""Tests for the sensor cache ring buffer and its views."""

import numpy as np
import pytest

from repro.common.errors import QueryError
from repro.common.timeutil import NS_PER_SEC
from repro.dcdb.cache import CacheView, SensorCache, default_cache
from repro.dcdb.sensor import SensorReading


def fill(cache: SensorCache, n: int, start: int = 0, step: int = NS_PER_SEC):
    for i in range(n):
        cache.store(start + i * step, float(i))


class TestStore:
    def test_empty(self):
        c = SensorCache(4)
        assert len(c) == 0
        assert c.latest() is None
        assert c.oldest() is None

    def test_basic_append(self):
        c = SensorCache(4)
        fill(c, 3)
        assert len(c) == 3
        assert c.latest() == SensorReading(2 * NS_PER_SEC, 2.0)
        assert c.oldest() == SensorReading(0, 0.0)

    def test_wraparound_evicts_oldest(self):
        c = SensorCache(4)
        fill(c, 6)
        assert len(c) == 4
        assert c.oldest().value == 2.0
        assert c.latest().value == 5.0

    def test_out_of_order_dropped(self):
        c = SensorCache(4)
        c.store(100, 1.0)
        c.store(50, 2.0)  # stale, dropped
        assert len(c) == 1
        assert c.latest().value == 1.0

    def test_equal_timestamp_kept(self):
        c = SensorCache(4)
        c.store(100, 1.0)
        c.store(100, 2.0)
        assert len(c) == 2

    def test_store_reading(self):
        c = SensorCache(2)
        c.store_reading(SensorReading(5, 7.0))
        assert c.latest() == SensorReading(5, 7.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SensorCache(0)

    def test_clear(self):
        c = SensorCache(4)
        fill(c, 3)
        c.clear()
        assert len(c) == 0
        assert c.latest() is None


class TestStoreBatch:
    def test_simple_batch(self):
        c = SensorCache(8)
        ts = np.arange(5, dtype=np.int64)
        c.store_batch(ts, ts.astype(float))
        assert len(c) == 5
        assert c.latest().value == 4.0

    def test_batch_wrap(self):
        c = SensorCache(4)
        fill(c, 3)
        ts = np.array([10, 11, 12], dtype=np.int64) * NS_PER_SEC
        c.store_batch(ts, np.array([10.0, 11.0, 12.0]))
        assert len(c) == 4
        assert c.latest().value == 12.0

    def test_batch_larger_than_capacity(self):
        c = SensorCache(3)
        ts = np.arange(10, dtype=np.int64)
        c.store_batch(ts, ts.astype(float))
        assert len(c) == 3
        assert list(c.view_relative(10**9).values()) == [7.0, 8.0, 9.0]

    def test_empty_batch(self):
        c = SensorCache(3)
        c.store_batch(np.empty(0, dtype=np.int64), np.empty(0))
        assert len(c) == 0


class TestRelativeViews:
    def test_zero_offset_is_latest_only(self):
        c = SensorCache(8, interval_ns=NS_PER_SEC)
        fill(c, 5)
        v = c.view_relative(0)
        assert len(v) == 1
        assert v.last().value == 4.0

    def test_offset_counts_by_interval(self):
        c = SensorCache(8, interval_ns=NS_PER_SEC)
        fill(c, 5)
        v = c.view_relative(2 * NS_PER_SEC)
        assert len(v) == 3  # offset/interval + 1
        assert list(v.values()) == [2.0, 3.0, 4.0]

    def test_offset_clamped_to_contents(self):
        c = SensorCache(8, interval_ns=NS_PER_SEC)
        fill(c, 3)
        v = c.view_relative(100 * NS_PER_SEC)
        assert len(v) == 3

    def test_negative_offset_rejected(self):
        c = SensorCache(4, interval_ns=1)
        fill(c, 2)
        with pytest.raises(QueryError):
            c.view_relative(-1)

    def test_empty_cache_empty_view(self):
        c = SensorCache(4, interval_ns=1)
        assert len(c.view_relative(100)) == 0

    def test_no_interval_hint_falls_back_to_search(self):
        c = SensorCache(8)  # no interval hint
        fill(c, 5)
        v = c.view_relative(2 * NS_PER_SEC)
        assert list(v.values()) == [2.0, 3.0, 4.0]

    def test_view_spanning_wrap_is_correct(self):
        c = SensorCache(4, interval_ns=NS_PER_SEC)
        fill(c, 6)  # buffer holds 2..5, physically wrapped
        v = c.view_relative(3 * NS_PER_SEC)
        assert list(v.values()) == [2.0, 3.0, 4.0, 5.0]
        # timestamps must be sorted even across the wrap point
        ts = v.timestamps()
        assert (np.diff(ts) >= 0).all()


class TestAbsoluteViews:
    def test_inclusive_bounds(self):
        c = SensorCache(8)
        fill(c, 5)
        v = c.view_absolute(1 * NS_PER_SEC, 3 * NS_PER_SEC)
        assert list(v.values()) == [1.0, 2.0, 3.0]

    def test_partial_range(self):
        c = SensorCache(8)
        fill(c, 5)
        v = c.view_absolute(-5, NS_PER_SEC // 2)
        assert list(v.values()) == [0.0]

    def test_empty_range(self):
        c = SensorCache(8)
        fill(c, 5)
        v = c.view_absolute(10 * NS_PER_SEC, 20 * NS_PER_SEC)
        assert len(v) == 0

    def test_inverted_range_rejected(self):
        c = SensorCache(8)
        fill(c, 2)
        with pytest.raises(QueryError):
            c.view_absolute(100, 50)

    def test_absolute_across_wrap(self):
        c = SensorCache(4)
        fill(c, 7)  # holds 3..6
        v = c.view_absolute(3 * NS_PER_SEC, 6 * NS_PER_SEC)
        assert list(v.values()) == [3.0, 4.0, 5.0, 6.0]


class TestCacheView:
    def test_iteration_yields_readings(self):
        c = SensorCache(4)
        fill(c, 3)
        readings = list(c.view_relative(10 * NS_PER_SEC))
        assert readings[0] == SensorReading(0, 0.0)
        assert readings[-1].value == 2.0

    def test_first_last(self):
        c = SensorCache(4)
        fill(c, 3)
        v = c.view_absolute(0, 10 * NS_PER_SEC)
        assert v.first().value == 0.0
        assert v.last().value == 2.0

    def test_empty_view_raises_on_first(self):
        with pytest.raises(QueryError):
            CacheView.empty().first()

    def test_bool(self):
        assert not CacheView.empty()

    def test_values_cached_and_consistent(self):
        c = SensorCache(4)
        fill(c, 6)
        v = c.view_relative(10 * NS_PER_SEC)
        assert v.values() is v.values()  # lazily concatenated once
        assert len(v.values()) == len(v.timestamps()) == len(v)


class TestSizing:
    def test_for_duration(self):
        c = SensorCache.for_duration(180 * NS_PER_SEC, NS_PER_SEC)
        assert c.capacity >= 180
        assert c.interval_ns == NS_PER_SEC

    def test_for_duration_bad_interval(self):
        with pytest.raises(ValueError):
            SensorCache.for_duration(10, 0)

    def test_default_cache_footprint_is_small(self):
        # 1000 sensors at 1 s / 180 s retention must stay well under the
        # paper's 25 MB pusher budget.
        per_sensor = default_cache(NS_PER_SEC).memory_bytes()
        assert per_sensor * 1000 < 25 * 1024 * 1024

    def test_memory_bytes_counts_both_arrays(self):
        c = SensorCache(100)
        assert c.memory_bytes() == 100 * (8 + 8)


class TestViewSnapshotSemantics:
    """Views must be immutable snapshots: later stores — including ring
    wrap-around that overwrites the very slots a view was built from —
    must not alter data already handed out (regression: views used to
    alias the live ring-buffer arrays)."""

    def test_view_survives_wraparound_overwrite(self):
        c = SensorCache(4)
        fill(c, 4)  # values 0..3 fill the ring exactly
        view = c.view_relative(10 * NS_PER_SEC)
        before_ts = view.timestamps().copy()
        before_val = view.values().copy()
        # Four more stores overwrite every slot the view came from.
        fill(c, 4, start=4 * NS_PER_SEC)
        np.testing.assert_array_equal(view.timestamps(), before_ts)
        np.testing.assert_array_equal(view.values(), before_val)
        assert list(view.values()) == [0.0, 1.0, 2.0, 3.0]

    def test_absolute_view_survives_wraparound(self):
        c = SensorCache(4)
        fill(c, 4)
        view = c.view_absolute(0, 3 * NS_PER_SEC)
        fill(c, 4, start=4 * NS_PER_SEC)
        assert list(view.values()) == [0.0, 1.0, 2.0, 3.0]

    def test_wrapped_view_survives_further_stores(self):
        c = SensorCache(4)
        fill(c, 6)  # head mid-ring: view spans the wrap seam
        view = c.view_relative(10 * NS_PER_SEC)
        assert list(view.values()) == [2.0, 3.0, 4.0, 5.0]
        fill(c, 4, start=6 * NS_PER_SEC)
        assert list(view.values()) == [2.0, 3.0, 4.0, 5.0]

    def test_mutating_returned_array_does_not_corrupt_cache(self):
        c = SensorCache(4)
        fill(c, 3)
        view = c.view_relative(10 * NS_PER_SEC)
        view.values()[:] = -1.0
        fresh = c.view_relative(10 * NS_PER_SEC)
        assert list(fresh.values()) == [0.0, 1.0, 2.0]


class TestStoreBatchOrdering:
    """store_batch must enforce the same non-decreasing-timestamp
    invariant as store() (regression: it used to append stale batches
    wholesale, leaving timestamps unsorted and breaking binary search)."""

    def test_stale_batch_prefix_dropped(self):
        c = SensorCache(8)
        c.store(5 * NS_PER_SEC, 5.0)
        ts = np.array([3, 4, 5, 6]) * NS_PER_SEC
        c.store_batch(ts, np.array([3.0, 4.0, 5.0, 6.0]))
        # 3 and 4 predate the newest reading and are dropped; 5 (equal
        # timestamp) and 6 are kept, matching store()'s guard.
        assert list(c.view_relative(100 * NS_PER_SEC).values()) == \
            [5.0, 5.0, 6.0]
        assert c.stale_drops == 2

    def test_fully_stale_batch_dropped(self):
        c = SensorCache(8)
        c.store(10 * NS_PER_SEC, 1.0)
        c.store_batch(
            np.array([1, 2]) * NS_PER_SEC, np.array([9.0, 9.0])
        )
        assert len(c) == 1
        assert c.stale_drops == 2

    def test_mixed_store_and_batch_stays_sorted(self):
        c = SensorCache(16)
        c.store(2 * NS_PER_SEC, 2.0)
        c.store_batch(
            np.array([1, 3, 4]) * NS_PER_SEC, np.array([1.0, 3.0, 4.0])
        )
        c.store(5 * NS_PER_SEC, 5.0)
        c.store_batch(np.array([4, 6]) * NS_PER_SEC, np.array([9.0, 6.0]))
        ts = c.view_relative(100 * NS_PER_SEC).timestamps()
        assert list(ts) == sorted(ts)
        # Absolute views rely on sorted timestamps for binary search.
        v = c.view_absolute(3 * NS_PER_SEC, 5 * NS_PER_SEC)
        assert list(v.values()) == [3.0, 4.0, 5.0]

    def test_stale_drop_counter_shared_with_store(self):
        c = SensorCache(8)
        c.store(100, 1.0)
        c.store(50, 2.0)  # stale single store
        c.store_batch(np.array([10, 20]), np.array([0.0, 0.0]))
        assert c.stale_drops == 3


class TestResize:
    def test_grow_preserves_contents(self):
        c = SensorCache(4)
        for i in range(4):
            c.store(i * NS_PER_SEC, float(i))
        c.resize(16)
        assert c.capacity == 16
        v = c.view_relative(100 * NS_PER_SEC)
        assert list(v.values()) == [0.0, 1.0, 2.0, 3.0]
        # Newly freed slots are writable and ordering survives.
        c.store(4 * NS_PER_SEC, 4.0)
        assert len(c) == 5
        assert c.latest().value == 4.0

    def test_grow_preserves_wrapped_ring(self):
        c = SensorCache(4)
        for i in range(7):  # wraps: slots hold 3,4,5,6
            c.store(i * NS_PER_SEC, float(i))
        c.resize(8)
        v = c.view_relative(100 * NS_PER_SEC)
        assert list(v.values()) == [3.0, 4.0, 5.0, 6.0]
        ts = v.timestamps()
        assert list(ts) == sorted(ts)

    def test_shrink_keeps_newest(self):
        c = SensorCache(8)
        for i in range(8):
            c.store(i * NS_PER_SEC, float(i))
        c.resize(3)
        assert c.capacity == 3
        v = c.view_relative(100 * NS_PER_SEC)
        assert list(v.values()) == [5.0, 6.0, 7.0]

    def test_same_capacity_is_noop(self):
        c = SensorCache(4)
        c.store(NS_PER_SEC, 1.0)
        c.resize(4)
        assert len(c) == 1

    def test_invalid_capacity_rejected(self):
        c = SensorCache(4)
        with pytest.raises(ValueError):
            c.resize(0)
        with pytest.raises(ValueError):
            c.resize(-3)


class TestIngestCacheSizing:
    """Regression: the Collect Agent used to size ingest caches with a
    hard-wired 1 Hz assumption (window seconds + 1 readings), so a
    faster remote sensor silently retained only a fraction of the
    configured cache window.  Sizing must follow the observed
    inter-arrival gap instead."""

    def test_fast_sensor_retains_full_window(self):
        from repro.dcdb import Broker, CollectAgent
        from repro.simulator.clock import TaskScheduler

        scheduler = TaskScheduler()
        broker = Broker()
        agent = CollectAgent("agent", broker, scheduler)  # 180 s window
        topic = "/r0/c0/n0/power"
        gap = NS_PER_SEC // 10  # 10 Hz
        n = 400  # 40 s of traffic: all inside the 180 s window
        for i in range(n):
            scheduler.run_until(i * gap)
            broker.publish(topic, float(i), i * gap)
        agent.flush()
        cache = agent.caches[topic]
        # Pre-fix the cache was pinned at 181 slots and dropped the
        # oldest 219 readings despite the window covering all of them.
        v = cache.view_relative(180 * NS_PER_SEC)
        assert len(v.timestamps()) == n
        assert cache.capacity >= n

    def test_slow_sensor_does_not_balloon(self):
        from repro.dcdb import Broker, CollectAgent
        from repro.simulator.clock import TaskScheduler

        scheduler = TaskScheduler()
        broker = Broker()
        agent = CollectAgent("agent", broker, scheduler)
        topic = "/r0/c0/n0/temp"
        for i in range(5):  # 10 s cadence: slower than the 1 Hz guess
            scheduler.run_until(i * 10 * NS_PER_SEC)
            broker.publish(topic, float(i), i * 10 * NS_PER_SEC)
        agent.flush()
        # The initial 1 Hz guess stays an upper bound; a slower cadence
        # must not grow the ring.
        assert agent.caches[topic].capacity == 181
