"""Provenance guard for committed benchmark artifacts.

Every ``BENCH_*.json`` the repo ships must be reproducible: some
benchmark under ``benchmarks/`` has to name it in a
``write_bench_artifact("<name>", ...)`` call, and the artifact itself
must carry the schema-v2 provenance block (producing git commit +
config digest).  An artifact nobody can regenerate is a provenance bug
— exactly how ``BENCH_storage_tiers.json`` sat orphaned until the
storage-tiers bench landed.
"""

import json
import re
import subprocess
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
ARTIFACT_RE = re.compile(r"write_bench_artifact\(\s*[\"']([\w-]+)[\"']")


def _tracked_artifacts():
    try:
        out = subprocess.run(
            ["git", "ls-files", "BENCH_*.json"],
            cwd=REPO, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return [REPO / line for line in out.stdout.splitlines() if line]


def _generator_names():
    names = set()
    for bench in (REPO / "benchmarks").glob("bench_*.py"):
        names.update(ARTIFACT_RE.findall(bench.read_text()))
    return names


def test_every_committed_artifact_names_a_generator():
    artifacts = _tracked_artifacts()
    if artifacts is None:
        pytest.skip("git unavailable; cannot list committed artifacts")
    assert artifacts, "no committed BENCH_*.json artifacts found"
    generators = _generator_names()
    for path in artifacts:
        name = path.name[len("BENCH_"):-len(".json")]
        assert name in generators, (
            f"{path.name} is orphaned: no benchmarks/bench_*.py calls "
            f"write_bench_artifact({name!r})"
        )


def test_every_committed_artifact_has_provenance():
    artifacts = _tracked_artifacts()
    if artifacts is None:
        pytest.skip("git unavailable; cannot list committed artifacts")
    for path in artifacts:
        doc = json.loads(path.read_text())
        prov = doc.get("provenance")
        assert isinstance(prov, dict), f"{path.name} lacks provenance"
        assert prov.get("schema_version") == 2, path.name
        assert re.fullmatch(r"[0-9a-f]{40}", prov.get("git_sha", "")), (
            f"{path.name} provenance lacks a git SHA"
        )
        assert "config_digest" in prov, path.name


def test_storage_tiers_artifact_reconciled():
    """The once-orphaned artifact now has a generator and provenance."""
    path = REPO / "BENCH_storage_tiers.json"
    assert path.exists()
    doc = json.loads(path.read_text())
    assert "provenance" in doc
    assert doc["identity"]["identical"] is True
    assert doc["restart_replay"]["lost_readings"] == 0
    assert "storage_tiers" in _generator_names()
