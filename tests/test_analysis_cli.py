"""Tests for the ``wintermute-sim check`` subcommand."""

import json
import pathlib

import pytest

from repro.cli import main

DATA_DIR = pathlib.Path(__file__).resolve().parent / "data"
BAD_SPEC = DATA_DIR / "bad_deployment.json"
GOLDEN = DATA_DIR / "bad_deployment.golden.json"


def run_check(capsys, *argv):
    code = main(["check", *argv])
    return code, capsys.readouterr().out


class TestCheckConfigs:
    def test_bad_spec_fails_with_text_diagnostics(self, capsys):
        code, out = run_check(capsys, "--config", str(BAD_SPEC))
        assert code == 1
        assert "error W001" in out
        assert "error W012" in out
        assert "9 error(s)" in out

    def test_bad_spec_json_matches_golden(self, capsys):
        code, out = run_check(
            capsys, "--config", str(BAD_SPEC), "--format", "json"
        )
        assert code == 1
        got = json.loads(out)
        expected = json.loads(GOLDEN.read_text())
        # The CLI echoes whatever path it was invoked with; normalize to
        # the repo-relative form stored in the golden file.
        for diag in got["diagnostics"]:
            assert diag["file"].endswith("bad_deployment.json")
            diag["file"] = "tests/data/bad_deployment.json"
        assert got == expected

    def test_good_block_json_passes(self, capsys, tmp_path):
        path = tmp_path / "ok.json"
        path.write_text(json.dumps({
            "plugin": "aggregator",
            "operators": {
                "avg": {
                    "inputs": ["<bottomup>power"],
                    "outputs": ["<bottomup-1>avg-power"],
                    "params": {"op": "mean"},
                }
            },
        }))
        code, out = run_check(capsys, "--config", str(path))
        assert code == 0
        assert "0 error(s)" in out

    def test_python_source_with_local_plugin(self, capsys):
        example = BAD_SPEC.parent.parent.parent / "examples" / "feedback_loop.py"
        code, out = run_check(capsys, "--config", str(example))
        assert code == 0

    def test_strict_turns_warnings_into_failure(self, capsys, tmp_path):
        path = tmp_path / "warn.json"
        path.write_text(json.dumps({
            "plugin": "aggregator",
            "operators": {
                "a": {"relaxed": True,
                      "inputs": ["<bottomup>power"],
                      "outputs": ["<bottomup>x"]},
                "b": {"relaxed": True,
                      "inputs": ["<bottomup>power"],
                      "outputs": ["<bottomup, filter z>x"]},
            },
        }))
        code, _ = run_check(capsys, "--config", str(path))
        assert code == 0  # filtered duplicate is only a warning
        code, _ = run_check(capsys, "--config", str(path), "--strict")
        assert code == 1

    def test_quiet_hides_info(self, capsys, tmp_path):
        path = tmp_path / "dyn.py"
        path.write_text(
            "def f(n):\n"
            "    return {'plugin': 'aggregator', 'operators': g(n)}\n"
        )
        code, out = run_check(capsys, "--config", str(path))
        assert code == 0
        assert "W015" in out  # unevaluable block reported as info
        code, out = run_check(capsys, "--config", str(path), "-q")
        assert "W015" not in out

    def test_nothing_to_do_is_usage_error(self, capsys):
        code = main(["check"])
        assert code == 2


class TestCheckLint:
    def test_lint_clean_repo(self, capsys):
        code, out = run_check(capsys, "--lint")
        assert code == 0
        assert "0 error(s)" in out

    def test_lint_path_with_violation(self, capsys, tmp_path):
        bad = tmp_path / "plugins"
        bad.mkdir()
        (bad / "x.py").write_text(
            "try:\n    f()\nexcept Exception:\n    pass\n"
        )
        code, out = run_check(capsys, "--lint", "--lint-path", str(tmp_path))
        assert code == 1
        assert "L003" in out

    def test_lint_and_config_combine(self, capsys, tmp_path):
        (tmp_path / "clean.py").write_text("x = 1\n")
        cfg = tmp_path / "bad.json"
        cfg.write_text(json.dumps({"plugin": "nope", "operators": {
            "a": {"outputs": ["<bottomup>x"]},
        }}))
        code, out = run_check(
            capsys, "--lint", "--lint-path", str(tmp_path),
            "--config", str(cfg), "--format", "json",
        )
        assert code == 1
        got = json.loads(out)
        assert got["summary"]["error"] == 1
        assert got["diagnostics"][0]["code"] == "W001"


class TestEntryPoint:
    def test_check_registered_in_parser(self):
        from repro.cli import make_parser

        parser = make_parser()
        args = parser.parse_args(["check", "--lint"])
        assert args.lint is True
        assert args.fn.__name__ == "cmd_check"

    def test_max_units_threshold_flows_through(self, capsys, tmp_path):
        path = tmp_path / "many.json"
        path.write_text(json.dumps({
            "cluster": {"nodes": 4, "cpus": 2},
            "monitoring": {"plugins": ["sysfs"]},
            "analytics": {"agent": [{
                "plugin": "smoother",
                "operators": {"s": {
                    "inputs": ["<bottomup>power"],
                    "outputs": ["<bottomup>power-s"],
                }},
            }]},
        }))
        code, out = run_check(
            capsys, "--config", str(path), "--max-units", "2"
        )
        assert code == 0
        assert "W014" in out
