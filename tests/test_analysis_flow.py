"""Tests for the whole-deployment dataflow analyzer (F-rules).

Each ``tests/data/flowbad_*.json`` fixture seeds exactly one dataflow
defect; its golden file records the full ``check --flow`` JSON document.
On top of the golden comparisons this module exercises the flow model
builder directly (facts, unit algebra, report rendering) and pins the
performance contract: analysing the quickstart deployment must finish
well under the documented two-second budget without instantiating any
runtime component.
"""

import json
import pathlib
import time

import pytest

from repro.cli import main

DATA_DIR = pathlib.Path(__file__).resolve().parent / "data"
REPO_ROOT = DATA_DIR.parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"

FLOWBAD_FIXTURES = sorted(
    p for p in DATA_DIR.glob("flowbad_*.json")
    if not p.name.endswith(".golden.json")
)

#: fixture stem -> the one F-rule it is built to trigger.
EXPECTED_CODES = {
    "flowbad_f001_window_exceeds_cache": "F001",
    "flowbad_f002_window_near_cache": "F002",
    "flowbad_f003_window_below_period": "F003",
    "flowbad_f004_redundant_interval": "F004",
    "flowbad_f005_undersampled": "F005",
    "flowbad_f006_mixed_units": "F006",
    "flowbad_f007_unknown_unit": "F007",
    "flowbad_f008_memory": "F008",
    "flowbad_f009_spill_loss": "F009",
    "flowbad_f010_breaker_flap": "F010",
    "flowbad_f011_pipeline_delay": "F011",
    "flowbad_f012_ingest_burst": "F012",
    "flowbad_f013_blocked_fusion": "F013",
}


def run_check(capsys, *argv):
    code = main(["check", *argv])
    return code, capsys.readouterr().out


def test_every_rule_has_a_fixture():
    stems = {p.stem for p in FLOWBAD_FIXTURES}
    assert stems == set(EXPECTED_CODES), (
        "fixture set out of sync with EXPECTED_CODES"
    )
    assert sorted(EXPECTED_CODES.values()) == [
        f"F{i:03d}" for i in range(1, 14)
    ]


class TestSeededFixtures:
    @pytest.mark.parametrize(
        "fixture", FLOWBAD_FIXTURES, ids=lambda p: p.stem
    )
    def test_matches_golden(self, capsys, fixture):
        code, out = run_check(
            capsys, "--flow", str(fixture), "--format", "json"
        )
        got = json.loads(out)
        rel = f"tests/data/{fixture.name}"
        for diag in got["diagnostics"]:
            if diag.get("file"):
                assert diag["file"].endswith(fixture.name)
                diag["file"] = rel
        golden = fixture.with_name(fixture.stem + ".golden.json")
        expected = json.loads(golden.read_text())
        assert got == expected
        assert code == expected["exit_code"]

    @pytest.mark.parametrize(
        "fixture", FLOWBAD_FIXTURES, ids=lambda p: p.stem
    )
    def test_fires_exactly_its_rule(self, capsys, fixture):
        """Each fixture isolates one defect: only its own F code fires."""
        _, out = run_check(
            capsys, "--flow", str(fixture), "--format", "json"
        )
        got = json.loads(out)
        codes = {d["code"] for d in got["diagnostics"]}
        assert codes == {EXPECTED_CODES[fixture.stem]}


class TestCleanDeployments:
    @pytest.mark.parametrize(
        "name", ["quickstart_deployment.json", "parallel_analytics.json"]
    )
    def test_shipped_examples_are_flow_clean(self, capsys, name):
        code, out = run_check(
            capsys, "--flow", str(EXAMPLES_DIR / name), "--format", "json"
        )
        assert code == 0
        got = json.loads(out)
        assert [d for d in got["diagnostics"]
                if d["code"].startswith("F")] == []

    def test_clean_fixture_is_flow_clean(self, capsys):
        code, out = run_check(
            capsys, "--flow", str(DATA_DIR / "clean_deployment.json")
        )
        assert code == 0
        assert "F0" not in out


class TestCliIntegration:
    def test_schema_version_bumped(self, capsys):
        _, out = run_check(
            capsys, "--flow", str(DATA_DIR / "clean_deployment.json"),
            "--format", "json",
        )
        assert json.loads(out)["schema_version"] == 4

    def test_flow_report_json(self, capsys):
        spec = EXAMPLES_DIR / "quickstart_deployment.json"
        _, out = run_check(
            capsys, "--flow", str(spec), "--flow-report", "--format", "json"
        )
        got = json.loads(out)
        report = got["flow_report"][str(spec)]
        assert "flow plan" in report
        assert "memory:" in report and "resilience:" in report

    def test_flow_report_text(self, capsys):
        spec = EXAMPLES_DIR / "quickstart_deployment.json"
        code, out = run_check(capsys, "--flow", str(spec), "--flow-report")
        assert code == 0
        assert "flow " in out and "flow plan" in out

    def test_flow_composes_with_lint_and_config(self, capsys, tmp_path):
        src = tmp_path / "clean.py"
        src.write_text("x = 1\n")
        code, out = run_check(
            capsys,
            "--flow", str(DATA_DIR / "flowbad_f006_mixed_units.json"),
            "--config", str(DATA_DIR / "bad_deployment.json"),
            "--lint", "--lint-path", str(src),
            "--format", "json",
        )
        assert code == 1
        codes = {d["code"] for d in json.loads(out)["diagnostics"]}
        assert "F006" in codes and "W001" in codes

    def test_memory_budget_flag(self, capsys):
        fixture = str(DATA_DIR / "flowbad_f008_memory.json")
        _, out = run_check(
            capsys, "--flow", fixture,
            "--flow-memory-budget-mb", "1000000", "--format", "json",
        )
        assert json.loads(out)["diagnostics"] == []

    def test_unreadable_spec_reports_w005(self, capsys):
        code, out = run_check(
            capsys, "--flow", str(DATA_DIR / "no_such_spec.json"),
            "--format", "json",
        )
        assert code == 1
        got = json.loads(out)
        assert got["diagnostics"][0]["code"] == "W005"


class TestFlowModel:
    def test_quickstart_under_two_seconds(self):
        """Acceptance: the flow pass is pure analysis — no runtime
        components — and completes the quickstart spec in < 2 s."""
        from repro.analysis.flow import build_flow_model

        spec = json.loads(
            (EXAMPLES_DIR / "quickstart_deployment.json").read_text()
        )
        start = time.monotonic()
        model = build_flow_model(spec)
        elapsed = time.monotonic() - start
        assert elapsed < 2.0, f"flow pass took {elapsed:.2f}s"
        assert model.operators

    def test_monitoring_facts_have_units_and_period(self):
        from repro.analysis.flow import build_flow_model

        spec = {
            "cluster": {"nodes": 1, "cpus": 1, "seed": 1},
            "monitoring": {"plugins": ["sysfs"], "interval_ms": 500},
        }
        model = build_flow_model(spec)
        power = [f for t, f in model.facts.items() if t.endswith("/power")]
        assert power
        assert all(f.unit == "W" for f in power)
        assert all(f.period_ns == 500_000_000 for f in power)

    def test_unit_propagation_through_operators(self):
        from repro.analysis.flow import build_flow_model

        spec = {
            "cluster": {"nodes": 1, "cpus": 1, "seed": 1},
            "monitoring": {"plugins": ["sysfs"], "interval_ms": 1000},
            "analytics": {
                "pushers": [{
                    "plugin": "aggregator",
                    "operators": {
                        "avg": {
                            "interval_s": 1, "window_s": 10,
                            "inputs": ["<bottomup>power"],
                            "outputs": ["<bottomup>avg-power"],
                            "params": {"op": "mean"},
                        },
                    },
                }],
            },
        }
        model = build_flow_model(spec)
        avg = [f for t, f in model.facts.items()
               if t.endswith("/avg-power")]
        assert avg
        # mean pools same-unit inputs and preserves the unit.
        assert all(f.unit == "W" for f in avg)
        view = model.operators[0]
        assert view.output_units.get("avg-power") == "W"

    def test_per_second_unit_algebra(self):
        from repro.analysis.flow import _PER_SECOND

        assert _PER_SECOND["J"] == "W"
        assert _PER_SECOND["s"] == "1"

    def test_render_report_lists_operators(self):
        from repro.analysis.flow import build_flow_model, render_flow_report

        spec = json.loads(
            (EXAMPLES_DIR / "quickstart_deployment.json").read_text()
        )
        text = render_flow_report(build_flow_model(spec))
        assert "flow plan" in text
        assert "memory:" in text
        # the two quickstart operators appear with their inferred units
        assert "avg-power [W]" in text
        assert "avg-temp [C]" in text


class TestCatalogDrift:
    """Every W/L/F/S rule code the analysis package can emit must be
    documented in docs/STATIC_ANALYSIS.md — new rules cannot land
    without a catalog entry."""

    def test_all_emitted_codes_are_documented(self):
        import re

        sources = sorted(
            (REPO_ROOT / "src" / "repro" / "analysis").glob("*.py")
        ) + [REPO_ROOT / "src" / "repro" / "core" / "configurator.py"]
        emitted = set()
        for src in sources:
            emitted |= set(re.findall(r"\b[WLFS]\d{3}\b", src.read_text()))
        assert emitted, "no rule codes found — scan went wrong"
        catalog = (REPO_ROOT / "docs" / "STATIC_ANALYSIS.md").read_text()
        documented = set(re.findall(r"\b[WLFS]\d{3}\b", catalog))
        missing = sorted(emitted - documented)
        assert not missing, (
            f"rule codes used in analysis/ but absent from "
            f"docs/STATIC_ANALYSIS.md: {missing}"
        )

    def test_flow_codes_complete(self):
        import re

        flow_src = (
            REPO_ROOT / "src" / "repro" / "analysis" / "flow.py"
        ).read_text()
        assert set(re.findall(r"\bF\d{3}\b", flow_src)) >= {
            f"F{i:03d}" for i in range(1, 14)
        }


class TestDeterministicOrdering:
    """Satellite: diagnostics are sorted by (file, location, code) in
    both output formats, independent of emission order."""

    def test_sort_key_orders_by_location_then_code(self):
        from repro.analysis.diagnostics import Diagnostic, sort_key

        diags = [
            Diagnostic(code="W010", severity="error", message="b",
                       path="z.late", file="b.json"),
            Diagnostic(code="F001", severity="error", message="a",
                       path="a.early", file="b.json"),
            Diagnostic(code="L002", severity="warning", message="c",
                       file="a.py", line=9),
            Diagnostic(code="L001", severity="info", message="d",
                       file="a.py", line=3),
        ]
        ordered = sorted(diags, key=sort_key)
        assert [d.code for d in ordered] == [
            "L001", "L002", "F001", "W010"
        ]

    def test_json_output_is_sorted(self, capsys):
        _, out = run_check(
            capsys, "--config", str(DATA_DIR / "bad_deployment.json"),
            "--flow", str(DATA_DIR / "flowbad_f001_window_exceeds_cache.json"),
            "--format", "json",
        )
        from repro.analysis.diagnostics import Diagnostic, sort_key

        got = json.loads(out)
        parsed = [
            Diagnostic(
                code=d["code"], severity=d["severity"],
                message=d["message"], path=d.get("path", ""),
                file=d.get("file", ""), line=d.get("line", 0),
            )
            for d in got["diagnostics"]
        ]
        keys = [sort_key(d) for d in parsed]
        assert keys == sorted(keys)

    def test_text_output_matches_json_order(self, capsys):
        _, text = run_check(
            capsys, "--config", str(DATA_DIR / "bad_deployment.json")
        )
        _, js = run_check(
            capsys, "--config", str(DATA_DIR / "bad_deployment.json"),
            "--format", "json",
        )
        json_codes = [d["code"] for d in json.loads(js)["diagnostics"]]
        text_codes = [
            line.split()[1] for line in text.splitlines()
            if line.split() and line.split()[0] in
            ("error", "warning", "info")
        ]
        assert text_codes == json_codes
