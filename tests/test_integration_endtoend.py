"""End-to-end integration: simulator -> pushers -> MQTT -> collect agent
-> Wintermute operators on both hosts."""


from repro.common.timeutil import NS_PER_SEC
from repro.core.manager import OperatorManager
from repro.dcdb import Broker, CollectAgent, Pusher
from repro.dcdb.plugins import PerfeventPlugin, ProcfsPlugin, SysfsPlugin
from repro.simulator import ClusterSimulator, ClusterSpec
from repro.simulator.clock import TaskScheduler
from repro.simulator.scheduler import Job


def build_cluster(n_nodes=3, cpus=4, seed=7):
    """Full mini-deployment: one pusher per node + one collect agent."""

    class NS:
        pass

    ns = NS()
    ns.sim = ClusterSimulator(ClusterSpec.small(nodes=n_nodes, cpus=cpus), seed=seed)
    ns.scheduler = TaskScheduler()
    ns.broker = Broker()
    ns.pushers = {}
    ns.managers = {}
    for node in ns.sim.node_paths:
        pusher = Pusher(node, ns.broker, ns.scheduler)
        pusher.add_plugin(SysfsPlugin(ns.sim, node))
        pusher.add_plugin(ProcfsPlugin(ns.sim, node))
        pusher.add_plugin(PerfeventPlugin(ns.sim, node))
        manager = OperatorManager()
        pusher.attach_analytics(manager)
        ns.pushers[node] = pusher
        ns.managers[node] = manager
    ns.agent = CollectAgent("agent", ns.broker, ns.scheduler)
    ns.agent_manager = OperatorManager(
        context={"job_source": ns.sim.scheduler}
    )
    ns.agent.attach_analytics(ns.agent_manager)
    ns.run = lambda seconds: ns.scheduler.run_until(
        ns.scheduler.clock.now + int(seconds * NS_PER_SEC)
    )
    return ns


class TestMonitoringFlow:
    def test_all_sensors_reach_storage(self):
        ns = build_cluster(n_nodes=2, cpus=2)
        ns.run(10)
        ns.agent.flush()
        for node in ns.sim.node_paths:
            assert ns.agent.storage.count(f"{node}/power") >= 9
            assert ns.agent.storage.count(f"{node}/cpu00/cpu-cycles") >= 9

    def test_agent_sees_whole_system_pushers_only_local(self):
        ns = build_cluster(n_nodes=2, cpus=2)
        ns.run(5)
        ns.agent.flush()
        n0, n1 = ns.sim.node_paths
        assert f"{n1}/power" in ns.agent.sensor_topics()
        assert f"{n1}/power" not in ns.pushers[n0].sensor_topics()


class TestInBandAnalytics:
    def test_pusher_operator_low_latency_path(self):
        """Operators in a pusher consume locally sampled data directly."""
        ns = build_cluster(n_nodes=1, cpus=2)
        node = ns.sim.node_paths[0]
        ns.managers[node].load_plugin(
            {
                "plugin": "aggregator",
                "operators": {
                    "p5": {
                        "interval_s": 1,
                        "window_s": 5,
                        "inputs": ["<bottomup-1>power"],
                        "outputs": ["<bottomup-1>power-avg5"],
                        "params": {"op": "mean"},
                    }
                },
            }
        )
        ns.run(8)
        cache = ns.pushers[node].cache_for(f"{node}/power-avg5")
        assert cache is not None and len(cache) >= 8
        # Idle node power average is near the idle draw.
        assert 50 < cache.latest().value < 130

    def test_operator_output_flows_to_agent_storage(self):
        ns = build_cluster(n_nodes=1, cpus=2)
        node = ns.sim.node_paths[0]
        ns.managers[node].load_plugin(
            {
                "plugin": "smoother",
                "operators": {
                    "sm": {
                        "interval_s": 1,
                        "window_s": 3,
                        "inputs": ["<bottomup-1>temp"],
                        "outputs": ["<bottomup-1>temp-smooth"],
                    }
                },
            }
        )
        ns.run(6)
        ns.agent.flush()
        assert ns.agent.storage.count(f"{node}/temp-smooth") >= 5


class TestSystemLevelAnalytics:
    def test_agent_operator_aggregates_across_nodes(self):
        ns = build_cluster(n_nodes=3, cpus=2)
        ns.run(3)  # let traffic arrive so units can resolve
        ns.agent_manager.load_plugin(
            {
                "plugin": "aggregator",
                "operators": {
                    "syspower": {
                        "interval_s": 2,
                        "window_s": 4,
                        "inputs": ["<bottomup-1>power"],
                        "outputs": ["<topdown>sys-power-sum"],
                        "params": {"op": "sum"},
                    }
                },
            }
        )
        ns.run(10)
        ns.agent.flush()
        rack = ns.sim.topology.rack_paths[0]
        cache = ns.agent.cache_for(f"{rack}/sys-power-sum")
        assert cache is not None and len(cache) > 0
        # Sum over a window pools 3 nodes x several samples; it must be
        # at least 3x a single idle node's draw.
        assert cache.latest().value > 3 * 50

    def test_job_operator_follows_scheduler(self):
        ns = build_cluster(n_nodes=3, cpus=2)
        ns.sim.scheduler.add_job(
            Job(
                "lmp1",
                "lammps",
                tuple(ns.sim.node_paths[:2]),
                2 * NS_PER_SEC,
                60 * NS_PER_SEC,
            )
        )
        ns.run(3)
        ns.agent_manager.load_plugin(
            {
                "plugin": "persyst",
                "operators": {
                    "jobpower": {
                        "interval_s": 2,
                        "window_s": 4,
                        "delay_s": 2,
                        "inputs": ["power"],
                        "params": {"quantiles": [0.0, 0.5, 1.0]},
                    }
                },
            }
        )
        ns.run(12)
        ns.agent.flush()
        cache = ns.agent.cache_for("/jobs/lmp1/decile5")
        assert cache is not None and len(cache) > 0
        # LAMMPS nodes run hot: median node power well above idle.
        assert cache.latest().value > 150


class TestRestControlPlane:
    def test_remote_stop_start_cycle(self):
        ns = build_cluster(n_nodes=1, cpus=2)
        node = ns.sim.node_paths[0]
        ns.managers[node].load_plugin(
            {
                "plugin": "aggregator",
                "operators": {
                    "a": {
                        "interval_s": 1,
                        "window_s": 3,
                        "inputs": ["<bottomup-1>power"],
                        "outputs": ["<bottomup-1>pa"],
                        "params": {"op": "mean"},
                    }
                },
            }
        )
        rest = ns.pushers[node].rest
        ns.run(3)
        assert rest.put("/analytics/operators/a/stop").ok
        count = len(ns.pushers[node].cache_for(f"{node}/pa"))
        ns.run(3)
        assert len(ns.pushers[node].cache_for(f"{node}/pa")) == count
        assert rest.put("/analytics/operators/a/start").ok
        ns.run(3)
        assert len(ns.pushers[node].cache_for(f"{node}/pa")) > count


class TestMultipleCollectAgents:
    """Plural Collect Agents splitting the sensor space (the paper's
    architecture diagram shows Pushers fanning into multiple agents)."""

    def test_agents_partition_topic_space(self):
        ns = build_cluster(n_nodes=2, cpus=2)
        n0, n1 = ns.sim.node_paths
        # A second agent scoped to node 1's chassis only.
        scoped = CollectAgent(
            "agent2",
            ns.broker,
            ns.scheduler,
            subscribe_pattern=f"{n1}/#",
        )
        ns.run(5)
        ns.agent.flush()
        scoped.flush()
        # The catch-all agent stores everything, the scoped one only n1.
        assert ns.agent.storage.count(f"{n0}/power") >= 4
        assert ns.agent.storage.count(f"{n1}/power") >= 4
        assert scoped.storage.count(f"{n0}/power") == 0
        assert scoped.storage.count(f"{n1}/power") >= 4

    def test_scoped_agent_hosts_its_own_analytics(self):
        ns = build_cluster(n_nodes=2, cpus=2)
        n1 = ns.sim.node_paths[1]
        scoped = CollectAgent(
            "agent2", ns.broker, ns.scheduler, subscribe_pattern=f"{n1}/#"
        )
        manager = OperatorManager()
        scoped.attach_analytics(manager)
        ns.run(3)
        scoped.flush()
        manager.load_plugin(
            {
                "plugin": "aggregator",
                "operators": {
                    "scoped-avg": {
                        "interval_s": 1,
                        "window_s": 4,
                        "inputs": ["<bottomup-1>power"],
                        "outputs": ["<bottomup-1>scoped-avg"],
                        "params": {"op": "mean"},
                    }
                },
            }
        )
        ns.run(6)
        scoped.flush()
        # The scoped agent sees exactly one node, so one unit.
        assert len(manager.operator("scoped-avg").units) == 1
        assert scoped.storage.count(f"{n1}/scoped-avg") > 0


class TestDeterminism:
    """The whole deployment is a pure function of its seed."""

    def _run_once(self, seed):
        from repro.deploy import Deployment
        from repro.simulator import ClusterSpec

        dep = Deployment(
            ClusterSpec.small(nodes=2, cpus=2),
            seed=seed,
            monitoring=("sysfs", "perfevent"),
            perfevent_counters=("cpu-cycles",),
        )
        dep.sim.scheduler.add_job(
            Job("j", "kripke", tuple(dep.sim.node_paths), NS_PER_SEC,
                60 * NS_PER_SEC)
        )
        node = dep.sim.node_paths[0]
        dep.managers[node].load_plugin(
            {
                "plugin": "aggregator",
                "operators": {
                    "a": {
                        "interval_s": 1,
                        "window_s": 4,
                        "inputs": ["<bottomup-1>power"],
                        "outputs": ["<bottomup-1>pa"],
                        "params": {"op": "mean"},
                    }
                },
            }
        )
        dep.run(30)
        dep.agent.flush()
        out = {}
        for topic in sorted(dep.agent.storage.topics()):
            ts, values = dep.agent.storage.query(topic, 0, 2**62)
            out[topic] = (list(ts), list(values))
        return out

    def test_same_seed_bit_identical(self):
        assert self._run_once(11) == self._run_once(11)

    def test_different_seed_differs(self):
        a = self._run_once(11)
        b = self._run_once(12)
        assert a.keys() == b.keys()
        assert a != b
