"""Tests for the filesink (CSV export) plugin."""

import csv

import pytest

from repro.common.errors import ConfigError
from repro.common.timeutil import NS_PER_SEC
from repro.core.operator import OperatorConfig
from repro.core.queryengine import QueryEngine
from repro.core.units import Unit
from repro.dcdb.cache import SensorCache
from repro.dcdb.sensor import Sensor
from repro.plugins.filesink import FileSinkOperator


class Host:
    def __init__(self):
        self.caches = {}
        self.stored = []

    def push(self, topic, ts, value):
        cache = self.caches.get(topic)
        if cache is None:
            cache = self.caches[topic] = SensorCache(32, interval_ns=NS_PER_SEC)
        cache.store(ts, float(value))

    def cache_for(self, topic):
        return self.caches.get(topic)

    @property
    def storage(self):
        return None

    def sensor_topics(self):
        return sorted(self.caches)

    def store_reading(self, sensor, ts, value):
        self.stored.append((sensor.topic, ts, value))


def make_op(tmp_path, **params):
    cfg = OperatorConfig(
        name="sink",
        params={"directory": str(tmp_path / "out"), **params},
    )
    return FileSinkOperator(cfg)


def make_unit():
    return Unit(
        name="/r0/n0",
        level=0,
        inputs=["/r0/n0/power", "/r0/n0/temp"],
        outputs=[Sensor("/r0/n0/rows", is_operator_output=True)],
    )


def read_rows(path):
    with open(path, newline="") as fh:
        return list(csv.reader(fh))


class TestFileSink:
    def test_writes_header_and_rows(self, tmp_path):
        host = Host()
        op = make_op(tmp_path, flush_every=1)
        op.bind(host, QueryEngine(host))
        op.start()
        unit = make_unit()
        for i in range(3):
            ts = i * NS_PER_SEC
            host.push("/r0/n0/power", ts, 100.0 + i)
            host.push("/r0/n0/temp", ts, 40.0 + i)
            out = op.compute_unit(unit, ts)
        assert out == {"rows": 3.0}
        rows = read_rows(tmp_path / "out" / "r0_n0.csv")
        assert rows[0] == ["timestamp", "r0_n0_power", "r0_n0_temp"]
        assert rows[1] == ["0.0", "100.0", "40.0"]
        assert rows[3] == ["2.0", "102.0", "42.0"]

    def test_timestamp_units(self, tmp_path):
        host = Host()
        host.push("/r0/n0/power", 2 * NS_PER_SEC, 1.0)
        host.push("/r0/n0/temp", 2 * NS_PER_SEC, 2.0)
        op = make_op(tmp_path, timestamp_unit="ms", flush_every=1)
        op.bind(host, QueryEngine(host))
        op.start()
        op.compute_unit(make_unit(), 2 * NS_PER_SEC)
        rows = read_rows(tmp_path / "out" / "r0_n0.csv")
        assert rows[1][0] == "2000.0"

    def test_missing_input_leaves_blank(self, tmp_path):
        host = Host()
        host.push("/r0/n0/power", 0, 5.0)  # temp never produced
        op = make_op(tmp_path, flush_every=1)
        op.bind(host, QueryEngine(host))
        op.start()
        op.compute_unit(make_unit(), 0)
        rows = read_rows(tmp_path / "out" / "r0_n0.csv")
        assert rows[1] == ["0.0", "5.0", ""]

    def test_flush_cadence(self, tmp_path):
        host = Host()
        op = make_op(tmp_path, flush_every=100)
        op.bind(host, QueryEngine(host))
        op.start()
        unit = make_unit()
        host.push("/r0/n0/power", 0, 1.0)
        host.push("/r0/n0/temp", 0, 2.0)
        op.compute_unit(unit, 0)
        # Not yet flushed: only the header is guaranteed on disk.
        op.stop()  # stop() flushes
        rows = read_rows(tmp_path / "out" / "r0_n0.csv")
        assert len(rows) == 2
        op.close()

    def test_appends_across_restarts(self, tmp_path):
        host = Host()
        host.push("/r0/n0/power", 0, 1.0)
        host.push("/r0/n0/temp", 0, 2.0)
        for _ in range(2):
            op = make_op(tmp_path, flush_every=1)
            op.bind(host, QueryEngine(host))
            op.start()
            op.compute_unit(make_unit(), 0)
            op.stop()
            op.close()
        rows = read_rows(tmp_path / "out" / "r0_n0.csv")
        assert len(rows) == 3  # one header + two data rows

    @pytest.mark.parametrize(
        "params",
        [
            {},
            {"directory": "/tmp/x", "flush_every": 0},
            {"directory": "/tmp/x", "timestamp_unit": "minutes"},
        ],
    )
    def test_validation(self, params):
        with pytest.raises(ConfigError):
            FileSinkOperator(OperatorConfig(name="s", params=params))

    def test_registered(self):
        from repro.core.registry import available_plugins

        assert "filesink" in available_plugins()
