"""Property-based tests: sensor tree and pattern-unit resolution."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.pattern import PatternExpression
from repro.core.tree import SensorTree
from repro.core.units import UnitResolver

# Random balanced hierarchies: counts per level, sensors at the leaves.
hierarchy = st.tuples(
    st.integers(1, 3),  # racks
    st.integers(1, 3),  # nodes per rack
    st.integers(1, 4),  # cpus per node
)


def build_topics(shape):
    racks, nodes, cpus = shape
    topics = []
    for r in range(racks):
        topics.append(f"/r{r}/rpower")
        for n in range(nodes):
            topics.append(f"/r{r}/n{n}/npower")
            for c in range(cpus):
                topics.append(f"/r{r}/n{n}/cpu{c}/cycles")
    return topics


class TestTreeInvariants:
    @given(shape=hierarchy)
    def test_sensor_count_and_levels(self, shape):
        racks, nodes, cpus = shape
        tree = SensorTree.from_topics(build_topics(shape))
        assert tree.n_sensors == racks + racks * nodes + racks * nodes * cpus
        assert tree.max_level == 2
        assert len(tree.nodes_at_level(0)) == racks
        assert len(tree.nodes_at_level(1)) == racks * nodes
        assert len(tree.nodes_at_level(2)) == racks * nodes * cpus

    @given(shape=hierarchy)
    def test_every_topic_findable(self, shape):
        topics = build_topics(shape)
        tree = SensorTree.from_topics(topics)
        for t in topics:
            assert tree.has_sensor(t)
        assert sorted(tree.all_sensor_topics()) == sorted(topics)

    @given(shape=hierarchy)
    def test_add_remove_roundtrip(self, shape):
        topics = build_topics(shape)
        tree = SensorTree.from_topics(topics)
        for t in topics:
            assert tree.remove_sensor(t)
        assert tree.n_sensors == 0
        assert tree.all_sensor_topics() == []

    @given(shape=hierarchy)
    def test_topdown_bottomup_symmetry(self, shape):
        tree = SensorTree.from_topics(build_topics(shape))
        depth = tree.max_level
        for k in range(depth + 1):
            td = tree.resolve_level("topdown", k)
            bu = tree.resolve_level("bottomup", depth - k)
            assert td == bu == k


class TestResolutionInvariants:
    @given(shape=hierarchy)
    def test_one_unit_per_output_domain_node(self, shape):
        racks, nodes, cpus = shape
        tree = SensorTree.from_topics(build_topics(shape))
        units = UnitResolver(
            ["<bottomup>cycles"], ["<bottomup-1>health"]
        ).resolve(tree)
        assert len(units) == racks * nodes
        assert len({u.name for u in units}) == len(units)

    @given(shape=hierarchy)
    def test_inputs_always_related_to_unit(self, shape):
        tree = SensorTree.from_topics(build_topics(shape))
        units = UnitResolver(
            ["<topdown>rpower", "<bottomup>cycles"], ["<bottomup-1>health"]
        ).resolve(tree)
        for unit in units:
            for topic in unit.inputs:
                comp = topic.rsplit("/", 1)[0]
                assert (
                    comp == unit.name
                    or unit.name.startswith(comp + "/")
                    or comp.startswith(unit.name + "/")
                )

    @given(shape=hierarchy)
    def test_input_counts_match_structure(self, shape):
        racks, nodes, cpus = shape
        tree = SensorTree.from_topics(build_topics(shape))
        units = UnitResolver(
            ["<topdown>rpower", "<bottomup>cycles"], ["<bottomup-1>health"]
        ).resolve(tree)
        for unit in units:
            # one rack power + that node's cpus
            assert len(unit.inputs) == 1 + cpus

    @given(shape=hierarchy)
    def test_resolve_for_name_matches_bulk_resolution(self, shape):
        tree = SensorTree.from_topics(build_topics(shape))
        resolver = UnitResolver(["<bottomup>cycles"], ["<bottomup-1>health"])
        units = {u.name: u for u in resolver.resolve(tree)}
        for name, unit in units.items():
            single = resolver.resolve_for_name(tree, name)
            assert sorted(single.inputs) == sorted(unit.inputs)
            assert [s.topic for s in single.outputs] == [
                s.topic for s in unit.outputs
            ]


class TestPatternRoundtrip:
    @given(
        anchor=st.sampled_from(["topdown", "bottomup"]),
        offset=st.integers(0, 9),
        sensor=st.from_regex(r"[a-z][a-z0-9-]{0,10}", fullmatch=True),
    )
    def test_str_parse_roundtrip(self, anchor, offset, sensor):
        sign = "+" if anchor == "topdown" else "-"
        text = f"<{anchor}{sign}{offset}>{sensor}" if offset else f"<{anchor}>{sensor}"
        expr = PatternExpression.parse(text)
        assert PatternExpression.parse(str(expr)) == expr
