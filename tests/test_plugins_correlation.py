"""Tests for the correlation-signature plugin."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.common.timeutil import NS_PER_SEC
from repro.core.operator import OperatorConfig
from repro.core.queryengine import QueryEngine
from repro.core.units import Unit
from repro.dcdb.cache import SensorCache
from repro.dcdb.sensor import Sensor
from repro.plugins.correlation import CorrelationOperator


class Host:
    def __init__(self):
        self.caches = {}
        self.stored = []

    def add_series(self, topic, values):
        cache = SensorCache(128, interval_ns=NS_PER_SEC)
        for i, v in enumerate(values):
            cache.store(i * NS_PER_SEC, float(v))
        self.caches[topic] = cache

    def cache_for(self, topic):
        return self.caches.get(topic)

    @property
    def storage(self):
        return None

    def sensor_topics(self):
        return sorted(self.caches)

    def store_reading(self, sensor, ts, value):
        self.stored.append((sensor.topic, ts, value))


def unit_for(inputs, out_names):
    return Unit(
        name="/n",
        level=0,
        inputs=list(inputs),
        outputs=[Sensor(f"/n/{o}", is_operator_output=True) for o in out_names],
    )


def make_op(host, window_s=30, **params):
    cfg = OperatorConfig(
        name="corr", window_ns=window_s * NS_PER_SEC, params=params
    )
    op = CorrelationOperator(cfg)
    op.bind(host, QueryEngine(host))
    op.start()
    return op


class TestCorrelation:
    def test_perfectly_correlated_pair(self):
        host = Host()
        x = np.arange(20.0)
        host.add_series("/n/a", x)
        host.add_series("/n/b", 2 * x + 1)
        op = make_op(host)
        out = op.compute_unit(unit_for(["/n/a", "/n/b"], ["corr-0-1"]), 0)
        assert out["corr-0-1"] == pytest.approx(1.0)

    def test_anticorrelated_pair(self):
        host = Host()
        x = np.arange(20.0)
        host.add_series("/n/a", x)
        host.add_series("/n/b", -x)
        op = make_op(host)
        out = op.compute_unit(unit_for(["/n/a", "/n/b"], ["corr-min"]), 0)
        assert out["corr-min"] == pytest.approx(-1.0)

    def test_mean_over_three_inputs(self):
        host = Host()
        rng = np.random.default_rng(0)
        x = np.arange(40.0)
        host.add_series("/n/a", x)
        host.add_series("/n/b", x + rng.normal(0, 0.01, 40))
        host.add_series("/n/c", rng.normal(0, 1, 40))
        op = make_op(host)
        out = op.compute_unit(
            unit_for(["/n/a", "/n/b", "/n/c"], ["corr-mean", "corr-0-1"]), 0
        )
        assert out["corr-0-1"] > 0.99
        # mean over 3 pairs: one ~1, two ~0.
        assert 0.15 < out["corr-mean"] < 0.6

    def test_constant_window_yields_zero(self):
        host = Host()
        host.add_series("/n/a", np.full(20, 3.0))
        host.add_series("/n/b", np.arange(20.0))
        op = make_op(host)
        out = op.compute_unit(unit_for(["/n/a", "/n/b"], ["corr-0-1"]), 0)
        assert out["corr-0-1"] == 0.0

    def test_insufficient_samples_silent(self):
        host = Host()
        host.add_series("/n/a", [1.0, 2.0])
        host.add_series("/n/b", [2.0, 3.0])
        op = make_op(host, min_samples=8)
        assert op.compute_unit(unit_for(["/n/a", "/n/b"], ["corr-0-1"]), 0) == {}

    def test_mismatched_window_lengths_truncated(self):
        host = Host()
        host.add_series("/n/a", np.arange(30.0))
        host.add_series("/n/b", np.arange(12.0))
        op = make_op(host)
        out = op.compute_unit(unit_for(["/n/a", "/n/b"], ["corr-0-1"]), 0)
        assert out["corr-0-1"] == pytest.approx(1.0)

    def test_single_input_rejected(self):
        host = Host()
        host.add_series("/n/a", np.arange(20.0))
        op = make_op(host)
        with pytest.raises(ConfigError):
            op.compute_unit(unit_for(["/n/a"], ["corr-mean"]), 0)

    def test_bad_output_names(self):
        host = Host()
        host.add_series("/n/a", np.arange(20.0))
        host.add_series("/n/b", np.arange(20.0))
        op = make_op(host)
        with pytest.raises(ConfigError):
            op.compute_unit(unit_for(["/n/a", "/n/b"], ["corr-9-1"]), 0)
        with pytest.raises(ConfigError):
            op.compute_unit(unit_for(["/n/a", "/n/b"], ["bogus"]), 0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            CorrelationOperator(OperatorConfig(name="c"))
        with pytest.raises(ConfigError):
            CorrelationOperator(
                OperatorConfig(
                    name="c", window_ns=NS_PER_SEC, params={"min_samples": 1}
                )
            )

    def test_registered(self):
        from repro.core.registry import available_plugins

        assert "correlation" in available_plugins()

    def test_fault_signature_drop(self):
        """Power/temp decorrelation is visible in the signature."""
        host = Host()
        rng = np.random.default_rng(1)
        power = 100 + 50 * np.sin(np.arange(40.0) / 5)
        healthy_temp = 40 + 0.06 * power + rng.normal(0, 0.05, 40)
        broken_temp = np.full(40, 46.0) + rng.normal(0, 0.05, 40)
        op = make_op(host)
        host.add_series("/n/power", power)
        host.add_series("/n/temp", healthy_temp)
        ok = op.compute_unit(unit_for(["/n/power", "/n/temp"], ["corr-0-1"]), 0)
        host.caches.clear()
        host.add_series("/n/power", power)
        host.add_series("/n/temp", broken_temp)
        bad = op.compute_unit(unit_for(["/n/power", "/n/temp"], ["corr-0-1"]), 0)
        assert ok["corr-0-1"] > 0.95
        assert abs(bad["corr-0-1"]) < 0.4
