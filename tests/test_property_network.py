"""Property tests for out-of-order delivery accounting.

A jittery link can reorder messages in flight.  When the jitter spread
exceeds the Collect Agent's drain interval, late arrivals reach the
agent *after* newer readings were already committed, and both sinks
drop them: the sensor cache counts them in ``stale_drops`` and the
storage backend silently skips out-of-order inserts to preserve the
sorted timestamp invariant.

The properties pin that accounting down exactly: replaying the observed
arrival order through a running-max filter must predict (a) the cache's
``stale_drops`` counter and (b) the storage series contents, for every
seed/cadence/jitter combination.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.timeutil import NS_PER_MS, NS_PER_SEC
from repro.dcdb import Broker, CollectAgent
from repro.dcdb.network import NetworkConditions
from repro.simulator.clock import TaskScheduler

TOPIC = "/r0/c0/n0/power"
HORIZON = 10**18


def _run_jittery_session(seed, n_msgs, gap_ms, jitter_ms):
    """Publish ``n_msgs`` readings over a jittery link into an agent.

    Returns ``(agent, arrivals)`` where ``arrivals`` is the exact
    (timestamp, value) sequence in broker *arrival* order — the order
    the agent's ingest queue saw.
    """
    scheduler = TaskScheduler()
    broker = Broker()
    agent = CollectAgent(
        "agent", broker, scheduler, drain_interval_ns=NS_PER_MS
    )
    arrivals = []
    broker.subscribe(TOPIC, lambda t, v, ts: arrivals.append((ts, v)))
    link = NetworkConditions(
        broker,
        scheduler,
        latency_ns=(jitter_ms + 1) * NS_PER_MS,
        jitter_ns=jitter_ms * NS_PER_MS,
        seed=seed,
    )
    for i in range(n_msgs):
        scheduler.run_until(i * gap_ms * NS_PER_MS)
        link.publish(TOPIC, float(i), scheduler.clock.now)
    # Let everything land and drain (latency is bounded by jitter+1 ms).
    scheduler.run_until(n_msgs * gap_ms * NS_PER_MS + NS_PER_SEC)
    agent.flush()
    assert len(arrivals) == n_msgs  # the link never loses, only delays
    return agent, arrivals


def _running_max_filter(arrivals):
    """Split an arrival sequence into (accepted, late_count).

    Mirrors the sink semantics: a reading is accepted iff its timestamp
    is >= the newest timestamp accepted so far (ties allowed), else it
    is a late out-of-order delivery.
    """
    newest = None
    accepted = []
    late = 0
    for ts, value in arrivals:
        if newest is not None and ts < newest:
            late += 1
            continue
        accepted.append((ts, value))
        newest = ts
    return accepted, late


class TestLateArrivalAccounting:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_msgs=st.integers(5, 60),
        gap_ms=st.integers(1, 8),
        jitter_ms=st.integers(3, 20),
    )
    def test_stale_drops_and_storage_match_running_max(
        self, seed, n_msgs, gap_ms, jitter_ms
    ):
        # Jitter (3..20 ms) always exceeds the 1 ms drain interval, so
        # reordered messages straddle drain boundaries.
        agent, arrivals = _run_jittery_session(
            seed, n_msgs, gap_ms, jitter_ms
        )
        accepted, late = _running_max_filter(arrivals)

        cache = agent.caches[TOPIC]
        assert cache.stale_drops == late

        ts_arr, val_arr = agent.storage.query(TOPIC, 0, HORIZON)
        assert list(ts_arr) == [ts for ts, _ in accepted]
        assert list(val_arr) == [value for _, value in accepted]
        # Storage order is the arrival-order subsequence that survived
        # the running-max filter, hence non-decreasing by construction.
        assert sorted(ts_arr) == list(ts_arr)

        view = cache.view_absolute(0, HORIZON)
        assert list(view.timestamps()) == [ts for ts, _ in accepted]

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_msgs=st.integers(5, 60),
        gap_ms=st.integers(1, 8),
        latency_ms=st.integers(0, 50),
    )
    def test_constant_latency_link_is_lossless_and_ordered(
        self, seed, n_msgs, gap_ms, latency_ms
    ):
        # With jitter=0 the link is FIFO: no reordering, no stale drops,
        # every reading committed — the invariant the store-and-forward
        # zero-loss guarantee rests on.
        scheduler = TaskScheduler()
        broker = Broker()
        agent = CollectAgent(
            "agent", broker, scheduler, drain_interval_ns=NS_PER_MS
        )
        link = NetworkConditions(
            broker,
            scheduler,
            latency_ns=latency_ms * NS_PER_MS,
            seed=seed,
        )
        for i in range(n_msgs):
            scheduler.run_until(i * gap_ms * NS_PER_MS)
            link.publish(TOPIC, float(i), scheduler.clock.now)
        scheduler.run_until(n_msgs * gap_ms * NS_PER_MS + NS_PER_SEC)
        agent.flush()

        cache = agent.caches[TOPIC]
        assert cache.stale_drops == 0
        ts_arr, val_arr = agent.storage.query(TOPIC, 0, HORIZON)
        assert len(ts_arr) == n_msgs
        assert list(val_arr) == [float(i) for i in range(n_msgs)]
        assert sorted(ts_arr) == list(ts_arr)
