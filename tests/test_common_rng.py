"""Tests for deterministic RNG derivation."""

from repro.common.rng import DEFAULT_SEED, derive_seed, make_rng, spawn_rng


class TestMakeRng:
    def test_default_seed_reproducible(self):
        a = make_rng().random(5)
        b = make_rng().random(5)
        assert (a == b).all()

    def test_explicit_seed(self):
        a = make_rng(7).random(5)
        b = make_rng(7).random(5)
        c = make_rng(8).random(5)
        assert (a == b).all()
        assert not (a == c).all()


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(1, "/r0/c0/s0") == derive_seed(1, "/r0/c0/s0")

    def test_key_sensitive(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_parent_sensitive(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_fits_63_bits(self):
        for key in ("x", "y", "a/very/long/component/path"):
            assert 0 <= derive_seed(DEFAULT_SEED, key) < 2**63


class TestSpawnRng:
    def test_independent_streams(self):
        a = spawn_rng(1, "node-a").random(4)
        b = spawn_rng(1, "node-b").random(4)
        assert not (a == b).all()

    def test_reproducible(self):
        a = spawn_rng(3, "k").random(4)
        b = spawn_rng(3, "k").random(4)
        assert (a == b).all()
