"""Tests for the on-disk segment tier (segments.py) and its wiring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError, StorageError
from repro.common.timeutil import NS_PER_SEC
from repro.dcdb import Broker, CollectAgent
from repro.dcdb.segments import (
    LEVEL_10S,
    LEVEL_RAW,
    Segment,
    SegmentStore,
    TieredStorageBackend,
    rollup_columns,
)
from repro.dcdb.storage import StorageBackend
from repro.simulator.clock import TaskScheduler


def _fill(backend, topics=2, seconds=20, seed=7):
    rng = np.random.default_rng(seed)
    names = [f"/r0/n{i}/power" for i in range(topics)]
    for topic in names:
        ts = np.arange(seconds, dtype=np.int64) * NS_PER_SEC
        backend.insert_batch(topic, ts, rng.normal(size=seconds))
    return names


class TestSegmentFile:
    def test_write_open_query_roundtrip(self, tmp_path):
        ts = np.arange(10, dtype=np.int64) * NS_PER_SEC
        val = np.linspace(0.0, 9.0, 10)
        seg = Segment.write(
            tmp_path / "segment-000000-l0.seg", 0, LEVEL_RAW,
            {"/a": {"ts": ts, "val": val}},
        )
        reopened = Segment.open(seg.path)
        q_ts, q_val = reopened.query("/a", 0, 2**62)
        assert np.array_equal(q_ts, ts) and np.array_equal(q_val, val)
        assert reopened.min_ts == 0 and reopened.max_ts == int(ts[-1])
        assert reopened.points == 10

    def test_query_clips_to_range(self, tmp_path):
        ts = np.arange(10, dtype=np.int64)
        seg = Segment.write(
            tmp_path / "s.seg", 0, LEVEL_RAW,
            {"/a": {"ts": ts, "val": ts.astype(float)}},
        )
        q_ts, _ = seg.query("/a", 3, 6)
        assert list(q_ts) == [3, 4, 5, 6]

    def test_truncated_data_block_detected(self, tmp_path):
        ts = np.arange(10, dtype=np.int64)
        seg = Segment.write(
            tmp_path / "s.seg", 0, LEVEL_RAW,
            {"/a": {"ts": ts, "val": ts.astype(float)}},
        )
        blob = seg.path.read_bytes()
        seg.path.write_bytes(blob[:-16])
        with pytest.raises(StorageError, match="truncated"):
            Segment.open(seg.path).query("/a", 0, 2**62)

    def test_empty_segment_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            Segment.write(tmp_path / "s.seg", 0, LEVEL_RAW, {})

    def test_not_a_segment_file(self, tmp_path):
        path = tmp_path / "junk.seg"
        path.write_bytes(b"not a segment at all")
        with pytest.raises(StorageError, match="not a segment"):
            Segment.open(path)


class TestSegmentStore:
    def test_scan_recovers_in_seq_order(self, tmp_path):
        store = SegmentStore(tmp_path)
        for i in range(3):
            ts = np.array([i * 100], dtype=np.int64)
            store.write({"/a": {"ts": ts, "val": ts.astype(float)}})
        again = SegmentStore(tmp_path)
        assert [s.seq for s in again.segments] == [0, 1, 2]
        assert again.total_points() == 3

    def test_interrupted_compaction_keeps_higher_level(self, tmp_path):
        store = SegmentStore(tmp_path)
        ts = np.arange(5, dtype=np.int64) * NS_PER_SEC
        raw = store.write({"/a": {"ts": ts, "val": ts.astype(float)}})
        # Simulate a crash after the rollup file landed but before the
        # raw source was unlinked: write the level-1 file by hand.
        Segment.write(
            tmp_path / f"segment-{raw.seq:06d}-l1.seg", raw.seq, LEVEL_10S,
            {"/a": rollup_columns(
                ts, ts.astype(float), ts.astype(float), ts.astype(float),
                np.ones(5, dtype=np.int64), 10 * NS_PER_SEC,
            )},
        )
        recovered = SegmentStore(tmp_path)
        assert len(recovered.segments) == 1
        assert recovered.segments[0].level == LEVEL_10S
        assert not raw.path.exists()  # superseded source removed


class TestRollupColumns:
    def test_mass_and_extrema(self):
        ts = np.arange(25, dtype=np.int64) * NS_PER_SEC
        val = np.arange(25, dtype=np.float64)
        out = rollup_columns(
            ts, val, val, val, np.ones(25, dtype=np.int64), 10 * NS_PER_SEC
        )
        assert list(out["ts"]) == [0, 10 * NS_PER_SEC, 20 * NS_PER_SEC]
        assert list(out["count"]) == [10, 10, 5]
        assert out["min"][0] == 0.0 and out["max"][0] == 9.0
        assert (out["mean"] * out["count"]).sum() == pytest.approx(val.sum())


class TestTieredBackend:
    def test_query_merges_tiers_bit_identical(self, tmp_path):
        mem = StorageBackend()
        tiered = TieredStorageBackend(tmp_path, flush_mb=64)
        _fill(mem)
        _fill(tiered)
        tiered.flush(10 * NS_PER_SEC)
        _fill(mem, seconds=40, seed=9)
        _fill(tiered, seconds=40, seed=9)
        for topic in mem.topics():
            m = mem.query(topic, 0, 2**62)
            t = tiered.query(topic, 0, 2**62)
            assert np.array_equal(m[0], t[0])
            assert np.array_equal(m[1], t[1])
        assert tiered.tier_hits["segment"] > 0
        assert tiered.tier_hits["memory"] > 0

    def test_seal_floor_refuses_stale_inserts(self, tmp_path):
        tiered = TieredStorageBackend(tmp_path, flush_mb=64)
        names = _fill(tiered, seconds=10)
        tiered.flush(10 * NS_PER_SEC)
        tiered.insert(names[0], 0, 1.0)
        assert tiered.ooo_dropped == 1
        assert tiered.count(names[0]) == 10
        tiered.insert_batch(
            names[0],
            np.array([0, 20 * NS_PER_SEC], dtype=np.int64),
            np.array([1.0, 2.0]),
        )
        assert tiered.ooo_dropped == 2
        assert tiered.count(names[0]) == 11

    def test_latest_falls_back_to_sealed_tier(self, tmp_path):
        tiered = TieredStorageBackend(tmp_path, flush_mb=64)
        names = _fill(tiered, seconds=5)
        newest = tiered.latest(names[0])
        tiered.flush(5 * NS_PER_SEC)
        assert tiered.latest(names[0]) == newest
        assert names[0] in tiered
        assert names[0] in tiered.topics()

    def test_restart_replays_segments(self, tmp_path):
        first = TieredStorageBackend(tmp_path, flush_mb=64)
        _fill(first, seconds=15)
        expected = {t: first.query(t, 0, 2**62) for t in first.topics()}
        first.flush(15 * NS_PER_SEC)
        second = TieredStorageBackend(tmp_path, flush_mb=64)
        assert second.replayed_points == 30
        for topic, (e_ts, e_val) in expected.items():
            g_ts, g_val = second.query(topic, 0, 2**62)
            assert np.array_equal(e_ts, g_ts)
            assert np.array_equal(e_val, g_val)

    def test_maintain_flushes_past_budget(self, tmp_path):
        tiered = TieredStorageBackend(tmp_path, flush_mb=0.0001)
        _fill(tiered, seconds=30)
        stats = tiered.maintain(30 * NS_PER_SEC)
        assert stats["flushed"] == 60
        assert tiered.flush_count == 1
        assert super(TieredStorageBackend, tiered).total_readings() == 0
        assert tiered.total_readings() == 60

    def test_rollup_and_retention_lifecycle(self, tmp_path):
        tiered = TieredStorageBackend(
            tmp_path, flush_mb=64,
            rollup_after_ns=10 * NS_PER_SEC,
            rollup_minute_after_ns=1000 * NS_PER_SEC,
            retention_rollup_ns=10_000 * NS_PER_SEC,
        )
        _fill(tiered, seconds=120)
        tiered.flush(120 * NS_PER_SEC)
        tiered.maintain(140 * NS_PER_SEC)
        assert tiered.store.level_counts()["rollup_10s"] == 1
        ts, _ = tiered.query("/r0/n0/power", 0, 2**62)
        assert len(ts) == 12  # 120s of raw at 1s -> 10s buckets
        tiered.maintain(2000 * NS_PER_SEC)
        assert tiered.store.level_counts()["rollup_1min"] == 1
        tiered.maintain(100_000 * NS_PER_SEC)
        assert len(tiered.store.segments) == 0
        assert tiered.segments_expired == 1

    def test_query_aggregate_spans_tiers(self, tmp_path):
        mem = StorageBackend()
        tiered = TieredStorageBackend(tmp_path, flush_mb=64)
        _fill(mem, topics=1, seconds=30)
        _fill(tiered, topics=1, seconds=30)
        tiered.flush(15 * NS_PER_SEC)
        for op in ("mean", "min", "max", "sum", "count"):
            m = mem.query_aggregate("/r0/n0/power", 0, 2**62,
                                    10 * NS_PER_SEC, op=op)
            t = tiered.query_aggregate("/r0/n0/power", 0, 2**62,
                                       10 * NS_PER_SEC, op=op)
            assert np.array_equal(m[0], t[0]) and np.allclose(m[1], t[1])

    def test_tier_stats_shape(self, tmp_path):
        tiered = TieredStorageBackend(tmp_path, flush_mb=64)
        _fill(tiered, seconds=5)
        tiered.flush(5 * NS_PER_SEC)
        tiered.query("/r0/n0/power", 0, 2**62)
        stats = tiered.tier_stats()
        assert stats["tiers"] == "tiered"
        assert stats["segments"]["raw"] == 1
        assert stats["tier_hits"]["segment"] == 1
        assert stats["disk_bytes"] > 0
        assert stats["flushes"] == 1

    def test_save_snapshot_merges_tiers(self, tmp_path):
        tiered = TieredStorageBackend(tmp_path / "seg", flush_mb=64)
        _fill(tiered, seconds=20)
        tiered.flush(10 * NS_PER_SEC)
        expected = {t: tiered.query(t, 0, 2**62) for t in tiered.topics()}
        snap = str(tmp_path / "snap.npz")
        assert tiered.save(snap) == 2
        restored = StorageBackend.load(snap)
        for topic, (e_ts, e_val) in expected.items():
            g_ts, g_val = restored.query(topic, 0, 2**62)
            assert np.array_equal(e_ts, g_ts)
            assert np.array_equal(e_val, g_val)


class TestAgentWiring:
    def test_agent_schedules_maintenance_and_gauges(self, tmp_path):
        scheduler = TaskScheduler()
        broker = Broker()
        tiered = TieredStorageBackend(
            tmp_path, flush_mb=0.0001,
            maintenance_interval_ns=5 * NS_PER_SEC,
        )
        agent = CollectAgent("agent", broker, scheduler, storage=tiered)
        for sec in range(12):
            broker.publish("/r0/n0/power", sec * NS_PER_SEC, 1.0)
        scheduler.run_until(12 * NS_PER_SEC)
        assert tiered.flush_count >= 1  # the maintenance task fired
        from repro.telemetry import render_prometheus

        metrics = render_prometheus(agent.telemetry)
        assert "storage_disk_bytes" in metrics
        assert 'storage_tier_hits{tier="memory"}' in metrics
        assert "storage_flushes" in metrics

    def test_memory_agent_has_no_tier_gauges(self):
        from repro.telemetry import render_prometheus

        agent = CollectAgent("agent", Broker(), TaskScheduler())
        assert "storage_disk_bytes" not in render_prometheus(agent.telemetry)


class TestDeploySpec:
    def test_tiered_storage_section(self, tmp_path):
        from repro.deploy import build_deployment

        dep = build_deployment({
            "cluster": {"nodes": 2, "cpus": 1, "seed": 3},
            "monitoring": {"plugins": ["sysfs"], "interval_ms": 1000},
            "storage": {
                "tiers": "tiered", "dir": str(tmp_path),
                "flush_mb": 0.0001, "flush_interval_s": 5,
            },
        })
        assert isinstance(dep.agent.storage, TieredStorageBackend)
        dep.run(30)
        dep.agent.flush()
        assert dep.agent.storage.flush_count >= 1
        assert dep.agent.storage.disk_bytes() > 0
        # Readings stay queryable across the flush boundary.
        ts, _ = dep.agent.storage.query("/r0/n0/power".replace(
            "/r0/n0", dep.sim.node_paths[0]), 0, 2**62)
        assert len(ts) > 0

    def test_memory_section_with_ttl(self):
        from repro.deploy import build_deployment

        dep = build_deployment({
            "cluster": {"nodes": 1, "cpus": 1},
            "storage": {"tiers": "memory", "ttl_s": 60},
        })
        assert not isinstance(dep.agent.storage, TieredStorageBackend)
        assert dep.agent.storage.ttl_ns == 60 * NS_PER_SEC

    def test_unknown_tiers_rejected(self):
        from repro.deploy import storage_from_block

        with pytest.raises(ConfigError, match="tiers"):
            storage_from_block({"tiers": "cassandra"})


class TestAnalyzerCoverage:
    def _diags(self, storage):
        from repro.analysis.config import analyze_deployment

        spec = {"cluster": {"nodes": 1, "cpus": 1}, "storage": storage}
        return analyze_deployment(spec)

    def test_clean_section(self):
        diags = self._diags({
            "tiers": "tiered", "flush_mb": 32,
            "rollups": {"after_s": 3600, "minute_after_s": 86400},
            "retention": {"raw_s": 604800},
        })
        assert [d for d in diags if d.code != "W015"] == []

    def test_unknown_key_and_bad_tiers(self):
        diags = self._diags({"tiers": "cassandra", "flash_mb": 1})
        codes = {d.code for d in diags}
        assert "W016" in codes and "W003" in codes

    def test_retention_below_rollup_horizon_warns(self):
        diags = self._diags({
            "tiers": "tiered",
            "rollups": {"after_s": 3600},
            "retention": {"raw_s": 600},
        })
        assert any(
            d.code == "W016" and "expire before" in d.message
            for d in diags
        )

    def test_memory_mode_with_disk_keys_warns(self):
        diags = self._diags({"tiers": "memory", "flush_mb": 8})
        assert any(
            d.code == "W003" and "no effect" in d.message for d in diags
        )

    def test_flow_counts_flush_budget(self):
        from repro.analysis.flow import build_flow_model, render_flow_report
        from repro.analysis.diagnostics import DiagnosticCollector

        base = {
            "cluster": {"nodes": 2, "cpus": 1},
            "monitoring": {"plugins": ["sysfs"], "interval_ms": 1000},
        }
        plain = build_flow_model(dict(base), DiagnosticCollector())
        tiered = build_flow_model(
            {**base, "storage": {"tiers": "tiered", "flush_mb": 16}},
            DiagnosticCollector(),
        )
        delta = (
            tiered.host_memory["collect agent"]
            - plain.host_memory["collect agent"]
        )
        assert delta == 16 * 1024 * 1024
        assert "storage: tiered" in render_flow_report(tiered)


# ----------------------------------------------------------------------
# Property tests (hypothesis)
# ----------------------------------------------------------------------

_ops = st.lists(
    st.tuples(
        st.booleans(),  # scalar insert vs batch
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10_000),
                st.floats(
                    min_value=-1e9, max_value=1e9,
                    allow_nan=False, allow_infinity=False,
                ),
            ),
            min_size=1, max_size=8,
        ),
    ),
    min_size=1, max_size=12,
)


def _apply(backend, ops, topic="/p"):
    for scalar, readings in ops:
        if scalar:
            for t, v in readings:
                backend.insert(topic, t, v)
        else:
            ts = np.array([t for t, _ in readings], dtype=np.int64)
            val = np.array([v for _, v in readings])
            backend.insert_batch(topic, ts, val)


class TestStorageProperties:
    @settings(max_examples=60, deadline=None)
    @given(ops=_ops)
    def test_save_load_roundtrip_identical(self, ops, tmp_path_factory):
        backend = StorageBackend()
        _apply(backend, ops)
        path = str(tmp_path_factory.mktemp("snap") / "s.npz")
        backend.save(path)
        restored = StorageBackend.load(path)
        o_ts, o_val = backend.query("/p", 0, 2**62)
        r_ts, r_val = restored.query("/p", 0, 2**62)
        assert np.array_equal(o_ts, r_ts)
        assert np.array_equal(o_val, r_val)
        # The stored series is always sorted, whatever the input order.
        assert np.all(np.diff(o_ts) >= 0)

    @settings(max_examples=40, deadline=None)
    @given(ops=_ops)
    def test_tiered_parity_with_memory(self, ops, tmp_path_factory):
        mem = StorageBackend()
        tiered = TieredStorageBackend(
            tmp_path_factory.mktemp("seg"), flush_mb=64
        )
        # Flush between every op: maximally adversarial tier mixing.
        for i, op in enumerate(ops):
            _apply(mem, [op])
            _apply(tiered, [op])
            if i % 2:
                tiered.flush(0)
        m_ts, m_val = mem.query("/p", 0, 2**62)
        t_ts, t_val = tiered.query("/p", 0, 2**62)
        assert np.array_equal(m_ts, t_ts)
        assert np.array_equal(m_val, t_val)
        assert mem.ooo_dropped == tiered.ooo_dropped

    @settings(max_examples=40, deadline=None)
    @given(
        ops=_ops,
        cutoffs=st.lists(
            st.integers(min_value=0, max_value=20_000),
            min_size=1, max_size=5,
        ),
    )
    def test_ttl_expiry_monotone_both_tiers(
        self, ops, cutoffs, tmp_path_factory
    ):
        for make in (
            lambda: StorageBackend(ttl_ns=1000),
            lambda: TieredStorageBackend(
                tmp_path_factory.mktemp("seg"), flush_mb=64, ttl_ns=1000
            ),
        ):
            backend = make()
            _apply(backend, ops)
            remaining = backend.total_readings()
            for now in sorted(cutoffs):
                backend.expire(now)
                left = backend.total_readings()
                assert left <= remaining  # expiry only shrinks
                remaining = left
                ts, _ = backend.query("/p", 0, 2**62)
                assert np.all(np.diff(ts) >= 0)
