"""Tests for the static configuration analyzer and its diagnostics."""

import pytest

from repro.analysis import (
    Diagnostic,
    DiagnosticCollector,
    analyze_deployment,
    analyze_pipeline_blocks,
    analyze_plugin_block,
    count_by_severity,
    has_errors,
    sort_key,
    trees_from_deployment,
)
from repro.common.errors import ConfigError
from repro.core.configurator import (
    Configurator,
    collect_block_diagnostics,
    parse_operator_config,
)
from repro.core.tree import SensorTree


def codes(diags, severity=None):
    return [
        d.code for d in diags
        if severity is None or d.severity == severity
    ]


def small_tree():
    """Two nodes under one rack, power/temp sensors each."""
    return SensorTree.from_topics([
        "/rack00/node00/power",
        "/rack00/node00/temp",
        "/rack00/node01/power",
        "/rack00/node01/temp",
    ])


def block(operators, plugin="aggregator"):
    return {"plugin": plugin, "operators": operators}


class TestDiagnostics:
    def test_format_and_location(self):
        diag = Diagnostic("W010", "error", "boom", path="operators.x")
        assert diag.location == "operators.x"
        assert diag.format() == "error W010 operators.x: boom"
        lint = Diagnostic("L003", "error", "boom", file="a.py", line=7)
        assert lint.location == "a.py:7"

    def test_to_dict_omits_empty_fields(self):
        diag = Diagnostic("W001", "warning", "m", path="p")
        assert diag.to_dict() == {
            "code": "W001", "severity": "warning", "message": "m",
            "path": "p",
        }

    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError):
            Diagnostic("W001", "fatal", "m")

    def test_collector_prefix_chaining(self):
        out = DiagnosticCollector()
        out.at("analytics", "agent", 0).at("operators", "avg").error(
            "W005", "bad"
        )
        assert out.sink[0].path == "analytics.agent[0].operators.avg"

    def test_sorting_and_counts(self):
        diags = [
            Diagnostic("W013", "info", "i"),
            Diagnostic("W010", "error", "e"),
            Diagnostic("W011", "warning", "w"),
        ]
        ordered = sorted(diags, key=sort_key)
        assert [d.severity for d in ordered] == ["error", "warning", "info"]
        assert count_by_severity(diags) == {
            "error": 1, "warning": 1, "info": 1,
        }
        assert has_errors(diags)


class TestConfiguratorDiagnostics:
    def test_reports_all_errors_at_once(self):
        bad = {
            "mode": "sometimes",            # W005
            "interval_ms": 100,
            "interval_s": 1,                # W004 conflict
            "frobnicate": True,             # W003 unknown key
            "inputs": ["<sideways>x"],      # W006 malformed
        }
        with pytest.raises(ConfigError) as err:
            parse_operator_config("op", bad)
        got = sorted(d.code for d in err.value.diagnostics)
        assert got == ["W003", "W004", "W005", "W006"]

    def test_unknown_top_level_block_key_rejected(self):
        cfg = block({"a": {"outputs": ["<bottomup>x"]}})
        cfg["operator"] = {}  # typo of "operators"
        diags = collect_block_diagnostics(cfg)
        assert "W003" in codes(diags, "error")
        with pytest.raises(ConfigError) as err:
            Configurator(cfg)
        assert any(d.code == "W003" for d in err.value.diagnostics)

    def test_bare_first_output_rejected(self):
        diags = collect_block_diagnostics(
            block({"a": {"outputs": ["no-pattern"]}})
        )
        assert "W007" in codes(diags, "error")

    def test_valid_block_is_clean(self):
        diags = collect_block_diagnostics(block({
            "a": {
                "interval_ms": 500,
                "window_s": 5,
                "inputs": ["<bottomup>power"],
                "outputs": ["<bottomup-1>avg"],
                "params": {"op": "mean"},
            }
        }))
        assert diags == []


class TestAnalyzePluginBlock:
    def test_unknown_plugin_is_w001(self):
        diags = analyze_plugin_block(
            block({"a": {"outputs": ["<bottomup>x"]}}, plugin="zzz")
        )
        assert "W001" in codes(diags, "error")

    def test_known_plugins_extension(self):
        diags = analyze_plugin_block(
            block({"a": {"outputs": ["<bottomup>x"]}}, plugin="mine"),
            known_plugins=["mine"],
        )
        assert "W001" not in codes(diags)

    def test_dangling_input_with_tree(self):
        diags = analyze_plugin_block(
            block({"a": {
                "inputs": ["<bottomup>nonesuch"],
                "outputs": ["<bottomup>out"],
            }}),
            tree=small_tree(),
        )
        assert "W010" in codes(diags, "error")

    def test_relaxed_downgrades_dangling_to_warning(self):
        diags = analyze_plugin_block(
            block({"a": {
                "relaxed": True,
                "inputs": ["<bottomup>nonesuch"],
                "outputs": ["<bottomup>out"],
            }}),
            tree=small_tree(),
        )
        assert "W010" in codes(diags, "warning")
        assert not has_errors(diags)

    def test_level_outside_tree_is_w008(self):
        diags = analyze_plugin_block(
            block({"a": {
                "inputs": ["<bottomup>power"],
                "outputs": ["<topdown+7>avg"],
            }}),
            tree=small_tree(),
        )
        assert "W008" in codes(diags, "error")

    def test_empty_domain_is_w009(self):
        diags = analyze_plugin_block(
            block({"a": {
                "inputs": ["<bottomup>power"],
                "outputs": ["<bottomup, filter nomatch>out"],
            }}),
            tree=small_tree(),
        )
        assert "W009" in codes(diags, "error")

    def test_cardinality_info_and_threshold(self):
        cfg = block({"a": {
            "inputs": ["<bottomup>power"],
            "outputs": ["<bottomup>out"],
        }})
        diags = analyze_plugin_block(cfg, tree=small_tree())
        info = [d for d in diags if d.code == "W013"]
        assert len(info) == 1 and "2 unit(s)" in info[0].message
        diags = analyze_plugin_block(cfg, tree=small_tree(), max_units=1)
        assert "W014" in codes(diags, "warning")

    def test_no_tree_skips_resolution(self):
        diags = analyze_plugin_block(block({"a": {
            "inputs": ["<bottomup>whatever"],
            "outputs": ["<bottomup>out"],
        }}))
        assert codes(diags) == []


class TestPipelineRules:
    def test_staged_outputs_visible_downstream(self):
        blocks = [
            block({"s": {
                "inputs": ["<bottomup>power"],
                "outputs": ["<bottomup>power-smooth"],
            }}, plugin="smoother"),
            block({"h": {
                "inputs": ["<bottomup>power-smooth"],
                "outputs": ["<bottomup>power-ok"],
            }}, plugin="health"),
        ]
        diags = analyze_pipeline_blocks(blocks, tree=small_tree())
        assert "W010" not in codes(diags)

    def test_duplicate_output_topics_error(self):
        blocks = [block({
            "a": {"inputs": ["<bottomup>power"],
                  "outputs": ["<bottomup-1>agg"]},
            "b": {"inputs": ["<bottomup>temp"],
                  "outputs": ["<bottomup-1>agg"]},
        })]
        diags = analyze_pipeline_blocks(blocks, tree=small_tree())
        assert "W011" in codes(diags, "error")

    def test_filtered_duplicate_is_warning(self):
        blocks = [block({
            "a": {"inputs": ["<bottomup>power"],
                  "outputs": ["<bottomup, filter node00>agg"]},
            "b": {"inputs": ["<bottomup>temp"],
                  "outputs": ["<bottomup, filter node01>agg"]},
        })]
        diags = analyze_pipeline_blocks(blocks, tree=small_tree())
        assert "W011" in codes(diags, "warning")
        assert "W011" not in codes(diags, "error")

    def test_same_name_different_level_not_duplicate(self):
        blocks = [block({
            "a": {"inputs": ["<bottomup>power"],
                  "outputs": ["<bottomup>agg"]},
            "b": {"inputs": ["<bottomup>temp"],
                  "outputs": ["<bottomup-1>agg"]},
        })]
        diags = analyze_pipeline_blocks(blocks, tree=small_tree())
        assert "W011" not in codes(diags)

    def test_cycle_detection(self):
        blocks = [
            block({"a": {"inputs": ["<bottomup>sig-b"],
                         "outputs": ["<bottomup>sig-a"]}}),
            block({"b": {"inputs": ["<bottomup>sig-a"],
                         "outputs": ["<bottomup>sig-b"]}}),
        ]
        diags = analyze_pipeline_blocks(blocks, tree=small_tree())
        assert "W012" in codes(diags, "error")

    def test_aggregation_chain_is_not_a_cycle(self):
        # <bottomup>power -> <bottomup-1>power is legitimate upward
        # aggregation: same sensor name, different level.
        blocks = [block({"agg": {
            "inputs": ["<bottomup>power"],
            "outputs": ["<bottomup-1>power-sum"],
        }})]
        diags = analyze_pipeline_blocks(blocks, tree=small_tree())
        assert "W012" not in codes(diags)

    def test_symbolic_cycle_without_tree(self):
        blocks = [
            block({"a": {"inputs": ["<bottomup>x"],
                         "outputs": ["<bottomup>y"]}}),
            block({"b": {"inputs": ["<bottomup>y"],
                         "outputs": ["<bottomup>x"]}}),
        ]
        diags = analyze_pipeline_blocks(blocks)
        assert "W012" in codes(diags, "error")


class TestDeployment:
    def spec(self, **overrides):
        base = {
            "cluster": {"nodes": 2, "cpus": 2},
            "monitoring": {"plugins": ["sysfs"]},
            "analytics": {"agent": []},
        }
        base.update(overrides)
        return base

    def test_clean_spec(self):
        assert analyze_deployment(self.spec()) == []

    def test_unknown_section(self):
        diags = analyze_deployment(self.spec(extra={}))
        assert "W003" in codes(diags, "error")

    def test_unknown_monitoring_plugin(self):
        diags = analyze_deployment(
            self.spec(monitoring={"plugins": ["nope"]})
        )
        assert "W016" in codes(diags, "error")

    def test_unknown_perfevent_counter(self):
        diags = analyze_deployment(self.spec(
            monitoring={"plugins": ["perfevent"],
                        "perfevent_counters": ["zflops"]}
        ))
        assert "W016" in codes(diags, "error")

    def test_unknown_app_profile_and_missing_end(self):
        diags = analyze_deployment(
            self.spec(jobs=[{"app": "doom"}])
        )
        msgs = [d.message for d in diags if d.code == "W016"]
        assert any("doom" in m for m in msgs)
        assert any("end_s" in m for m in msgs)

    def test_job_unknown_node_path(self):
        diags = analyze_deployment(self.spec(jobs=[
            {"app": "hpl", "end_s": 10, "node_paths": ["/rack99/node99"]}
        ]))
        assert any(
            d.code == "W016" and "node path" in d.message for d in diags
        )

    def test_analytics_blocks_resolved_per_context(self):
        # temp exists on every node: fine for both pushers and agent.
        ok = block({"a": {"inputs": ["<bottomup>temp"],
                          "outputs": ["<bottomup>t2"]}})
        diags = analyze_deployment(self.spec(
            analytics={"pushers": [ok], "agent": [ok]}
        ))
        assert not has_errors(diags)

    def test_trees_from_deployment_shapes(self):
        agent, pusher = trees_from_deployment({
            "cluster": {"nodes": 3, "cpus": 2},
            "monitoring": {"plugins": ["sysfs", "perfevent"]},
        })
        # 3 nodes x (4 sysfs + 2 cpus x 6 perfevent counters)
        assert agent.n_sensors == 3 * (4 + 2 * 6)
        assert pusher.n_sensors == 4 + 2 * 6
        assert agent.max_level > pusher.max_level or (
            agent.max_level == pusher.max_level
        )

    def test_facility_sensors_in_agent_tree(self):
        agent, _ = trees_from_deployment({
            "cluster": {"nodes": 1, "cpus": 1},
            "monitoring": {"plugins": ["sysfs"]},
            "facility": {"enabled": True},
        })
        assert agent.has_sensor("/facility/cooling/inlet-temp")

    def test_cluster_preset_validation(self):
        diags = analyze_deployment(
            self.spec(cluster={"preset": "notacluster"})
        )
        assert "W016" in codes(diags, "error")


class TestNetworkSection:
    def spec(self, network):
        return {
            "cluster": {"nodes": 2, "cpus": 2},
            "monitoring": {"plugins": ["sysfs"]},
            "network": network,
        }

    def test_clean_network_section(self):
        diags = analyze_deployment(self.spec({
            "latency_ms": 5,
            "jitter_ms": 2,
            "drop_probability": 0.01,
            "seed": 7,
            "outages": [
                {"start_s": 10, "end_s": 20,
                 "destinations": ["/r0/c0/n0"]},
            ],
            "spill": {"capacity": 1000, "policy": "drop-oldest",
                      "retry_base_ms": 100, "retry_max_ms": 2000},
            "ingest": {"queue_capacity": 5000, "policy": "drop-newest"},
        }))
        assert diags == []

    def test_unknown_keys_flagged(self):
        diags = analyze_deployment(self.spec({
            "latency": 5,                       # W003: must be latency_ms
            "spill": {"cap": 10},               # W003 nested
            "ingest": {"policy": "drop-oldest", "qcap": 1},  # W003 nested
        }))
        assert codes(diags, "warning").count("W003") == 3

    def test_value_errors(self):
        diags = analyze_deployment(self.spec({
            "latency_ms": 1,
            "jitter_ms": 5,                     # W016: jitter > latency
            "drop_probability": 1.0,            # W016: must be < 1
        }))
        got = codes(diags, "error")
        assert got.count("W016") == 2

    def test_outage_shape_errors(self):
        diags = analyze_deployment(self.spec({
            "outages": [
                {"end_s": 5},                   # missing start_s
                {"start_s": 9, "end_s": 3},     # end before start
                {"start_s": 1, "end_s": 2, "destinations": []},
            ],
        }))
        assert codes(diags, "error").count("W016") == 3

    def test_spill_and_ingest_value_errors(self):
        diags = analyze_deployment(self.spec({
            "spill": {"capacity": 0, "policy": "drop-something",
                      "retry_base_ms": 500, "retry_max_ms": 100},
            "ingest": {"queue_capacity": -1},
        }))
        assert codes(diags, "error").count("W016") == 4

    def test_network_must_be_mapping(self):
        diags = analyze_deployment(self.spec([1, 2]))
        assert "W005" in codes(diags, "error")
