"""Tests for the clustering and classifier plugins."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.common.timeutil import NS_PER_SEC
from repro.core.operator import OperatorConfig
from repro.core.queryengine import QueryEngine
from repro.core.units import Unit
from repro.dcdb.cache import SensorCache
from repro.dcdb.sensor import Sensor
from repro.plugins.classifier import ClassifierOperator
from repro.plugins.clustering import ClusteringOperator


class Host:
    def __init__(self):
        self.caches = {}
        self.stored = []

    def add_series(self, topic, values, interval=NS_PER_SEC):
        cache = SensorCache(256, interval_ns=interval)
        for i, v in enumerate(values):
            cache.store(i * interval, float(v))
        self.caches[topic] = cache

    def push(self, topic, ts, value, interval=NS_PER_SEC):
        cache = self.caches.get(topic)
        if cache is None:
            cache = self.caches[topic] = SensorCache(256, interval_ns=interval)
        cache.store(ts, float(value))

    def cache_for(self, topic):
        return self.caches.get(topic)

    @property
    def storage(self):
        return None

    def sensor_topics(self):
        return sorted(self.caches)

    def store_reading(self, sensor, ts, value):
        self.stored.append((sensor.topic, ts, value))


def node_unit(name):
    return Unit(
        name=name,
        level=0,
        inputs=[f"{name}/power", f"{name}/temp", f"{name}/idle-time"],
        outputs=[
            Sensor(f"{name}/cluster", is_operator_output=True),
            Sensor(f"{name}/outlier", is_operator_output=True),
        ],
    )


def populate_cluster_host(rng, n_idle=10, n_busy=10, n_outlier=1):
    """Idle nodes (~80 W), busy nodes (~190 W), plus wild outliers."""
    host = Host()
    units = []
    idx = 0

    def add_node(power, temp, idle_rate):
        nonlocal idx
        name = f"/r0/n{idx:02d}"
        idx += 1
        host.add_series(
            f"{name}/power", power + rng.normal(0, 2, 30)
        )
        host.add_series(f"{name}/temp", temp + rng.normal(0, 0.3, 30))
        # idle-time counter accumulating at idle_rate per second
        host.add_series(
            f"{name}/idle-time", np.cumsum(np.full(30, idle_rate))
        )
        units.append(node_unit(name))

    for _ in range(n_idle):
        add_node(80.0, 45.0, 60.0)
    for _ in range(n_busy):
        add_node(190.0, 53.0, 2.0)
    for _ in range(n_outlier):
        add_node(260.0, 60.0, 55.0)  # busy-level power at idle-level idle
    return host, units


def make_clustering_op(**params):
    defaults = {
        "transforms": {"power": "mean", "temp": "mean", "idle-time": "delta"},
        "n_components": 6,
        "min_units": 5,
        "seed": 3,
    }
    defaults.update(params)
    cfg = OperatorConfig(
        name="cl",
        window_ns=30 * NS_PER_SEC,
        operator_outputs=["n-clusters", "n-outliers"],
        params=defaults,
    )
    return ClusteringOperator(cfg)


class TestClustering:
    def test_separates_idle_and_busy(self):
        rng = np.random.default_rng(0)
        host, units = populate_cluster_host(rng, n_outlier=0)
        op = make_clustering_op()
        op.bind(host, QueryEngine(host))
        op.set_units(units)
        op.start()
        results = op.compute(29 * NS_PER_SEC)
        assert len(results) == 20
        labels = {r.unit.name: r.values["cluster"] for r in results}
        idle_labels = {labels[f"/r0/n{i:02d}"] for i in range(10)}
        busy_labels = {labels[f"/r0/n{i:02d}"] for i in range(10, 20)}
        assert len(idle_labels) == 1
        assert len(busy_labels) == 1
        assert idle_labels != busy_labels
        assert op.last_n_clusters >= 2

    def test_flags_planted_outlier(self):
        rng = np.random.default_rng(1)
        host, units = populate_cluster_host(rng, n_idle=12, n_busy=12,
                                            n_outlier=1)
        op = make_clustering_op(pdf_threshold=5e-2)
        op.bind(host, QueryEngine(host))
        op.set_units(units)
        op.start()
        op.compute(29 * NS_PER_SEC)
        assert "/r0/n24" in op.last_outliers
        # Normal nodes are not flagged wholesale.
        assert len(op.last_outliers) <= 3

    def test_operator_outputs_stored(self):
        rng = np.random.default_rng(2)
        host, units = populate_cluster_host(rng, n_outlier=0)
        op = make_clustering_op()
        op.bind(host, QueryEngine(host))
        op.set_units(units)
        op.start()
        op.compute(29 * NS_PER_SEC)
        topics = {t for t, _, _ in host.stored}
        assert "/analytics/cl/n-clusters" in topics
        assert "/analytics/cl/n-outliers" in topics

    def test_below_min_units_skips_pass(self):
        rng = np.random.default_rng(3)
        host, units = populate_cluster_host(rng, n_idle=2, n_busy=1,
                                            n_outlier=0)
        op = make_clustering_op(min_units=10)
        op.bind(host, QueryEngine(host))
        op.set_units(units)
        op.start()
        assert op.compute(29 * NS_PER_SEC) == []

    def test_on_demand_returns_last_labels(self):
        rng = np.random.default_rng(4)
        host, units = populate_cluster_host(rng, n_outlier=0)
        op = make_clustering_op()
        op.bind(host, QueryEngine(host))
        op.set_units(units)
        op.start()
        op.compute(29 * NS_PER_SEC)
        values = op.compute_unit(units[0], 0)
        assert "cluster" in values and "outlier" in values

    def test_labels_ordered_by_cluster_size(self):
        # Cluster 0 must be the most populous (weights descending).
        rng = np.random.default_rng(5)
        host, units = populate_cluster_host(rng, n_idle=15, n_busy=5,
                                            n_outlier=0)
        op = make_clustering_op()
        op.bind(host, QueryEngine(host))
        op.set_units(units)
        op.start()
        results = op.compute(29 * NS_PER_SEC)
        label_counts = {}
        for r in results:
            label_counts[r.values["cluster"]] = (
                label_counts.get(r.values["cluster"], 0) + 1
            )
        best = max(label_counts, key=label_counts.get)
        assert best == 0.0

    @pytest.mark.parametrize(
        "params",
        [
            {"transforms": {"power": "integral"}},
        ],
    )
    def test_validation(self, params):
        cfg = OperatorConfig(name="cl", window_ns=NS_PER_SEC, params=params)
        with pytest.raises(ConfigError):
            ClusteringOperator(cfg)

    def test_requires_window(self):
        with pytest.raises(ConfigError):
            ClusteringOperator(OperatorConfig(name="cl"))


class TestClassifier:
    def make_op(self, training_samples=80):
        cfg = OperatorConfig(
            name="cf",
            window_ns=4 * NS_PER_SEC,
            params={
                "label": "app-id",
                "n_classes": 2,
                "training_samples": training_samples,
                "seed": 2,
            },
        )
        return ClassifierOperator(cfg)

    def unit(self):
        return Unit(
            name="/n",
            level=0,
            inputs=["/n/x", "/n/app-id"],
            outputs=[Sensor("/n/predicted-app", is_operator_output=True)],
        )

    def test_learns_two_regimes(self):
        host = Host()
        op = self.make_op(training_samples=80)
        op.bind(host, QueryEngine(host))
        op.start()
        unit = self.unit()
        rng = np.random.default_rng(0)

        def step(i, label):
            ts = i * NS_PER_SEC
            base = 10.0 if label == 0 else 50.0
            host.push("/n/x", ts, base + rng.normal(0, 1.0))
            host.push("/n/app-id", ts, float(label))
            return op.compute_unit(unit, ts)

        i = 0
        for _ in range(50):
            step(i, 0)
            i += 1
        for _ in range(50):
            step(i, 1)
            i += 1
        # Trained by now; evaluate both regimes.
        preds0 = [step(i + k, 0) for k in range(6)]
        i += 6
        preds1 = [step(i + k, 1) for k in range(6)]
        # Skip the first post-switch windows (mixed windows).
        assert preds0[-1]["predicted-app"] == 0.0
        assert preds1[-1]["predicted-app"] == 1.0

    def test_no_output_until_trained(self):
        host = Host()
        op = self.make_op(training_samples=1000)
        op.bind(host, QueryEngine(host))
        op.start()
        unit = self.unit()
        for i in range(10):
            ts = i * NS_PER_SEC
            host.push("/n/x", ts, float(i))
            host.push("/n/app-id", ts, 0.0)
            assert op.compute_unit(unit, ts) == {}

    def test_out_of_range_labels_ignored(self):
        host = Host()
        op = self.make_op(training_samples=5)
        op.bind(host, QueryEngine(host))
        op.start()
        unit = self.unit()
        model = op.model_for(unit)
        for i in range(8):
            ts = i * NS_PER_SEC
            host.push("/n/x", ts, float(i))
            host.push("/n/app-id", ts, 9.0)  # invalid label
            op.compute_unit(unit, ts)
        assert not model.trained

    @pytest.mark.parametrize(
        "params",
        [
            {"n_classes": 2},
            {"label": "y"},
            {"label": "y", "n_classes": 1},
        ],
    )
    def test_validation(self, params):
        cfg = OperatorConfig(name="cf", window_ns=NS_PER_SEC, params=params)
        with pytest.raises(ConfigError):
            ClassifierOperator(cfg)
