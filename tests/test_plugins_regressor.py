"""Tests for the regressor plugin (online RF prediction, Fig 6)."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.common.timeutil import NS_PER_SEC
from repro.core.operator import OperatorConfig
from repro.core.queryengine import QueryEngine
from repro.core.units import Unit
from repro.dcdb.cache import SensorCache
from repro.dcdb.sensor import Sensor
from repro.plugins.regressor import OnlineRegressionModel, RegressorOperator


class Host:
    def __init__(self, topics):
        self.caches = {
            t: SensorCache(64, interval_ns=NS_PER_SEC) for t in topics
        }
        self.stored = []

    def push(self, topic, ts, value):
        self.caches[topic].store(ts, float(value))

    def cache_for(self, topic):
        return self.caches.get(topic)

    @property
    def storage(self):
        return None

    def sensor_topics(self):
        return sorted(self.caches)

    def store_reading(self, sensor, ts, value):
        self.stored.append((sensor.topic, ts, value))


def make_unit(with_error=False):
    outputs = [Sensor("/n/pred-power", is_operator_output=True)]
    if with_error:
        outputs.append(Sensor("/n/pred-error", is_operator_output=True))
    return Unit(
        name="/n",
        level=0,
        inputs=["/n/x", "/n/power"],
        outputs=outputs,
    )


def make_op(training_samples=60, **extra):
    params = {
        "target": "power",
        "training_samples": training_samples,
        "n_estimators": 8,
        "max_depth": 8,
        "seed": 1,
        **extra,
    }
    cfg = OperatorConfig(
        name="reg",
        window_ns=4 * NS_PER_SEC,
        operator_outputs=["avg-error"],
        params=params,
    )
    return RegressorOperator(cfg)


def drive(op, host, unit, steps, signal, start=0):
    """Push one (x, power) pair per second and run the operator."""
    results = []
    for i in range(start, start + steps):
        ts = i * NS_PER_SEC
        x, p = signal(i)
        host.push("/n/x", ts, x)
        host.push("/n/power", ts, p)
        out = op.compute_unit(unit, ts)
        results.append((ts, out))
    return results


class TestOnlineTraining:
    def test_trains_after_threshold_and_predicts(self):
        host = Host(["/n/x", "/n/power"])
        op = make_op(training_samples=60)
        op.bind(host, QueryEngine(host))
        op.start()
        unit = make_unit()
        model = op.model_for(unit)

        # power(t) follows x's recent mean: learnable from window stats.
        def signal(i):
            x = 100.0 + 50.0 * np.sin(i / 6.0)
            return x, x * 2.0

        drive(op, host, unit, steps=75, signal=signal)
        assert model.trained
        # After training, predictions exist and are accurate.
        results = drive(op, host, unit, steps=30, signal=signal, start=75)
        preds = [
            (ts, out["pred-power"]) for ts, out in results if "pred-power" in out
        ]
        assert len(preds) >= 25
        errs = []
        for ts, pred in preds:
            i = ts // NS_PER_SEC + 1  # prediction targets the next step
            _, actual = signal(i)
            errs.append(abs(pred - actual) / actual)
        assert np.mean(errs) < 0.08

    def test_no_prediction_before_training(self):
        host = Host(["/n/x", "/n/power"])
        op = make_op(training_samples=1000)
        op.bind(host, QueryEngine(host))
        op.start()
        unit = make_unit()
        results = drive(op, host, unit, 20, lambda i: (float(i), float(i)))
        assert all("pred-power" not in out for _, out in results)

    def test_causal_pairing(self):
        """The feature vector at step t pairs with the target at t+1."""
        model = OnlineRegressionModel(3, 2, 4, 1, seed=0)
        host = Host(["/n/x", "/n/power"])
        op = make_op(training_samples=3)
        op.bind(host, QueryEngine(host))
        op.start()
        unit = make_unit()
        # Step 0 builds features only; pair count stays 0.
        host.push("/n/x", 0, 1.0)
        host.push("/n/power", 0, 10.0)
        op.compute_unit(unit, 0)
        m = op.model_for(unit)
        assert m.buffered == 0
        # Step 1 closes the (features@0, power@1) pair.
        host.push("/n/x", NS_PER_SEC, 2.0)
        host.push("/n/power", NS_PER_SEC, 20.0)
        op.compute_unit(unit, NS_PER_SEC)
        assert m.buffered == 1

    def test_error_output_after_training(self):
        host = Host(["/n/x", "/n/power"])
        op = make_op(training_samples=40)
        op.bind(host, QueryEngine(host))
        op.start()
        unit = make_unit(with_error=True)

        def signal(i):
            return float(i % 7), 50.0 + (i % 7)

        drive(op, host, unit, 50, signal)
        results = drive(op, host, unit, 10, signal, start=50)
        errors = [out["pred-error"] for _, out in results if "pred-error" in out]
        assert errors, "relative error output expected once predicting"
        assert all(e >= 0 for e in errors)

    def test_operator_level_avg_error(self):
        host = Host(["/n/x", "/n/power"])
        op = make_op(training_samples=30)
        op.bind(host, QueryEngine(host))
        op.set_units([make_unit(with_error=True)])
        op.start()
        for i in range(50):
            ts = i * NS_PER_SEC
            host.push("/n/x", ts, float(i % 5))
            host.push("/n/power", ts, 100.0 + (i % 5))
            op.compute(ts)
        agg = [v for t, _, v in host.stored if t == "/analytics/reg/avg-error"]
        assert agg, "operator-level avg-error should be stored"

    def test_delta_inputs_differenced(self):
        host = Host(["/n/x", "/n/power"])
        op = make_op(training_samples=5, delta_inputs=["x"])
        op.bind(host, QueryEngine(host))
        op.start()
        unit = make_unit()
        # Single reading of a delta input -> no features yet.
        host.push("/n/x", 0, 5.0)
        host.push("/n/power", 0, 1.0)
        op.compute_unit(unit, 0)
        assert op.model_for(unit).buffered == 0

    def test_missing_target_sensor_raises(self):
        host = Host(["/n/x"])
        op = make_op()
        op.bind(host, QueryEngine(host))
        op.start()
        unit = Unit(
            name="/n", level=0, inputs=["/n/x"],
            outputs=[Sensor("/n/pred", is_operator_output=True)],
        )
        with pytest.raises(ConfigError):
            op.compute_unit(unit, 0)

    @pytest.mark.parametrize(
        "params",
        [
            {},
            {"target": "power", "training_samples": 0},
        ],
    )
    def test_validation(self, params):
        cfg = OperatorConfig(name="r", window_ns=NS_PER_SEC, params=params)
        with pytest.raises(ConfigError):
            RegressorOperator(cfg)

    def test_requires_window(self):
        cfg = OperatorConfig(name="r", params={"target": "power"})
        with pytest.raises(ConfigError):
            RegressorOperator(cfg)

    def test_training_progress_diagnostic(self):
        host = Host(["/n/x", "/n/power"])
        op = make_op(training_samples=100)
        op.bind(host, QueryEngine(host))
        op.set_units([make_unit()])
        op.start()
        for i in range(10):
            ts = i * NS_PER_SEC
            host.push("/n/x", ts, 1.0)
            host.push("/n/power", ts, 2.0)
            op.compute(ts)
        assert op.training_progress()["<shared>"] == 9
