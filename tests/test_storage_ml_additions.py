"""Tests for storage aggregate queries, forest feature importances and
classification metrics."""

import numpy as np
import pytest

from repro.common.errors import StorageError
from repro.dcdb.storage import StorageBackend
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.metrics import classification_accuracy, confusion_matrix


class TestQueryAggregate:
    def make_storage(self):
        s = StorageBackend()
        # 10 readings at t = 0..9, values 0..9.
        for i in range(10):
            s.insert("/a", i, float(i))
        return s

    def test_mean_buckets(self):
        s = self.make_storage()
        ts, values = s.query_aggregate("/a", 0, 9, bucket_ns=5, op="mean")
        assert list(ts) == [0, 5]
        assert list(values) == [2.0, 7.0]

    def test_sum_and_count(self):
        s = self.make_storage()
        _, sums = s.query_aggregate("/a", 0, 9, 5, "sum")
        _, counts = s.query_aggregate("/a", 0, 9, 5, "count")
        assert list(sums) == [10.0, 35.0]
        assert list(counts) == [5.0, 5.0]

    def test_min_max(self):
        s = self.make_storage()
        _, mins = s.query_aggregate("/a", 0, 9, 5, "min")
        _, maxs = s.query_aggregate("/a", 0, 9, 5, "max")
        assert list(mins) == [0.0, 5.0]
        assert list(maxs) == [4.0, 9.0]

    def test_empty_buckets_omitted(self):
        s = StorageBackend()
        s.insert("/a", 0, 1.0)
        s.insert("/a", 20, 2.0)
        ts, values = s.query_aggregate("/a", 0, 25, 5, "mean")
        assert list(ts) == [0, 20]
        assert list(values) == [1.0, 2.0]

    def test_unknown_topic_empty(self):
        s = StorageBackend()
        ts, values = s.query_aggregate("/nope", 0, 10, 2)
        assert len(ts) == 0 and len(values) == 0

    def test_validation(self):
        s = self.make_storage()
        with pytest.raises(StorageError):
            s.query_aggregate("/a", 0, 9, 0)
        with pytest.raises(StorageError):
            s.query_aggregate("/a", 0, 9, 5, "median")

    def test_matches_manual_downsampling(self):
        rng = np.random.default_rng(0)
        s = StorageBackend()
        ts = np.sort(rng.integers(0, 1000, 200))
        values = rng.random(200)
        for t, v in zip(ts, values):
            s.insert("/x", int(t), float(v))
        got_ts, got = s.query_aggregate("/x", 0, 999, 100, "mean")
        stored_ts, stored_val = s.query("/x", 0, 999)
        for bucket_start, value in zip(got_ts, got):
            mask = (stored_ts >= bucket_start) & (
                stored_ts < bucket_start + 100
            )
            assert value == pytest.approx(stored_val[mask].mean())


class TestFeatureImportances:
    def test_informative_features_rank_highest(self):
        rng = np.random.default_rng(1)
        X = rng.random((400, 6))
        y = 5.0 * X[:, 2] + 0.01 * rng.standard_normal(400)
        forest = RandomForestRegressor(
            n_estimators=10, max_depth=6, random_state=0
        ).fit(X, y)
        imp = forest.feature_importances()
        assert imp.shape == (6,)
        assert imp.sum() == pytest.approx(1.0)
        assert np.argmax(imp) == 2

    def test_classifier_importances(self):
        rng = np.random.default_rng(2)
        X = rng.random((300, 4))
        y = (X[:, 1] > 0.5).astype(int)
        forest = RandomForestClassifier(
            n_estimators=10, max_depth=5, random_state=0
        ).fit(X, y)
        assert np.argmax(forest.feature_importances()) == 1

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().feature_importances()


class TestClassificationMetrics:
    def test_confusion_matrix(self):
        actual = np.array([0, 0, 1, 1, 2])
        predicted = np.array([0, 1, 1, 1, 0])
        m = confusion_matrix(actual, predicted)
        assert m.shape == (3, 3)
        assert m[0, 0] == 1 and m[0, 1] == 1
        assert m[1, 1] == 2
        assert m[2, 0] == 1
        assert m.sum() == 5

    def test_explicit_class_count(self):
        m = confusion_matrix(np.array([0]), np.array([0]), n_classes=4)
        assert m.shape == (4, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0]), np.array([0, 1]))
        with pytest.raises(ValueError):
            confusion_matrix(np.array([-1]), np.array([0]))

    def test_accuracy(self):
        assert classification_accuracy(
            np.array([1, 2, 3]), np.array([1, 2, 0])
        ) == pytest.approx(2 / 3)

    def test_accuracy_empty(self):
        assert np.isnan(classification_accuracy(np.array([]), np.array([])))
