"""Tests for the application workload models."""

import numpy as np
import pytest

from repro.simulator.workload import (
    APP_PROFILES,
    AmgProfile,
    HplProfile,
    IdleProfile,
    KripkeProfile,
    LammpsProfile,
    NekboneProfile,
    binned_uniform,
    profile_by_name,
    value_noise,
)


class TestNoise:
    def test_value_noise_deterministic(self):
        a = value_noise(7, 12.3, 5.0, 8)
        b = value_noise(7, 12.3, 5.0, 8)
        assert (a == b).all()

    def test_value_noise_continuous_at_bins(self):
        # Approaching a bin boundary from both sides converges.
        lo = value_noise(7, 9.999, 5.0, 4)
        hi = value_noise(7, 10.001, 5.0, 4)
        assert np.abs(lo - hi).max() < 0.05

    def test_value_noise_streams_independent(self):
        a = value_noise(7, 1.0, 5.0, 8, stream=0)
        b = value_noise(7, 1.0, 5.0, 8, stream=1)
        assert not np.allclose(a, b)

    def test_binned_uniform_constant_within_bin(self):
        a = binned_uniform(3, 10.1, 5.0, 4)
        b = binned_uniform(3, 14.9, 5.0, 4)
        assert (a == b).all()

    def test_binned_uniform_changes_across_bins(self):
        a = binned_uniform(3, 10.1, 5.0, 16)
        b = binned_uniform(3, 15.1, 5.0, 16)
        assert not np.allclose(a, b)

    def test_binned_uniform_in_range(self):
        v = binned_uniform(3, 0.0, 1.0, 100)
        assert (v >= 0).all() and (v < 1).all()


class TestRegistry:
    def test_all_registered(self):
        assert set(APP_PROFILES) == {
            "idle", "hpl", "lammps", "amg", "kripke", "nekbone",
        }

    def test_lookup_case_insensitive(self):
        assert profile_by_name("HPL").name == "hpl"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            profile_by_name("doom")


class TestRatesSanity:
    @pytest.mark.parametrize("name", sorted(APP_PROFILES))
    def test_rates_are_finite_and_positive(self, name):
        inst = APP_PROFILES[name].make_instance(8, seed=11)
        for t in (0.0, 10.0, 100.0, 500.0):
            rates = inst.rates(t)
            assert np.isfinite(rates.cpi).all()
            assert (rates.cpi >= 0.25).all()
            assert (rates.utilization >= 0).all()
            assert (rates.utilization <= 1).all()
            assert (rates.instr_per_s > 0).all()
            assert (rates.cycles_per_s >= rates.instr_per_s * 0.2).all()
            assert rates.net_bytes_per_s >= 0.0

    @pytest.mark.parametrize("name", sorted(APP_PROFILES))
    def test_instances_reproducible(self, name):
        a = APP_PROFILES[name].make_instance(4, seed=5).rates(42.0)
        b = APP_PROFILES[name].make_instance(4, seed=5).rates(42.0)
        assert np.allclose(a.cpi, b.cpi)

    def test_activity_ranges(self):
        idle = IdleProfile().make_instance(8, 1)
        hpl = HplProfile().make_instance(8, 1)
        assert idle.activity(10.0) < 0.1
        assert hpl.activity(10.0) > 0.7


class TestSignalShapes:
    """The per-app structure Fig 6/7 depends on."""

    def _cpi_series(self, inst, times, agg):
        return np.array([agg(inst.rates(t).cpi) for t in times])

    def test_lammps_low_and_tight(self):
        inst = LammpsProfile().make_instance(64, seed=3)
        cpi = inst.rates(100.0).cpi
        assert 1.0 < cpi.mean() < 2.2
        assert cpi.std() < 0.5

    def test_hpl_steady(self):
        inst = HplProfile().make_instance(64, seed=3)
        series = self._cpi_series(inst, np.arange(0, 300, 10.0), np.mean)
        assert series.std() < 0.1

    def test_amg_upper_tail_spikes(self):
        inst = AmgProfile().make_instance(64, seed=3)
        maxima, medians = [], []
        for t in np.arange(0, 300, 5.0):
            cpi = inst.rates(t).cpi
            maxima.append(cpi.max())
            medians.append(np.median(cpi))
        # Median stays low while the max decile spikes high.
        assert np.median(medians) < 4.0
        assert np.max(maxima) > 15.0

    def test_kripke_iterations_visible(self):
        inst = KripkeProfile().make_instance(64, seed=3)
        times = np.arange(0, 4 * inst.ITERATION_S, 1.0)
        series = self._cpi_series(inst, times, np.mean)
        # Strong within-iteration swing: peak clearly above trough.
        assert series.max() - series.min() > 5.0
        # Periodicity: autocorrelation at one iteration lag is high.
        lag = int(inst.ITERATION_S)
        a = series[:-lag] - series[:-lag].mean()
        b = series[lag:] - series[lag:].mean()
        corr = (a @ b) / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12)
        assert corr > 0.6

    def test_nekbone_second_half_blowup(self):
        profile = NekboneProfile()
        inst = profile.make_instance(64, seed=3)
        early = inst.rates(0.2 * inst.duration_s).cpi
        late = inst.rates(0.9 * inst.duration_s).cpi
        assert early.std() < 1.0
        assert late.max() > 10.0
        # At least ~20% of cores affected late in the run.
        assert (late > 5.0).mean() >= 0.15

    def test_nekbone_affected_set_is_stable(self):
        inst = NekboneProfile().make_instance(64, seed=3)
        hot1 = inst.rates(0.95 * inst.duration_s).cpi > 5.0
        hot2 = inst.rates(0.96 * inst.duration_s).cpi > 5.0
        assert (hot1 == hot2).mean() > 0.9
