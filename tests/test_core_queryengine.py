"""Tests for the Query Engine (Section V-B)."""

import numpy as np
import pytest

from repro.common.errors import QueryError
from repro.common.timeutil import NS_PER_SEC
from repro.core.queryengine import QueryEngine
from repro.dcdb.cache import SensorCache
from repro.dcdb.storage import StorageBackend


class FakeHost:
    """Minimal host: caches dict + optional storage backend."""

    def __init__(self, storage=None):
        self.caches = {}
        self._storage = storage

    def cache_for(self, topic):
        return self.caches.get(topic)

    @property
    def storage(self):
        return self._storage

    def sensor_topics(self):
        topics = set(self.caches)
        if self._storage is not None:
            topics.update(self._storage.topics())
        return sorted(topics)


def filled_cache(n=10, interval=NS_PER_SEC):
    c = SensorCache(64, interval_ns=interval)
    for i in range(n):
        c.store(i * interval, float(i))
    return c


class TestRelativeQueries:
    def test_cache_hit(self):
        host = FakeHost()
        host.caches["/a"] = filled_cache()
        qe = QueryEngine(host)
        view = qe.query_relative("/a", 3 * NS_PER_SEC)
        assert list(view.values()) == [6.0, 7.0, 8.0, 9.0]
        assert qe.cache_hits == 1

    def test_zero_offset_latest_only(self):
        host = FakeHost()
        host.caches["/a"] = filled_cache()
        qe = QueryEngine(host)
        assert len(qe.latest("/a")) == 1

    def test_storage_fallback_when_no_cache(self):
        storage = StorageBackend()
        for i in range(5):
            storage.insert("/a", i * NS_PER_SEC, float(i))
        qe = QueryEngine(FakeHost(storage))
        view = qe.query_relative("/a", 2 * NS_PER_SEC)
        assert list(view.values()) == [2.0, 3.0, 4.0]
        assert qe.storage_fallbacks == 1

    def test_miss_raises(self):
        qe = QueryEngine(FakeHost())
        with pytest.raises(QueryError):
            qe.query_relative("/nope", 0)
        assert qe.misses == 1

    def test_query_many(self):
        host = FakeHost()
        host.caches["/a"] = filled_cache()
        host.caches["/b"] = filled_cache()
        qe = QueryEngine(host)
        views = qe.query_many_relative(["/a", "/b"], 0)
        assert len(views) == 2


class TestAbsoluteQueries:
    def test_cache_serves_covered_range(self):
        host = FakeHost()
        host.caches["/a"] = filled_cache()
        qe = QueryEngine(host)
        view = qe.query_absolute("/a", NS_PER_SEC, 3 * NS_PER_SEC)
        assert list(view.values()) == [1.0, 2.0, 3.0]
        assert qe.cache_hits == 1
        assert qe.storage_fallbacks == 0

    def test_storage_serves_uncovered_range(self):
        storage = StorageBackend()
        for i in range(100):
            storage.insert("/a", i * NS_PER_SEC, float(i))
        host = FakeHost(storage)
        # Cache only holds the newest 5 readings.
        cache = SensorCache(5, interval_ns=NS_PER_SEC)
        for i in range(95, 100):
            cache.store(i * NS_PER_SEC, float(i))
        host.caches["/a"] = cache
        qe = QueryEngine(host)
        view = qe.query_absolute("/a", 0, 10 * NS_PER_SEC)
        assert len(view) == 11
        assert qe.storage_fallbacks == 1

    def test_pusher_partial_cache_still_answers(self):
        # No storage: engine returns whatever the cache window covers.
        host = FakeHost()
        cache = SensorCache(5, interval_ns=NS_PER_SEC)
        for i in range(95, 100):
            cache.store(i * NS_PER_SEC, float(i))
        host.caches["/a"] = cache
        qe = QueryEngine(host)
        view = qe.query_absolute("/a", 0, 97 * NS_PER_SEC)
        assert list(view.values()) == [95.0, 96.0, 97.0]

    def test_inverted_range_rejected(self):
        qe = QueryEngine(FakeHost())
        with pytest.raises(QueryError):
            qe.query_absolute("/a", 10, 5)

    def test_unknown_topic_raises(self):
        qe = QueryEngine(FakeHost(StorageBackend()))
        with pytest.raises(QueryError):
            qe.query_absolute("/nope", 0, 10)


class TestDerivedHelpers:
    def test_window_values_delta(self):
        host = FakeHost()
        host.caches["/a"] = filled_cache()
        qe = QueryEngine(host)
        deltas = qe.window_values("/a", 3 * NS_PER_SEC, delta=True)
        assert list(deltas) == [1.0, 1.0, 1.0]

    def test_rate(self):
        host = FakeHost()
        host.caches["/a"] = filled_cache()
        qe = QueryEngine(host)
        # values rise 1.0 per second
        assert qe.rate("/a", 5 * NS_PER_SEC) == pytest.approx(1.0)

    def test_rate_needs_two_readings(self):
        host = FakeHost()
        host.caches["/a"] = filled_cache(n=1)
        qe = QueryEngine(host)
        assert np.isnan(qe.rate("/a", NS_PER_SEC))


class TestNavigatorIntegration:
    def test_navigator_built_from_host_topics(self):
        host = FakeHost()
        host.caches["/r0/n0/power"] = filled_cache()
        qe = QueryEngine(host)
        assert qe.navigator.has_sensor("/r0/n0/power")

    def test_refresh_picks_up_new_sensors(self):
        host = FakeHost()
        host.caches["/r0/n0/power"] = filled_cache()
        qe = QueryEngine(host)
        host.caches["/r0/n0/derived"] = filled_cache()
        assert not qe.navigator.has_sensor("/r0/n0/derived")
        qe.refresh_navigator()
        assert qe.navigator.has_sensor("/r0/n0/derived")

    def test_topics_lists_host_view(self):
        host = FakeHost()
        host.caches["/a"] = filled_cache()
        assert QueryEngine(host).topics() == ["/a"]
