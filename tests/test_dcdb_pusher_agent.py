"""Tests for the Pusher and Collect Agent data paths."""

import pytest

from repro.common.errors import ConfigError, PluginError
from repro.common.timeutil import NS_PER_SEC
from repro.dcdb import Broker, CollectAgent, Pusher
from repro.dcdb.plugins import TesterMonitoringPlugin
from repro.dcdb.sensor import Sensor
from repro.simulator.clock import TaskScheduler


@pytest.fixture
def rig():
    class NS:
        pass

    ns = NS()
    ns.scheduler = TaskScheduler()
    ns.broker = Broker()
    ns.pusher = Pusher("/r0/c0/n0", ns.broker, ns.scheduler)
    ns.agent = CollectAgent("agent", ns.broker, ns.scheduler)
    return ns


class TestPusherSampling:
    def test_plugin_sensors_get_caches(self, rig):
        plugin = TesterMonitoringPlugin("/r0/c0/n0", n_sensors=5)
        rig.pusher.add_plugin(plugin)
        assert len(rig.pusher.sensor_topics()) == 5
        for topic in rig.pusher.sensor_topics():
            assert rig.pusher.cache_for(topic) is not None

    def test_sampling_fills_caches(self, rig):
        rig.pusher.add_plugin(TesterMonitoringPlugin("/r0/c0/n0", n_sensors=3))
        rig.scheduler.run_until(5 * NS_PER_SEC)
        cache = rig.pusher.cache_for("/r0/c0/n0/tester0000")
        assert len(cache) == 6  # t=0..5 inclusive
        assert cache.latest().value == 6.0  # monotonic counter

    def test_duplicate_plugin_rejected(self, rig):
        rig.pusher.add_plugin(TesterMonitoringPlugin("/r0/c0/n0", n_sensors=1))
        with pytest.raises(ConfigError):
            rig.pusher.add_plugin(
                TesterMonitoringPlugin("/r0/c0/n1", n_sensors=1)
            )

    def test_duplicate_sensor_rejected(self, rig):
        rig.pusher.add_plugin(TesterMonitoringPlugin("/r0/c0/n0", n_sensors=1))
        p2 = TesterMonitoringPlugin("/r0/c0/n0", n_sensors=1)
        p2.name = "tester2"
        with pytest.raises(ConfigError):
            rig.pusher.add_plugin(p2)

    def test_stop_start_plugin(self, rig):
        rig.pusher.add_plugin(TesterMonitoringPlugin("/r0/c0/n0", n_sensors=1))
        rig.scheduler.run_until(2 * NS_PER_SEC)
        rig.pusher.set_plugin_enabled("tester", False)
        before = len(rig.pusher.cache_for("/r0/c0/n0/tester0000"))
        rig.scheduler.run_until(5 * NS_PER_SEC)
        assert len(rig.pusher.cache_for("/r0/c0/n0/tester0000")) == before
        rig.pusher.set_plugin_enabled("tester", True)
        rig.scheduler.run_until(7 * NS_PER_SEC)
        assert len(rig.pusher.cache_for("/r0/c0/n0/tester0000")) > before

    def test_unknown_plugin_errors(self, rig):
        with pytest.raises(PluginError):
            rig.pusher.plugin("nope")
        with pytest.raises(PluginError):
            rig.pusher.set_plugin_enabled("nope", True)

    def test_sampling_busy_time_recorded(self, rig):
        rig.pusher.add_plugin(TesterMonitoringPlugin("/r0/c0/n0", n_sensors=10))
        rig.scheduler.run_until(3 * NS_PER_SEC)
        assert rig.pusher.sampling_busy_ns > 0


class TestOperatorOutputPath:
    def test_store_reading_creates_lazy_cache(self, rig):
        sensor = Sensor("/r0/c0/n0/derived", is_operator_output=True)
        rig.pusher.store_reading(sensor, 10, 3.5)
        cache = rig.pusher.cache_for("/r0/c0/n0/derived")
        assert cache is not None
        assert cache.latest().value == 3.5

    def test_unpublished_sensor_stays_local(self, rig):
        sensor = Sensor("/r0/c0/n0/local", publish=False)
        rig.pusher.store_reading(sensor, 10, 1.0)
        rig.agent.flush()
        assert rig.agent.storage.count("/r0/c0/n0/local") == 0

    def test_published_sensor_reaches_agent(self, rig):
        sensor = Sensor("/r0/c0/n0/remote", publish=True)
        rig.pusher.store_reading(sensor, 10, 1.0)
        rig.agent.flush()
        assert rig.agent.storage.count("/r0/c0/n0/remote") == 1


class TestCollectAgent:
    def test_forwarding_to_storage(self, rig):
        rig.pusher.add_plugin(TesterMonitoringPlugin("/r0/c0/n0", n_sensors=2))
        rig.scheduler.run_until(5 * NS_PER_SEC)
        # One drain may lag a tick; flush to settle.
        rig.agent.flush()
        assert rig.agent.storage.count("/r0/c0/n0/tester0000") >= 5
        assert rig.agent.forwarded_count >= 10

    def test_agent_caches_mirror_traffic(self, rig):
        rig.pusher.add_plugin(TesterMonitoringPlugin("/r0/c0/n0", n_sensors=1))
        rig.scheduler.run_until(3 * NS_PER_SEC)
        rig.agent.flush()
        cache = rig.agent.cache_for("/r0/c0/n0/tester0000")
        assert cache is not None and len(cache) >= 3

    def test_agent_storage_fallback_has_everything(self, rig):
        rig.pusher.add_plugin(TesterMonitoringPlugin("/r0/c0/n0", n_sensors=1))
        rig.scheduler.run_until(3 * NS_PER_SEC)
        rig.agent.flush()
        assert "/r0/c0/n0/tester0000" in rig.agent.sensor_topics()

    def test_subscribe_pattern_scopes_agent(self):
        scheduler = TaskScheduler()
        broker = Broker()
        pusher = Pusher("/r0/c0/n0", broker, scheduler)
        agent = CollectAgent(
            "agent", broker, scheduler, subscribe_pattern="/r1/#"
        )
        pusher.add_plugin(TesterMonitoringPlugin("/r0/c0/n0", n_sensors=1))
        scheduler.run_until(3 * NS_PER_SEC)
        agent.flush()
        assert agent.storage.total_readings() == 0

    def test_rest_stats(self, rig):
        rig.pusher.add_plugin(TesterMonitoringPlugin("/r0/c0/n0", n_sensors=1))
        rig.scheduler.run_until(2 * NS_PER_SEC)
        rig.agent.flush()
        resp = rig.agent.rest.get("/stats")
        assert resp.ok
        assert resp.body["forwarded"] >= 2


class TestPusherRest:
    def test_plugin_listing(self, rig):
        rig.pusher.add_plugin(TesterMonitoringPlugin("/r0/c0/n0", n_sensors=1))
        assert rig.pusher.rest.get("/plugins").body == {"plugins": ["tester"]}

    def test_sensor_listing(self, rig):
        rig.pusher.add_plugin(TesterMonitoringPlugin("/r0/c0/n0", n_sensors=2))
        body = rig.pusher.rest.get("/sensors").body
        assert len(body["sensors"]) == 2

    def test_stop_via_rest(self, rig):
        rig.pusher.add_plugin(TesterMonitoringPlugin("/r0/c0/n0", n_sensors=1))
        resp = rig.pusher.rest.put("/plugins/tester/stop")
        assert resp.ok
        rig.scheduler.run_until(3 * NS_PER_SEC)
        assert len(rig.pusher.cache_for("/r0/c0/n0/tester0000")) == 0

    def test_bad_plugin_action_404(self, rig):
        assert rig.pusher.rest.put("/plugins/nope/start").status == 404

    def test_malformed_action_400(self, rig):
        assert rig.pusher.rest.put("/plugins/tester/explode").status == 400
