"""Tests for sensors, readings and sensor specs."""

import pytest

from repro.common.errors import TopicError
from repro.dcdb.sensor import Sensor, SensorReading, SensorSpec


class TestSensorReading:
    def test_fields(self):
        r = SensorReading(10, 2.5)
        assert r.timestamp == 10
        assert r.value == 2.5

    def test_tuple_semantics(self):
        assert SensorReading(1, 2.0) == (1, 2.0)


class TestSensor:
    def test_topic_normalised(self):
        s = Sensor("r0/n0/power/")
        assert s.topic == "/r0/n0/power"

    def test_name_is_last_segment(self):
        assert Sensor("/r0/n0/power").name == "power"

    def test_invalid_topic_rejected(self):
        with pytest.raises(TopicError):
            Sensor("")
        with pytest.raises(TopicError):
            Sensor("/a//b")

    def test_defaults(self):
        s = Sensor("/a/b")
        assert s.publish
        assert not s.is_delta
        assert not s.is_operator_output

    def test_hashable_by_topic(self):
        a, b = Sensor("/a/x"), Sensor("a/x")
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestSensorSpec:
    def test_bind_builds_full_topic(self):
        spec = SensorSpec(name="power", unit="W")
        sensor = spec.bind("/r0/c0/n0")
        assert sensor.topic == "/r0/c0/n0/power"
        assert sensor.unit == "W"

    def test_bind_tolerates_trailing_slash(self):
        sensor = SensorSpec(name="temp").bind("/r0/n0/")
        assert sensor.topic == "/r0/n0/temp"

    def test_flags_propagate(self):
        spec = SensorSpec(name="cycles", is_delta=True, publish=False)
        sensor = spec.bind("/n0")
        assert sensor.is_delta
        assert not sensor.publish

    def test_params_carried_on_spec(self):
        spec = SensorSpec(name="x", params={"source": "msr"})
        assert spec.params["source"] == "msr"
