"""Tests for the REST-style control surface."""

from repro.dcdb.restapi import RestApi, RestRequest, RestResponse


def ok_handler(req):
    return RestResponse.json({"path": req.path, "who": req.param("who", "none")})


class TestRouting:
    def test_exact_prefix(self):
        api = RestApi()
        api.register("GET", "/sensors", ok_handler)
        resp = api.get("/sensors")
        assert resp.ok
        assert resp.body["path"] == "/sensors"

    def test_subpath_matches_prefix(self):
        api = RestApi()
        api.register("GET", "/sensors", ok_handler)
        assert api.get("/sensors/power").ok

    def test_longest_prefix_wins(self):
        api = RestApi()
        api.register("GET", "/analytics", lambda r: RestResponse.json({"r": 1}))
        api.register(
            "GET", "/analytics/operators", lambda r: RestResponse.json({"r": 2})
        )
        assert api.get("/analytics/operators/foo").body["r"] == 2
        assert api.get("/analytics/other").body["r"] == 1

    def test_similar_prefix_does_not_match(self):
        api = RestApi()
        api.register("GET", "/sense", ok_handler)
        assert api.get("/sensors").status == 404

    def test_unknown_path_404(self):
        api = RestApi()
        api.register("GET", "/a", ok_handler)
        assert api.get("/b").status == 404

    def test_wrong_method_405(self):
        api = RestApi()
        api.register("GET", "/a", ok_handler)
        assert api.put("/a").status == 405

    def test_params_passed(self):
        api = RestApi()
        api.register("GET", "/a", ok_handler)
        assert api.get("/a", who="me").body["who"] == "me"

    def test_methods_are_case_insensitive(self):
        api = RestApi()
        api.register("get", "/a", ok_handler)
        assert api.dispatch(RestRequest("GET", "/a")).ok


class TestResponses:
    def test_ok_range(self):
        assert RestResponse.json({}).ok
        assert not RestResponse.error("x").ok

    def test_error_body(self):
        resp = RestResponse.error("boom", 500)
        assert resp.status == 500
        assert resp.body == {"error": "boom"}
