"""Tests for MQTT-style topic handling."""

import pytest

from repro.common.errors import TopicError
from repro.common.topics import (
    component_path,
    is_ancestor,
    join_topic,
    normalize_topic,
    sensor_name,
    split_topic,
    topic_depth,
    topic_matches,
)


class TestSplitJoin:
    def test_split_basic(self):
        assert split_topic("/rack4/chassis2/server3/power") == [
            "rack4",
            "chassis2",
            "server3",
            "power",
        ]

    def test_split_tolerates_missing_leading_slash(self):
        assert split_topic("a/b") == ["a", "b"]

    def test_split_tolerates_trailing_slash(self):
        assert split_topic("/a/b/") == ["a", "b"]

    def test_split_rejects_empty(self):
        with pytest.raises(TopicError):
            split_topic("")

    def test_split_rejects_double_slash(self):
        with pytest.raises(TopicError):
            split_topic("/a//b")

    def test_join_roundtrip(self):
        assert join_topic(["a", "b", "c"]) == "/a/b/c"
        assert split_topic(join_topic(["a", "b"])) == ["a", "b"]

    def test_join_rejects_slash_in_segment(self):
        with pytest.raises(TopicError):
            join_topic(["a/b"])

    def test_join_rejects_empty_segment(self):
        with pytest.raises(TopicError):
            join_topic(["a", ""])

    def test_normalize(self):
        assert normalize_topic("a/b/") == "/a/b"
        assert normalize_topic("/a/b") == "/a/b"


class TestAccessors:
    def test_depth(self):
        assert topic_depth("/a/b/c") == 3

    def test_sensor_name(self):
        assert sensor_name("/r1/c1/s1/power") == "power"

    def test_component_path(self):
        assert component_path("/r1/c1/s1/power") == "/r1/c1/s1"

    def test_component_path_of_top_sensor_is_root(self):
        assert component_path("/db-uptime") == "/"


class TestAncestry:
    def test_direct_parent(self):
        assert is_ancestor("/a", "/a/b")

    def test_deep_ancestor(self):
        assert is_ancestor("/a", "/a/b/c/d")

    def test_not_self(self):
        assert not is_ancestor("/a/b", "/a/b")

    def test_not_sibling(self):
        assert not is_ancestor("/a/b", "/a/c")

    def test_prefix_string_is_not_path_prefix(self):
        # /r1 is not an ancestor of /r10/...
        assert not is_ancestor("/r1", "/r10/power")

    def test_root_is_ancestor_of_everything(self):
        assert is_ancestor("/", "/a")
        assert not is_ancestor("/", "/")


class TestWildcards:
    def test_exact_match(self):
        assert topic_matches("/a/b/c", "/a/b/c")

    def test_exact_mismatch(self):
        assert not topic_matches("/a/b/c", "/a/b/d")

    def test_plus_matches_one_level(self):
        assert topic_matches("/a/+/c", "/a/b/c")
        assert not topic_matches("/a/+/c", "/a/b/x/c")

    def test_plus_does_not_match_missing_level(self):
        assert not topic_matches("/a/+", "/a")

    def test_hash_matches_any_suffix(self):
        assert topic_matches("/a/#", "/a/b")
        assert topic_matches("/a/#", "/a/b/c/d")

    def test_hash_alone_matches_all(self):
        assert topic_matches("/#", "/x/y/z")

    def test_hash_must_be_last(self):
        with pytest.raises(TopicError):
            topic_matches("/a/#/b", "/a/x/b")

    def test_shorter_topic_does_not_match(self):
        assert not topic_matches("/a/b/c", "/a/b")

    def test_longer_topic_does_not_match(self):
        assert not topic_matches("/a/b", "/a/b/c")
