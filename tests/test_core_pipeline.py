"""Tests for multi-stage pipeline deployment (Section IV-d)."""

import pytest

from repro.common.errors import ConfigError
from repro.common.timeutil import NS_PER_SEC
from repro.core.manager import OperatorManager
from repro.core.pipeline import Pipeline, PipelineStage
from repro.dcdb import Broker, CollectAgent, Pusher
from repro.dcdb.plugins import TesterMonitoringPlugin
from repro.simulator.clock import TaskScheduler


@pytest.fixture
def rig():
    class NS:
        pass

    ns = NS()
    ns.scheduler = TaskScheduler()
    ns.broker = Broker()
    ns.pusher = Pusher("/r0/c0/n0", ns.broker, ns.scheduler)
    ns.pusher.add_plugin(TesterMonitoringPlugin("/r0/c0/n0", n_sensors=2))
    ns.agent = CollectAgent("agent", ns.broker, ns.scheduler)
    ns.pm = OperatorManager()
    ns.pusher.attach_analytics(ns.pm)
    ns.am = OperatorManager()
    ns.agent.attach_analytics(ns.am)
    return ns


def stage_configs():
    stage1 = {
        "plugin": "aggregator",
        "operators": {
            "rate0": {
                "interval_s": 1,
                "window_s": 4,
                "inputs": ["<bottomup>tester0000"],
                "outputs": ["<bottomup>rate0"],
                "params": {"op": "rate"},
            }
        },
    }
    stage2 = {
        "plugin": "aggregator",
        "operators": {
            "sysavg": {
                "interval_s": 2,
                "window_s": 6,
                "delay_s": 3,
                "inputs": ["<bottomup>rate0"],
                "outputs": ["<topdown>rate0-avg"],
                "params": {"op": "mean"},
            }
        },
    }
    return stage1, stage2


class TestPipeline:
    def test_cross_host_pipeline_flows(self, rig):
        stage1, stage2 = stage_configs()
        # Stage 2 resolves against stage-1 outputs: seed the agent's view
        # by running stage 1 briefly first.
        Pipeline([PipelineStage(rig.pm, stage1, "derive")]).deploy()
        rig.scheduler.run_until(3 * NS_PER_SEC)
        pipe2 = Pipeline([PipelineStage(rig.am, stage2, "aggregate")])
        pipe2.deploy()
        rig.scheduler.run_until(12 * NS_PER_SEC)
        rig.agent.flush()
        out = rig.agent.cache_for("/r0/rate0-avg")
        assert out is not None and len(out) > 0
        # tester counters rise 1/s, so the rate and its average are ~1.
        assert out.latest().value == pytest.approx(1.0, rel=0.05)

    def test_single_deploy_ordered_stages(self, rig):
        stage1, stage2 = stage_configs()
        # Run monitoring first so stage 1 outputs exist when stage 2
        # resolves (stage 2 interval/delay give it headroom too).
        rig.scheduler.run_until(2 * NS_PER_SEC)
        pipe = Pipeline(
            [
                PipelineStage(rig.pm, stage1, "derive"),
            ]
        )
        ops = pipe.deploy()
        assert [op.name for op in ops["derive"]] == ["rate0"]
        assert pipe.operators("derive")[0].enabled

    def test_stop_and_start(self, rig):
        stage1, _ = stage_configs()
        pipe = Pipeline([PipelineStage(rig.pm, stage1, "derive")])
        pipe.deploy()
        pipe.stop()
        assert not pipe.operators("derive")[0].enabled
        pipe.start()
        assert pipe.operators("derive")[0].enabled

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ConfigError):
            Pipeline([])

    def test_stage_requires_plugin_key(self, rig):
        with pytest.raises(ConfigError):
            PipelineStage(rig.pm, {"operators": {}})

    def test_stage_label_defaults_to_plugin(self, rig):
        stage1, _ = stage_configs()
        stage = PipelineStage(rig.pm, stage1)
        assert stage.label == "aggregator"
