"""Tests for the static concurrency analyzer (S-rules).

Each ``tests/data/concbad_s0XX.py`` fixture seeds exactly one
concurrency defect; its golden file records the full ``check
--concurrency`` JSON document.  On top of the golden comparisons this
module exercises the inference machinery directly (guarded-by claims,
annotations, suppression accounting, the lock-order graph) and pins two
acceptance contracts: the full-repo analysis stays under three seconds,
and the statically derived lock-order graph is a superset of the
runtime-observed lockdep graph from a bounded quickstart run.
"""

import json
import pathlib
import time

import pytest

from repro.analysis import (
    analyze_concurrency,
    render_concurrency_report,
    static_lock_order_graph,
)
from repro.cli import main

DATA_DIR = pathlib.Path(__file__).resolve().parent / "data"
REPO_ROOT = DATA_DIR.parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"
EXAMPLES_DIR = REPO_ROOT / "examples"

CONCBAD_FIXTURES = sorted(DATA_DIR.glob("concbad_*.py"))

#: fixture stem -> the one S-rule it is built to trigger.
EXPECTED_CODES = {
    "concbad_s001_unguarded_write": "S001",
    "concbad_s002_unguarded_read": "S002",
    "concbad_s003_inconsistent_guard": "S003",
    "concbad_s004_check_then_act": "S004",
    "concbad_s005_bare_acquire": "S005",
    "concbad_s006_lock_order_cycle": "S006",
    "concbad_s007_publish_then_mutate": "S007",
    "concbad_s008_percall_lock": "S008",
    "concbad_s009_callback_under_lock": "S009",
    "concbad_s010_stale_annotation": "S010",
}


def run_check(capsys, *argv):
    code = main(["check", *argv])
    return code, capsys.readouterr().out


def test_every_rule_has_a_fixture():
    stems = {p.stem for p in CONCBAD_FIXTURES}
    assert stems == set(EXPECTED_CODES), (
        "fixture set out of sync with EXPECTED_CODES"
    )
    assert sorted(EXPECTED_CODES.values()) == [
        f"S{i:03d}" for i in range(1, 11)
    ]


class TestSeededFixtures:
    @pytest.mark.parametrize(
        "fixture", CONCBAD_FIXTURES, ids=lambda p: p.stem
    )
    def test_matches_golden(self, capsys, fixture):
        code, out = run_check(
            capsys, "--concurrency", str(fixture), "--format", "json"
        )
        got = json.loads(out)
        rel = f"tests/data/{fixture.name}"
        for diag in got["diagnostics"]:
            assert diag["file"].endswith(fixture.name)
            diag["file"] = rel
        golden = fixture.with_name(fixture.stem + ".golden.json")
        expected = json.loads(golden.read_text())
        assert got == expected
        assert code == expected["exit_code"]

    @pytest.mark.parametrize(
        "fixture", CONCBAD_FIXTURES, ids=lambda p: p.stem
    )
    def test_fires_exactly_its_rule(self, capsys, fixture):
        """Each fixture isolates one defect: only its own S code fires."""
        _, out = run_check(
            capsys, "--concurrency", str(fixture), "--format", "json"
        )
        got = json.loads(out)
        codes = {d["code"] for d in got["diagnostics"]}
        assert codes == {EXPECTED_CODES[fixture.stem]}


class TestRepoIsClean:
    def test_shipped_sources_pass(self, capsys):
        """Acceptance: the repo's own concurrent core analyses clean
        (the one intentional wrapper acquire is a counted suppression,
        not a silent pass)."""
        code, out = run_check(capsys, "--concurrency")
        assert code == 0
        assert "0 error(s), 0 warning(s)" in out
        assert "1 ignored" in out

    def test_full_repo_under_three_seconds(self):
        """CI perf pin: pre-commit-friendly means < 3 s for src/repro."""
        start = time.monotonic()
        model = analyze_concurrency([str(SRC_REPRO)])
        elapsed = time.monotonic() - start
        assert elapsed < 3.0, f"concurrency pass took {elapsed:.2f}s"
        assert model.lock_names, "no locks discovered — scan went wrong"


class TestGuardedByInference:
    def analyze(self, tmp_path, source):
        path = tmp_path / "mod.py"
        path.write_text(source)
        return analyze_concurrency([str(path)])

    def test_majority_vote_claims_attribute(self, tmp_path):
        model = self.analyze(tmp_path, (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0\n"
            "    def a(self):\n"
            "        with self._lock:\n"
            "            self.n += 1\n"
            "    def b(self):\n"
            "        with self._lock:\n"
            "            self.n += 2\n"
            "    def racy(self):\n"
            "        self.n = 0\n"
        ))
        assert [d.code for d in model.diagnostics] == ["S001"]
        ci = model.files[0].classes[0]
        assert ci.claims.get("n") == "_lock"
        assert ci.display("_lock") == "C._lock"

    def test_minority_guarded_attribute_is_unclaimed(self, tmp_path):
        model = self.analyze(tmp_path, (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0\n"
            "    def a(self):\n"
            "        with self._lock:\n"
            "            self.n += 1\n"
            "    def b(self):\n"
            "        self.n = 1\n"
            "    def c(self):\n"
            "        self.n = 2\n"
        ))
        assert model.diagnostics == []

    def test_guarded_by_annotation_forces_claim(self, tmp_path):
        """A declared guard turns an otherwise-unclaimed attribute's
        bare write into S001."""
        model = self.analyze(tmp_path, (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.x = 0  # guarded-by: _lock\n"
            "    def touch(self):\n"
            "        self.x = 1\n"
        ))
        assert [d.code for d in model.diagnostics] == ["S001"]

    def test_unguarded_annotation_waives_with_reason(self, tmp_path):
        model = self.analyze(tmp_path, (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0\n"
            "    def a(self):\n"
            "        with self._lock:\n"
            "            self.n += 1\n"
            "    def b(self):\n"
            "        with self._lock:\n"
            "            self.n += 2\n"
            "    def peek(self):\n"
            "        return self.n  # unguarded: stale read tolerated\n"
        ))
        assert model.diagnostics == []
        # an intent declaration is not a suppression: nothing "ignored"
        assert model.ignored == 0

    def test_empty_unguarded_reason_is_s010(self, tmp_path):
        model = self.analyze(tmp_path, (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0\n"
            "    def a(self):\n"
            "        with self._lock:\n"
            "            self.n += 1\n"
            "    def b(self):\n"
            "        with self._lock:\n"
            "            self.n += 2\n"
            "    def peek(self):\n"
            "        return self.n  # unguarded:\n"
        ))
        assert {d.code for d in model.diagnostics} == {"S010"}

    def test_interprocedural_helper_inherits_lockset(self, tmp_path):
        """A private helper called only with the lock held analyses as
        guarded — the intersection of its callers' locksets."""
        model = self.analyze(tmp_path, (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0\n"
            "    def a(self):\n"
            "        with self._lock:\n"
            "            self._bump()\n"
            "    def b(self):\n"
            "        with self._lock:\n"
            "            self._bump()\n"
            "    def _bump(self):\n"
            "        self.n += 1\n"
        ))
        assert model.diagnostics == []
        ci = model.files[0].classes[0]
        assert ci.claims.get("n") == "_lock"

    def test_make_lock_alias_uses_seam_name(self, tmp_path):
        model = self.analyze(tmp_path, (
            "from repro.sanitizer import hooks\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._mu = hooks.make_lock('C.custom')\n"
            "    def a(self):\n"
            "        with self._mu:\n"
            "            pass\n"
        ))
        assert "C.custom" in model.lock_names


class TestLockOrderGraph:
    def test_static_graph_shape(self):
        model = analyze_concurrency([str(SRC_REPRO)])
        graph = static_lock_order_graph(model)
        assert set(graph) == {"locks", "edges"}
        assert graph["locks"] == sorted(graph["locks"])
        for edge in graph["edges"]:
            assert len(edge) == 2

    def test_nested_with_produces_edge(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._a = threading.Lock()\n"
            "        self._b = threading.Lock()\n"
            "    def go(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                pass\n"
        )
        model = analyze_concurrency([str(path)])
        graph = static_lock_order_graph(model)
        assert ["C._a", "C._b"] in graph["edges"]
        assert model.diagnostics == []  # one direction only: no cycle

    def test_superset_of_runtime_lockdep_graph(self):
        """Acceptance: every lock name and nesting edge the quickstart
        bounded run observes must already be in the static graph, so
        the static and runtime analyses cannot silently drift apart."""
        from repro.sanitizer import make_sanitizer, run_runtime_check

        san = make_sanitizer()
        run_runtime_check(
            str(EXAMPLES_DIR / "quickstart_deployment.json"),
            duration_s=5.0,
            sanitizer=san,
        )
        runtime = san.lockdep_export()
        assert runtime["locks"], "runtime run acquired no tracked locks"

        static = static_lock_order_graph(
            analyze_concurrency([str(SRC_REPRO)])
        )
        missing = set(runtime["locks"]) - set(static["locks"])
        assert not missing, (
            f"locks observed at runtime but unknown statically: {missing}"
        )
        static_edges = {tuple(e) for e in static["edges"]}
        runtime_edges = {tuple(e) for e in runtime["edges"]}
        assert runtime_edges <= static_edges, (
            f"runtime-only edges: {runtime_edges - static_edges}"
        )


class TestSuppressions:
    """Satellite: the uniform ``# wintermute: ignore[CODE]`` marker is
    honored by every source-reading pass and stays visible as a count."""

    def test_marker_suppresses_and_counts(self, capsys, tmp_path):
        src = DATA_DIR / "concbad_s001_unguarded_write.py"
        patched = tmp_path / "patched.py"
        patched.write_text(src.read_text().replace(
            "self.count = 0  # rebinds",
            "self.count = 0  # wintermute: ignore[S001] -- rebinds",
        ))
        code, out = run_check(
            capsys, "--concurrency", str(patched), "--format", "json"
        )
        assert code == 0
        got = json.loads(out)
        assert got["diagnostics"] == []
        assert got["ignored"] == 1

    def test_marker_is_per_line_and_per_code(self, capsys, tmp_path):
        src = DATA_DIR / "concbad_s001_unguarded_write.py"
        patched = tmp_path / "patched.py"
        patched.write_text(src.read_text().replace(
            "self.count = 0  # rebinds",
            "self.count = 0  # wintermute: ignore[S002] -- wrong code",
        ))
        code, out = run_check(
            capsys, "--concurrency", str(patched), "--format", "json"
        )
        assert code == 1
        got = json.loads(out)
        assert [d["code"] for d in got["diagnostics"]] == ["S001"]
        assert got["ignored"] == 0

    def test_astlint_honors_uniform_marker(self, capsys, tmp_path):
        bad = tmp_path / "plugins"
        bad.mkdir()
        (bad / "x.py").write_text(
            "try:\n"
            "    f()\n"
            "except Exception:  # wintermute: ignore[L003]\n"
            "    pass\n"
        )
        code, out = run_check(
            capsys, "--lint", "--lint-path", str(tmp_path),
            "--format", "json",
        )
        assert code == 0
        got = json.loads(out)
        assert got["diagnostics"] == []
        assert got["ignored"] == 1

    def test_flow_spec_ignore_list(self, capsys, tmp_path):
        spec = json.loads(
            (DATA_DIR / "flowbad_f006_mixed_units.json").read_text()
        )
        spec["ignore"] = ["F006"]
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        code, out = run_check(
            capsys, "--flow", str(path), "--format", "json"
        )
        assert code == 0
        got = json.loads(out)
        assert [d for d in got["diagnostics"]
                if d["code"] == "F006"] == []
        assert got["ignored"] >= 1

    def test_text_summary_reports_ignored(self, capsys, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        code, out = run_check(
            capsys, "--concurrency", str(tmp_path / "ok.py")
        )
        assert code == 0
        assert "0 ignored" in out


class TestCliIntegration:
    def test_schema_version_bumped(self, capsys):
        _, out = run_check(
            capsys,
            "--concurrency", str(DATA_DIR / "concbad_s002_unguarded_read.py"),
            "--format", "json",
        )
        assert json.loads(out)["schema_version"] == 4

    def test_concurrency_report_text(self, capsys):
        code, out = run_check(capsys, "--concurrency", "--concurrency-report")
        assert code == 0
        assert "guarded-by" in out
        assert "Pusher.spill" in out
        assert "lock-order" in out

    def test_concurrency_report_json(self, capsys):
        _, out = run_check(
            capsys, "--concurrency", "--concurrency-report",
            "--format", "json",
        )
        got = json.loads(out)
        assert "guarded-by" in got["concurrency_report"]

    def test_composes_with_other_passes(self, capsys, tmp_path):
        (tmp_path / "clean.py").write_text("x = 1\n")
        code, out = run_check(
            capsys,
            "--concurrency", str(DATA_DIR / "concbad_s003_inconsistent_guard.py"),
            "--config", str(DATA_DIR / "bad_deployment.json"),
            "--flow", str(DATA_DIR / "flowbad_f006_mixed_units.json"),
            "--lint", "--lint-path", str(tmp_path),
            "--format", "json",
        )
        assert code == 1
        codes = {d["code"] for d in json.loads(out)["diagnostics"]}
        assert "S003" in codes and "W001" in codes and "F006" in codes

    def test_warning_rules_respect_fail_on(self, capsys):
        fixture = str(DATA_DIR / "concbad_s002_unguarded_read.py")
        code, _ = run_check(capsys, "--concurrency", fixture)
        assert code == 0  # S002 is warning severity
        code, _ = run_check(
            capsys, "--concurrency", fixture, "--fail-on", "warning"
        )
        assert code == 1

    def test_report_render_direct(self):
        model = analyze_concurrency([str(SRC_REPRO)])
        text = render_concurrency_report(model)
        assert "guarded-by" in text
        assert "OperatorBase.breaker" in text


class TestCatalogDrift:
    def test_concurrency_codes_complete(self):
        import re

        src = (SRC_REPRO / "analysis" / "concurrency.py").read_text()
        assert set(re.findall(r"\bS\d{3}\b", src)) >= {
            f"S{i:03d}" for i in range(1, 11)
        }

    def test_all_s_codes_documented(self):
        import re

        catalog = (REPO_ROOT / "docs" / "STATIC_ANALYSIS.md").read_text()
        documented = set(re.findall(r"\bS\d{3}\b", catalog))
        assert documented >= {f"S{i:03d}" for i in range(1, 11)}
