"""Failure-injection tests: faulty components must not poison the
data plane or the analysis loop."""


from repro.common.timeutil import NS_PER_SEC
from repro.dcdb import Broker, CollectAgent, Pusher
from repro.dcdb.plugins import TesterMonitoringPlugin
from repro.dcdb.plugins.base import MonitoringPlugin, PluginSample
from repro.dcdb.sensor import Sensor
from repro.simulator.clock import TaskScheduler


class FlakyPlugin(MonitoringPlugin):
    """Monitoring plugin that raises on every other sample."""

    def __init__(self, component: str):
        super().__init__("flaky", NS_PER_SEC)
        self._sensor = self._register(Sensor(f"{component}/flaky-sensor"))
        self.calls = 0

    def sample(self, ts):
        self.calls += 1
        if self.calls % 2 == 0:
            raise RuntimeError("sensor bus timeout")
        yield PluginSample(self._sensor, float(self.calls))


class MidwayFailer(MonitoringPlugin):
    """Fails after producing part of its samples."""

    def __init__(self, component: str):
        super().__init__("midway", NS_PER_SEC)
        self._a = self._register(Sensor(f"{component}/ok-sensor"))
        self._b = self._register(Sensor(f"{component}/never-sensor"))

    def sample(self, ts):
        yield PluginSample(self._a, 1.0)
        raise RuntimeError("died mid-iteration")


class TestPusherFaultIsolation:
    def test_flaky_plugin_counted_and_survives(self):
        scheduler = TaskScheduler()
        pusher = Pusher("/n0", Broker(), scheduler)
        pusher.add_plugin(FlakyPlugin("/n0"))
        pusher.add_plugin(TesterMonitoringPlugin("/n0", n_sensors=1))
        scheduler.run_until(9 * NS_PER_SEC)
        # Scheduler is still alive and the healthy plugin kept sampling.
        assert len(pusher.cache_for("/n0/tester0000")) == 10
        # Half of the flaky samples made it, the rest were counted.
        assert pusher.sampling_errors == 5
        assert len(pusher.cache_for("/n0/flaky-sensor")) == 5
        assert "sensor bus timeout" in pusher.last_sampling_errors[-1]

    def test_partial_samples_before_failure_are_kept(self):
        scheduler = TaskScheduler()
        pusher = Pusher("/n0", Broker(), scheduler)
        pusher.add_plugin(MidwayFailer("/n0"))
        scheduler.run_until(3 * NS_PER_SEC)
        assert len(pusher.cache_for("/n0/ok-sensor")) == 4
        assert len(pusher.cache_for("/n0/never-sensor") or []) == 0
        assert pusher.sampling_errors == 4


class TestBrokerFaultIsolation:
    def test_throwing_subscriber_does_not_break_publish(self):
        broker = Broker()
        received = []

        def bad(topic, value, ts):
            raise ValueError("subscriber bug")

        broker.subscribe("/a", bad)
        broker.subscribe("/a", lambda t, v, ts: received.append(v))
        n = broker.publish("/a", 1.0, 1)
        assert n == 2
        assert received == [1.0]
        assert broker.handler_errors == 1

    def test_throwing_subscriber_on_retained_replay(self):
        broker = Broker()
        broker.publish("/a", 1.0, 1, retain=True)

        def bad(topic, value, ts):
            raise ValueError("boom")

        broker.subscribe("/a", bad, replay_retained=True)
        assert broker.handler_errors == 1

    def test_agent_survives_peer_subscriber_crash(self):
        scheduler = TaskScheduler()
        broker = Broker()
        pusher = Pusher("/n0", broker, scheduler)
        pusher.add_plugin(TesterMonitoringPlugin("/n0", n_sensors=1))

        def bad(topic, value, ts):
            raise RuntimeError("third-party consumer bug")

        broker.subscribe("/#", bad)
        agent = CollectAgent("agent", broker, scheduler)
        scheduler.run_until(5 * NS_PER_SEC)
        agent.flush()
        assert agent.storage.count("/n0/tester0000") >= 5
        assert broker.handler_errors >= 5
