"""Tests for the perfmetrics plugin (derived CPU metrics)."""

import pytest

from repro.common.errors import ConfigError
from repro.common.timeutil import NS_PER_SEC
from repro.core.manager import OperatorManager
from repro.core.operator import OperatorConfig
from repro.core.queryengine import QueryEngine
from repro.core.units import Unit
from repro.dcdb.cache import SensorCache
from repro.dcdb.sensor import Sensor
from repro.plugins.perfmetrics import PerfMetricsOperator


class Host:
    def __init__(self):
        self.caches = {}
        self.stored = []

    def add_counter(self, topic, rate_per_s, n=10):
        cache = SensorCache(64, interval_ns=NS_PER_SEC)
        for i in range(n):
            cache.store(i * NS_PER_SEC, float(i * rate_per_s))
        self.caches[topic] = cache

    def cache_for(self, topic):
        return self.caches.get(topic)

    @property
    def storage(self):
        return None

    def sensor_topics(self):
        return sorted(self.caches)

    def store_reading(self, sensor, ts, value):
        self.stored.append((sensor.topic, ts, value))


def make_unit(outputs):
    return Unit(
        name="/n/cpu0",
        level=0,
        inputs=[
            "/n/cpu0/cpu-cycles",
            "/n/cpu0/instructions",
            "/n/cpu0/cache-misses",
            "/n/cpu0/cache-references",
            "/n/cpu0/flops",
            "/n/cpu0/vector-ops",
        ],
        outputs=[
            Sensor(f"/n/cpu0/{o}", is_operator_output=True) for o in outputs
        ],
    )


@pytest.fixture
def host():
    h = Host()
    h.add_counter("/n/cpu0/cpu-cycles", 2.0e9)
    h.add_counter("/n/cpu0/instructions", 1.0e9)
    h.add_counter("/n/cpu0/cache-misses", 1.0e7)
    h.add_counter("/n/cpu0/cache-references", 2.0e8)
    h.add_counter("/n/cpu0/flops", 5.0e8)
    h.add_counter("/n/cpu0/vector-ops", 2.5e8)
    return h


def make_op(host, window_s=5):
    cfg = OperatorConfig(name="pm", window_ns=window_s * NS_PER_SEC)
    op = PerfMetricsOperator(cfg)
    op.bind(host, QueryEngine(host))
    op.start()
    return op


class TestDerivedMetrics:
    def test_cpi(self, host):
        op = make_op(host)
        out = op.compute_unit(make_unit(["cpi"]), 9 * NS_PER_SEC)
        assert out["cpi"] == pytest.approx(2.0)

    def test_ipc_is_inverse(self, host):
        op = make_op(host)
        out = op.compute_unit(make_unit(["ipc"]), 9 * NS_PER_SEC)
        assert out["ipc"] == pytest.approx(0.5)

    def test_rates_are_per_second(self, host):
        op = make_op(host)
        out = op.compute_unit(
            make_unit(["instr-rate", "flops-rate"]), 9 * NS_PER_SEC
        )
        assert out["instr-rate"] == pytest.approx(1.0e9)
        assert out["flops-rate"] == pytest.approx(5.0e8)

    def test_ratios(self, host):
        op = make_op(host)
        out = op.compute_unit(
            make_unit(["vector-ratio", "miss-ratio"]), 9 * NS_PER_SEC
        )
        assert out["vector-ratio"] == pytest.approx(0.25)
        assert out["miss-ratio"] == pytest.approx(0.05)

    def test_unknown_metric_raises(self, host):
        op = make_op(host)
        with pytest.raises(ConfigError):
            op.compute_unit(make_unit(["bogus"]), 9 * NS_PER_SEC)

    def test_single_reading_yields_nothing(self):
        host = Host()
        host.add_counter("/n/cpu0/cpu-cycles", 1e9, n=1)
        host.add_counter("/n/cpu0/instructions", 1e9, n=1)
        op = make_op(host)
        assert op.compute_unit(make_unit(["cpi"]), 0) == {}

    def test_zero_denominator_yields_nothing(self):
        host = Host()
        host.add_counter("/n/cpu0/cpu-cycles", 1e9)
        host.add_counter("/n/cpu0/instructions", 0.0)
        op = make_op(host)
        assert op.compute_unit(make_unit(["cpi"]), 9 * NS_PER_SEC) == {}

    def test_requires_window(self):
        with pytest.raises(ConfigError):
            PerfMetricsOperator(OperatorConfig(name="pm", window_ns=0))


class TestEndToEnd:
    def test_cpi_tracks_simulated_workload(self, wired_host):
        """perfmetrics on the live simulator produces plausible idle CPI."""
        manager = OperatorManager()
        wired_host.pusher.attach_analytics(manager)
        manager.load_plugin(
            {
                "plugin": "perfmetrics",
                "operators": {
                    "cpi": {
                        "interval_s": 1,
                        "window_s": 3,
                        "delay_s": 2,
                        "inputs": [
                            "<bottomup>cpu-cycles",
                            "<bottomup>instructions",
                        ],
                        "outputs": ["<bottomup>cpi"],
                    }
                },
            }
        )
        wired_host.run(10)
        cache = wired_host.pusher.cache_for(
            wired_host.node + "/cpu00/cpi"
        )
        assert cache is not None and len(cache) > 0
        cpi = cache.latest().value
        assert 1.0 < cpi < 2.5  # idle profile CPI ~1.5
