"""Tests for the Operator Manager (lifecycle, scheduling, REST)."""

import pytest

from repro.common.errors import ConfigError, PluginError
from repro.common.timeutil import NS_PER_SEC
from repro.core.manager import OperatorManager
from repro.dcdb import Broker, Pusher
from repro.dcdb.plugins import TesterMonitoringPlugin
from repro.simulator.clock import TaskScheduler


AGG_CONFIG = {
    "plugin": "aggregator",
    "operators": {
        "avg": {
            "interval_s": 1,
            "window_s": 5,
            "inputs": ["<bottomup>tester0000"],
            "outputs": ["<bottomup>avg0"],
            "params": {"op": "mean"},
        }
    },
}


@pytest.fixture
def rig():
    class NS:
        pass

    ns = NS()
    ns.scheduler = TaskScheduler()
    ns.broker = Broker()
    ns.pusher = Pusher("/r0/c0/n0", ns.broker, ns.scheduler)
    ns.pusher.add_plugin(TesterMonitoringPlugin("/r0/c0/n0", n_sensors=3))
    ns.manager = OperatorManager()
    ns.pusher.attach_analytics(ns.manager)
    return ns


class TestLifecycle:
    def test_requires_host(self):
        with pytest.raises(PluginError):
            OperatorManager().load_plugin(AGG_CONFIG)

    def test_load_and_run(self, rig):
        rig.manager.load_plugin(AGG_CONFIG)
        rig.scheduler.run_until(5 * NS_PER_SEC)
        out = rig.pusher.cache_for("/r0/c0/n0/avg0")
        assert out is not None and len(out) > 0

    def test_duplicate_operator_name_rejected(self, rig):
        rig.manager.load_plugin(AGG_CONFIG)
        with pytest.raises(ConfigError):
            rig.manager.load_plugin(AGG_CONFIG)

    def test_stop_start(self, rig):
        rig.manager.load_plugin(AGG_CONFIG)
        rig.scheduler.run_until(2 * NS_PER_SEC)
        rig.manager.stop_operator("avg")
        n_before = len(rig.pusher.cache_for("/r0/c0/n0/avg0"))
        rig.scheduler.run_until(5 * NS_PER_SEC)
        assert len(rig.pusher.cache_for("/r0/c0/n0/avg0")) == n_before
        rig.manager.start_operator("avg")
        rig.scheduler.run_until(8 * NS_PER_SEC)
        assert len(rig.pusher.cache_for("/r0/c0/n0/avg0")) > n_before

    def test_load_without_start(self, rig):
        rig.manager.load_plugin(AGG_CONFIG, start=False)
        rig.scheduler.run_until(3 * NS_PER_SEC)
        assert len(rig.pusher.cache_for("/r0/c0/n0/avg0") or []) == 0

    def test_unload(self, rig):
        rig.manager.load_plugin(AGG_CONFIG)
        rig.manager.unload_operator("avg")
        with pytest.raises(PluginError):
            rig.manager.operator("avg")
        rig.scheduler.run_until(3 * NS_PER_SEC)
        assert len(rig.pusher.cache_for("/r0/c0/n0/avg0") or []) == 0

    def test_unload_unknown(self, rig):
        with pytest.raises(PluginError):
            rig.manager.unload_operator("nope")

    def test_delay_defers_first_compute(self, rig):
        config = {
            "plugin": "aggregator",
            "operators": {
                "late": {
                    "interval_s": 1,
                    "window_s": 5,
                    "delay_s": 3,
                    "inputs": ["<bottomup>tester0000"],
                    "outputs": ["<bottomup>late0"],
                    "params": {"op": "mean"},
                }
            },
        }
        rig.manager.load_plugin(config)
        rig.scheduler.run_until(2 * NS_PER_SEC)
        assert len(rig.pusher.cache_for("/r0/c0/n0/late0") or []) == 0
        rig.scheduler.run_until(5 * NS_PER_SEC)
        assert len(rig.pusher.cache_for("/r0/c0/n0/late0")) > 0

    def test_busy_time_accounted(self, rig):
        rig.manager.load_plugin(AGG_CONFIG)
        rig.scheduler.run_until(3 * NS_PER_SEC)
        assert rig.manager.analytics_busy_ns > 0


class TestOnDemand:
    CONFIG = {
        "plugin": "aggregator",
        "operators": {
            "odm": {
                "mode": "ondemand",
                "window_s": 5,
                "inputs": ["<bottomup>tester0000"],
                "outputs": ["<bottomup>odm0"],
                "params": {"op": "max"},
            }
        },
    }

    def test_trigger_via_manager(self, rig):
        rig.manager.load_plugin(self.CONFIG)
        rig.scheduler.run_until(3 * NS_PER_SEC)
        values = rig.manager.trigger("odm", "/r0/c0/n0")
        assert values == {"odm0": 4.0}  # counter reached 4 by t=3s

    def test_ondemand_never_scheduled(self, rig):
        rig.manager.load_plugin(self.CONFIG)
        rig.scheduler.run_until(3 * NS_PER_SEC)
        assert len(rig.pusher.cache_for("/r0/c0/n0/odm0") or []) == 0


class TestRest:
    def test_operator_listing(self, rig):
        rig.manager.load_plugin(AGG_CONFIG)
        body = rig.pusher.rest.get("/analytics/operators").body
        assert body["operators"][0]["name"] == "avg"

    def test_plugin_listing(self, rig):
        rig.manager.load_plugin(AGG_CONFIG)
        body = rig.pusher.rest.get("/analytics/plugins").body
        assert body == {"plugins": ["aggregator"]}

    def test_stop_via_rest(self, rig):
        rig.manager.load_plugin(AGG_CONFIG)
        assert rig.pusher.rest.put("/analytics/operators/avg/stop").ok
        assert not rig.manager.operator("avg").enabled

    def test_compute_via_rest(self, rig):
        rig.manager.load_plugin(self_config := dict(TestOnDemand.CONFIG))
        rig.scheduler.run_until(2 * NS_PER_SEC)
        resp = rig.pusher.rest.put(
            "/analytics/operators/odm/compute", unit="/r0/c0/n0"
        )
        assert resp.ok
        assert resp.body["values"] == {"odm0": 3.0}

    def test_compute_missing_unit_param(self, rig):
        rig.manager.load_plugin(TestOnDemand.CONFIG)
        resp = rig.pusher.rest.put("/analytics/operators/odm/compute")
        assert resp.status == 400

    def test_unknown_operator_404(self, rig):
        assert rig.pusher.rest.put("/analytics/operators/zzz/stop").status == 404

    def test_bad_action_400(self, rig):
        rig.manager.load_plugin(AGG_CONFIG)
        assert rig.pusher.rest.put("/analytics/operators/avg/zap").status == 400

    def test_malformed_path_400(self, rig):
        assert rig.pusher.rest.put("/analytics/operators/avg").status == 400

    def test_unload_via_rest(self, rig):
        rig.manager.load_plugin(AGG_CONFIG)
        assert rig.pusher.rest.put("/analytics/operators/avg/unload").ok
        assert rig.manager.operators() == []


class TestSensorSpaceRefresh:
    def test_second_plugin_sees_first_plugins_outputs(self, rig):
        rig.manager.load_plugin(AGG_CONFIG)
        rig.scheduler.run_until(2 * NS_PER_SEC)
        downstream = {
            "plugin": "smoother",
            "operators": {
                "smooth": {
                    "interval_s": 1,
                    "window_s": 3,
                    "inputs": ["<bottomup>avg0"],
                    "outputs": ["<bottomup>avg0-smooth"],
                }
            },
        }
        rig.manager.load_plugin(downstream)
        rig.scheduler.run_until(6 * NS_PER_SEC)
        out = rig.pusher.cache_for("/r0/c0/n0/avg0-smooth")
        assert out is not None and len(out) > 0


class TestJobOperatorOnDemand:
    """On-demand triggering of a job operator (scheduling-style use)."""

    def test_trigger_job_unit_via_rest(self):
        from repro.dcdb import CollectAgent
        from repro.simulator import ClusterSimulator, ClusterSpec
        from repro.simulator.scheduler import Job

        sim = ClusterSimulator(ClusterSpec.small(nodes=2, cpus=2), seed=6)
        scheduler = TaskScheduler()
        broker = Broker()
        pushers = []
        for node in sim.node_paths:
            from repro.dcdb.plugins import SysfsPlugin

            pusher = Pusher(node, broker, scheduler)
            pusher.add_plugin(SysfsPlugin(sim, node))
            pushers.append(pusher)
        agent = CollectAgent("agent", broker, scheduler)
        manager = OperatorManager(context={"job_source": sim.scheduler})
        agent.attach_analytics(manager)
        sim.scheduler.add_job(
            Job("j1", "hpl", tuple(sim.node_paths), NS_PER_SEC,
                100 * NS_PER_SEC)
        )
        scheduler.run_until(10 * NS_PER_SEC)
        manager.load_plugin(
            {
                "plugin": "persyst",
                "operators": {
                    "odj": {
                        "mode": "ondemand",
                        "window_s": 5,
                        "inputs": ["power"],
                        "params": {"quantiles": [0.5]},
                    }
                },
            }
        )
        resp = agent.rest.put(
            "/analytics/operators/odj/compute", unit="/jobs/j1"
        )
        assert resp.ok, resp.body
        assert resp.body["values"]["decile5"] > 0
        # No stream output was stored.
        agent.flush()
        assert agent.storage.count("/jobs/j1/decile5") == 0
