"""Shared fixtures: a Figure-2-style sensor tree, a small simulated
cluster, and a fully wired Pusher/CollectAgent pair."""

from __future__ import annotations

import pytest

from repro.common.timeutil import NS_PER_SEC
from repro.core.tree import SensorTree
from repro.dcdb import Broker, CollectAgent, Pusher
from repro.dcdb.plugins import PerfeventPlugin, ProcfsPlugin, SysfsPlugin
from repro.simulator import ClusterSimulator, ClusterSpec
from repro.simulator.clock import TaskScheduler


def make_fig2_topics():
    """Sensor topics reproducing the tree of the paper's Figure 2."""
    topics = ["/db-uptime", "/time-to-live"]
    for r in ["r01", "r02", "r03", "r04"]:
        for c in ["c01", "c02", "c03"]:
            topics.append(f"/{r}/{c}/power")
            topics.append(f"/{r}/{c}/inlet-temp")
            for s in ["s01", "s02", "s03", "s04"]:
                topics.append(f"/{r}/{c}/{s}/memfree")
                for cpu in ["cpu0", "cpu1"]:
                    topics.append(f"/{r}/{c}/{s}/{cpu}/cache-misses")
                    topics.append(f"/{r}/{c}/{s}/{cpu}/cpu-cycles")
    return topics


@pytest.fixture
def fig2_tree() -> SensorTree:
    return SensorTree.from_topics(make_fig2_topics())


@pytest.fixture
def small_sim() -> ClusterSimulator:
    return ClusterSimulator(ClusterSpec.small(nodes=4, cpus=4), seed=42)


@pytest.fixture
def wired_host(small_sim):
    """A pusher on node 0 with all monitoring plugins, plus a collect
    agent, sharing one scheduler and broker.  Yields a namespace."""

    class NS:
        pass

    ns = NS()
    ns.sim = small_sim
    ns.scheduler = TaskScheduler()
    ns.broker = Broker()
    ns.node = small_sim.node_paths[0]
    ns.pusher = Pusher(ns.node, ns.broker, ns.scheduler)
    ns.pusher.add_plugin(SysfsPlugin(small_sim, ns.node))
    ns.pusher.add_plugin(ProcfsPlugin(small_sim, ns.node))
    ns.pusher.add_plugin(PerfeventPlugin(small_sim, ns.node))
    ns.agent = CollectAgent("agent", ns.broker, ns.scheduler)
    ns.run = lambda seconds: ns.scheduler.run_until(
        ns.scheduler.clock.now + int(seconds * NS_PER_SEC)
    )
    return ns
