"""Tests for the simulation clock and task scheduler."""

import pytest

from repro.common.timeutil import NS_PER_SEC
from repro.simulator.clock import PeriodicTask, SimClock, TaskScheduler


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0

    def test_advance(self):
        c = SimClock()
        assert c.advance(10) == 10
        assert c.now == 10

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_advance_to(self):
        c = SimClock(5)
        c.advance_to(100)
        assert c.now == 100
        with pytest.raises(ValueError):
            c.advance_to(50)

    def test_seconds(self):
        c = SimClock(int(2.5 * NS_PER_SEC))
        assert c.seconds() == pytest.approx(2.5)


class TestPeriodicTask:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            PeriodicTask("t", lambda ts: None, 0)

    def test_fire_advances_due_even_when_disabled(self):
        fired = []
        t = PeriodicTask("t", fired.append, 10, first_due=0)
        t.enabled = False
        t.fire(0)
        assert fired == []
        assert t.next_due == 10


class TestTaskScheduler:
    def test_fires_in_time_order(self):
        s = TaskScheduler()
        order = []
        s.add_callback("a", lambda ts: order.append(("a", ts)), 3 * NS_PER_SEC)
        s.add_callback("b", lambda ts: order.append(("b", ts)), 2 * NS_PER_SEC)
        s.run_until(6 * NS_PER_SEC)
        times = [ts for _, ts in order]
        assert times == sorted(times)

    def test_tie_break_is_registration_order(self):
        s = TaskScheduler()
        order = []
        s.add_callback("first", lambda ts: order.append("first"), NS_PER_SEC)
        s.add_callback("second", lambda ts: order.append("second"), NS_PER_SEC)
        s.run_until(NS_PER_SEC)
        # Both fire at t=0 and t=1s; registration order preserved each time.
        assert order == ["first", "second", "first", "second"]

    def test_clock_shows_nominal_fire_time(self):
        s = TaskScheduler()
        seen = []
        s.add_callback("t", lambda ts: seen.append(s.clock.now == ts), NS_PER_SEC)
        s.run_until(3 * NS_PER_SEC)
        assert all(seen)

    def test_run_until_advances_clock_to_end(self):
        s = TaskScheduler()
        s.run_until(10 * NS_PER_SEC)
        assert s.clock.now == 10 * NS_PER_SEC

    def test_fire_counts(self):
        s = TaskScheduler()
        task = s.add_callback("t", lambda ts: None, NS_PER_SEC)
        fired = s.run_until(5 * NS_PER_SEC)
        assert task.fire_count == 6  # t = 0..5 inclusive
        assert fired == 6

    def test_disabled_task_skipped_but_rescheduled(self):
        s = TaskScheduler()
        calls = []
        task = s.add_callback("t", calls.append, NS_PER_SEC)
        task.enabled = False
        s.run_until(3 * NS_PER_SEC)
        assert calls == []
        task.enabled = True
        s.run_until(5 * NS_PER_SEC)
        assert len(calls) == 2  # t=4s, t=5s

    def test_first_due_in_the_past_clamped(self):
        s = TaskScheduler()
        s.run_until(5 * NS_PER_SEC)
        calls = []
        s.add(PeriodicTask("t", calls.append, NS_PER_SEC, first_due=0))
        s.run_until(6 * NS_PER_SEC)
        assert calls  # ran despite past-dated first_due

    def test_run_for(self):
        s = TaskScheduler()
        s.add_callback("t", lambda ts: None, NS_PER_SEC)
        s.run_for(2 * NS_PER_SEC)
        assert s.clock.now == 2 * NS_PER_SEC

    def test_delayed_first_due(self):
        s = TaskScheduler()
        calls = []
        s.add_callback("t", calls.append, NS_PER_SEC, first_due=3 * NS_PER_SEC)
        s.run_until(5 * NS_PER_SEC)
        assert calls == [3 * NS_PER_SEC, 4 * NS_PER_SEC, 5 * NS_PER_SEC]
