"""Tests for virtual sensors (expression-defined, query-time evaluated)."""

import numpy as np
import pytest

from repro.common.errors import ConfigError, QueryError
from repro.common.timeutil import NS_PER_SEC
from repro.core.queryengine import QueryEngine
from repro.dcdb.cache import SensorCache
from repro.dcdb.virtual import (
    VirtualSensor,
    VirtualSensorRegistry,
    parse_expression,
)


class TestExpressionParser:
    def test_constant(self):
        assert parse_expression("4.5").eval({}) == 4.5

    def test_reference(self):
        node = parse_expression("</a/b/power>")
        assert node.topics() == ["/a/b/power"]
        assert node.eval({"/a/b/power": np.float64(7.0)}) == 7.0

    def test_precedence(self):
        node = parse_expression("2 + 3 * 4")
        assert node.eval({}) == 14.0

    def test_parentheses(self):
        assert parse_expression("(2 + 3) * 4").eval({}) == 20.0

    def test_unary_minus(self):
        assert parse_expression("-3 + 5").eval({}) == 2.0
        assert parse_expression("2 * -3").eval({}) == -6.0

    def test_division_by_zero_is_nan_or_inf(self):
        out = parse_expression("</a> / </b>").eval(
            {"/a": np.array([1.0]), "/b": np.array([0.0])}
        )
        assert not np.isfinite(out[0])

    def test_vectorised_eval(self):
        node = parse_expression("(</a> + </b>) / 2")
        out = node.eval(
            {"/a": np.array([1.0, 3.0]), "/b": np.array([3.0, 5.0])}
        )
        assert list(out) == [2.0, 4.0]

    def test_scientific_notation(self):
        assert parse_expression("1e3 * 2").eval({}) == 2000.0

    @pytest.mark.parametrize(
        "bad",
        ["", "2 +", "(2", "2 ) ", "</a> </b>", "2 ** 3", "<>", "foo"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigError):
            parse_expression(bad)


def fake_fetch(series):
    """fetch(topic, start, end) over dict topic -> (ts, values)."""

    def fetch(topic, start, end):
        ts, values = series[topic]
        ts = np.asarray(ts, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        mask = (ts >= start) & (ts <= end)
        return ts[mask], values[mask]

    return fetch


class TestVirtualSensor:
    def test_sum_of_two_sensors(self):
        vs = VirtualSensor(
            "/rack/total-power", "</n0/power> + </n1/power>", NS_PER_SEC
        )
        series = {
            "/n0/power": ([0, NS_PER_SEC, 2 * NS_PER_SEC], [10.0, 20.0, 30.0]),
            "/n1/power": ([0, NS_PER_SEC, 2 * NS_PER_SEC], [1.0, 2.0, 3.0]),
        }
        ts, values = vs.evaluate(fake_fetch(series), 0, 2 * NS_PER_SEC)
        assert list(values) == [11.0, 22.0, 33.0]
        assert list(ts) == [0, NS_PER_SEC, 2 * NS_PER_SEC]

    def test_sample_and_hold_alignment(self):
        # /b updates at half the rate of /a: its value holds between
        # grid points.
        vs = VirtualSensor("/v", "</a> + </b>", NS_PER_SEC)
        series = {
            "/a": ([0, NS_PER_SEC, 2 * NS_PER_SEC], [1.0, 2.0, 3.0]),
            "/b": ([0, 2 * NS_PER_SEC], [10.0, 30.0]),
        }
        _, values = vs.evaluate(fake_fetch(series), 0, 2 * NS_PER_SEC)
        assert list(values) == [11.0, 12.0, 33.0]

    def test_missing_early_data_is_nan(self):
        vs = VirtualSensor("/v", "</a> * 2", NS_PER_SEC)
        series = {"/a": ([2 * NS_PER_SEC], [5.0])}
        _, values = vs.evaluate(fake_fetch(series), 0, 2 * NS_PER_SEC)
        assert np.isnan(values[0]) and np.isnan(values[1])
        assert values[2] == 10.0

    def test_inverted_range_rejected(self):
        vs = VirtualSensor("/v", "</a>", NS_PER_SEC)
        with pytest.raises(QueryError):
            vs.evaluate(fake_fetch({"/a": ([], [])}), 10, 5)

    def test_requires_sensor_reference(self):
        with pytest.raises(ConfigError):
            VirtualSensor("/v", "1 + 2", NS_PER_SEC)

    def test_requires_positive_interval(self):
        with pytest.raises(ConfigError):
            VirtualSensor("/v", "</a>", 0)


class TestRegistry:
    def test_define_and_lookup(self):
        reg = VirtualSensorRegistry()
        vs = reg.define("/v", "</a> + 1", NS_PER_SEC)
        assert reg.get("/v") is vs
        assert "/v" in reg
        assert reg.topics() == ["/v"]
        assert len(reg) == 1

    def test_duplicate_rejected(self):
        reg = VirtualSensorRegistry()
        reg.define("/v", "</a>", NS_PER_SEC)
        with pytest.raises(ConfigError):
            reg.define("/v", "</b>", NS_PER_SEC)


class _Host:
    def __init__(self):
        self.caches = {}

    def add_series(self, topic, values):
        cache = SensorCache(64, interval_ns=NS_PER_SEC)
        for i, v in enumerate(values):
            cache.store(i * NS_PER_SEC, float(v))
        self.caches[topic] = cache

    def cache_for(self, topic):
        return self.caches.get(topic)

    @property
    def storage(self):
        return None

    def sensor_topics(self):
        return sorted(self.caches)


class TestQueryEngineIntegration:
    def make_engine(self):
        host = _Host()
        host.add_series("/n0/power", [100, 110, 120, 130])
        host.add_series("/n1/power", [50, 51, 52, 53])
        engine = QueryEngine(host)
        engine.define_virtual(
            "/total-power", "</n0/power> + </n1/power>", NS_PER_SEC
        )
        return engine

    def test_absolute_query_evaluates(self):
        engine = self.make_engine()
        view = engine.query_absolute("/total-power", 0, 3 * NS_PER_SEC)
        assert list(view.values()) == [150.0, 161.0, 172.0, 183.0]

    def test_relative_query_anchors_at_newest(self):
        engine = self.make_engine()
        view = engine.query_relative("/total-power", NS_PER_SEC)
        assert list(view.values()) == [172.0, 183.0]

    def test_virtual_listed_in_topics(self):
        engine = self.make_engine()
        assert "/total-power" in engine.topics()

    def test_virtual_over_virtual(self):
        engine = self.make_engine()
        engine.define_virtual(
            "/total-kw", "</total-power> / 1000", NS_PER_SEC
        )
        view = engine.query_absolute("/total-kw", 0, NS_PER_SEC)
        assert view.values()[0] == pytest.approx(0.150)

    def test_cycle_detected(self):
        engine = self.make_engine()
        engine.define_virtual("/v1", "</v2> + 1", NS_PER_SEC)
        engine.define_virtual("/v2", "</v1> + 1", NS_PER_SEC)
        with pytest.raises(ConfigError):
            engine.query_absolute("/v1", 0, NS_PER_SEC)

    def test_operator_can_consume_virtual_sensor(self):
        """Virtual sensors feed operators like physical ones."""
        from repro.core.operator import OperatorConfig
        from repro.core.units import Unit
        from repro.dcdb.sensor import Sensor
        from repro.plugins.aggregator import AggregatorOperator

        engine = self.make_engine()
        host = engine._host
        host.stored = []
        host.store_reading = lambda s, ts, v: host.stored.append(
            (s.topic, ts, v)
        )
        cfg = OperatorConfig(
            name="agg",
            window_ns=3 * NS_PER_SEC,
            params={"ops": {"avg": "mean"}},
        )
        op = AggregatorOperator(cfg)
        op.bind(host, engine)
        op.start()
        unit = Unit(
            name="/",
            level=-1,
            inputs=["/total-power"],
            outputs=[Sensor("/avg", is_operator_output=True)],
        )
        out = op.compute_unit(unit, 3 * NS_PER_SEC)
        assert out["avg"] == pytest.approx((150 + 161 + 172 + 183) / 4)
