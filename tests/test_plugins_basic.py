"""Tests for the tester, aggregator, smoother and health plugins."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.common.timeutil import NS_PER_SEC
from repro.core.operator import OperatorConfig
from repro.core.queryengine import QueryEngine
from repro.core.units import Unit
from repro.dcdb.cache import SensorCache
from repro.dcdb.sensor import Sensor
from repro.plugins.aggregator import AggregatorOperator
from repro.plugins.health import HealthOperator
from repro.plugins.smoother import SmootherOperator
from repro.plugins.tester import TesterOperator


class Host:
    def __init__(self):
        self.caches = {}
        self.stored = []

    def add_series(self, topic, values, interval=NS_PER_SEC):
        cache = SensorCache(256, interval_ns=interval)
        for i, v in enumerate(values):
            cache.store(i * interval, float(v))
        self.caches[topic] = cache

    def cache_for(self, topic):
        return self.caches.get(topic)

    @property
    def storage(self):
        return None

    def sensor_topics(self):
        return sorted(self.caches)

    def store_reading(self, sensor, ts, value):
        self.stored.append((sensor.topic, ts, value))


def unit_for(name, inputs, out_names):
    return Unit(
        name=name,
        level=0,
        inputs=list(inputs),
        outputs=[Sensor(f"{name}/{o}", is_operator_output=True) for o in out_names],
    )


def bind(op, host):
    op.bind(host, QueryEngine(host))
    op.start()
    return op


class TestTesterOperator:
    def make(self, host, **params):
        cfg = OperatorConfig(name="t", params=params)
        return bind(TesterOperator(cfg), host)

    def test_counts_retrieved_readings(self):
        host = Host()
        host.add_series("/n/x", range(10))
        op = self.make(host, queries=4, query_mode="relative", range_ms=0)
        unit = unit_for("/n", ["/n/x"], ["result"])
        assert op.compute_unit(unit, 9 * NS_PER_SEC) == {"result": 4.0}

    def test_relative_and_absolute_agree(self):
        host = Host()
        host.add_series("/n/x", range(10))
        rel = self.make(host, queries=1, query_mode="relative", range_ms=3000)
        cfg = OperatorConfig(
            name="t2", params={"queries": 1, "query_mode": "absolute",
                               "range_ms": 3000},
        )
        ab = bind(TesterOperator(cfg), host)
        unit = unit_for("/n", ["/n/x"], ["result"])
        ts = 9 * NS_PER_SEC
        assert rel.compute_unit(unit, ts) == ab.compute_unit(unit, ts)

    def test_queries_cycle_over_inputs(self):
        host = Host()
        host.add_series("/n/x", range(5))
        host.add_series("/n/y", range(5))
        op = self.make(host, queries=3, range_ms=0)
        unit = unit_for("/n", ["/n/x", "/n/y"], ["result"])
        assert op.compute_unit(unit, 4 * NS_PER_SEC)["result"] == 3.0

    def test_no_inputs_returns_nothing(self):
        host = Host()
        op = self.make(host, queries=2)
        assert op.compute_unit(unit_for("/n", [], ["result"]), 0) == {}

    @pytest.mark.parametrize(
        "params",
        [
            {"queries": 0},
            {"query_mode": "sideways"},
            {"range_ms": -1},
        ],
    )
    def test_validation(self, params):
        with pytest.raises(ConfigError):
            TesterOperator(OperatorConfig(name="t", params=params))


class TestAggregatorOperator:
    def make(self, host, window_s=10, **params):
        cfg = OperatorConfig(
            name="agg", window_ns=window_s * NS_PER_SEC, params=params
        )
        return bind(AggregatorOperator(cfg), host)

    def test_mean_pools_all_inputs(self):
        host = Host()
        host.add_series("/n/a", [1, 2, 3])
        host.add_series("/n/b", [10, 20, 30])
        op = self.make(host, ops={"m": "mean"})
        unit = unit_for("/n", ["/n/a", "/n/b"], ["m"])
        assert op.compute_unit(unit, 0)["m"] == pytest.approx(11.0)

    @pytest.mark.parametrize(
        "agg,expected",
        [
            ("min", 1.0),
            ("max", 5.0),
            ("sum", 15.0),
            ("median", 3.0),
            ("count", 5.0),
            ("last", 5.0),
            ("q50", 3.0),
            ("q100", 5.0),
        ],
    )
    def test_simple_aggregates(self, agg, expected):
        host = Host()
        host.add_series("/n/a", [1, 2, 3, 4, 5])
        op = self.make(host, ops={"o": agg})
        unit = unit_for("/n", ["/n/a"], ["o"])
        assert op.compute_unit(unit, 0)["o"] == pytest.approx(expected)

    def test_delta_and_rate_use_first_input(self):
        host = Host()
        host.add_series("/n/ctr", [0, 5, 10, 15])
        op = self.make(host, ops={"d": "delta", "r": "rate"})
        unit = unit_for("/n", ["/n/ctr"], ["d", "r"])
        out = op.compute_unit(unit, 0)
        assert out["d"] == pytest.approx(15.0)
        assert out["r"] == pytest.approx(5.0)

    def test_shorthand_single_op(self):
        host = Host()
        host.add_series("/n/a", [2, 4])
        cfg = OperatorConfig(
            name="agg",
            window_ns=10 * NS_PER_SEC,
            outputs=["<bottomup>m"],
            params={"op": "mean"},
        )
        op = bind(AggregatorOperator(cfg), host)
        unit = unit_for("/n", ["/n/a"], ["m"])
        assert op.compute_unit(unit, 0)["m"] == pytest.approx(3.0)

    def test_missing_ops_config_rejected(self):
        with pytest.raises(ConfigError):
            AggregatorOperator(OperatorConfig(name="agg"))

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(ConfigError):
            AggregatorOperator(
                OperatorConfig(name="agg", params={"ops": {"o": "zzz"}})
            )

    def test_unconfigured_output_raises(self):
        host = Host()
        host.add_series("/n/a", [1])
        op = self.make(host, ops={"other": "mean"})
        unit = unit_for("/n", ["/n/a"], ["o"])
        with pytest.raises(ConfigError):
            op.compute_unit(unit, 0)

    def test_delta_with_single_reading_is_nan(self):
        host = Host()
        host.add_series("/n/a", [1])
        op = self.make(host, ops={"d": "delta"})
        out = op.compute_unit(unit_for("/n", ["/n/a"], ["d"]), 0)
        assert np.isnan(out["d"])


class TestSmootherOperator:
    def test_window_mean(self):
        host = Host()
        host.add_series("/n/x", [0, 10, 20])
        cfg = OperatorConfig(name="s", window_ns=10 * NS_PER_SEC)
        op = bind(SmootherOperator(cfg), host)
        out = op.compute_unit(unit_for("/n", ["/n/x"], ["sx"]), 0)
        assert out["sx"] == pytest.approx(10.0)

    def test_ewma_weights_recent_higher(self):
        host = Host()
        host.add_series("/n/x", [0, 0, 0, 100])
        cfg = OperatorConfig(
            name="s", window_ns=10 * NS_PER_SEC, params={"alpha": 0.5}
        )
        op = bind(SmootherOperator(cfg), host)
        out = op.compute_unit(unit_for("/n", ["/n/x"], ["sx"]), 0)
        assert out["sx"] > 25.0  # plain mean

    def test_bad_alpha(self):
        with pytest.raises(ConfigError):
            SmootherOperator(OperatorConfig(name="s", params={"alpha": 2.0}))

    def test_no_inputs_silent(self):
        host = Host()
        cfg = OperatorConfig(name="s", window_ns=NS_PER_SEC)
        op = bind(SmootherOperator(cfg), host)
        assert op.compute_unit(unit_for("/n", [], ["sx"]), 0) == {}


class TestHealthOperator:
    def make(self, host, bounds, trip_count=1):
        cfg = OperatorConfig(
            name="h",
            window_ns=10 * NS_PER_SEC,
            params={"bounds": bounds, "trip_count": trip_count},
        )
        return bind(HealthOperator(cfg), host)

    def test_in_bounds_healthy(self):
        host = Host()
        host.add_series("/n/temp", [50, 51, 52])
        op = self.make(host, {"temp": [40, 60]})
        out = op.compute_unit(unit_for("/n", ["/n/temp"], ["healthy"]), 0)
        assert out == {"healthy": 1.0}

    def test_violation_trips(self):
        host = Host()
        host.add_series("/n/temp", [90, 91])
        op = self.make(host, {"temp": [40, 60]})
        out = op.compute_unit(unit_for("/n", ["/n/temp"], ["healthy"]), 0)
        assert out == {"healthy": 0.0}

    def test_one_sided_bounds(self):
        host = Host()
        host.add_series("/n/x", [5])
        op = self.make(host, {"x": [None, 10]})
        unit = unit_for("/n", ["/n/x"], ["healthy"])
        assert op.compute_unit(unit, 0)["healthy"] == 1.0

    def test_hysteresis_requires_consecutive_trips(self):
        host = Host()
        host.add_series("/n/temp", [90])
        op = self.make(host, {"temp": [40, 60]}, trip_count=2)
        unit = unit_for("/n", ["/n/temp"], ["healthy"])
        assert op.compute_unit(unit, 0)["healthy"] == 1.0  # first strike
        assert op.compute_unit(unit, 1)["healthy"] == 0.0  # second strike

    def test_recovery_resets_counter(self):
        host = Host()
        host.add_series("/n/temp", [90])
        op = self.make(host, {"temp": [40, 60]}, trip_count=2)
        unit = unit_for("/n", ["/n/temp"], ["healthy"])
        op.compute_unit(unit, 0)
        host.caches.clear()
        host.add_series("/n/temp", [50])
        op.compute_unit(unit, 1)  # back in bounds
        host.caches.clear()
        host.add_series("/n/temp", [90])
        assert op.compute_unit(unit, 2)["healthy"] == 1.0  # counter reset

    def test_unbounded_inputs_ignored(self):
        host = Host()
        host.add_series("/n/temp", [50])
        host.add_series("/n/other", [9999])
        op = self.make(host, {"temp": [40, 60]})
        unit = unit_for("/n", ["/n/temp", "/n/other"], ["healthy"])
        assert op.compute_unit(unit, 0)["healthy"] == 1.0

    @pytest.mark.parametrize(
        "params",
        [
            {"bounds": {}},
            {"bounds": {"t": [1]}},
            {"bounds": {"t": [10, 5]}},
            {"bounds": {"t": [0, 1]}, "trip_count": 0},
        ],
    )
    def test_validation(self, params):
        with pytest.raises(ConfigError):
            HealthOperator(OperatorConfig(name="h", params=params))
