"""Wall-clock execution of a simulated deployment.

The default execution model of this reproduction is a deterministic
step loop (``TaskScheduler.run_until``).  Production DCDB instead runs
free-threaded sampling loops in real time; :class:`WallClockDriver`
bridges the two: it advances a deployment's task scheduler in a
background thread, pacing simulation time against the host's wall
clock (optionally faster or slower than real time).

This is what the interactive examples and any live dashboard-style use
would build on; tests and benchmarks stay on the deterministic path.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.common.timeutil import NS_PER_SEC
from repro.sanitizer import hooks
from repro.simulator.clock import TaskScheduler


class WallClockDriver:
    """Paces a :class:`TaskScheduler` against real time.

    Args:
        scheduler: the deployment's task scheduler.
        speedup: simulated seconds per wall-clock second (1.0 = real
            time; 60.0 runs a simulated minute every second).
        tick_s: wall-clock granularity of the driver loop.
    """

    def __init__(
        self,
        scheduler: TaskScheduler,
        speedup: float = 1.0,
        tick_s: float = 0.05,
    ) -> None:
        if speedup <= 0:
            raise ValueError(f"speedup must be positive: {speedup}")
        if tick_s <= 0:
            raise ValueError(f"tick_s must be positive: {tick_s}")
        self.scheduler = scheduler
        self.speedup = float(speedup)
        self.tick_s = float(tick_s)
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lock = hooks.make_lock("WallClockDriver")

    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the driver thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "WallClockDriver":
        """Start pacing in a background thread (idempotent)."""
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="wintermute-wallclock", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the driver and join its thread."""
        self._stop.set()
        if self._thread is not None:
            # Joining can wait up to a full driver tick; a caller doing
            # this while holding locks (e.g. inside pause()) stalls every
            # contender — surfaced by the sanitizer as rule R002.
            hooks.note_blocking("WallClockDriver.stop (thread join)")
            self._thread.join(timeout)
            self._thread = None

    def run_for(self, wall_seconds: float) -> None:
        """Convenience: start, sleep, stop."""
        self.start()
        time.sleep(wall_seconds)
        self.stop()

    def _loop(self) -> None:
        anchor_wall = time.monotonic()
        anchor_sim = self.scheduler.clock.now
        while not self._stop.is_set():
            time.sleep(self.tick_s)
            elapsed = time.monotonic() - anchor_wall
            target = anchor_sim + int(elapsed * self.speedup * NS_PER_SEC)
            self._advance(target)

    def _advance(self, target: int) -> None:
        """Advance the scheduler to ``target`` in bounded locked slices.

        The driver used to hold the lock for one monolithic
        ``run_until(target)``: after any stall (host hiccup, slow
        operator, large speedup) the accumulated backlog drained under
        the lock in a single unbounded hold, starving ``pause()``
        readers for its whole duration — exactly the long-hold
        violation rule R003 flags.  Slicing caps each hold at one
        tick's worth of simulated time and lets readers interleave
        between slices.
        """
        max_slice = max(1, int(self.speedup * self.tick_s * NS_PER_SEC))
        while not self._stop.is_set():
            with self._lock:
                now = self.scheduler.clock.now
                if target <= now:
                    return
                self.scheduler.run_until(min(target, now + max_slice))

    # ------------------------------------------------------------------

    def pause(self):
        """Context manager that holds the driver while the caller reads
        shared state (caches, storage) consistently::

            with driver.pause():
                latest = pusher.cache_for(topic).latest()
        """
        return self._lock
