"""Classifier operator plugin.

Random-forest classification of sensor windows — the building block for
application-fingerprinting and fault-detection use cases of the
taxonomy (Fig 1).  Like the regressor it extracts statistical features
from each input sensor's window; unlike it, the response is a discrete
label read from a designated label sensor at the *same* interval (a
window is classified, not forecast).

Params:
    ``label`` (str, required): input sensor carrying integer class
        labels (e.g. an app id published by the scheduler, or a fault
        injector's ground truth).
    ``n_classes`` (int, required): number of classes.
    ``training_samples`` (int): fit threshold (default 500).
    ``n_estimators`` / ``max_depth``: forest hyper-parameters.
    ``delta_inputs`` (list of str): counter inputs to difference.
    ``seed`` (int): forest randomness.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.common.errors import ConfigError
from repro.core.operator import OperatorBase, OperatorConfig
from repro.core.registry import operator_plugin
from repro.core.units import Unit
from repro.ml.forest import RandomForestClassifier
from repro.ml.stats import window_features


class OnlineClassificationModel:
    """Training buffer + forest for one classifier model."""

    def __init__(
        self,
        training_samples: int,
        n_classes: int,
        n_estimators: int,
        max_depth: int,
        seed: int,
    ) -> None:
        self.training_samples = training_samples
        self.forest = RandomForestClassifier(
            n_classes=n_classes,
            n_estimators=n_estimators,
            max_depth=max_depth,
            random_state=seed,
        )
        self._X: List[np.ndarray] = []
        self._y: List[int] = []

    @property
    def trained(self) -> bool:
        """Whether the forest has been fitted."""
        return self.forest.is_fitted

    def add_pair(self, features: np.ndarray, label: int) -> None:
        """Append one labelled window; fit at the threshold."""
        if self.trained:
            return
        self._X.append(features)
        self._y.append(label)
        if len(self._y) >= self.training_samples:
            self.forest.fit(np.vstack(self._X), np.asarray(self._y))
            self._X.clear()
            self._y.clear()

    def predict(self, features: np.ndarray) -> int:
        """Most probable class of one feature vector."""
        return int(self.forest.predict(features[None, :])[0])


@operator_plugin("classifier")
class ClassifierOperator(OperatorBase):
    """Window-features random-forest classification."""

    @classmethod
    def flow_transforms(cls, params: dict) -> Dict[str, object]:
        # Class labels and confidences are pure numbers.
        return {"*": "dimensionless"}

    def __init__(self, config: OperatorConfig) -> None:
        super().__init__(config)
        params = config.params
        label = params.get("label")
        if not label:
            raise ConfigError(f"{config.name}: params.label is required")
        self.label = str(label)
        n_classes = params.get("n_classes")
        if not n_classes or int(n_classes) < 2:
            raise ConfigError(f"{config.name}: params.n_classes must be >= 2")
        self.n_classes = int(n_classes)
        self.training_samples = int(params.get("training_samples", 500))
        self.n_estimators = int(params.get("n_estimators", 15))
        self.max_depth = int(params.get("max_depth", 10))
        self.delta_inputs = set(params.get("delta_inputs", []))
        self.seed = int(params.get("seed", 0))
        if config.window_ns <= 0:
            raise ConfigError(
                f"{config.name}: classifier needs a positive feature window"
            )

    def make_model(self) -> OnlineClassificationModel:
        return OnlineClassificationModel(
            self.training_samples,
            self.n_classes,
            self.n_estimators,
            self.max_depth,
            self.seed,
        )

    def _features(self, unit: Unit) -> Optional[np.ndarray]:
        assert self.engine is not None
        parts: List[np.ndarray] = []
        for topic in unit.inputs:
            name = topic.rsplit("/", 1)[-1]
            if name == self.label:
                continue  # the label is not a feature
            view = self.engine.query_relative(topic, self.config.window_ns)
            values = view.values()
            if name in self.delta_inputs:
                if len(values) < 2:
                    return None
                values = np.diff(values)
            if values.size == 0:
                return None
            parts.append(window_features(values))
        if not parts:
            return None
        features = np.concatenate(parts)
        if not np.all(np.isfinite(features)):
            return None
        return features

    def _label_value(self, unit: Unit) -> Optional[int]:
        assert self.engine is not None
        topics = unit.inputs_named(self.label)
        if not topics:
            raise ConfigError(
                f"{self.name}: unit {unit.name} has no input sensor named "
                f"{self.label!r}"
            )
        view = self.engine.latest(topics[0])
        if not len(view):
            return None
        label = int(round(view.values()[-1]))
        if not (0 <= label < self.n_classes):
            return None
        return label

    def compute_unit(self, unit: Unit, ts: int) -> Dict[str, float]:
        model: OnlineClassificationModel = self.model_for(unit)
        features = self._features(unit)
        if features is None:
            return {}
        if not model.trained:
            label = self._label_value(unit)
            if label is not None:
                model.add_pair(features, label)
            return {}
        predicted = model.predict(features)
        return {sensor.name: float(predicted) for sensor in unit.outputs}
