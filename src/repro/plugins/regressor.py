"""Regressor operator plugin (Fig 6).

An online implementation of the power model of Ozer et al., as described
in Section VI-B: "at each computation interval, for each input sensor of
a certain unit a series of statistical features (e.g., mean or standard
deviation) are computed from its recent readings.  These features are
then combined to form a feature vector, which is fed into the random
forest model to perform regression and output a sensor prediction of the
next [interval].  Training of the model ... is performed automatically:
feature vectors are accumulated in memory until a certain training set
size is reached, alongside the responses from the sensor to be
predicted."

The pairing is strictly causal: the feature vector built at interval
``t`` is stored as *pending* and paired with the target's reading one
interval later, so the model learns (and is evaluated on) genuine
next-interval prediction.

Params:
    ``target`` (str, required): name of the input sensor to predict.
    ``training_samples`` (int): training-set size that triggers the
        automatic fit (the paper uses 30 000; default 1 000).
    ``n_estimators`` / ``max_depth`` / ``min_samples_leaf``: forest
        hyper-parameters.
    ``delta_inputs`` (list of str): input sensor names that are
        monotonic counters; their windows are differenced before feature
        extraction.
    ``seed`` (int): randomness for bootstrap/feature sampling.

Output sensors whose name contains ``error`` receive the relative error
of the *previous* prediction once its true value arrives; all other
output sensors receive the next-interval prediction.  Declaring the
operator-level output ``avg-error`` stores the fleet-wide mean error.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.common.errors import ConfigError
from repro.core.operator import OperatorBase, OperatorConfig
from repro.core.registry import operator_plugin
from repro.core.units import Unit
from repro.ml.forest import RandomForestRegressor
from repro.ml.stats import window_features


class OnlineRegressionModel:
    """Shared state of one regression model: training buffer + forest.

    One instance is shared by all units in sequential mode, or created
    per unit in parallel mode — exactly the model-placement semantics of
    Section IV-c.
    """

    def __init__(
        self,
        training_samples: int,
        n_estimators: int,
        max_depth: int,
        min_samples_leaf: int,
        seed: int,
    ) -> None:
        self.training_samples = training_samples
        self.forest = RandomForestRegressor(
            n_estimators=n_estimators,
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            max_features="third",
            random_state=seed,
        )
        self._X: List[np.ndarray] = []
        self._y: List[float] = []
        # Per-unit causal state: features awaiting their response, and
        # the last emitted prediction awaiting its true value.
        self.pending_features: Dict[str, np.ndarray] = {}
        self.pending_prediction: Dict[str, float] = {}

    @property
    def trained(self) -> bool:
        """Whether the forest has been fitted."""
        return self.forest.is_fitted

    @property
    def buffered(self) -> int:
        """Accumulated training pairs so far."""
        return len(self._y)

    def add_pair(self, features: np.ndarray, response: float) -> None:
        """Append one (features, response) pair; fit at the threshold."""
        if self.trained:
            return
        self._X.append(features)
        self._y.append(response)
        if len(self._y) >= self.training_samples:
            self.forest.fit(np.vstack(self._X), np.asarray(self._y))
            self._X.clear()
            self._y.clear()

    def predict(self, features: np.ndarray) -> float:
        """Next-interval prediction for one feature vector."""
        return float(self.forest.predict(features[None, :])[0])


@operator_plugin("regressor")
class RegressorOperator(OperatorBase):
    """Window-features random-forest regression with online training."""

    @classmethod
    def flow_transforms(cls, params: dict) -> Dict[str, object]:
        # Error outputs are relative (dimensionless); predictions carry
        # the unit of the regression target sensor.
        target = params.get("target") if isinstance(params, dict) else None
        transforms: Dict[str, object] = {"*error*": "dimensionless"}
        if isinstance(target, str) and target:
            transforms["*"] = ("input", target)
        return transforms

    def __init__(self, config: OperatorConfig) -> None:
        super().__init__(config)
        params = config.params
        target = params.get("target")
        if not target:
            raise ConfigError(f"{config.name}: params.target is required")
        self.target = str(target)
        self.training_samples = int(params.get("training_samples", 1000))
        if self.training_samples < 1:
            raise ConfigError(f"{config.name}: training_samples must be >= 1")
        self.n_estimators = int(params.get("n_estimators", 20))
        self.max_depth = int(params.get("max_depth", 12))
        self.min_samples_leaf = int(params.get("min_samples_leaf", 2))
        self.delta_inputs = set(params.get("delta_inputs", []))
        self.seed = int(params.get("seed", 0))
        if config.window_ns <= 0:
            raise ConfigError(
                f"{config.name}: regressor needs a positive feature window"
            )

    def make_model(self) -> OnlineRegressionModel:
        return OnlineRegressionModel(
            self.training_samples,
            self.n_estimators,
            self.max_depth,
            self.min_samples_leaf,
            self.seed,
        )

    # ------------------------------------------------------------------

    def _features(self, unit: Unit) -> Optional[np.ndarray]:
        """Concatenated window features of every input sensor."""
        assert self.engine is not None
        parts: List[np.ndarray] = []
        for topic in unit.inputs:
            view = self.engine.query_relative(topic, self.config.window_ns)
            values = view.values()
            name = topic.rsplit("/", 1)[-1]
            if name in self.delta_inputs:
                if len(values) < 2:
                    return None
                values = np.diff(values)
            if values.size == 0:
                return None
            parts.append(window_features(values))
        if not parts:
            return None
        features = np.concatenate(parts)
        if not np.all(np.isfinite(features)):
            return None
        return features

    def _target_value(self, unit: Unit) -> Optional[float]:
        assert self.engine is not None
        topics = unit.inputs_named(self.target)
        if not topics:
            raise ConfigError(
                f"{self.name}: unit {unit.name} has no input sensor named "
                f"{self.target!r}"
            )
        view = self.engine.latest(topics[0])
        return float(view.values()[-1]) if len(view) else None

    def compute_unit(self, unit: Unit, ts: int) -> Dict[str, float]:
        model: OnlineRegressionModel = self.model_for(unit)
        current = self._target_value(unit)
        out: Dict[str, float] = {}
        if current is not None:
            # Close out last interval's causal pair.
            prev_features = model.pending_features.pop(unit.name, None)
            if prev_features is not None:
                model.add_pair(prev_features, current)
            prev_pred = model.pending_prediction.pop(unit.name, None)
            if prev_pred is not None and current != 0.0:
                rel_err = abs(prev_pred - current) / abs(current)
                for sensor in unit.outputs:
                    if "error" in sensor.name:
                        out[sensor.name] = rel_err
        features = self._features(unit)
        if features is None:
            return out
        model.pending_features[unit.name] = features
        if model.trained:
            pred = model.predict(features)
            model.pending_prediction[unit.name] = pred
            for sensor in unit.outputs:
                if "error" not in sensor.name:
                    out[sensor.name] = pred
        return out

    def compute_operator_outputs(self, ts, results) -> Dict[str, float]:
        """Operator-level aggregate: the average error over all units.

        Section V-C-2's example of an operator-level output is "the
        average error of a model applied to a set of units".
        """
        errors = [
            v
            for _, values in results
            for k, v in values.items()
            if "error" in k
        ]
        out: Dict[str, float] = {}
        if errors:
            out["avg-error"] = float(np.mean(errors))
        return out

    def training_progress(self) -> Dict[str, float]:
        """Buffered-pair counts per model (diagnostics for examples)."""
        progress = {}
        if self._shared_model is not None:
            progress["<shared>"] = self._shared_model.buffered
        for name, model in self._unit_models.items():
            progress[name] = model.buffered
        return progress
