"""Operator plugin library.

Importing this package registers every bundled Wintermute operator
plugin with the registry in :mod:`repro.core.registry`:

- ``tester`` -- performs configurable Query Engine traffic (the Fig 5
  overhead driver).
- ``aggregator`` -- window aggregates (mean/std/min/max/quantiles/...).
- ``smoother`` -- moving-average smoothing of individual sensors.
- ``perfmetrics`` -- derived CPU metrics: CPI, instruction/FLOP rates,
  vectorisation and miss ratios (Fig 7 stage 1).
- ``persyst`` -- per-job quantile aggregation, a re-implementation of
  the PerSyst transport described in the paper (Fig 7 stage 2).
- ``regressor`` -- window-statistics random-forest regression with
  online training-set accumulation (Fig 6).
- ``classifier`` -- random-forest classification of sensor windows.
- ``clustering`` -- Bayesian Gaussian mixture clustering of per-unit
  feature averages with outlier flagging (Fig 8).
- ``health`` -- threshold health checks usable as feedback-loop
  controllers.
- ``correlation`` -- pairwise correlation signatures of a unit's
  sensors (fault-detection fingerprints).
"""

from repro.plugins.tester import TesterOperator
from repro.plugins.aggregator import AggregatorOperator
from repro.plugins.smoother import SmootherOperator
from repro.plugins.perfmetrics import PerfMetricsOperator
from repro.plugins.persyst import PerSystOperator
from repro.plugins.regressor import RegressorOperator
from repro.plugins.classifier import ClassifierOperator
from repro.plugins.clustering import ClusteringOperator
from repro.plugins.health import HealthOperator
from repro.plugins.correlation import CorrelationOperator
from repro.plugins.filesink import FileSinkOperator

__all__ = [
    "CorrelationOperator",
    "FileSinkOperator",
    "TesterOperator",
    "AggregatorOperator",
    "SmootherOperator",
    "PerfMetricsOperator",
    "PerSystOperator",
    "RegressorOperator",
    "ClassifierOperator",
    "ClusteringOperator",
    "HealthOperator",
]
