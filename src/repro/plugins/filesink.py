"""Filesink operator plugin.

Exports sensor streams to CSV files — the production Wintermute ships a
file-sink plugin for exactly this purpose: feeding external tooling
(plotting, spreadsheets, offline analysis) without touching the storage
backend.  Each unit writes one CSV file named after the unit, with a
timestamp column plus one column per input sensor (sample-and-hold
aligned on the first input's timestamps).

Params:
    ``directory`` (str, required): output directory (created if absent).
    ``flush_every`` (int): write buffered rows to disk every N computes
        (default 10).
    ``timestamp_unit`` (str): ``s``, ``ms`` or ``ns`` (default ``s``).

The unit's output sensor receives the number of rows written so far, so
export progress is itself monitorable.
"""

from __future__ import annotations

import contextlib
import csv
import os
from typing import Dict, List, TextIO

from repro.common.errors import ConfigError
from repro.core.operator import OperatorBase, OperatorConfig
from repro.core.registry import operator_plugin
from repro.core.units import Unit

_TS_DIVISORS = {"s": 1e9, "ms": 1e6, "ns": 1.0}


class _UnitSink:
    """Open CSV file plus write bookkeeping for one unit."""

    def __init__(self, path: str, columns: List[str]) -> None:
        self.path = path
        is_new = not os.path.exists(path)
        # Long-lived handle, closed via FileSinkOperator.close().
        self.handle: TextIO = open(  # noqa: SIM115
            path, "a", newline="", encoding="utf-8"
        )
        self.writer = csv.writer(self.handle)
        if is_new:
            self.writer.writerow(["timestamp"] + columns)
        self.rows_written = 0
        self.pending = 0

    def write(self, timestamp, values) -> None:
        self.writer.writerow([timestamp] + values)
        self.rows_written += 1
        self.pending += 1

    def flush(self) -> None:
        self.handle.flush()
        self.pending = 0

    def close(self) -> None:
        self.handle.close()


@operator_plugin("filesink")
class FileSinkOperator(OperatorBase):
    """Streams each unit's input sensors into a CSV file."""

    @classmethod
    def flow_transforms(cls, params: dict) -> Dict[str, object]:
        # Row counters, not physical quantities.
        return {"*": "dimensionless"}

    def __init__(self, config: OperatorConfig) -> None:
        super().__init__(config)
        directory = config.params.get("directory")
        if not directory:
            raise ConfigError(f"{config.name}: params.directory is required")
        self.directory = str(directory)
        self.flush_every = int(config.params.get("flush_every", 10))
        if self.flush_every < 1:
            raise ConfigError(f"{config.name}: flush_every must be >= 1")
        unit_name = config.params.get("timestamp_unit", "s")
        if unit_name not in _TS_DIVISORS:
            raise ConfigError(
                f"{config.name}: timestamp_unit must be one of "
                f"{sorted(_TS_DIVISORS)}"
            )
        self.ts_divisor = _TS_DIVISORS[unit_name]
        self._sinks: Dict[str, _UnitSink] = {}

    def _sink_for(self, unit: Unit) -> _UnitSink:
        sink = self._sinks.get(unit.name)
        if sink is None:
            os.makedirs(self.directory, exist_ok=True)
            fname = unit.name.strip("/").replace("/", "_") or "root"
            path = os.path.join(self.directory, f"{fname}.csv")
            columns = [t.strip("/").replace("/", "_") for t in unit.inputs]
            sink = self._sinks[unit.name] = _UnitSink(path, columns)
        return sink

    def compute_unit(self, unit: Unit, ts: int) -> Dict[str, float]:
        assert self.engine is not None
        values = []
        for topic in unit.inputs:
            try:
                view = self.engine.latest(topic)
                values.append(float(view.values()[-1]) if len(view) else "")
            except Exception:
                values.append("")  # sensor not yet producing: blank cell
        sink = self._sink_for(unit)
        timestamp = ts / self.ts_divisor if self.ts_divisor != 1.0 else ts
        sink.write(timestamp, values)
        if sink.pending >= self.flush_every:
            sink.flush()
        return {s.name: float(sink.rows_written) for s in unit.outputs}

    def stop(self) -> None:
        """Flush and close every file when the operator stops."""
        super().stop()
        for sink in self._sinks.values():
            sink.flush()

    def close(self) -> None:
        """Release file handles (idempotent)."""
        for sink in self._sinks.values():
            sink.close()
        self._sinks.clear()

    def __del__(self):  # pragma: no cover - interpreter shutdown path
        with contextlib.suppress(Exception):
            self.close()
