"""PerSyst operator plugin (Fig 7, stage 2).

A re-implementation of the PerSyst transport (Guillen et al.) as a
Wintermute job operator: "at each computing interval, it queries the set
of running jobs on the HPC system, and for each of them it instantiates
a unit ... the operator computes a series of job-level statistical
indicators (e.g. mean) as output".

Each job unit's inputs are one derived metric (e.g. the per-core ``cpi``
produced by a perfmetrics stage) gathered from every CPU of every node
the job runs on; the outputs are the quantiles of that distribution —
deciles by default, matching the paper's Fig 7 (2048 samples per decile
for a 32-node, 64-core job).

Params:
    ``quantiles`` (list of float in [0, 1]): which quantiles to emit;
        default is the 11 deciles 0.0..1.0.
    ``statistics`` (list of str): extra indicators among ``mean``,
        ``std`` to emit alongside the quantiles.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.common.errors import ConfigError
from repro.core.operator import JobOperatorBase, OperatorConfig, UnitResult
from repro.core.registry import operator_plugin
from repro.core.units import Unit
from repro.ml.stats import quantiles as compute_quantiles

_DEFAULT_QUANTILES = [i / 10.0 for i in range(11)]
_EXTRA_STATS = ("mean", "std")


def quantile_output_name(q: float) -> str:
    """Canonical output-sensor name of one quantile (``decile5`` etc.)."""
    scaled = q * 10.0
    if abs(scaled - round(scaled)) < 1e-9:
        return f"decile{int(round(scaled))}"
    return f"q{int(round(q * 100)):02d}"


@operator_plugin("persyst")
class PerSystOperator(JobOperatorBase):
    """Per-job quantile aggregation of a derived metric."""

    @classmethod
    def flow_transforms(cls, params: dict) -> Dict[str, object]:
        # Quantiles of the monitored metric preserve its unit.
        return {"*": "preserve"}

    def __init__(self, config: OperatorConfig, job_source=None) -> None:
        super().__init__(config, job_source=job_source)
        qs = config.params.get("quantiles", _DEFAULT_QUANTILES)
        if not qs or any(not (0.0 <= q <= 1.0) for q in qs):
            raise ConfigError(
                f"{config.name}: quantiles must be fractions in [0, 1]"
            )
        self.quantiles = [float(q) for q in qs]
        extras = config.params.get("statistics", [])
        unknown = set(extras) - set(_EXTRA_STATS)
        if unknown:
            raise ConfigError(
                f"{config.name}: unknown statistics {sorted(unknown)}"
            )
        self.extra_stats = list(extras)

    def job_output_names(self) -> List[str]:
        return [quantile_output_name(q) for q in self.quantiles] + list(
            self.extra_stats
        )

    def compute_unit(self, unit: Unit, ts: int) -> Dict[str, float]:
        assert self.engine is not None
        samples: List[float] = []
        for topic in unit.inputs:
            try:
                view = self.engine.query_relative(topic, self.config.window_ns)  # lint: allow(L007)
            except Exception:
                continue  # a core that has not produced the metric yet
            values = view.values()
            if values.size:
                samples.append(float(values[-1]))
        if not samples:
            return {}
        return self._reduce(np.asarray(samples))

    def _reduce(self, arr: np.ndarray) -> Dict[str, float]:
        """Quantiles + extra stats of one job's sample distribution."""
        qvals = compute_quantiles(arr, self.quantiles)
        out = {
            quantile_output_name(q): float(v)
            for q, v in zip(self.quantiles, qvals)
        }
        if "mean" in self.extra_stats:
            out["mean"] = float(arr.mean())
        if "std" in self.extra_stats:
            out["std"] = float(arr.std())
        return out

    # ------------------------------------------------------------------
    # Batched path
    # ------------------------------------------------------------------

    supports_batch = True
    #: compute_batch reads its BatchWindow without mutating it, so
    #: fused groups may serve this plugin zero-copy channel views.
    fusion_safe = True

    def compute_batch(self, units: Sequence[Unit], ts: int) -> List[UnitResult]:
        """One batched query gathers every job's newest samples at once.

        The per-core window fetches — by far the dominant cost of the
        Fig 7 pipeline (2048 samples per 32-node job) — collapse into a
        single compiled-plan execution; the decile reduction then runs on
        each job's row of newest values.  Topics with no data yet are
        skipped exactly like the scalar path's swallowed query errors.
        """
        assert self.engine is not None
        window, slices = self.batch_window(units)
        last = window.last_values()
        counts = window.counts
        results = []
        for unit, rows in zip(units, slices):
            idx = np.fromiter(
                (r for r in rows if counts[r]), dtype=np.intp
            )
            if not idx.size:
                continue
            results.append(UnitResult(unit, self._reduce(last[idx])))
        return results
