"""Clustering operator plugin (Fig 8).

Reproduces the performance-anomaly case study of Section VI-D: one
operator with one unit per compute node, each unit contributing the
long-window averages of its input sensors (power, temperature, CPU idle
time in the paper) as a point in feature space.  At every computation
interval the operator fits a Bayesian Gaussian mixture over all units'
points, assigns each node its cluster label and flags outliers whose
probability falls below a threshold under all fitted components.

This is inherently a *cross-unit* computation, so the plugin overrides
the unit-iteration step rather than :meth:`compute_unit` — each unit's
result still flows through the ordinary output-sensor path.

Params:
    ``transforms`` (dict): input-sensor-name -> ``mean`` | ``delta`` |
        ``rate``; how each input's window becomes a feature (gauges
        average, monotonic counters difference).  Default ``mean``.
    ``n_components`` (int): mixture component bound (default 8).
    ``pdf_threshold`` (float): the outlier probability threshold; the
        paper uses 0.001.
    ``weight_threshold`` (float): minimum posterior weight for a
        component to count as a cluster (default 0.02).
    ``standardize`` (bool): z-score features before fitting (default
        True — the three paper metrics live on wildly different scales).
    ``min_units`` (int): skip the pass when fewer units have complete
        features (default 8).
    ``seed`` (int): initialisation randomness.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigError
from repro.core.operator import OperatorBase, OperatorConfig, UnitResult
from repro.core.registry import operator_plugin
from repro.core.units import Unit
from repro.ml.bgmm import BayesianGaussianMixture

_TRANSFORMS = ("mean", "delta", "rate")


@operator_plugin("clustering")
class ClusteringOperator(OperatorBase):
    """Bayesian-GMM clustering of per-unit feature averages."""

    @classmethod
    def flow_transforms(cls, params: dict) -> Dict[str, object]:
        # Cluster ids and outlier scores are pure numbers.
        return {"*": "dimensionless"}

    def __init__(self, config: OperatorConfig) -> None:
        super().__init__(config)
        params = config.params
        transforms = params.get("transforms", {})
        bad = {k: v for k, v in transforms.items() if v not in _TRANSFORMS}
        if bad:
            raise ConfigError(
                f"{config.name}: bad transforms {bad}; allowed {_TRANSFORMS}"
            )
        self.transforms: Dict[str, str] = dict(transforms)
        self.n_components = int(params.get("n_components", 8))
        self.pdf_threshold = float(params.get("pdf_threshold", 1e-3))
        self.weight_threshold = float(params.get("weight_threshold", 0.02))
        self.standardize = bool(params.get("standardize", True))
        self.min_units = int(params.get("min_units", 8))
        self.seed = int(params.get("seed", 0))
        if config.window_ns <= 0:
            raise ConfigError(
                f"{config.name}: clustering needs a positive feature window"
            )
        self.last_labels: Dict[str, int] = {}
        self.last_outliers: List[str] = []
        self.last_n_clusters = 0

    # ------------------------------------------------------------------
    # Feature extraction
    # ------------------------------------------------------------------

    def _unit_features(self, unit: Unit) -> Optional[np.ndarray]:
        """One feature per input sensor, in input order."""
        assert self.engine is not None
        feats: List[float] = []
        for topic in unit.inputs:
            name = topic.rsplit("/", 1)[-1]
            transform = self.transforms.get(name, "mean")
            try:
                view = self.engine.query_relative(topic, self.config.window_ns)
            except Exception:
                return None
            values = view.values()
            if values.size == 0:
                return None
            if transform == "mean":
                feats.append(float(values.mean()))
            elif transform == "delta":
                if values.size < 2:
                    return None
                feats.append(float(values[-1] - values[0]))
            else:  # rate
                if len(view) < 2:
                    return None
                ts_arr = view.timestamps()
                span = (int(ts_arr[-1]) - int(ts_arr[0])) / 1e9
                if span <= 0:
                    return None
                feats.append(float((values[-1] - values[0]) / span))
        vec = np.asarray(feats)
        if not np.all(np.isfinite(vec)):
            return None
        return vec

    # ------------------------------------------------------------------
    # Cross-unit computation
    # ------------------------------------------------------------------

    def _compute_results(self, ts: int) -> List[UnitResult]:
        points: List[Tuple[Unit, np.ndarray]] = []
        for unit in self.units:
            vec = self._unit_features(unit)
            if vec is not None:
                points.append((unit, vec))
        if len(points) < self.min_units:
            return []
        X = np.vstack([vec for _, vec in points])
        if self.standardize:
            mu = X.mean(axis=0)
            sigma = X.std(axis=0)
            sigma[sigma == 0] = 1.0
            Xs = (X - mu) / sigma
        else:
            Xs = X
        model = BayesianGaussianMixture(
            n_components=self.n_components, random_state=self.seed
        )
        model.fit(Xs)
        raw_labels = model.predict(Xs)
        outliers = model.outlier_mask(
            Xs, self.pdf_threshold, self.weight_threshold
        )
        labels = self._canonical_labels(model, raw_labels)
        self.last_n_clusters = len(
            model.effective_components(self.weight_threshold)
        )
        self.last_labels = {}
        self.last_outliers = []
        results: List[UnitResult] = []
        for (unit, _), label, is_outlier in zip(points, labels, outliers):
            values: Dict[str, float] = {}
            for sensor in unit.outputs:
                if "outlier" in sensor.name:
                    values[sensor.name] = 1.0 if is_outlier else 0.0
                else:
                    values[sensor.name] = float(label)
            self.last_labels[unit.name] = int(label)
            if is_outlier:
                self.last_outliers.append(unit.name)
            results.append(UnitResult(unit, values))
        return results

    @staticmethod
    def _canonical_labels(
        model: BayesianGaussianMixture, raw_labels: np.ndarray
    ) -> np.ndarray:
        """Relabel components by descending weight for stable label ids."""
        order = np.argsort(model.weights_)[::-1]
        remap = np.empty(len(order), dtype=np.int64)
        remap[order] = np.arange(len(order))
        return remap[raw_labels]

    def compute_operator_outputs(self, ts, results) -> Dict[str, float]:
        """Fleet-level aggregates: cluster count and outlier count."""
        return {
            "n-clusters": float(self.last_n_clusters),
            "n-outliers": float(len(self.last_outliers)),
        }

    def compute_unit(self, unit: Unit, ts: int) -> Dict[str, float]:
        """On-demand path: return the unit's last assigned label."""
        label = self.last_labels.get(unit.name)
        if label is None:
            return {}
        is_outlier = unit.name in self.last_outliers
        out: Dict[str, float] = {}
        for sensor in unit.outputs:
            if "outlier" in sensor.name:
                out[sensor.name] = 1.0 if is_outlier else 0.0
            else:
                out[sensor.name] = float(label)
        return out
