"""Aggregator operator plugin.

The bread-and-butter plugin of the production deployment ("Wintermute is
currently deployed to perform aggregation of monitored metrics in the
CooLMUC-3 system"): each unit pools the readings of all its input
sensors over the configured window and emits scalar aggregates.

Params:
    ``ops`` (dict): output-sensor-name -> aggregate.  Supported
        aggregates: ``mean``, ``std``, ``min``, ``max``, ``sum``,
        ``median``, ``count``, ``last``, ``delta`` (last - first, for
        monotonic counters), ``rate`` (delta per second), ``qNN``
        (quantile, e.g. ``q90``).
    ``op`` (str): shorthand when there is a single output sensor.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.common.errors import ConfigError, QueryError
from repro.core.operator import OperatorBase, OperatorConfig, UnitResult
from repro.core.registry import operator_plugin
from repro.core.units import Unit
from repro.dcdb.cache import CacheView

_QUANTILE_RE = re.compile(r"^q(100|\d{1,2})$")


def _delta(view: CacheView) -> float:
    values = view.values()
    return float(values[-1] - values[0]) if len(values) >= 2 else float("nan")


def _rate(view: CacheView) -> float:
    if len(view) < 2:
        return float("nan")
    ts = view.timestamps()
    span_s = (int(ts[-1]) - int(ts[0])) / 1e9
    if span_s <= 0:
        return float("nan")
    values = view.values()
    return float((values[-1] - values[0]) / span_s)


_SIMPLE_OPS: Dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda v: float(v.mean()),
    "std": lambda v: float(v.std()),
    "min": lambda v: float(v.min()),
    "max": lambda v: float(v.max()),
    "sum": lambda v: float(v.sum()),
    "median": lambda v: float(np.median(v)),
    "count": lambda v: float(len(v)),
    "last": lambda v: float(v[-1]),
}

# Row-wise (axis=1) twins of _SIMPLE_OPS.  NumPy applies the same
# pairwise reduction per row of a C-contiguous matrix as it does to a
# 1-D copy of that row, so these match the scalar results bit-for-bit.
_SIMPLE_OPS_AXIS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "mean": lambda m: m.mean(axis=1),
    "std": lambda m: m.std(axis=1),
    "min": lambda m: m.min(axis=1),
    "max": lambda m: m.max(axis=1),
    "sum": lambda m: m.sum(axis=1),
    "median": lambda m: np.median(m, axis=1),
    "count": lambda m: np.full(m.shape[0], float(m.shape[1])),
    "last": lambda m: m[:, -1].copy(),
}


@operator_plugin("aggregator")
class AggregatorOperator(OperatorBase):
    """Window aggregates over each unit's pooled input readings."""

    @classmethod
    def flow_transforms(cls, params: dict) -> Dict[str, object]:
        # Derived from the configured aggregates: counts are pure
        # numbers, rates divide by time, everything else (mean, min,
        # delta, quantiles, ...) carries its inputs' unit through.
        ops = dict(params.get("ops", {})) if isinstance(params, dict) else {}
        if isinstance(params, dict) and params.get("op") is not None:
            ops.setdefault("*", params["op"])
        transforms: Dict[str, object] = {}
        for name, op in ops.items():
            if not isinstance(name, str) or not isinstance(op, str):
                continue
            if op == "count":
                transforms[name] = "dimensionless"
            elif op == "rate":
                transforms[name] = "per-second"
            else:
                transforms[name] = "preserve"
        return transforms

    def __init__(self, config: OperatorConfig) -> None:
        super().__init__(config)
        ops = dict(config.params.get("ops", {}))
        single = config.params.get("op")
        if single is not None:
            # Units may get their outputs from config patterns or from
            # explicit set_units; only multiple *declared* outputs make
            # the shorthand ambiguous.
            if len(config.outputs) > 1:
                raise ConfigError(
                    f"{config.name}: shorthand 'op' needs exactly one output"
                )
            # Bind the shorthand to whatever the single output is named.
            ops["*"] = single
        if not ops:
            raise ConfigError(f"{config.name}: params.ops (or op) is required")
        self._ops: Dict[str, str] = {}
        for out_name, op in ops.items():
            self._validate_op(op)
            self._ops[out_name] = op

    @staticmethod
    def _validate_op(op: str) -> None:
        if op in _SIMPLE_OPS or op in ("delta", "rate"):
            return
        if _QUANTILE_RE.match(op):
            return
        raise ConfigError(f"unknown aggregate {op!r}")

    def _apply(self, op: str, view: CacheView, pooled: np.ndarray) -> float:
        if op == "delta":
            return _delta(view)
        if op == "rate":
            return _rate(view)
        if pooled.size == 0:
            return float("nan")
        match = _QUANTILE_RE.match(op)
        if match:
            return float(np.percentile(pooled, int(match.group(1))))
        return _SIMPLE_OPS[op](pooled)

    def _op_for(self, sensor_name: str) -> str:
        op = self._ops.get(sensor_name) or self._ops.get("*")
        if op is None:
            raise ConfigError(
                f"{self.name}: no aggregate configured for output "
                f"{sensor_name!r}"
            )
        return op

    def compute_unit(self, unit: Unit, ts: int) -> Dict[str, float]:
        assert self.engine is not None
        views = [
            self.engine.query_relative(t, self.config.window_ns)  # lint: allow(L007)
            for t in unit.inputs
        ]
        pooled = (
            np.concatenate([v.values() for v in views])
            if views
            else np.empty(0)
        )
        # delta/rate act on the first input's window (they are
        # counter-oriented and pooling counters is meaningless).
        first = views[0] if views else CacheView.empty()
        return {
            sensor.name: self._apply(self._op_for(sensor.name), first, pooled)
            for sensor in unit.outputs
        }

    # ------------------------------------------------------------------
    # Batched path
    # ------------------------------------------------------------------

    supports_batch = True
    #: compute_batch reads its BatchWindow without mutating it, so
    #: fused groups may serve this plugin zero-copy channel views.
    fusion_safe = True

    def compute_batch(self, units: Sequence[Unit], ts: int) -> List[UnitResult]:
        assert self.engine is not None
        window, slices = self.batch_window(units)
        n = _uniform_single_input(units, slices, window.counts)
        if n is not None:
            return self._batch_uniform(units, slices, window, n)
        results = []
        for unit, rows in zip(units, slices):
            values = self._unit_from_window(unit, rows, window)
            if values:
                results.append(UnitResult(unit, values))
        return results

    def _batch_uniform(self, units, slices, window, n: int) -> List[UnitResult]:
        """One kernel per aggregate over the stacked single-input rows."""
        rows = np.fromiter((s[0] for s in slices), dtype=np.intp, count=len(slices))
        sub = window.values[rows, window.width - n:]
        tss = window.timestamps[rows, window.width - n:]
        # tolist() converts each column to plain floats once; per-element
        # float(np.float64) in the unit loop costs more than the kernels
        # themselves at 1000s of units.
        per_op = {
            op: self._kernel(op, sub, tss, n).tolist()
            for op in set(self._ops.values())
        }
        resolved: Dict[str, list] = {}
        results = []
        for j, unit in enumerate(units):
            values = {}
            for sensor in unit.outputs:
                name = sensor.name
                column = resolved.get(name)
                if column is None:
                    column = resolved[name] = per_op[self._op_for(name)]
                values[name] = column[j]
            if values:
                results.append(UnitResult(unit, values))
        return results

    def compute_batch_vector(self, units: Sequence[Unit], ts: int):
        """Uniform-pass vector kernel for fused intermediate stages.

        Only the wildcard single-aggregate form (``ops: {"*": op}``)
        qualifies — then every output resolves to the same kernel and
        the stacked :meth:`_kernel` column is exactly what
        :meth:`_batch_uniform` would have unpacked per unit.  Declines
        (None) on multiple/ragged inputs, same as the uniform path.
        """
        if set(self._ops) != {"*"}:
            return None
        window, slices = self.batch_window(units)
        rows = self._single_row_layout(slices)
        if rows is None or not len(rows):
            return None
        counts = window.counts[rows]
        n = int(counts[0])
        if n < 1 or (counts != n).any():
            return None
        sub = window.values[rows, window.width - n:]
        tss = window.timestamps[rows, window.width - n:]
        return self._kernel(self._ops["*"], sub, tss, n)

    def _kernel(self, op: str, sub, tss, n: int):
        if op == "delta":
            if n < 2:
                return np.full(sub.shape[0], np.nan)
            return sub[:, -1] - sub[:, 0]
        if op == "rate":
            out = np.full(sub.shape[0], np.nan)
            if n >= 2:
                span_s = (tss[:, -1] - tss[:, 0]) / 1e9
                ok = span_s > 0
                out[ok] = (sub[ok, -1] - sub[ok, 0]) / span_s[ok]
            return out
        match = _QUANTILE_RE.match(op)
        if match:
            return np.percentile(sub, int(match.group(1)), axis=1)
        return _SIMPLE_OPS_AXIS[op](sub)

    def _unit_from_window(self, unit: Unit, rows, window) -> Dict[str, float]:
        """Scalar-identical evaluation from prefetched window rows.

        Used for units the uniform kernel cannot cover (several inputs,
        ragged windows): the pooled array and first-input view are built
        from exactly the arrays the scalar queries would have returned.
        """
        segs = []
        first = CacheView.empty()
        for r in rows:
            if not window.counts[r]:
                # The scalar path raises on its first missing input.
                self._record_unit_error(
                    unit, QueryError(f"no data available for sensor {window.topics[r]}")
                )
                return {}
            segs.append(window.row_values(r))
            if len(segs) == 1:
                first = CacheView._snapshot_of(
                    window.row_timestamps(r), window.row_values(r)
                )
        pooled = np.concatenate(segs) if segs else np.empty(0)
        return {
            sensor.name: self._apply(self._op_for(sensor.name), first, pooled)
            for sensor in unit.outputs
        }


def _uniform_single_input(units, slices, counts):
    """Window length when every unit has one input and equal, non-empty
    windows — the precondition of the stacked-matrix kernels.  None
    otherwise."""
    if not units:
        return None
    for s in slices:
        if len(s) != 1:
            return None
    rows = [s[0] for s in slices]
    n = int(counts[rows[0]])
    if n < 1:
        return None
    for r in rows:
        if counts[r] != n:
            return None
    return n
