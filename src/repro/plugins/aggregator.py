"""Aggregator operator plugin.

The bread-and-butter plugin of the production deployment ("Wintermute is
currently deployed to perform aggregation of monitored metrics in the
CooLMUC-3 system"): each unit pools the readings of all its input
sensors over the configured window and emits scalar aggregates.

Params:
    ``ops`` (dict): output-sensor-name -> aggregate.  Supported
        aggregates: ``mean``, ``std``, ``min``, ``max``, ``sum``,
        ``median``, ``count``, ``last``, ``delta`` (last - first, for
        monotonic counters), ``rate`` (delta per second), ``qNN``
        (quantile, e.g. ``q90``).
    ``op`` (str): shorthand when there is a single output sensor.
"""

from __future__ import annotations

import re
from typing import Callable, Dict

import numpy as np

from repro.common.errors import ConfigError
from repro.core.operator import OperatorBase, OperatorConfig
from repro.core.registry import operator_plugin
from repro.core.units import Unit
from repro.dcdb.cache import CacheView

_QUANTILE_RE = re.compile(r"^q(100|\d{1,2})$")


def _delta(view: CacheView) -> float:
    values = view.values()
    return float(values[-1] - values[0]) if len(values) >= 2 else float("nan")


def _rate(view: CacheView) -> float:
    if len(view) < 2:
        return float("nan")
    ts = view.timestamps()
    span_s = (int(ts[-1]) - int(ts[0])) / 1e9
    if span_s <= 0:
        return float("nan")
    values = view.values()
    return float((values[-1] - values[0]) / span_s)


_SIMPLE_OPS: Dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda v: float(v.mean()),
    "std": lambda v: float(v.std()),
    "min": lambda v: float(v.min()),
    "max": lambda v: float(v.max()),
    "sum": lambda v: float(v.sum()),
    "median": lambda v: float(np.median(v)),
    "count": lambda v: float(len(v)),
    "last": lambda v: float(v[-1]),
}


@operator_plugin("aggregator")
class AggregatorOperator(OperatorBase):
    """Window aggregates over each unit's pooled input readings."""

    def __init__(self, config: OperatorConfig) -> None:
        super().__init__(config)
        ops = dict(config.params.get("ops", {}))
        single = config.params.get("op")
        if single is not None:
            # Units may get their outputs from config patterns or from
            # explicit set_units; only multiple *declared* outputs make
            # the shorthand ambiguous.
            if len(config.outputs) > 1:
                raise ConfigError(
                    f"{config.name}: shorthand 'op' needs exactly one output"
                )
            # Bind the shorthand to whatever the single output is named.
            ops["*"] = single
        if not ops:
            raise ConfigError(f"{config.name}: params.ops (or op) is required")
        self._ops: Dict[str, str] = {}
        for out_name, op in ops.items():
            self._validate_op(op)
            self._ops[out_name] = op

    @staticmethod
    def _validate_op(op: str) -> None:
        if op in _SIMPLE_OPS or op in ("delta", "rate"):
            return
        if _QUANTILE_RE.match(op):
            return
        raise ConfigError(f"unknown aggregate {op!r}")

    def _apply(self, op: str, view: CacheView, pooled: np.ndarray) -> float:
        if op == "delta":
            return _delta(view)
        if op == "rate":
            return _rate(view)
        if pooled.size == 0:
            return float("nan")
        match = _QUANTILE_RE.match(op)
        if match:
            return float(np.percentile(pooled, int(match.group(1))))
        return _SIMPLE_OPS[op](pooled)

    def compute_unit(self, unit: Unit, ts: int) -> Dict[str, float]:
        assert self.engine is not None
        views = [
            self.engine.query_relative(t, self.config.window_ns)
            for t in unit.inputs
        ]
        pooled = (
            np.concatenate([v.values() for v in views])
            if views
            else np.empty(0)
        )
        # delta/rate act on the first input's window (they are
        # counter-oriented and pooling counters is meaningless).
        first = views[0] if views else CacheView.empty()
        out: Dict[str, float] = {}
        for sensor in unit.outputs:
            op = self._ops.get(sensor.name) or self._ops.get("*")
            if op is None:
                raise ConfigError(
                    f"{self.name}: no aggregate configured for output "
                    f"{sensor.name!r}"
                )
            out[sensor.name] = self._apply(op, first, pooled)
        return out
