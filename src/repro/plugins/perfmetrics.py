"""PerfMetrics operator plugin (Fig 7, stage 1).

"The first perfmetrics plugin, instantiated in the Pushers, takes as
input CPU and node-level data and computes as output a series of derived
performance metrics, such as cycles per instruction (CPI), floating
point operations per second (FLOPS) or vectorization ratio."

Each unit is typically one CPU core; the plugin reads the raw monotonic
counters over the configured window, forms per-interval deltas and
derives the requested metrics — selected simply by naming the output
sensors:

===============  ====================================================
output name      derived metric
===============  ====================================================
``cpi``          delta(cycles) / delta(instructions)
``ipc``          delta(instructions) / delta(cycles)
``instr-rate``   delta(instructions) per second
``flops-rate``   delta(flops) per second
``vector-ratio`` delta(vector-ops) / delta(instructions)
``miss-ratio``   delta(cache-misses) / delta(cache-references)
===============  ====================================================
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.errors import ConfigError
from repro.core.operator import OperatorBase, OperatorConfig
from repro.core.registry import operator_plugin
from repro.core.units import Unit

#: metric -> (numerator counter, denominator counter or None for /second)
_METRICS = {
    "cpi": ("cpu-cycles", "instructions"),
    "ipc": ("instructions", "cpu-cycles"),
    "instr-rate": ("instructions", None),
    "flops-rate": ("flops", None),
    "vector-ratio": ("vector-ops", "instructions"),
    "miss-ratio": ("cache-misses", "cache-references"),
}


@operator_plugin("perfmetrics")
class PerfMetricsOperator(OperatorBase):
    """Derives performance metrics from raw counter deltas."""

    @classmethod
    def flow_transforms(cls, params: dict) -> Dict[str, object]:
        # Counter ratios are dimensionless; *-rate metrics are
        # counts per second.
        transforms: Dict[str, object] = {}
        for name, (_num, den) in _METRICS.items():
            transforms[name] = "dimensionless" if den else "per-second"
        return transforms

    def __init__(self, config: OperatorConfig) -> None:
        super().__init__(config)
        if config.window_ns <= 0:
            raise ConfigError(
                f"{config.name}: perfmetrics needs a positive window to "
                f"form counter deltas"
            )

    def _delta(self, unit: Unit, counter: str, ts: int) -> Optional[float]:
        """Window delta of the unit's input counter named ``counter``."""
        assert self.engine is not None
        topics = unit.inputs_named(counter)
        if not topics:
            return None
        view = self.engine.query_relative(topics[0], self.config.window_ns)
        if len(view) < 2:
            return None
        values = view.values()
        return float(values[-1] - values[0])

    def _span_seconds(self, unit: Unit, counter: str) -> Optional[float]:
        assert self.engine is not None
        topics = unit.inputs_named(counter)
        if not topics:
            return None
        view = self.engine.query_relative(topics[0], self.config.window_ns)
        if len(view) < 2:
            return None
        ts = view.timestamps()
        span = (int(ts[-1]) - int(ts[0])) / 1e9
        return span if span > 0 else None

    def compute_unit(self, unit: Unit, ts: int) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for sensor in unit.outputs:
            spec = _METRICS.get(sensor.name)
            if spec is None:
                raise ConfigError(
                    f"{self.name}: unknown derived metric {sensor.name!r}; "
                    f"supported: {sorted(_METRICS)}"
                )
            num_counter, den_counter = spec
            num = self._delta(unit, num_counter, ts)
            if num is None:
                continue
            if den_counter is None:
                span = self._span_seconds(unit, num_counter)
                if span is None:
                    continue
                out[sensor.name] = num / span
            else:
                den = self._delta(unit, den_counter, ts)
                if den is None or den <= 0:
                    continue
                out[sensor.name] = num / den
        return out
