"""Tester operator plugin (Section VI-A).

The overhead study instantiates operators that "simply perform a certain
number of queries over the input sensors of their units".  This plugin
reproduces that driver: at each computation interval it issues a
configurable number of Query Engine requests, in relative or absolute
mode, over a configurable time range, and reports how many readings the
queries returned.

Params:
    ``queries`` (int): queries per computation interval (default 10).
    ``query_mode`` (str): ``relative`` or ``absolute`` (default
        ``relative``); selects the O(1) vs O(log N) engine path.
    ``range_ns`` / ``range_ms`` (number): temporal range per query;
        0 retrieves only the most recent value of each sensor.
"""

from __future__ import annotations

from typing import Dict

from repro.common.errors import ConfigError
from repro.common.timeutil import NS_PER_MS
from repro.core.operator import OperatorBase, OperatorConfig
from repro.core.registry import operator_plugin
from repro.core.units import Unit


@operator_plugin("tester")
class TesterOperator(OperatorBase):
    """Issues synthetic Query Engine load and counts retrieved readings."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, config: OperatorConfig) -> None:
        super().__init__(config)
        params = config.params
        self.n_queries = int(params.get("queries", 10))
        if self.n_queries < 1:
            raise ConfigError(f"{config.name}: queries must be >= 1")
        self.query_mode = params.get("query_mode", "relative")
        if self.query_mode not in ("relative", "absolute"):
            raise ConfigError(
                f"{config.name}: query_mode must be relative|absolute"
            )
        if "range_ns" in params:
            self.range_ns = int(params["range_ns"])
        else:
            self.range_ns = int(params.get("range_ms", 0) * NS_PER_MS)
        if self.range_ns < 0:
            raise ConfigError(f"{config.name}: range must be >= 0")

    def compute_unit(self, unit: Unit, ts: int) -> Dict[str, float]:
        assert self.engine is not None
        retrieved = 0
        n_inputs = len(unit.inputs)
        if n_inputs == 0:
            return {}
        for q in range(self.n_queries):
            topic = unit.inputs[q % n_inputs]
            if self.query_mode == "relative":
                view = self.engine.query_relative(topic, self.range_ns)
            else:
                view = self.engine.query_absolute(
                    topic, ts - self.range_ns, ts
                )
            retrieved += len(view)
        return {sensor.name: float(retrieved) for sensor in unit.outputs}
