"""Tester operator plugin (Section VI-A).

The overhead study instantiates operators that "simply perform a certain
number of queries over the input sensors of their units".  This plugin
reproduces that driver: at each computation interval it issues a
configurable number of Query Engine requests, in relative or absolute
mode, over a configurable time range, and reports how many readings the
queries returned.

Params:
    ``queries`` (int): queries per computation interval (default 10).
    ``query_mode`` (str): ``relative`` or ``absolute`` (default
        ``relative``); selects the O(1) vs O(log N) engine path.
    ``range_ns`` / ``range_ms`` (number): temporal range per query;
        0 retrieves only the most recent value of each sensor.
    ``fail_filter`` (str): **failure injection** for circuit-breaker
        testing; a regular expression matched against unit names whose
        computations then raise :class:`PluginError`.
    ``fail_passes`` (int): how many computation attempts of a matching
        unit fail before it heals; ``-1`` (default) fails forever.
    ``misbehave`` (str): **fault injection** for sanitizer validation;
        deliberately violates one concurrency invariant per computation:
        ``shared_model`` (one model object aliased across parallel
        units, rule R004), ``self_state`` (operator attribute rebound
        inside ``compute_unit``, rule R005), ``wall_clock`` (host clock
        read during compute, rule R009) or ``mutate_view`` (writes into
        a query result after hand-out, rule R007).  Default off.
"""

from __future__ import annotations

import time
from typing import Dict

import re

from repro.common.errors import ConfigError, PluginError
from repro.common.timeutil import NS_PER_MS
from repro.core.operator import OperatorBase, OperatorConfig
from repro.core.registry import operator_plugin
from repro.core.units import Unit

#: Deliberate invariant violations the tester can inject on request.
MISBEHAVE_MODES = ("shared_model", "self_state", "wall_clock", "mutate_view")


@operator_plugin("tester")
class TesterOperator(OperatorBase):
    """Issues synthetic Query Engine load and counts retrieved readings."""

    @classmethod
    def flow_transforms(cls, params: dict) -> Dict[str, object]:
        # Reading counts are pure numbers.
        return {"*": "dimensionless"}

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, config: OperatorConfig) -> None:
        super().__init__(config)
        params = config.params
        self.n_queries = int(params.get("queries", 10))
        if self.n_queries < 1:
            raise ConfigError(f"{config.name}: queries must be >= 1")
        self.query_mode = params.get("query_mode", "relative")
        if self.query_mode not in ("relative", "absolute"):
            raise ConfigError(
                f"{config.name}: query_mode must be relative|absolute"
            )
        if "range_ns" in params:
            self.range_ns = int(params["range_ns"])
        else:
            self.range_ns = int(params.get("range_ms", 0) * NS_PER_MS)
        if self.range_ns < 0:
            raise ConfigError(f"{config.name}: range must be >= 0")
        self.misbehave = params.get("misbehave")
        if self.misbehave is not None and self.misbehave not in MISBEHAVE_MODES:
            raise ConfigError(
                f"{config.name}: misbehave must be one of "
                f"{', '.join(MISBEHAVE_MODES)}"
            )
        fail_filter = params.get("fail_filter")
        try:
            self.fail_filter = (
                re.compile(fail_filter) if fail_filter is not None else None
            )
        except re.error as exc:
            raise ConfigError(
                f"{config.name}: bad fail_filter regex: {exc}"
            ) from exc
        self.fail_passes = int(params.get("fail_passes", -1))
        self._fail_counts: Dict[str, int] = {}
        # The aliased "model" behind the shared_model fault: every unit
        # receives this same dict, reproducing the classic bug of a model
        # cached on the plugin instead of placed per-unit.
        self._bug_model: Dict[str, int] = {}

    def make_model(self):
        if self.misbehave == "shared_model":
            return self._bug_model
        return None

    def compute_unit(self, unit: Unit, ts: int) -> Dict[str, float]:
        assert self.engine is not None
        self._maybe_fail(unit)
        retrieved = 0
        n_inputs = len(unit.inputs)
        if n_inputs == 0:
            return {}
        view = None
        for q in range(self.n_queries):
            topic = unit.inputs[q % n_inputs]
            if self.query_mode == "relative":
                view = self.engine.query_relative(topic, self.range_ns)
            else:
                view = self.engine.query_absolute(
                    topic, ts - self.range_ns, ts
                )
            retrieved += len(view)
        self._inject_fault(unit, ts, view)
        return {sensor.name: float(retrieved) for sensor in unit.outputs}

    def _maybe_fail(self, unit: Unit) -> None:
        """Raise for units matching ``fail_filter``, ``fail_passes`` times.

        Exercises the operator error path (and the circuit breaker built
        on it) through the real compute stack rather than a mock.
        """
        if self.fail_filter is None or not self.fail_filter.search(unit.name):
            return
        count = self._fail_counts.get(unit.name, 0)
        if self.fail_passes >= 0 and count >= self.fail_passes:
            return
        self._fail_counts[unit.name] = count + 1
        raise PluginError(
            f"injected failure for unit {unit.name} "
            f"(attempt {count + 1})"
        )

    def _inject_fault(self, unit: Unit, ts: int, view) -> None:
        """Deliberately violate the invariant selected by ``misbehave``.

        Each branch is a *bug on purpose*, kept for sanitizer validation;
        the lint suppressions below acknowledge the static rules that
        would (correctly) flag the same hazards.
        """
        if self.misbehave is None:
            return
        if self.misbehave == "shared_model":
            model = self.model_for(unit)
            model[unit.name] = ts  # concurrent writes to the aliased dict
        elif self.misbehave == "self_state":
            self.last_unit_seen = unit.name  # lint: allow(L004)
        elif self.misbehave == "wall_clock":
            _ = time.time()  # lint: allow(L002)
        elif self.misbehave == "mutate_view" and view is not None and len(view):
            view.values()[0] += 1.0
