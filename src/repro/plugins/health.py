"""Health operator plugin.

A threshold health check with hysteresis — the simplest useful *control
operator* for the feedback loops of Section IV-d: placed at the end of a
pipeline, its boolean output sensor can drive a knob (a frequency cap, a
scheduler weight) through a downstream consumer.

Each unit's input windows are averaged and checked against per-sensor
``[min, max]`` bounds; the unit is healthy when every input is in
bounds.  Hysteresis (``trip_count``) requires that many consecutive
violating passes before the output flips to unhealthy, suppressing
single-sample trips.

Params:
    ``bounds`` (dict): input-sensor-name -> ``[min, max]`` (either may
        be null for one-sided checks).
    ``trip_count`` (int): consecutive violations required (default 1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigError, QueryError
from repro.core.operator import OperatorBase, OperatorConfig, UnitResult
from repro.core.registry import operator_plugin
from repro.core.units import Unit


@operator_plugin("health")
class HealthOperator(OperatorBase):
    """Threshold health checks with hysteresis."""

    @classmethod
    def flow_transforms(cls, params: dict) -> Dict[str, object]:
        # Health flags and trip counts are pure numbers.
        return {"*": "dimensionless"}

    def __init__(self, config: OperatorConfig) -> None:
        super().__init__(config)
        bounds = config.params.get("bounds")
        if not isinstance(bounds, dict) or not bounds:
            raise ConfigError(
                f"{config.name}: params.bounds (sensor -> [min, max]) "
                f"is required"
            )
        self.bounds: Dict[str, Tuple[Optional[float], Optional[float]]] = {}
        for name, pair in bounds.items():
            if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                raise ConfigError(
                    f"{config.name}: bounds[{name!r}] must be [min, max]"
                )
            lo, hi = pair
            if lo is not None and hi is not None and lo > hi:
                raise ConfigError(
                    f"{config.name}: bounds[{name!r}]: min > max"
                )
            self.bounds[name] = (lo, hi)
        self.trip_count = int(config.params.get("trip_count", 1))
        if self.trip_count < 1:
            raise ConfigError(f"{config.name}: trip_count must be >= 1")

    def make_model(self) -> Dict[str, int]:
        """Per-unit violation counters, keyed by unit name.

        Kept in the model (not on ``self``) so parallel unit mode gives
        each unit its own counter dict and ``compute_unit`` never writes
        shared operator state (lint rule L004); sequential mode shares
        one dict, which is race-free by construction.
        """
        return {}

    def _in_bounds(self, name: str, value: float) -> bool:
        lo, hi = self.bounds.get(name, (None, None))
        if lo is not None and value < lo:
            return False
        if hi is not None and value > hi:
            return False
        return True

    def compute_unit(self, unit: Unit, ts: int) -> Dict[str, float]:
        assert self.engine is not None
        violated = False
        for topic in unit.inputs:
            name = topic.rsplit("/", 1)[-1]
            if name not in self.bounds:
                continue
            view = self.engine.query_relative(topic, self.config.window_ns)  # lint: allow(L007)
            values = view.values()
            if values.size == 0:
                continue
            if not self._in_bounds(name, float(values.mean())):
                violated = True
        return self._apply_hysteresis(unit, violated)

    def _apply_hysteresis(self, unit: Unit, violated: bool) -> Dict[str, float]:
        """Advance the unit's trip counter and emit the health bit."""
        violations: Dict[str, int] = self.model_for(unit)
        if violated:
            violations[unit.name] = violations.get(unit.name, 0) + 1
        else:
            violations[unit.name] = 0
        healthy = violations[unit.name] < self.trip_count
        return {sensor.name: 1.0 if healthy else 0.0 for sensor in unit.outputs}

    # ------------------------------------------------------------------
    # Batched path
    # ------------------------------------------------------------------

    supports_batch = True
    #: compute_batch reads its BatchWindow without mutating it, so
    #: fused groups may serve this plugin zero-copy channel views.
    fusion_safe = True

    def compute_batch(self, units: Sequence[Unit], ts: int) -> List[UnitResult]:
        """Window means for every bounded input in one batched query.

        Only topics with configured bounds are fetched (the scalar path
        never queries the rest); a bounded topic with no data errors the
        unit exactly like the scalar query would.
        """
        assert self.engine is not None
        window, slices = self.batch_window(units, topics_of=self._bounded_inputs)
        counts = window.counts
        width = window.width
        # Row means over the valid tail of each row: with the NaN
        # padding on the left, nanmean over the full width would change
        # results for rows containing real NaN readings — use per-row
        # tail segments instead, which match the scalar reduction.
        means = np.empty(len(window), dtype=np.float64)
        for r in range(len(window)):
            n = int(counts[r])
            means[r] = window.values[r, width - n:].mean() if n else np.nan
        results = []
        for unit, rows in zip(units, slices):
            violated = False
            errored = False
            for r in rows:
                if not counts[r]:
                    self._record_unit_error(
                        unit,
                        QueryError(
                            f"no data available for sensor {window.topics[r]}"
                        ),
                    )
                    errored = True
                    break
                name = window.topics[r].rsplit("/", 1)[-1]
                if not self._in_bounds(name, float(means[r])):
                    violated = True
            if errored:
                continue
            values = self._apply_hysteresis(unit, violated)
            if values:
                results.append(UnitResult(unit, values))
        return results

    def _bounded_inputs(self, unit: Unit) -> List[str]:
        return [
            t for t in unit.inputs if t.rsplit("/", 1)[-1] in self.bounds
        ]
