"""Smoother operator plugin.

Moving-average smoothing of individual sensors: each unit's first input
sensor is averaged over the configured window and written to the unit's
output.  With an exponential ``alpha`` parameter the plugin switches to
exponentially weighted smoothing, which weights recent readings higher —
useful ahead of threshold-based control operators to suppress spikes.

Params:
    ``alpha`` (float, optional): EWMA weight in (0, 1]; when absent a
        plain window mean is used.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.common.errors import ConfigError
from repro.core.operator import OperatorBase, OperatorConfig
from repro.core.registry import operator_plugin
from repro.core.units import Unit


@operator_plugin("smoother")
class SmootherOperator(OperatorBase):
    """Window-mean or EWMA smoothing of a sensor stream."""

    def __init__(self, config: OperatorConfig) -> None:
        super().__init__(config)
        alpha = config.params.get("alpha")
        if alpha is not None and not (0.0 < float(alpha) <= 1.0):
            raise ConfigError(f"{config.name}: alpha must be in (0, 1]")
        self.alpha = float(alpha) if alpha is not None else None

    def compute_unit(self, unit: Unit, ts: int) -> Dict[str, float]:
        assert self.engine is not None
        if not unit.inputs:
            return {}
        view = self.engine.query_relative(unit.inputs[0], self.config.window_ns)
        values = view.values()
        if values.size == 0:
            return {}
        if self.alpha is None:
            smoothed = float(values.mean())
        else:
            # EWMA over the window, oldest first.
            weights = (1.0 - self.alpha) ** np.arange(len(values) - 1, -1, -1)
            smoothed = float((values * weights).sum() / weights.sum())
        return {sensor.name: smoothed for sensor in unit.outputs}
