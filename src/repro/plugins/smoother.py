"""Smoother operator plugin.

Moving-average smoothing of individual sensors: each unit's first input
sensor is averaged over the configured window and written to the unit's
output.  With an exponential ``alpha`` parameter the plugin switches to
exponentially weighted smoothing, which weights recent readings higher —
useful ahead of threshold-based control operators to suppress spikes.

Params:
    ``alpha`` (float, optional): EWMA weight in (0, 1]; when absent a
        plain window mean is used.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.common.errors import ConfigError, QueryError
from repro.core.operator import OperatorBase, OperatorConfig, UnitResult
from repro.core.registry import operator_plugin
from repro.core.units import Unit


@operator_plugin("smoother")
class SmootherOperator(OperatorBase):
    """Window-mean or EWMA smoothing of a sensor stream."""

    @classmethod
    def flow_transforms(cls, params: dict) -> Dict[str, object]:
        # Smoothing is a weighted mean: units pass straight through.
        return {"*": "preserve"}

    def __init__(self, config: OperatorConfig) -> None:
        super().__init__(config)
        alpha = config.params.get("alpha")
        if alpha is not None and not (0.0 < float(alpha) <= 1.0):
            raise ConfigError(f"{config.name}: alpha must be in (0, 1]")
        self.alpha = float(alpha) if alpha is not None else None

    def compute_unit(self, unit: Unit, ts: int) -> Dict[str, float]:
        assert self.engine is not None
        if not unit.inputs:
            return {}
        view = self.engine.query_relative(unit.inputs[0], self.config.window_ns)
        values = view.values()
        if values.size == 0:
            return {}
        if self.alpha is None:
            smoothed = float(values.mean())
        else:
            # EWMA over the window, oldest first.
            weights = (1.0 - self.alpha) ** np.arange(len(values) - 1, -1, -1)
            smoothed = float((values * weights).sum() / weights.sum())
        return {sensor.name: smoothed for sensor in unit.outputs}

    # ------------------------------------------------------------------
    # Batched path
    # ------------------------------------------------------------------

    supports_batch = True
    #: compute_batch reads its BatchWindow without mutating it, so
    #: fused groups may serve this plugin zero-copy channel views.
    fusion_safe = True

    def compute_batch(self, units: Sequence[Unit], ts: int) -> List[UnitResult]:
        assert self.engine is not None
        # Only each unit's first input is smoothed, exactly as scalar.
        window, slices = self.batch_window(units, topics_of=_first_input)
        counts = window.counts
        rows = [s[0] if len(s) else -1 for s in slices]
        live = [r for r in rows if r >= 0]
        uniform = (
            len(live) == len(units)
            and len(live) > 0
            and counts[live].min() == counts[live].max()
            and counts[live[0]] > 0
        )
        if uniform:
            n = int(counts[live[0]])
            sub = window.values[np.asarray(live, dtype=np.intp), window.width - n:]
            if self.alpha is None:
                smoothed = sub.mean(axis=1)
            else:
                weights = (1.0 - self.alpha) ** np.arange(n - 1, -1, -1)
                smoothed = (sub * weights).sum(axis=1) / weights.sum()
            results = []
            for j, unit in enumerate(units):
                values = {s.name: float(smoothed[j]) for s in unit.outputs}
                if values:
                    results.append(UnitResult(unit, values))
            return results
        results = []
        for unit, r in zip(units, rows):
            if r < 0:
                continue  # no inputs: scalar returns {} for the unit
            if not counts[r]:
                self._record_unit_error(
                    unit,
                    QueryError(f"no data available for sensor {window.topics[r]}"),
                )
                continue
            values = window.row_values(r)
            if self.alpha is None:
                smoothed = float(values.mean())
            else:
                weights = (1.0 - self.alpha) ** np.arange(len(values) - 1, -1, -1)
                smoothed = float((values * weights).sum() / weights.sum())
            out = {s.name: smoothed for s in unit.outputs}
            if out:
                results.append(UnitResult(unit, out))
        return results

    def compute_batch_vector(self, units: Sequence[Unit], ts: int):
        """Uniform-pass vector kernel for fused intermediate stages.

        The same stacked mean/EWMA :meth:`compute_batch` runs on its
        uniform path, minus the per-unit dict packaging — bit-for-bit
        identical values, returned as one column aligned with
        ``units``.  Declines (None) whenever a unit lacks an input or
        windows are ragged, exactly where :meth:`compute_batch` leaves
        its uniform path.
        """
        window, slices = self.batch_window(units, topics_of=_first_input)
        rows = self._single_row_layout(slices)
        if rows is None or not len(rows):
            return None
        counts = window.counts[rows]
        n = int(counts[0])
        if n < 1 or (counts != n).any():
            return None
        sub = window.values[rows, window.width - n:]
        if self.alpha is None:
            return sub.mean(axis=1)
        weights = (1.0 - self.alpha) ** np.arange(n - 1, -1, -1)
        return (sub * weights).sum(axis=1) / weights.sum()


def _first_input(unit: Unit) -> List[str]:
    return unit.inputs[:1]
