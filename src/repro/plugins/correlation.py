"""Correlation-signature operator plugin.

Inspired by the CS-signatures plugin of the production Wintermute
release: a unit's *signature* is the vector of pairwise Pearson
correlations between its input sensors over the analysis window.
Correlation structure is a robust fingerprint of component behaviour —
e.g. power and temperature decorrelating on a node is an early fault
indicator (the fault-detection class of the paper's taxonomy), and
cross-sensor correlations feed anomaly detectors without unit-scale
normalisation issues.

Outputs are selected by naming the output sensors:

=====================  ==============================================
output name            value
=====================  ==============================================
``corr-mean``          mean of all pairwise correlations
``corr-min``           weakest pairwise correlation
``corr-<i>-<j>``       correlation between inputs ``i`` and ``j``
                       (0-based indexes in unit input order)
=====================  ==============================================
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

import numpy as np

from repro.common.errors import ConfigError
from repro.core.operator import OperatorBase, OperatorConfig
from repro.core.registry import operator_plugin
from repro.core.units import Unit

_PAIR_RE = re.compile(r"^corr-(\d+)-(\d+)$")


@operator_plugin("correlation")
class CorrelationOperator(OperatorBase):
    """Pairwise correlation signatures over each unit's input windows.

    Params:
        ``min_samples`` (int): minimum overlapping readings per sensor
            window before a signature is emitted (default 8).
    """

    @classmethod
    def flow_transforms(cls, params: dict) -> Dict[str, object]:
        # Correlation coefficients are pure numbers.
        return {"*": "dimensionless"}

    def __init__(self, config: OperatorConfig) -> None:
        super().__init__(config)
        if config.window_ns <= 0:
            raise ConfigError(
                f"{config.name}: correlation needs a positive window"
            )
        self.min_samples = int(config.params.get("min_samples", 8))
        if self.min_samples < 3:
            raise ConfigError(f"{config.name}: min_samples must be >= 3")

    def _windows(self, unit: Unit) -> Optional[np.ndarray]:
        """Stacked per-sensor windows truncated to a common length."""
        assert self.engine is not None
        columns: List[np.ndarray] = []
        for topic in unit.inputs:
            view = self.engine.query_relative(topic, self.config.window_ns)
            values = view.values()
            if len(values) < self.min_samples:
                return None
            columns.append(values)
        n = min(len(c) for c in columns)
        return np.vstack([c[-n:] for c in columns])

    def compute_unit(self, unit: Unit, ts: int) -> Dict[str, float]:
        if len(unit.inputs) < 2:
            raise ConfigError(
                f"{self.name}: unit {unit.name} needs >= 2 inputs for a "
                f"correlation signature"
            )
        data = self._windows(unit)
        if data is None:
            return {}
        with np.errstate(invalid="ignore"):
            corr = np.corrcoef(data)
        k = len(unit.inputs)
        iu = np.triu_indices(k, 1)
        pairs = corr[iu]
        # Constant windows produce NaN correlations; define them as 0
        # (no linear relationship observable).
        pairs = np.nan_to_num(pairs, nan=0.0)
        out: Dict[str, float] = {}
        for sensor in unit.outputs:
            name = sensor.name
            if name == "corr-mean":
                out[name] = float(pairs.mean())
            elif name == "corr-min":
                out[name] = float(pairs.min())
            else:
                match = _PAIR_RE.match(name)
                if match is None:
                    raise ConfigError(
                        f"{self.name}: unknown correlation output {name!r}"
                    )
                i, j = int(match.group(1)), int(match.group(2))
                if not (0 <= i < k and 0 <= j < k and i != j):
                    raise ConfigError(
                        f"{self.name}: pair ({i},{j}) outside the unit's "
                        f"{k} inputs"
                    )
                value = corr[i, j]
                out[name] = float(0.0 if np.isnan(value) else value)
        return out
