"""MQTT-style sensor topics.

Sensor keys in DCDB are forward-slash separated strings that express the
physical or logical placement of a sensor in the HPC system, e.g.::

    /rack4/chassis2/server3/power

The last segment names the sensor itself; the preceding path names the
component it belongs to (Section III-A of the paper).  This module
implements parsing, normalisation and MQTT wildcard matching (``+`` for a
single level, ``#`` for a multi-level suffix).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.common.errors import TopicError

SEP = "/"

_SINGLE_WILDCARD = "+"
_MULTI_WILDCARD = "#"


def split_topic(topic: str) -> List[str]:
    """Split a topic into its non-empty segments.

    Raises :class:`TopicError` if the topic is empty or contains empty
    segments (``//``) anywhere but as the leading/trailing slash.
    """
    if not topic:
        raise TopicError("empty topic")
    parts = [p for p in topic.strip(SEP).split(SEP)]
    if not parts or any(p == "" for p in parts):
        raise TopicError(f"malformed topic: {topic!r}")
    return parts


def join_topic(parts: Sequence[str]) -> str:
    """Join segments into a canonical, leading-slash topic string."""
    for p in parts:
        if not p or SEP in p:
            raise TopicError(f"invalid topic segment: {p!r}")
    return SEP + SEP.join(parts)


def normalize_topic(topic: str) -> str:
    """Return the canonical form: leading slash, no trailing slash."""
    return join_topic(split_topic(topic))


def topic_depth(topic: str) -> int:
    """Number of segments in the topic."""
    return len(split_topic(topic))


def sensor_name(topic: str) -> str:
    """The final segment, i.e. the sensor's own name."""
    return split_topic(topic)[-1]


def component_path(topic: str) -> str:
    """The topic of the component owning the sensor (all but the last
    segment).  For a single-segment topic this is the root ``/``."""
    parts = split_topic(topic)
    if len(parts) == 1:
        return SEP
    return join_topic(parts[:-1])


def is_ancestor(ancestor: str, descendant: str) -> bool:
    """Whether ``ancestor`` is a strict prefix path of ``descendant``.

    The root ``/`` is an ancestor of every other topic.
    """
    if ancestor.strip(SEP) == "":
        return descendant.strip(SEP) != ""
    a = split_topic(ancestor)
    d = split_topic(descendant)
    return len(a) < len(d) and d[: len(a)] == a


def topic_matches(pattern: str, topic: str) -> bool:
    """MQTT-style wildcard match of ``topic`` against ``pattern``.

    ``+`` matches exactly one level; ``#`` matches any suffix (including
    an empty one) and must be the final segment of the pattern.
    """
    pparts = split_topic(pattern)
    tparts = split_topic(topic)
    if _MULTI_WILDCARD in pparts[:-1]:
        raise TopicError(f"'#' must be the last pattern segment: {pattern!r}")
    for i, pp in enumerate(pparts):
        if pp == _MULTI_WILDCARD:
            return True
        if i >= len(tparts):
            return False
        if pp != _SINGLE_WILDCARD and pp != tparts[i]:
            return False
    return len(pparts) == len(tparts)
