"""Nanosecond timestamp arithmetic.

DCDB stores every sensor reading with a 64-bit nanosecond epoch timestamp;
all internal APIs in this reproduction follow the same convention.  Plain
Python ints are used (they are exact and cheap), while bulk timestamp
columns inside caches and the storage backend are ``numpy.int64`` arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000


def from_seconds(seconds: float) -> int:
    """Convert seconds to an integer nanosecond count."""
    return int(round(seconds * NS_PER_SEC))


def from_millis(millis: float) -> int:
    """Convert milliseconds to an integer nanosecond count."""
    return int(round(millis * NS_PER_MS))


def to_seconds(ns: int) -> float:
    """Convert a nanosecond count to float seconds."""
    return ns / NS_PER_SEC


def to_millis(ns: int) -> float:
    """Convert a nanosecond count to float milliseconds."""
    return ns / NS_PER_MS


@dataclass(frozen=True)
class Interval:
    """A half-open time range ``[start, end)`` in nanoseconds.

    Used by the Query Engine for absolute-timestamp queries and by the
    storage backend for range scans.  ``start`` must not exceed ``end``.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise ValueError(
                f"interval start {self.start} exceeds end {self.end}"
            )

    @property
    def span(self) -> int:
        """Length of the interval in nanoseconds."""
        return self.end - self.start

    def contains(self, ts: int) -> bool:
        """Whether ``ts`` falls inside the half-open range."""
        return self.start <= ts < self.end

    def overlaps(self, other: "Interval") -> bool:
        """Whether two half-open intervals intersect."""
        return self.start < other.end and other.start < self.end

    def clamp(self, ts: int) -> int:
        """Clamp ``ts`` into ``[start, end]``."""
        return min(max(ts, self.start), self.end)
