"""Terminal plotting helpers for examples and benchmark reports.

The original paper presents its evaluation as figures; this reproduction
prints the same series to the terminal.  Two primitives cover the needs:
``sparkline`` compresses a series into one line of block characters, and
``ascii_plot`` renders a multi-series line chart in a character grid.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

_BLOCKS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line intensity strip of a series, resampled to ``width``."""
    v = np.asarray(values, dtype=np.float64)
    v = v[np.isfinite(v)]
    if v.size == 0:
        return ""
    if v.size > width:
        edges = np.linspace(0, v.size, width + 1).astype(int)
        v = np.array([v[a:b].mean() for a, b in zip(edges[:-1], edges[1:])])
    lo, hi = float(v.min()), float(v.max())
    span = hi - lo if hi > lo else 1.0
    idx = ((v - lo) / span * (len(_BLOCKS) - 1)).astype(int)
    return "".join(_BLOCKS[i] for i in idx)


def ascii_plot(
    series: Dict[str, Sequence[float]],
    width: int = 72,
    height: int = 14,
    y_range: Optional[tuple] = None,
    title: str = "",
) -> str:
    """Render one or more series as an ASCII line chart.

    Each series gets a marker character (``*+o#xs`` in order); the
    y-axis is annotated with the range.  Series are resampled to the
    plot width, so arbitrary lengths work.
    """
    markers = "*+o#xs%&"
    grid = [[" "] * width for _ in range(height)]
    finite = [
        np.asarray(v, dtype=np.float64)[
            np.isfinite(np.asarray(v, dtype=np.float64))
        ]
        for v in series.values()
    ]
    finite = [v for v in finite if v.size]
    if not finite:
        return "(no data)"
    if y_range is None:
        lo = min(float(v.min()) for v in finite)
        hi = max(float(v.max()) for v in finite)
    else:
        lo, hi = y_range
    span = hi - lo if hi > lo else 1.0
    for (name, values), marker in zip(series.items(), markers):
        v = np.asarray(values, dtype=np.float64)
        if v.size == 0:
            continue
        if v.size > width:
            edges = np.linspace(0, v.size, width + 1).astype(int)
            v = np.array(
                [
                    v[a:b][np.isfinite(v[a:b])].mean()
                    if np.isfinite(v[a:b]).any()
                    else np.nan
                    for a, b in zip(edges[:-1], edges[1:])
                ]
            )
        xs = np.linspace(0, width - 1, v.size).astype(int)
        for x, value in zip(xs, v):
            if not np.isfinite(value):
                continue
            y = int(round((value - lo) / span * (height - 1)))
            y = min(max(y, 0), height - 1)
            grid[height - 1 - y][x] = marker
    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), markers)
    )
    lines.append(f"{hi:>10.2f} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{lo:>10.2f} +" + "-" * width)
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
