"""Exception hierarchy for the Wintermute reproduction.

Every exception raised by this library derives from :class:`ReproError`,
so callers embedding the framework (e.g. a Pusher main loop) can catch a
single base class at component boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TopicError(ReproError):
    """An invalid sensor topic string (empty segments, bad characters)."""


class ConfigError(ReproError):
    """A malformed configuration block for a plugin, operator or host.

    When raised by validation that inspects a whole block before giving
    up (the configurator, the static analyzer), ``diagnostics`` carries
    every individual finding as a list of
    :class:`repro.analysis.diagnostics.Diagnostic` records, so callers
    can report all problems of a block at once rather than one per
    attempt.
    """

    def __init__(self, message: str, diagnostics=None):
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])


class LinkDownError(ReproError):
    """A publish was refused because the network link is down.

    Raised by :class:`repro.dcdb.network.NetworkConditions` while a
    scheduled outage or partition covers the destination: the message is
    *refused* back to the producer (which may buffer and retry), never
    silently dropped.  ``until_ns`` carries the end of the refusing
    down-window when known; ``refused`` carries the messages that were
    not delivered (for ``publish_batch``, the refused subset).
    """

    def __init__(self, message: str, until_ns=None, refused=None):
        super().__init__(message)
        self.until_ns = until_ns
        self.refused = list(refused or [])


class QueryError(ReproError):
    """A Query Engine request that cannot be satisfied.

    Raised for unknown sensors, inverted time ranges, or queries issued
    before the engine has been wired to a data source.
    """


class PluginError(ReproError):
    """A plugin failed to load, start, stop or compute."""


class UnitResolutionError(ReproError):
    """A pattern unit could not be resolved against the sensor tree.

    Per Section III-B of the paper, a unit whose pattern expressions match
    no tree node "cannot be built"; this error carries which expression
    failed and for which unit name.
    """


class StorageError(ReproError):
    """The storage backend rejected an insert or a range query."""
