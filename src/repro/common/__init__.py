"""Shared low-level utilities for the Wintermute reproduction.

This package holds the primitives every other subsystem builds on:

- :mod:`repro.common.timeutil` -- nanosecond timestamps and intervals,
  mirroring DCDB's convention of 64-bit nanosecond epochs.
- :mod:`repro.common.topics` -- MQTT-style, slash-separated sensor topics
  and wildcard matching.
- :mod:`repro.common.errors` -- the exception hierarchy.
- :mod:`repro.common.rng` -- deterministic random-number helpers so that
  simulations, tests and benchmarks are reproducible.
"""

from repro.common.errors import (
    ReproError,
    TopicError,
    ConfigError,
    QueryError,
    PluginError,
    UnitResolutionError,
    StorageError,
)
from repro.common.timeutil import (
    NS_PER_US,
    NS_PER_MS,
    NS_PER_SEC,
    Interval,
    from_seconds,
    from_millis,
    to_seconds,
    to_millis,
)
from repro.common.topics import (
    SEP,
    join_topic,
    split_topic,
    normalize_topic,
    topic_depth,
    sensor_name,
    component_path,
    is_ancestor,
    topic_matches,
)
from repro.common.rng import make_rng, spawn_rng, derive_seed

__all__ = [
    "ReproError",
    "TopicError",
    "ConfigError",
    "QueryError",
    "PluginError",
    "UnitResolutionError",
    "StorageError",
    "NS_PER_US",
    "NS_PER_MS",
    "NS_PER_SEC",
    "Interval",
    "from_seconds",
    "from_millis",
    "to_seconds",
    "to_millis",
    "SEP",
    "join_topic",
    "split_topic",
    "normalize_topic",
    "topic_depth",
    "sensor_name",
    "component_path",
    "is_ancestor",
    "topic_matches",
    "make_rng",
    "spawn_rng",
    "derive_seed",
]
