"""Deterministic random-number helpers.

Simulations, ML models and benchmarks all draw randomness through NumPy
``Generator`` objects created here, so a single seed reproduces an entire
experiment.  Child generators are spawned with stable string-derived keys
rather than ad-hoc integer offsets, which keeps streams independent even
when components are added or removed.
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

DEFAULT_SEED = 0xDCDB


def make_rng(seed: Optional[int] = None) -> np.random.Generator:
    """Create a root generator; ``None`` uses the library default seed."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def derive_seed(parent_seed: int, key: str) -> int:
    """Derive a stable 63-bit child seed from a parent seed and string key.

    The key is hashed so that e.g. per-node streams (``key='/r0/c0/s3'``)
    do not collide and do not depend on creation order.
    """
    digest = hashlib.sha256(f"{parent_seed}:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "little") >> 1


def spawn_rng(parent_seed: int, key: str) -> np.random.Generator:
    """Derive an independent generator from ``parent_seed`` and a string key."""
    return np.random.default_rng(derive_seed(parent_seed, key))
