"""Opt-in runtime concurrency sanitizer (R-series rules).

The dynamic counterpart of :mod:`repro.analysis`: where the static pass
lints for concurrency hazards (L-rules), the sanitizer *observes* them —
it runs a bounded simulation with instrumentation injected at seams in
the operator base class, the Query Engine, the sensor tree and the
wall-clock driver, and reports what actually happened as structured
:class:`~repro.analysis.diagnostics.Diagnostic` records with stable
``R001``–``R010`` codes.

Three analysis families:

- **lock-order tracking** (:mod:`repro.sanitizer.locks`) — per-thread
  acquisition stacks feed a global lock-order graph; cycles are
  potential deadlocks (R001), plus hold-across-blocking-call (R002) and
  long-hold (R003) violations;
- **unit-state race detection** (:mod:`repro.sanitizer.race`) — a
  happens-before-lite checker over operator model and self-state
  accesses in parallel unit mode (R004, R005);
- **invariant sanitizers** (:mod:`repro.sanitizer.invariants`) — cache
  write monotonicity (R006), query snapshot immutability (R007),
  sensor-tree read-only-after-build (R008), wall-clock discipline
  (R009) and out-of-order data loss (R010).

Activation is strictly opt-in: ``wintermute-sim check --runtime
<config>`` or ``WINTERMUTE_SANITIZE=1``.  When off, every seam costs one
module-attribute load and an ``is None`` branch (see
:mod:`repro.sanitizer.hooks`) — the Fig 5 benchmark asserts this.

Only the dependency-free hook module is imported eagerly; everything
else resolves lazily so production modules importing
:mod:`repro.sanitizer.hooks` never pull in the analysis stack.
"""

from repro.sanitizer import hooks

__all__ = [
    "hooks",
    "RUNTIME_CODES",
    "RUNTIME_RULES",
    "Sanitizer",
    "make_sanitizer",
    "TrackedLock",
    "RuntimeCheckResult",
    "run_runtime_check",
    "run_deployment_sanitized",
    "DEFAULT_DURATION_S",
]

_LAZY = {
    "RUNTIME_CODES": "repro.sanitizer.core",
    "RUNTIME_RULES": "repro.sanitizer.core",
    "Sanitizer": "repro.sanitizer.core",
    "make_sanitizer": "repro.sanitizer.core",
    "TrackedLock": "repro.sanitizer.locks",
    "RuntimeCheckResult": "repro.sanitizer.runner",
    "run_runtime_check": "repro.sanitizer.runner",
    "run_deployment_sanitized": "repro.sanitizer.runner",
    "DEFAULT_DURATION_S": "repro.sanitizer.runner",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
