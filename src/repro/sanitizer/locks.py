"""Lock-order tracking: instrumented locks and the global order graph.

Deadlocks need two ingredients: at least two locks, and two threads
acquiring them in opposite orders.  Rather than hoping the unlucky
interleaving shows up in a test, :class:`TrackedLock` records every
*nested* acquisition — "thread T acquired B while holding A" — as a
directed edge A→B in a process-global :class:`LockOrderGraph`.  Any
cycle in that graph is a potential deadlock (rule R001), regardless of
whether the fatal interleaving actually occurred during the run; this is
the classic lock-order (``lockdep``-style) discipline check.

Two further per-lock observations ride along:

- **hold time** — a lock held longer than the configured threshold
  (wall-clock) starves every thread contending on it (rule R003);
- **blocking calls under a lock** — recorded by the sanitizer when a
  blocking marker (``time.sleep``, ``Thread.join``, file I/O) fires
  while the calling thread holds tracked locks (rule R002).

All bookkeeping is guarded by one plain (untracked) internal mutex; the
per-thread held-lock stack lives in a ``threading.local`` so the fast
path never contends on shared state.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


def _caller_site(limit: int = 16) -> str:
    """``file:line`` of the nearest caller outside the sanitizer.

    Walks past every sanitizer-internal frame (including the patched
    ``time.sleep`` shim), so violations are attributed to the production
    call site that triggered them.
    """
    stack = traceback.extract_stack(limit=limit)
    for frame in reversed(stack):
        filename = frame.filename.replace("\\", "/")
        if "/sanitizer/" in filename:
            continue
        return f"{frame.filename}:{frame.lineno}"
    return "<unknown>"


@dataclass
class LockEdge:
    """Observed order: some thread took ``dst`` while holding ``src``."""

    src: str
    dst: str
    count: int = 0
    #: ``file:line`` of the first acquisition that created the edge.
    first_site: str = ""
    threads: Set[str] = field(default_factory=set)


class LockOrderGraph:
    """Directed graph over lock names; cycles are potential deadlocks."""

    def __init__(self) -> None:
        self._edges: Dict[Tuple[str, str], LockEdge] = {}
        self._mutex = threading.Lock()

    def add_edge(self, src: str, dst: str, thread_name: str, site: str) -> None:
        """Record one nested acquisition ``src`` → ``dst``."""
        with self._mutex:
            edge = self._edges.get((src, dst))
            if edge is None:
                edge = self._edges[(src, dst)] = LockEdge(
                    src, dst, first_site=site
                )
            edge.count += 1
            edge.threads.add(thread_name)

    def edges(self) -> List[LockEdge]:
        """All recorded edges (stable order)."""
        with self._mutex:
            return [self._edges[k] for k in sorted(self._edges)]

    def cycles(self) -> List[List[str]]:
        """Every elementary cycle, canonicalised and deduplicated.

        The graphs here are tiny (one node per lock *name*), so a plain
        DFS over all simple paths is ample.  Each cycle is rotated to
        start at its lexicographically smallest node so that ``A→B→A``
        and ``B→A→B`` report once.
        """
        with self._mutex:
            adjacency: Dict[str, List[str]] = {}
            for src, dst in self._edges:
                adjacency.setdefault(src, []).append(dst)
                adjacency.setdefault(dst, [])
        seen: Set[Tuple[str, ...]] = set()
        out: List[List[str]] = []

        def visit(node: str, path: List[str]) -> None:
            for nxt in sorted(adjacency.get(node, ())):
                if nxt in path:
                    cycle = path[path.index(nxt):]
                    i = cycle.index(min(cycle))
                    canon = tuple(cycle[i:] + cycle[:i])
                    if canon not in seen:
                        seen.add(canon)
                        out.append(list(canon))
                    continue
                visit(nxt, path + [nxt])

        for start in sorted(adjacency):
            visit(start, [start])
        return sorted(out)

    def edge(self, src: str, dst: str) -> Optional[LockEdge]:
        """The recorded edge ``src``→``dst``, if any."""
        with self._mutex:
            return self._edges.get((src, dst))


class _HeldLock:
    """One entry in a thread's held-lock stack."""

    __slots__ = ("lock", "acquired_ns", "site")

    def __init__(self, lock: "TrackedLock", acquired_ns: int, site: str):
        self.lock = lock
        self.acquired_ns = acquired_ns
        self.site = site


class TrackedLock:
    """Drop-in ``threading.Lock`` replacement feeding the sanitizer.

    Non-reentrant, like the lock it wraps: re-acquiring a TrackedLock
    the current thread already holds is reported as an immediate
    self-deadlock *before* the call blocks forever — the sanitizer's
    bounded runs must never hang on the bug they are hunting.
    """

    def __init__(self, name: str, sanitizer) -> None:
        self.name = name
        self._inner = threading.Lock()
        self._san = sanitizer

    # -- threading.Lock API --------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        san = self._san
        site = _caller_site()
        if san is not None and san.on_lock_wait(self, site):
            # Self-deadlock: the sanitizer already reported it; refuse
            # to block forever so the bounded run can finish.
            return False
        ok = self._inner.acquire(blocking, timeout)  # wintermute: ignore[S005]
        if ok and san is not None:
            san.on_lock_acquired(self, site)
        return ok

    def release(self) -> None:
        if self._san is not None:
            self._san.on_lock_released(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrackedLock({self.name!r})"


class LockTracker:
    """Per-thread held-lock stacks plus the shared order graph.

    Owned by the sanitizer; :class:`TrackedLock` calls in through the
    sanitizer's ``on_lock_*`` hooks so all lock telemetry is in one
    place.
    """

    def __init__(self, long_hold_ns: int) -> None:
        self.graph = LockOrderGraph()
        self.long_hold_ns = int(long_hold_ns)
        self._tls = threading.local()
        self._mutex = threading.Lock()
        #: (lock name, hold ns, site) of holds exceeding the threshold.
        self.long_holds: List[Tuple[str, int, str]] = []
        #: (blocking description, held lock names, site) violations.
        self.blocking_under_lock: List[Tuple[str, Tuple[str, ...], str]] = []
        self.self_deadlocks: List[Tuple[str, str]] = []
        self.acquisitions = 0
        #: every lock name acquired at least once (graph node universe).
        self._names_seen: Set[str] = set()

    def _held(self) -> List[_HeldLock]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = self._tls.held = []
        return held

    # -- hooks ----------------------------------------------------------

    def on_wait(self, lock: TrackedLock, site: str) -> bool:
        """Record ordering intent; True means a self-deadlock was found."""
        held = self._held()
        thread = threading.current_thread().name
        for entry in held:
            if entry.lock is lock:
                with self._mutex:
                    self.self_deadlocks.append((lock.name, site))
                return True
            self.graph.add_edge(entry.lock.name, lock.name, thread, site)
        return False

    def on_acquired(self, lock: TrackedLock, site: str) -> None:
        self._held().append(_HeldLock(lock, time.perf_counter_ns(), site))
        with self._mutex:
            self.acquisitions += 1
            self._names_seen.add(lock.name)

    def names_seen(self) -> Set[str]:
        """Names of every lock acquired during the run."""
        with self._mutex:
            return set(self._names_seen)

    def on_released(self, lock: TrackedLock) -> None:
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i].lock is lock:
                entry = held.pop(i)
                hold_ns = time.perf_counter_ns() - entry.acquired_ns
                if hold_ns > self.long_hold_ns:
                    with self._mutex:
                        self.long_holds.append(
                            (lock.name, hold_ns, entry.site)
                        )
                return

    def on_blocking(self, description: str) -> None:
        held = self._held()
        if not held:
            return
        names = tuple(entry.lock.name for entry in held)
        site = _caller_site()
        with self._mutex:
            self.blocking_under_lock.append((description, names, site))

    def held_locks(self) -> Tuple[str, ...]:
        """Names of the locks the calling thread currently holds."""
        return tuple(entry.lock.name for entry in self._held())
