"""The runtime concurrency sanitizer (R-series rules).

:class:`Sanitizer` aggregates the three analysis families — lock-order
tracking (:mod:`repro.sanitizer.locks`), unit-state race detection
(:mod:`repro.sanitizer.race`) and invariant verification
(:mod:`repro.sanitizer.invariants`) — behind the hook interface that the
production seams call through :data:`repro.sanitizer.hooks.CURRENT`.

Findings are emitted as the same structured
:class:`~repro.analysis.diagnostics.Diagnostic` records the static pass
produces, under stable ``R001``–``R010`` codes (catalog below and in
``docs/STATIC_ANALYSIS.md``), so the CLI renders text/JSON and computes
exit codes with the exact same machinery.

Event volumes are counted in a dedicated telemetry registry
(``sanitizer_*`` metrics) that runtime checks absorb into the
deployment's Collect Agent registry, making sanitizer activity visible
on the same ``GET /metrics`` surface as everything else.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.analysis.diagnostics import (
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    sort_key,
)
from repro.sanitizer import hooks
from repro.sanitizer.invariants import (
    TimePatch,
    TreeWatch,
    ViewTracker,
    iter_host_caches,
    scan_cache,
)
from repro.sanitizer.locks import LockTracker, TrackedLock
from repro.sanitizer.race import RaceTracker
from repro.telemetry import MetricRegistry

#: R-series rule catalog: code -> (severity, summary).  Messages carry
#: the finding detail; the summary here feeds docs and ``--explain``
#: style tooling.
RUNTIME_RULES: Dict[str, Tuple[str, str]] = {
    "R001": (ERROR, "lock-order cycle (potential deadlock)"),
    "R002": (ERROR, "lock held across a blocking call"),
    "R003": (WARNING, "lock held longer than the hold threshold"),
    "R004": (ERROR, "model shared across units in parallel unit mode"),
    "R005": (ERROR, "operator self-state mutated during parallel compute"),
    "R006": (ERROR, "cache timestamp order violated"),
    "R007": (ERROR, "query result mutated after hand-out"),
    "R008": (ERROR, "sensor tree mutated after build"),
    "R009": (ERROR, "wall-clock read in clock-disciplined code"),
    "R010": (WARNING, "out-of-order readings dropped during the run"),
}

RUNTIME_CODES = tuple(sorted(RUNTIME_RULES))

#: Default R003 threshold: a lock held for more than this many
#: milliseconds of wall time stalls every contender noticeably at the
#: paper's 1 s sampling intervals.
DEFAULT_LONG_HOLD_MS = 50.0


def _relsite(site: str) -> Tuple[str, int]:
    """Split ``file:line`` and strip the path to repo-relative form."""
    file, _, line = site.rpartition(":")
    file = file.replace("\\", "/")
    for anchor in ("src/repro/", "repro/"):
        idx = file.find(anchor)
        if idx >= 0:
            file = "src/repro/" + file[idx + len(anchor):]
            break
    else:
        file = file.rsplit("/", 1)[-1]
    try:
        return file, int(line)
    except ValueError:
        return file, 0


class Sanitizer:
    """Collects runtime evidence and renders it as R-series diagnostics.

    Args:
        long_hold_ms: wall-clock threshold for rule R003.
        track_wall_clock: install the ``time.time``/``monotonic``/
            ``sleep`` shims while active (rule R009 + sleep-as-blocking).
    """

    def __init__(
        self,
        long_hold_ms: float = DEFAULT_LONG_HOLD_MS,
        track_wall_clock: bool = True,
    ) -> None:
        self.locks = LockTracker(long_hold_ns=int(long_hold_ms * 1e6))
        self.races = RaceTracker()
        self.views = ViewTracker()
        self.tree_watch = TreeWatch()
        self.track_wall_clock = bool(track_wall_clock)
        self._timepatch = TimePatch(self)
        self._mutex = threading.Lock()
        self._passes = 0
        #: Extra diagnostics recorded directly (deployment scans).
        self._extra: List[Diagnostic] = []

        self.telemetry = MetricRegistry()
        self._m_locks = self.telemetry.counter(
            "sanitizer_lock_acquisitions_total"
        )
        self._m_blocking = self.telemetry.counter(
            "sanitizer_blocking_calls_total"
        )
        self._m_models = self.telemetry.counter(
            "sanitizer_model_accesses_total"
        )
        self._m_views = self.telemetry.counter("sanitizer_views_tracked_total")
        self._m_passes = self.telemetry.counter("sanitizer_passes_total")
        self._m_wall = self.telemetry.counter(
            "sanitizer_wall_clock_reads_total"
        )

    # ------------------------------------------------------------------
    # Activation
    # ------------------------------------------------------------------

    @contextmanager
    def activate(self):
        """Install this sanitizer as :data:`hooks.CURRENT` (exclusive)."""
        if hooks.CURRENT is not None:
            raise RuntimeError("another sanitizer is already active")
        hooks.CURRENT = self
        if self.track_wall_clock:
            self._timepatch.install()
        try:
            yield self
        finally:
            if self.track_wall_clock:
                self._timepatch.uninstall()
            hooks.CURRENT = None

    # ------------------------------------------------------------------
    # Hook interface (called from seams via hooks.CURRENT)
    # ------------------------------------------------------------------

    def make_lock(self, name: str) -> TrackedLock:
        """An instrumented lock participating in order tracking."""
        return TrackedLock(name, self)

    def on_lock_wait(self, lock: TrackedLock, site: str) -> bool:
        return self.locks.on_wait(lock, site)

    def on_lock_acquired(self, lock: TrackedLock, site: str) -> None:
        self.locks.on_acquired(lock, site)
        self._m_locks.inc()

    def on_lock_released(self, lock: TrackedLock) -> None:
        self.locks.on_released(lock)

    def on_blocking_call(self, description: str) -> None:
        self._m_blocking.inc()
        self.locks.on_blocking(description)

    def begin_pass(self, operator) -> None:
        """An operator starts a compute pass."""
        self._m_passes.inc()

    def end_pass(self, operator) -> None:
        """An operator finished a pass: settle per-pass trackers."""
        self.races.end_pass(operator.name)
        self.views.verify()
        with self._mutex:
            self._passes += 1

    def on_model_access(self, operator, unit, model) -> None:
        if model is None:
            return
        self._m_models.inc()
        self.races.on_model_access(
            operator.name,
            operator.config.unit_mode == "parallel",
            unit.name,
            id(model),
        )

    def watch_unit_compute(self, operator, unit, thunk):
        """Run ``thunk`` (a ``compute_unit`` call), diffing self-state.

        In parallel unit mode an operator's ``__dict__`` must not be
        rebound from inside a unit computation — that is exactly the
        unsynchronised shared write lint rule L004 warns about, observed
        live (rule R005).
        """
        if operator.config.unit_mode != "parallel":
            return thunk()
        before = {k: id(v) for k, v in operator.__dict__.items()}
        try:
            return thunk()
        finally:
            after = {k: id(v) for k, v in operator.__dict__.items()}
            changed = tuple(
                k for k in sorted(set(before) | set(after))
                if before.get(k) != after.get(k)
            )
            if changed:
                self.races.on_self_mutation(
                    operator.name, unit.name, changed
                )

    def on_query_view(self, topic: str, view) -> None:
        self._m_views.inc()
        self.views.on_view(topic, view)

    def on_tree_mutation(self, action: str, topic: str) -> None:
        self.tree_watch.on_mutation(action, topic)

    # ------------------------------------------------------------------
    # Deployment scans (post-run invariants)
    # ------------------------------------------------------------------

    def check_deployment(self, deployment) -> None:
        """Scan a deployment's caches for order violations and drops."""
        for host, topic, cache in iter_host_caches(deployment):
            order, stale = scan_cache(host, topic, cache)
            where = f"hosts.{host}.caches.{topic}"
            if order is not None:
                self._add_extra(
                    "R006",
                    f"cache timestamp order violated: {order.detail} "
                    "(binary-search invariant broken)",
                    path=where,
                )
            if stale is not None:
                self._add_extra(
                    "R010",
                    f"{stale.drops} out-of-order reading(s) dropped "
                    "(stale data discarded to protect cache ordering)",
                    path=where,
                )

    def _add_extra(self, code: str, message: str, *, path: str = "",
                   file: str = "", line: int = 0) -> None:
        severity = RUNTIME_RULES[code][0]
        with self._mutex:
            self._extra.append(Diagnostic(
                code=code, severity=severity, message=message,
                path=path, file=file, line=line,
            ))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def finish(self) -> List[Diagnostic]:
        """All findings as deduplicated, deterministically sorted
        diagnostics.

        Races and invariant breaches typically fire on every compute
        pass; findings are deduplicated on (code, path, file, message)
        so a 60-pass run reports each distinct defect once.
        """
        self.views.verify()
        out: List[Diagnostic] = []

        for cycle in self.locks.graph.cycles():
            chain = " -> ".join(cycle + [cycle[0]])
            edge = self.locks.graph.edge(cycle[0], cycle[1 % len(cycle)])
            file, line = (
                _relsite(edge.first_site) if edge is not None else ("", 0)
            )
            out.append(self._diag(
                "R001",
                f"lock-order cycle {chain}: threads acquire these locks "
                "in conflicting orders (potential deadlock)",
                path="locks." + ".".join(cycle),
                file=file, line=line,
            ))
        for name, site in self.locks.self_deadlocks:
            file, line = _relsite(site)
            out.append(self._diag(
                "R001",
                f"lock {name} re-acquired by the thread already holding "
                "it (guaranteed self-deadlock)",
                path=f"locks.{name}",
                file=file, line=line,
            ))
        for description, held, site in self.locks.blocking_under_lock:
            file, line = _relsite(site)
            out.append(self._diag(
                "R002",
                f"blocking call ({description}) while holding "
                f"lock(s) {', '.join(held)}",
                path="locks." + ".".join(held),
                file=file, line=line,
            ))
        for name, hold_ns, site in self.locks.long_holds:
            file, line = _relsite(site)
            out.append(self._diag(
                "R003",
                f"lock {name} held for {hold_ns / 1e6:.0f} ms "
                f"(threshold {self.locks.long_hold_ns / 1e6:.0f} ms)",
                path=f"locks.{name}",
                file=file, line=line,
            ))
        for race in self.races.model_races:
            out.append(self._diag(
                "R004",
                f"operator {race.operator}: one model instance shared by "
                f"units {', '.join(race.units)} in parallel unit mode "
                "(unsynchronised concurrent mutation)",
                path=f"operators.{race.operator}.model",
            ))
        mutated: Dict[Tuple[str, Tuple[str, ...]], set] = {}
        for mut in self.races.self_mutations:
            mutated.setdefault((mut.operator, mut.attrs), set()).add(mut.unit)
        for (op_name, attrs), units in sorted(mutated.items()):
            out.append(self._diag(
                "R005",
                f"operator {op_name}: attribute(s) {', '.join(attrs)} "
                f"rebound during parallel unit compute "
                f"({len(units)} unit(s) affected)",
                path=f"operators.{op_name}.state",
            ))
        for violation in self.views.violations:
            out.append(self._diag(
                "R007",
                f"query result for {violation.topic} mutated after "
                f"hand-out: {violation.detail}",
                path=f"views.{violation.topic}",
            ))
        for mutation in self.tree_watch.mutations:
            out.append(self._diag(
                "R008",
                f"sensor tree mutated after build: "
                f"{mutation.action}({mutation.topic})",
                path=f"tree.{mutation.topic}",
            ))
        for read in self._timepatch.reads:
            file, line = _relsite(f"{read.file}:{read.line}")
            out.append(self._diag(
                "R009",
                f"{read.func}() read from clock-disciplined code at "
                "runtime (simulation must use the simulated clock)",
                path="clock",
                file=file, line=line,
            ))
        with self._mutex:
            out.extend(self._extra)

        # Dedup: recurring per-pass findings collapse to one record.
        seen = set()
        unique: List[Diagnostic] = []
        for diag in out:
            key = (diag.code, diag.path, diag.file, diag.message)
            if key not in seen:
                seen.add(key)
                unique.append(diag)
        findings = self.telemetry.counter  # labels per code, lazily
        for diag in unique:
            findings("sanitizer_findings_total", code=diag.code).inc()
        return sorted(unique, key=sort_key)

    def _diag(self, code: str, message: str, *, path: str = "",
              file: str = "", line: int = 0) -> Diagnostic:
        return Diagnostic(
            code=code, severity=RUNTIME_RULES[code][0], message=message,
            path=path, file=file, line=line,
        )

    # ------------------------------------------------------------------

    def event_summary(self) -> Dict[str, int]:
        """Instrumentation volume (how much the run actually exercised)."""
        with self._mutex:
            passes = self._passes
        return {
            "lock_acquisitions": self.locks.acquisitions,
            "blocking_calls": int(self._m_blocking.value),
            "model_accesses": self.races.model_accesses,
            "views_tracked": self.views.views_seen,
            "compute_passes": passes,
            "wall_clock_reads": self._timepatch.wall_clock_reads,
        }

    def lockdep_export(self) -> Dict[str, list]:
        """The observed lockdep graph, comparable to the static one.

        Same shape as ``repro.analysis.concurrency
        .static_lock_order_graph``: every lock *name* this run acquired
        plus every nested-acquisition edge.  The cross-validation test
        asserts the static graph is a superset, so the two analyses
        cannot silently drift apart.
        """
        return {
            "locks": sorted(self.locks.names_seen()),
            "edges": sorted(
                [e.src, e.dst] for e in self.locks.graph.edges()
            ),
        }


def make_sanitizer(
    long_hold_ms: Optional[float] = None, track_wall_clock: bool = True
) -> Sanitizer:
    """Factory with defaulting, used by the CLI and the runner."""
    return Sanitizer(
        long_hold_ms=(
            DEFAULT_LONG_HOLD_MS if long_hold_ms is None else long_hold_ms
        ),
        track_wall_clock=track_wall_clock,
    )
