"""Global hook point connecting production seams to the sanitizer.

The runtime concurrency sanitizer (:mod:`repro.sanitizer`) is strictly
opt-in; production classes must pay nothing when it is off.  The
contract is this module: seams read the module attribute :data:`CURRENT`
(one attribute load) and only call into the sanitizer when it is not
``None``.  ``CURRENT`` is set by :meth:`Sanitizer.activate
<repro.sanitizer.core.Sanitizer.activate>` and cleared on exit, so a
disabled run executes exactly one ``is None`` branch per seam — the
zero-cost-when-disabled property the Fig 5 benchmark asserts.

This module is intentionally dependency-free (standard library only):
hot-path modules — the operator base class, the Query Engine, the sensor
cache hosts — import it at module load and must not drag the whole
sanitizer (or anything that imports *them*) into their import graph.
"""

from __future__ import annotations

import os
import threading

#: Environment variable enabling the sanitizer for whole CLI runs.
ENV_VAR = "WINTERMUTE_SANITIZE"

#: The active sanitizer instance, or ``None`` when disabled.  Seams read
#: this directly: ``san = hooks.CURRENT`` / ``if san is not None: ...``.
CURRENT = None


def env_enabled() -> bool:
    """Whether ``WINTERMUTE_SANITIZE`` requests sanitizer activation."""
    value = os.environ.get(ENV_VAR, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


def make_lock(name: str):
    """A lock for ``name``: plain when disabled, tracked when active.

    Construction-time choice: components built while a sanitizer is
    active get a :class:`~repro.sanitizer.locks.TrackedLock` feeding the
    lock-order graph; otherwise a plain ``threading.Lock`` with zero
    instrumentation.  Both support ``with``/``acquire``/``release``.
    """
    san = CURRENT
    if san is None:
        return threading.Lock()
    return san.make_lock(name)


def note_blocking(description: str) -> None:
    """Mark a blocking call (thread join, file/socket I/O, sleep).

    When a sanitizer is active and the calling thread holds tracked
    locks, this records a lock-held-across-blocking-call violation
    (rule R002).  No-op otherwise.
    """
    san = CURRENT
    if san is not None:
        san.on_blocking_call(description)
