"""Invariant sanitizers: snapshots, cache order, tree freeze, clocks.

Four invariants underpin the Query Engine's lock-free read path and the
Fig 5 overhead claim; each gets a runtime verifier here:

- **Snapshot immutability (R007)** — a :class:`~repro.dcdb.cache.CacheView`
  handed to an operator is a point-in-time snapshot; nobody (neither the
  operator nor a concurrent writer) may change it afterwards.  Each view
  returned by the Query Engine is fingerprinted (length, boundary
  timestamps, value checksum) when handed out and re-checked at the end
  of the compute pass.
- **Cache write monotonicity (R006)** — the ring buffer's binary-search
  contract requires non-decreasing timestamps across its segments; a
  violation silently corrupts every absolute query.  Verified by a
  whole-deployment scan after the bounded run.
- **Out-of-order drops (R010)** — the cache's stale-drop guard firing is
  not a bug in the cache, but it *is* data loss worth surfacing: the
  scan reports caches that dropped readings during the run.
- **Sensor-tree read-only-after-build (R008)** — pattern-resolved units
  hold references into the tree; mutating it after unit resolution
  invalidates them.  Trees are frozen once their navigator is built;
  later mutations are recorded here.

Wall-clock discipline (R009) also lives here: while the sanitizer is
active, ``time.time``/``time.monotonic`` are replaced with recording
wrappers that inspect the caller's frame — a read from simulator or
plugin code during the run breaks clock discipline (the runtime twin of
lint rule L002).  ``time.sleep`` is wrapped too, feeding the R002
blocking-under-lock check.
"""

from __future__ import annotations

import sys
import threading
import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Views fingerprinted per compute pass; beyond this they pass untracked
#: (bounds sanitizer memory on large unit sets).
MAX_TRACKED_VIEWS = 256

#: Marker attribute set on patched time functions so the Fig 5 benchmark
#: can assert the production path runs unpatched functions.
PATCH_MARKER = "_wintermute_sanitizer_patch"


def _fingerprint(view) -> Optional[Tuple[int, int, int, float]]:
    """(len, first ts, last ts, value sum) of a view; None if empty."""
    n = len(view)
    if n == 0:
        return None
    ts = view.timestamps()
    values = view.values()
    return (n, int(ts[0]), int(ts[-1]), float(values.sum()))


@dataclass
class ViewViolation:
    """A query result that changed after it was handed out."""

    topic: str
    detail: str


class ViewTracker:
    """Fingerprints Query Engine results; re-verified at pass end."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._tracked: List[Tuple[str, object, Tuple[int, int, int, float]]] = []
        self.violations: List[ViewViolation] = []
        self.views_seen = 0

    def on_view(self, topic: str, view) -> None:
        """Fingerprint one freshly returned view."""
        fp = _fingerprint(view)
        with self._mutex:
            self.views_seen += 1
            if fp is not None and len(self._tracked) < MAX_TRACKED_VIEWS:
                self._tracked.append((topic, view, fp))

    def verify(self) -> None:
        """Re-fingerprint tracked views; mismatches become violations."""
        with self._mutex:
            tracked, self._tracked = self._tracked, []
        for topic, view, fp in tracked:
            now = _fingerprint(view)
            if now == fp:
                continue
            if now is None or now[0] != fp[0]:
                detail = (
                    f"length changed from {fp[0]} to "
                    f"{0 if now is None else now[0]}"
                )
            elif (now[1], now[2]) != (fp[1], fp[2]):
                detail = "timestamp window changed after hand-out"
            else:
                detail = "values changed after hand-out"
            with self._mutex:
                self.violations.append(ViewViolation(topic, detail))


@dataclass
class TreeMutation:
    """A sensor-tree mutation after the tree was frozen."""

    action: str
    topic: str


class TreeWatch:
    """Collects post-freeze tree mutations (rule R008)."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self.mutations: List[TreeMutation] = []

    def on_mutation(self, action: str, topic: str) -> None:
        with self._mutex:
            self.mutations.append(TreeMutation(action, topic))


# ---------------------------------------------------------------------------
# Cache scans (run once over the finished deployment, not per write)
# ---------------------------------------------------------------------------


@dataclass
class CacheOrderViolation:
    """Non-monotonic timestamps found inside a sensor cache."""

    host: str
    topic: str
    detail: str


@dataclass
class StaleDropReport:
    """A cache that dropped out-of-order readings during the run."""

    host: str
    topic: str
    drops: int


def scan_cache(host_name: str, topic: str, cache) -> Tuple[
    Optional[CacheOrderViolation], Optional[StaleDropReport]
]:
    """Verify one cache's ordering invariant and read its drop counter."""
    order: Optional[CacheOrderViolation] = None
    prev = None
    for ts, _ in cache._ordered_segments():
        for value in ts:
            value = int(value)
            if prev is not None and value < prev:
                order = CacheOrderViolation(
                    host_name, topic,
                    f"timestamp {value} follows {prev}",
                )
                break
            prev = value
        if order is not None:
            break
    drops = int(getattr(cache, "stale_drops", 0))
    stale = (
        StaleDropReport(host_name, topic, drops) if drops > 0 else None
    )
    return order, stale


def iter_host_caches(deployment):
    """Yield (host name, topic, cache) over a deployment's components.

    Any component exposing a ``caches`` mapping (Pushers and Collect
    Agents both hold ``topic -> SensorCache``) is scanned.
    """
    for host in getattr(deployment, "all_hosts", lambda: [])():
        caches = getattr(host, "caches", None)
        if not isinstance(caches, dict):
            continue
        name = getattr(host, "name", host.__class__.__name__)
        for topic in sorted(caches):
            yield name, topic, caches[topic]


# ---------------------------------------------------------------------------
# Wall-clock discipline (R009) and sleep interception
# ---------------------------------------------------------------------------

#: Path fragments marking clock-disciplined code: simulated components
#: and operator plugins must take time from the simulation clock.
CLOCK_DISCIPLINED_FRAGMENTS = ("simulator/", "plugins/")

#: Path fragments whose frames are skipped when attributing a wall-clock
#: read (the sanitizer's own code and the stdlib are not interesting).
_IGNORED_FRAGMENTS = ("sanitizer/", "threading.py", "concurrent/")


@dataclass
class WallClockRead:
    """A wall-clock read from clock-disciplined code."""

    func: str
    file: str
    line: int


class TimePatch:
    """Swaps ``time.time``/``monotonic``/``sleep`` for recording shims.

    Only installed while a sanitizer is active; :meth:`uninstall`
    restores the originals, and each shim carries :data:`PATCH_MARKER`
    so tests can prove the production path never sees a patched clock.
    """

    def __init__(self, sanitizer) -> None:
        self._san = sanitizer
        self._originals: Dict[str, object] = {}
        self._mutex = threading.Lock()
        self.reads: List[WallClockRead] = []
        self.wall_clock_reads = 0

    # -- frame attribution ---------------------------------------------

    def _record_read(self, func: str) -> None:
        frame = sys._getframe(2)
        while frame is not None:
            filename = frame.f_code.co_filename.replace("\\", "/")
            if any(frag in filename for frag in _IGNORED_FRAGMENTS):
                frame = frame.f_back
                continue
            break
        if frame is None:
            return
        # Reads made while the import machinery is on the stack are
        # module-level initialisation of lazily imported libraries, not
        # behaviour of the run under test — and whether they happen at
        # all depends on which modules previous code already imported.
        caller = frame
        while caller is not None:
            if caller.f_code.co_filename.startswith("<frozen importlib"):
                return
            caller = caller.f_back
        filename = frame.f_code.co_filename.replace("\\", "/")
        with self._mutex:
            self.wall_clock_reads += 1
            if any(frag in filename for frag in CLOCK_DISCIPLINED_FRAGMENTS):
                self.reads.append(
                    WallClockRead(func, filename, frame.f_lineno)
                )

    # -- install / uninstall -------------------------------------------

    def install(self) -> None:
        real_time = _time.time
        real_monotonic = _time.monotonic
        real_sleep = _time.sleep
        self._originals = {
            "time": real_time,
            "monotonic": real_monotonic,
            "sleep": real_sleep,
        }
        patch = self

        def patched_time() -> float:
            patch._record_read("time.time")
            return real_time()

        def patched_monotonic() -> float:
            patch._record_read("time.monotonic")
            return real_monotonic()

        def patched_sleep(seconds: float) -> None:
            san = patch._san
            if san is not None and seconds > 0:
                san.on_blocking_call(f"time.sleep({seconds:g})")
            real_sleep(seconds)

        for shim in (patched_time, patched_monotonic, patched_sleep):
            setattr(shim, PATCH_MARKER, True)
        _time.time = patched_time
        _time.monotonic = patched_monotonic
        _time.sleep = patched_sleep

    def uninstall(self) -> None:
        if not self._originals:
            return
        _time.time = self._originals["time"]
        _time.monotonic = self._originals["monotonic"]
        _time.sleep = self._originals["sleep"]
        self._originals = {}


def time_functions_patched() -> bool:
    """Whether any of the time functions currently carry a patch marker."""
    return any(
        hasattr(getattr(_time, name), PATCH_MARKER)
        for name in ("time", "monotonic", "sleep")
    )
