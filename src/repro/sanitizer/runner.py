"""Bounded sanitized runs: build a deployment, run it, collect findings.

`wintermute-sim check --runtime <config>` and the ``WINTERMUTE_SANITIZE``
environment variable both land here: :func:`run_runtime_check` builds
the given deployment spec *under an active sanitizer* (so every lock
created through :func:`repro.sanitizer.hooks.make_lock` is tracked from
birth), advances it a bounded number of simulated seconds, scans the
resulting caches, and returns the R-series diagnostics plus an event
summary proving how much the run exercised the instrumentation.

Deployment imports stay inside the functions: the sanitizer package must
be importable from the analysis CLI without dragging the whole simulator
in (mirroring how :mod:`repro.analysis` analyses configs without
instantiating them).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.analysis.diagnostics import Diagnostic
from repro.sanitizer.core import Sanitizer, make_sanitizer

#: Default bounded-run length in *simulated* seconds: long enough for
#: several compute passes of the paper's 1 s-interval operators, short
#: enough to stay interactive on every example config.
DEFAULT_DURATION_S = 10.0


@dataclass
class RuntimeCheckResult:
    """Outcome of one sanitized bounded run."""

    diagnostics: List[Diagnostic]
    #: Instrumentation volume counters (locks, views, passes, ...).
    events: Dict[str, int] = field(default_factory=dict)
    #: Simulated seconds actually run.
    duration_s: float = 0.0

    @property
    def clean(self) -> bool:
        """Whether the run produced no findings at all."""
        return not self.diagnostics


def _load_spec(spec: Union[str, dict]) -> dict:
    if isinstance(spec, dict):
        return spec
    with open(spec, "r", encoding="utf-8") as fh:
        return json.load(fh)


def run_runtime_check(
    spec: Union[str, dict],
    duration_s: float = DEFAULT_DURATION_S,
    sanitizer: Optional[Sanitizer] = None,
) -> RuntimeCheckResult:
    """Run one deployment spec under the sanitizer and report findings.

    Args:
        spec: deployment specification dict, or path to a JSON file.
        duration_s: simulated seconds to advance the deployment.
        sanitizer: pre-configured sanitizer (a default one otherwise).

    Returns:
        The diagnostics (deduplicated, sorted) and event counters.
        Sanitizer telemetry is absorbed into the deployment agent's
        registry before returning, so its ``sanitizer_*`` counters show
        up on the agent's ``GET /metrics``.
    """
    from repro.deploy import build_deployment

    config = _load_spec(spec)
    san = sanitizer if sanitizer is not None else make_sanitizer()
    with san.activate():
        deployment = build_deployment(config)
        deployment.run(duration_s)
        san.check_deployment(deployment)
    deployment.agent.telemetry.absorb(san.telemetry)
    return RuntimeCheckResult(
        diagnostics=san.finish(),
        events=san.event_summary(),
        duration_s=float(duration_s),
    )


def run_deployment_sanitized(
    deployment_factory,
    duration_s: float = DEFAULT_DURATION_S,
    sanitizer: Optional[Sanitizer] = None,
) -> RuntimeCheckResult:
    """Sanitize a programmatically built deployment.

    ``deployment_factory`` is called *inside* the activation so locks
    and trees created during construction are instrumented; it must
    return an object with ``run(seconds)`` (a
    :class:`~repro.deploy.Deployment` or equivalent).
    """
    san = sanitizer if sanitizer is not None else make_sanitizer()
    with san.activate():
        deployment = deployment_factory()
        deployment.run(duration_s)
        san.check_deployment(deployment)
    return RuntimeCheckResult(
        diagnostics=san.finish(),
        events=san.event_summary(),
        duration_s=float(duration_s),
    )
