"""Unit-state race detection: a happens-before-lite access checker.

Full vector-clock happens-before tracking (TSan) is overkill for the
simulator's structured concurrency: operator units either run
sequentially on one thread or fan out over a ``ThreadPoolExecutor`` for
exactly one compute pass, then join.  Within a pass there is *no*
synchronisation between unit workers, so any object reached from two
different units during the same pass is, by construction, accessed
without a happens-before edge — no clocks needed.

The tracker therefore keys accesses by *(pass epoch, object id)* and
records the set of unit names and thread ids that touched each object.
At the end of a pass:

- a **model object** accessed by two or more units while the operator is
  in parallel mode is a shared-model race (rule R004) — per-unit models
  exist precisely so workers never share mutable state;
- a **mutation of operator self-state** observed inside a parallel
  ``compute_unit`` (detected by diffing the operator's ``__dict__``
  around the call) is rule R005, the dynamic twin of lint rule L004.

Unit-name sets make detection deterministic: the same config produces
the same diagnostics whether or not the thread pool actually interleaved
this run, which keeps golden JSON stable under any scheduler.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple


@dataclass
class _ModelRecord:
    """Access record for one model object within one compute pass."""

    units: Set[str] = field(default_factory=set)
    threads: Set[int] = field(default_factory=set)


@dataclass
class ModelRace:
    """A model object shared by several units of a parallel operator."""

    operator: str
    units: Tuple[str, ...]
    thread_count: int


@dataclass
class SelfMutation:
    """Operator attribute(s) rebound during a parallel unit compute."""

    operator: str
    unit: str
    attrs: Tuple[str, ...]


class RaceTracker:
    """Per-pass reader/writer sets over operator models and self-state."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        # (operator name, model id) -> record, for the *current* pass of
        # that operator only; cleared in end_pass.
        self._models: Dict[Tuple[str, int], _ModelRecord] = {}
        self.model_races: List[ModelRace] = []
        self.self_mutations: List[SelfMutation] = []
        self.model_accesses = 0

    # -- model accesses -------------------------------------------------

    def on_model_access(self, op_name: str, parallel: bool,
                        unit_name: str, model_id: int) -> None:
        """Record that ``unit_name`` obtained model ``model_id``."""
        if not parallel:
            return
        tid = threading.get_ident()
        with self._mutex:
            self.model_accesses += 1
            rec = self._models.get((op_name, model_id))
            if rec is None:
                rec = self._models[(op_name, model_id)] = _ModelRecord()
            rec.units.add(unit_name)
            rec.threads.add(tid)

    def end_pass(self, op_name: str) -> None:
        """Close the operator's pass: flag models shared across units."""
        with self._mutex:
            keys = [k for k in self._models if k[0] == op_name]
            for key in keys:
                rec = self._models.pop(key)
                if len(rec.units) > 1:
                    self.model_races.append(ModelRace(
                        operator=op_name,
                        units=tuple(sorted(rec.units)),
                        thread_count=len(rec.threads),
                    ))

    # -- self-state mutations -------------------------------------------

    def on_self_mutation(self, op_name: str, unit_name: str,
                         attrs: Tuple[str, ...]) -> None:
        """Record operator ``__dict__`` changes seen around a unit call."""
        with self._mutex:
            self.self_mutations.append(SelfMutation(
                operator=op_name, unit=unit_name, attrs=tuple(sorted(attrs)),
            ))
