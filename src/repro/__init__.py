"""Reproduction of *DCDB Wintermute: Enabling Online and Holistic
Operational Data Analytics on HPC Systems* (Netti et al., HPDC 2020).

Package layout:

- :mod:`repro.core` -- the Wintermute framework: Unit System, Query
  Engine, operators, Operator Manager, pipelines.
- :mod:`repro.dcdb` -- the DCDB monitoring substrate: sensors, caches,
  MQTT-style broker, storage backend, Pushers, Collect Agents, REST.
- :mod:`repro.simulator` -- the synthetic CooLMUC-3 stand-in: cluster
  topology, node power/thermal models, CORAL-2 workload generators, job
  scheduler, simulation clock.
- :mod:`repro.plugins` -- operator plugin library (tester, aggregator,
  smoother, perfmetrics, persyst, regressor, classifier, clustering,
  health).
- :mod:`repro.ml` -- from-scratch ML substrate (random forests,
  variational Bayesian GMM, window statistics, error metrics).

Quickstart::

    from repro.simulator import ClusterSimulator, ClusterSpec
    from repro.simulator.clock import TaskScheduler
    from repro.dcdb import Broker, Pusher
    from repro.dcdb.plugins import SysfsPlugin
    from repro.core import OperatorManager
    from repro.common.timeutil import NS_PER_SEC

    sim = ClusterSimulator(ClusterSpec.small())
    sched, broker = TaskScheduler(), Broker()
    node = sim.node_paths[0]
    pusher = Pusher(node, broker, sched)
    pusher.add_plugin(SysfsPlugin(sim, node))
    manager = OperatorManager()
    pusher.attach_analytics(manager)
    manager.load_plugin({
        "plugin": "aggregator",
        "operators": {
            "avgpower": {
                "interval_s": 1, "window_s": 5,
                "inputs": ["<bottomup>power"],
                "outputs": ["<bottomup>avg-power"],
                "params": {"op": "mean"},
            }
        },
    })
    sched.run_until(30 * NS_PER_SEC)
    print(pusher.cache_for(node + "/avg-power").latest())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
