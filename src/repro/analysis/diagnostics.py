"""Structured diagnostics for the static analysis subsystem.

Every finding of the configuration analyzer (:mod:`repro.analysis.config`)
and the AST lint pass (:mod:`repro.analysis.astlint`) is reported as a
:class:`Diagnostic`: a stable rule code, a severity, a human-readable
message and a location — either a configuration *path* (for config
findings) or a *file:line* pair (for lint findings).  Keeping the record
structured lets the CLI render text and JSON from the same data, lets
tests golden-file the output, and lets CI gate on error counts.

Rule codes are stable across releases: ``Wxxx`` for configuration rules
and ``Lxxx`` for lint rules.  The full catalog lives in
``docs/STATIC_ANALYSIS.md``.

This module is intentionally dependency-free within the package (it only
uses the standard library) so that core modules — e.g. the configurator,
which reports its own parse errors as diagnostics — can import it
without pulling in the whole analysis subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

#: Severity levels, ordered from most to least severe.
ERROR = "error"
WARNING = "warning"
INFO = "info"

SEVERITIES = (ERROR, WARNING, INFO)
_SEVERITY_RANK = {s: i for i, s in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer or the lint pass.

    Attributes:
        code: stable rule code (``W001``..., ``L001``...).
        severity: ``error``, ``warning`` or ``info``.
        message: human-readable description of the finding.
        path: configuration location for config diagnostics, e.g.
            ``analytics.agent[0].operators.avg-power.inputs[1]``.
        file: source file for lint diagnostics (repo-relative when
            possible).
        line: 1-based source line for lint diagnostics (0 = unknown).
    """

    code: str
    severity: str
    message: str
    path: str = ""
    file: str = ""
    line: int = 0

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def location(self) -> str:
        """The finding's location, whichever form(s) it carries."""
        if self.file:
            where = f"{self.file}:{self.line}" if self.line else self.file
            return f"{where} {self.path}" if self.path else where
        return self.path

    def to_dict(self) -> dict:
        """JSON-ready representation (stable key order, no empties)."""
        out = {"code": self.code, "severity": self.severity,
               "message": self.message}
        if self.path:
            out["path"] = self.path
        if self.file:
            out["file"] = self.file
            out["line"] = self.line
        return out

    def format(self) -> str:
        """One-line text rendering: ``severity CODE location: message``."""
        loc = self.location
        where = f" {loc}" if loc else ""
        return f"{self.severity} {self.code}{where}: {self.message}"

    def __str__(self) -> str:
        return self.format()


def sort_key(diag: Diagnostic):
    """Deterministic ordering: file, then location, then code.

    Grouping by location (not severity) keeps every finding about one
    file/config path adjacent in reports and makes output diffable
    across runs that add or reclassify rules; severity only breaks ties
    between co-located findings of the same code.
    """
    return (diag.file, diag.line, diag.path, diag.code,
            _SEVERITY_RANK.get(diag.severity, len(SEVERITIES)), diag.message)


def count_by_severity(diagnostics: Iterable[Diagnostic]) -> Dict[str, int]:
    """Map severity -> number of findings (all severities present)."""
    counts = {s: 0 for s in SEVERITIES}
    for diag in diagnostics:
        counts[diag.severity] = counts.get(diag.severity, 0) + 1
    return counts


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """Whether any finding is error-severity."""
    return any(d.severity == ERROR for d in diagnostics)


@dataclass
class DiagnosticCollector:
    """Accumulates diagnostics while walking a configuration.

    The collector carries the current location *prefix*; :meth:`at`
    derives a child collector sharing the same sink with an extended
    prefix, so nested validation helpers never have to thread location
    strings manually.
    """

    prefix: str = ""
    sink: List[Diagnostic] = field(default_factory=list)

    def at(self, *segments) -> "DiagnosticCollector":
        """Child collector whose prefix is extended by ``segments``.

        Integer segments render as ``[i]`` indices, strings as
        dot-separated keys.
        """
        prefix = self.prefix
        for seg in segments:
            if isinstance(seg, int):
                prefix = f"{prefix}[{seg}]"
            else:
                prefix = f"{prefix}.{seg}" if prefix else str(seg)
        return DiagnosticCollector(prefix=prefix, sink=self.sink)

    def add(self, code: str, severity: str, message: str, *,
            path: str = "", file: str = "", line: int = 0) -> Diagnostic:
        """Record one finding at the collector's location."""
        where = path or self.prefix
        diag = Diagnostic(code=code, severity=severity, message=message,
                          path=where, file=file, line=line)
        self.sink.append(diag)
        return diag

    def error(self, code: str, message: str, **kw) -> Diagnostic:
        return self.add(code, ERROR, message, **kw)

    def warning(self, code: str, message: str, **kw) -> Diagnostic:
        return self.add(code, WARNING, message, **kw)

    def info(self, code: str, message: str, **kw) -> Diagnostic:
        return self.add(code, INFO, message, **kw)

    @property
    def diagnostics(self) -> List[Diagnostic]:
        """Everything recorded through this collector's shared sink."""
        return self.sink
