"""Offline static analysis for Wintermute configurations and sources.

Three halves (surfaced through ``wintermute-sim check``):

- :mod:`repro.analysis.config` — a **static configuration analyzer**:
  validates plugin blocks and whole deployment specs without
  instantiating a single operator.  It parses every pattern-unit
  expression, resolves sensor references against a sensor tree
  synthesized from the deployment's cluster/monitoring sections, detects
  inter-operator pipeline cycles and duplicate output topics, and
  reports per-operator unit-expansion cardinality — so a block that
  would instantiate 100k units (Section III-C's scaling property) is
  visible before anything runs.
- :mod:`repro.analysis.flow` — a **whole-deployment dataflow analyzer**
  (F rules): abstract interpretation over the resolved deployment that
  propagates per-topic production periods, physical units and producer
  schedules, checking window demand vs cache supply, unit dimension
  mixing, interval aliasing, per-host memory footprints and resilience
  budgets before anything runs.
- :mod:`repro.analysis.astlint` — a **repo-specific AST lint pass**
  enforcing invariants generic linters cannot express: lock discipline,
  simulation-clock purity, no silent broad excepts, and no writes to
  shared unit state inside operator ``compute`` paths.
- :mod:`repro.analysis.concurrency` — a **static concurrency analyzer**
  (S rules): interprocedural lockset computation and guarded-by
  inference over the source tree, proving lock discipline on all paths
  (the runtime sanitizer's R rules only see observed executions) and
  exporting a static lock-order graph cross-validated against the
  runtime lockdep graph.

Both report :class:`~repro.analysis.diagnostics.Diagnostic` records with
stable rule codes; the catalog lives in ``docs/STATIC_ANALYSIS.md``.

Only the diagnostics primitives are imported eagerly: the configurator
in :mod:`repro.core` imports them at module load, so the heavier halves
(which themselves import :mod:`repro.core`) are resolved lazily to keep
the import graph acyclic.
"""

from repro.analysis.diagnostics import (
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    DiagnosticCollector,
    count_by_severity,
    has_errors,
    sort_key,
)

__all__ = [
    "ERROR",
    "INFO",
    "WARNING",
    "Diagnostic",
    "DiagnosticCollector",
    "count_by_severity",
    "has_errors",
    "sort_key",
    "analyze_deployment",
    "analyze_pipeline_blocks",
    "analyze_plugin_block",
    "trees_from_deployment",
    "analyze_flow",
    "build_flow_model",
    "flow_report",
    "render_flow_report",
    "lint_paths",
    "lint_paths_counted",
    "lint_source",
    "lint_source_counted",
    "extract_configs",
    "analyze_concurrency",
    "render_concurrency_report",
    "static_lock_order_graph",
    "InlineSuppressions",
]

_LAZY = {
    "analyze_deployment": "repro.analysis.config",
    "analyze_pipeline_blocks": "repro.analysis.config",
    "analyze_plugin_block": "repro.analysis.config",
    "trees_from_deployment": "repro.analysis.config",
    "analyze_flow": "repro.analysis.flow",
    "build_flow_model": "repro.analysis.flow",
    "flow_report": "repro.analysis.flow",
    "render_flow_report": "repro.analysis.flow",
    "lint_paths": "repro.analysis.astlint",
    "lint_paths_counted": "repro.analysis.astlint",
    "lint_source": "repro.analysis.astlint",
    "lint_source_counted": "repro.analysis.astlint",
    "extract_configs": "repro.analysis.extract",
    "analyze_concurrency": "repro.analysis.concurrency",
    "render_concurrency_report": "repro.analysis.concurrency",
    "static_lock_order_graph": "repro.analysis.concurrency",
    "InlineSuppressions": "repro.analysis.suppress",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
