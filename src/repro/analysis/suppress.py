"""Uniform inline diagnostic suppression: ``# wintermute: ignore[CODE]``.

Every source-reading analysis pass (astlint L rules, concurrency S
rules) honours the same marker so a reviewer never has to learn
per-pass syntax::

    self.stats += 1  # wintermute: ignore[S001]
    handle = open(p)  # wintermute: ignore[L003,L006]

The marker suppresses only the listed codes and only on its own line;
suppressed diagnostics are *counted*, not silently dropped — ``check``
reports the total as ``N ignored`` in both text and JSON output so
suppressions stay visible in review.

The config analyzer (W rules) is exempt: its inputs are JSON deployment
specs, which have no comments.  Deployment specs suppress flow (F)
diagnostics through a top-level ``"ignore": ["F0xx", ...]`` list
instead, handled by the CLI.
"""

from __future__ import annotations

import re
from typing import Dict, Set

_MARKER = re.compile(r"#\s*wintermute:\s*ignore\[([A-Z0-9,\s]+)\]")


class InlineSuppressions:
    """Per-line ``# wintermute: ignore[...]`` markers for one source file.

    ``matched`` counts how many diagnostics were actually suppressed, so
    stale markers (ones that never fire) are distinguishable from live
    ones.
    """

    def __init__(self, source: str) -> None:
        self._by_line: Dict[int, Set[str]] = {}
        self.matched = 0
        for i, line in enumerate(source.splitlines(), start=1):
            m = _MARKER.search(line)
            if m is None:
                continue
            codes = {c.strip() for c in m.group(1).split(",") if c.strip()}
            if codes:
                self._by_line.setdefault(i, set()).update(codes)

    def active(self, line: int, code: str) -> bool:
        """True (and counted) when ``code`` is suppressed on ``line``."""
        if code in self._by_line.get(line, ()):
            self.matched += 1
            return True
        return False

    def codes_on(self, line: int) -> Set[str]:
        return set(self._by_line.get(line, ()))

    def __bool__(self) -> bool:
        return bool(self._by_line)
