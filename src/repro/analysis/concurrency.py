"""Static concurrency analyzer: interprocedural locksets + guarded-by.

PR 3's runtime sanitizer (R rules) only catches races that *manifest*
during an observed bounded run; this module proves lock discipline over
**all** paths, statically, before a single thread is started.  It is the
fifth rule family (S001-S010) reported through the shared
:mod:`repro.analysis.diagnostics` machinery.

How it works, per analyzed file:

1. **Lock discovery** — every class attribute assigned a
   ``threading.Lock()`` / ``RLock()`` / ``hooks.make_lock("name")``
   (directly or through a small helper, resolved to a bounded call
   depth) becomes a *lock field*.  ``hooks.make_lock`` string arguments
   become the lock's display name, so the static graph speaks the same
   names as the runtime lockdep graph ("Pusher.spill", ...).
2. **Lockset walk** — each method body is walked with the set of held
   locks at every statement: ``with self._lock:`` pushes, bare
   ``acquire()`` followed by ``try/finally: release()`` pushes for the
   ``try`` body (anything else is S005).  Every ``self.X`` read/write,
   internal call site, nested acquisition and callback invocation is
   recorded together with the local lockset.
3. **Interprocedural propagation** — private helpers inherit the
   *intersection* of their callers' locksets (public or
   callback-escaped methods conservatively inherit nothing), iterated
   to a fixpoint, so "callers hold the lock" helper patterns are
   understood without annotations.
4. **Guarded-by inference** — an attribute written under lock L on the
   majority of its (non-``__init__``) writes is *claimed* by L; every
   access that cannot prove L is held raises S001/S002/S003/S004.
   ``# guarded-by: <lock>`` forces a claim; ``# unguarded: <reason>``
   declares an intentional racy access on that line.
5. **Lock-order graph** — nested acquisitions (local and through
   calls, including cross-class calls through attributes constructed in
   ``__init__``) become edges of a static lock-order graph; cycles are
   S006.  The graph is exported for the static-superset-of-runtime
   cross-validation test against the sanitizer's observed graph.

Rule catalog (docs/STATIC_ANALYSIS.md):

====  ========  =====================================================
code  severity  condition
====  ========  =====================================================
S001  error     write to a claimed attribute without its guard
S002  warning   read of a claimed attribute without its guard
S003  error     claimed attribute accessed under a *different* lock
S004  error     check-then-act: tested unguarded, then acted on
S005  error     ``acquire()`` without ``with`` / ``try-finally``
S006  error     static lock-order cycle between lock fields
S007  error     object published into a guarded container / thread,
                then mutated without the guard
S008  error     lock created per call instead of per instance
S009  warning   callback attribute invoked while holding its guard
S010  warning   stale or unverifiable guarded-by / unguarded comment
====  ========  =====================================================

Known limits (by design, to stay fast and predictable): analysis is
per-class (inherited attributes are attributed to the defining class),
locals are not tracked through aliasing, and module-level globals are
out of scope except for the per-call lock check (S008).

Suppression: ``# wintermute: ignore[S0xx]`` on the offending line
(counted in ``check``'s ``ignored`` total); intentional racy accesses
should prefer ``# unguarded: <reason>`` which documents intent.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.suppress import InlineSuppressions

#: threading constructors that count as "a lock" for S005/S008 and
#: lock-field discovery.
_LOCK_CTORS = {"Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition"}

#: attribute method names treated as *writes* to the attribute.
_MUTATORS = {
    "append", "extend", "insert", "add", "update", "clear", "remove",
    "discard", "pop", "popleft", "appendleft", "setdefault", "sort",
    "reverse", "put", "put_nowait",
}

#: attribute names that look like locks even without a visible ctor.
_LOCK_NAME_HINT = re.compile(r"(lock|mutex)", re.IGNORECASE)

_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][\w.]*)")
_UNGUARDED_RE = re.compile(r"#\s*unguarded:\s*(.*)$")

_SEVERITY = {
    "S001": "error", "S002": "warning", "S003": "error", "S004": "error",
    "S005": "error", "S006": "error", "S007": "error", "S008": "error",
    "S009": "warning", "S010": "warning",
}

#: codes an ``# unguarded: reason`` annotation waives on its line.
_UNGUARDED_WAIVES = {"S001", "S002", "S003", "S004", "S007", "S009"}

_MAX_CALL_DEPTH = 4
_MAX_FIXPOINT_ROUNDS = 10


# ---------------------------------------------------------------------------
# per-method walk records


@dataclass
class LockField:
    attr: str
    display: str
    line: int


@dataclass
class AttrAccess:
    attr: str
    kind: str  # 'read' | 'write'
    line: int
    method: str
    lockset: FrozenSet[str]
    exempt: bool = False  # __init__ / init-only helper access


@dataclass
class CallEvent:
    """``self.m(...)`` — internal call site with the lockset held."""

    callee: str
    lockset: FrozenSet[str]
    line: int
    method: str


@dataclass
class AttrCallEvent:
    """``self.X.m(...)`` — method call through an instance attribute."""

    attr: str
    meth: str
    lockset: FrozenSet[str]
    line: int
    method: str


@dataclass
class WithEvent:
    """Acquisition of lock field ``lock`` while ``prior`` were held."""

    lock: str
    prior: FrozenSet[str]
    line: int
    method: str


@dataclass
class IfEvent:
    """``if <test reading attrs>: <body>`` — S004 raw material."""

    test_reads: List[AttrAccess]
    body_writes: Set[str]
    body_locks: Set[str]
    line: int
    method: str


@dataclass
class PublishEvent:
    """Local name stored into a shared container or handed to a thread."""

    name: str
    container: Optional[str]  # None == passed to a thread/executor
    lockset: FrozenSet[str]
    line: int
    order: int
    method: str


@dataclass
class MutateEvent:
    name: str
    lockset: FrozenSet[str]
    line: int
    order: int
    method: str


@dataclass
class MethodInfo:
    name: str
    node: ast.AST
    is_public: bool
    accesses: List[AttrAccess] = field(default_factory=list)
    calls: List[CallEvent] = field(default_factory=list)
    attr_calls: List[AttrCallEvent] = field(default_factory=list)
    withs: List[WithEvent] = field(default_factory=list)
    ifs: List[IfEvent] = field(default_factory=list)
    publishes: List[PublishEvent] = field(default_factory=list)
    mutates: List[MutateEvent] = field(default_factory=list)


@dataclass
class ClassInfo:
    name: str
    file: str
    node: ast.ClassDef
    locks: Dict[str, LockField] = field(default_factory=dict)
    methods: Dict[str, MethodInfo] = field(default_factory=dict)
    #: attrs constructed as ``self.x = ClassName(...)`` in ``__init__``.
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: method names referenced without a call (callbacks, timers, ...).
    escaped: Set[str] = field(default_factory=set)
    #: attr -> (lock attr, annotation line) forced by # guarded-by.
    forced_claims: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    #: inferred claims: attr -> lock attr (filled by finalization).
    claims: Dict[str, str] = field(default_factory=dict)
    #: attr -> (guarded writes, total writes, total reads) bookkeeping.
    stats: Dict[str, Tuple[int, int, int]] = field(default_factory=dict)

    def display(self, lock_attr: str) -> str:
        lf = self.locks.get(lock_attr)
        return lf.display if lf else f"{self.name}.{lock_attr}"


@dataclass
class FileInfo:
    path: str
    sup: InlineSuppressions
    guarded_by: Dict[int, str]
    unguarded: Dict[int, str]
    classes: List[ClassInfo] = field(default_factory=list)
    #: guarded-by annotation lines consumed by an attribute assignment.
    consumed_guards: Set[int] = field(default_factory=set)


@dataclass
class ConcurrencyModel:
    """Everything one ``check --concurrency`` run inferred."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    ignored: int = 0
    files: List[FileInfo] = field(default_factory=list)
    #: every lock display name seen anywhere (graph node universe).
    lock_names: Set[str] = field(default_factory=set)
    #: (src display, dst display) -> first (file, line) that created it.
    lock_order_edges: Dict[Tuple[str, str], Tuple[str, int]] = field(
        default_factory=dict
    )


# ---------------------------------------------------------------------------
# lock-field discovery


def _lock_ctor_display(
    call: ast.Call, module_funcs: Dict[str, ast.AST], depth: int
) -> Optional[str]:
    """Display name if ``call`` constructs a lock; None otherwise.

    Returns ``""`` for anonymous ctors (``threading.Lock()``); the
    caller substitutes ``Class.attr``.  ``hooks.make_lock("name")``
    aliases resolve through same-module helper functions up to
    ``depth`` calls deep.
    """
    func = call.func
    name = None
    if isinstance(func, ast.Attribute):
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    if name in _LOCK_CTORS:
        return ""
    if name == "make_lock":
        if call.args and isinstance(call.args[0], ast.Constant) and \
                isinstance(call.args[0].value, str):
            return call.args[0].value
        return ""
    if depth <= 0:
        return None
    helper = module_funcs.get(name) if isinstance(func, ast.Name) else None
    if helper is None:
        return None
    for node in ast.walk(helper):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Call):
            got = _lock_ctor_display(node.value, module_funcs, depth - 1)
            if got is not None:
                return got
    return None


def _discover_locks(
    ci: ClassInfo, module_funcs: Dict[str, ast.AST]
) -> None:
    """Populate ``ci.locks`` and ``ci.attr_types`` from the class body."""
    # class-level: ``X = threading.Lock()`` shared across instances.
    for stmt in ci.node.body:
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
            disp = _lock_ctor_display(stmt.value, module_funcs,
                                      _MAX_CALL_DEPTH)
            if disp is None:
                continue
            for tgt in stmt.targets:
                if isinstance(tgt, ast.Name):
                    ci.locks[tgt.id] = LockField(
                        tgt.id, disp or f"{ci.name}.{tgt.id}", stmt.lineno
                    )
    for method in _iter_methods(ci.node):
        in_init = method.name == "__init__"
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            for tgt in node.targets:
                if not (isinstance(tgt, ast.Attribute)
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "self"):
                    continue
                if isinstance(node.value, ast.Call):
                    disp = _lock_ctor_display(
                        node.value, module_funcs, _MAX_CALL_DEPTH
                    )
                    if disp is not None:
                        ci.locks.setdefault(tgt.attr, LockField(
                            tgt.attr, disp or f"{ci.name}.{tgt.attr}",
                            node.lineno,
                        ))
                        continue
                    ctor = node.value.func
                    if in_init and isinstance(ctor, (ast.Name,
                                                     ast.Attribute)):
                        cls_name = (ctor.id if isinstance(ctor, ast.Name)
                                    else ctor.attr)
                        if cls_name and cls_name[0].isupper():
                            ci.attr_types.setdefault(tgt.attr, cls_name)
    # implicit locks: ``with self.X`` / ``self.X.acquire()`` on a
    # lock-looking name defined elsewhere (e.g. in a base class).
    for method in _iter_methods(ci.node):
        for node in ast.walk(method):
            target = None
            if isinstance(node, ast.With):
                for item in node.items:
                    target = _self_attr(item.context_expr) or target
            elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute) and node.func.attr in (
                    "acquire", "release"):
                target = _self_attr(node.func.value)
            if target and target not in ci.locks and \
                    _LOCK_NAME_HINT.search(target):
                ci.locks[target] = LockField(
                    target, f"{ci.name}.{target}", node.lineno
                )


def _iter_methods(cls: ast.ClassDef):
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


def _self_attr(node) -> Optional[str]:
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return None


# ---------------------------------------------------------------------------
# the per-method lockset walker


class _MethodWalker:
    """Walks one method body tracking the held lockset at each point."""

    def __init__(self, ci: ClassInfo, mi: MethodInfo, exempt: bool,
                 fi: FileInfo, diags: "_Emitter") -> None:
        self.ci = ci
        self.mi = mi
        self.exempt = exempt
        self.fi = fi
        self.diags = diags
        self.order = 0
        self.loopvars: Dict[str, str] = {}

    # -- statements -----------------------------------------------------

    def walk(self) -> None:
        self._body(self.mi.node.body, frozenset())

    def _body(self, stmts: Sequence[ast.stmt], ls: FrozenSet[str]) -> None:
        i = 0
        while i < len(stmts):
            stmt = stmts[i]
            lock = self._acquire_stmt(stmt)
            if lock is not None:
                nxt = stmts[i + 1] if i + 1 < len(stmts) else None
                if isinstance(nxt, ast.Try) and self._releases(nxt, lock):
                    self.mi.withs.append(WithEvent(
                        lock, ls, stmt.lineno, self.mi.name
                    ))
                    held = ls | {lock}
                    self._body(nxt.body, held)
                    for handler in nxt.handlers:
                        self._body(handler.body, held)
                    self._body(nxt.orelse, held)
                    self._body(nxt.finalbody, ls)
                    i += 2
                    continue
                self.diags.emit(
                    "S005", self.fi, stmt.lineno,
                    f"{self.ci.name}.{self.mi.name}",
                    f"self.{lock}.acquire() without try/finally release "
                    f"— use 'with self.{lock}:'",
                )
                i += 1
                continue
            self._stmt(stmt, ls)
            i += 1

    def _acquire_stmt(self, stmt: ast.stmt) -> Optional[str]:
        call = None
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
        elif isinstance(stmt, ast.Assign) and isinstance(stmt.value,
                                                         ast.Call):
            call = stmt.value
        if call is None or not isinstance(call.func, ast.Attribute) or \
                call.func.attr != "acquire":
            return None
        attr = _self_attr(call.func.value)
        if attr and attr in self.ci.locks:
            return attr
        return None

    def _releases(self, node: ast.Try, lock: str) -> bool:
        for stmt in node.finalbody:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call) and isinstance(
                        sub.func, ast.Attribute) and \
                        sub.func.attr == "release" and \
                        _self_attr(sub.func.value) == lock:
                    return True
        return False

    def _stmt(self, stmt: ast.stmt, ls: FrozenSet[str]) -> None:
        if isinstance(stmt, ast.With):
            held = ls
            for item in stmt.items:
                attr = _self_attr(item.context_expr)
                if attr and attr in self.ci.locks:
                    self.mi.withs.append(WithEvent(
                        attr, held, stmt.lineno, self.mi.name
                    ))
                    held = held | {attr}
                else:
                    self._expr(item.context_expr, ls)
            self._body(stmt.body, held)
        elif isinstance(stmt, ast.If):
            mark = len(self.mi.accesses)
            self._expr(stmt.test, ls)
            test_reads = [a for a in self.mi.accesses[mark:]
                          if a.kind == "read"]
            writes, locks = self._branch_effects(stmt.body + stmt.orelse)
            if test_reads:
                self.mi.ifs.append(IfEvent(
                    test_reads, writes, locks, stmt.lineno, self.mi.name
                ))
            self._body(stmt.body, ls)
            self._body(stmt.orelse, ls)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            container = _self_attr(_unwrap_copy(stmt.iter))
            self._expr(stmt.iter, ls)
            saved = None
            if container and container not in self.ci.locks and \
                    isinstance(stmt.target, ast.Name):
                saved = (stmt.target.id, self.loopvars.get(stmt.target.id))
                self.loopvars[stmt.target.id] = container
            self._body(stmt.body, ls)
            self._body(stmt.orelse, ls)
            if saved:
                name, prev = saved
                if prev is None:
                    self.loopvars.pop(name, None)
                else:
                    self.loopvars[name] = prev
        elif isinstance(stmt, ast.While):
            self._expr(stmt.test, ls)
            self._body(stmt.body, ls)
            self._body(stmt.orelse, ls)
        elif isinstance(stmt, ast.Try):
            self._body(stmt.body, ls)
            for handler in stmt.handlers:
                self._body(handler.body, ls)
            self._body(stmt.orelse, ls)
            self._body(stmt.finalbody, ls)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a nested def runs later, not under the current lockset.
            self._body(stmt.body, frozenset())
        elif isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            value = getattr(stmt, "value", None)
            if value is not None:
                self._expr(value, ls)
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            for tgt in targets:
                # ``self.x += 1`` is a read-modify-write; _target records
                # the write (the implied read rides along with it).
                self._target(tgt, ls, stmt.lineno, value)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child, ls)

    def _branch_effects(
        self, stmts: Sequence[ast.stmt]
    ) -> Tuple[Set[str], Set[str]]:
        writes: Set[str] = set()
        locks: Set[str] = set()
        for stmt in stmts:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Assign, ast.AugAssign,
                                     ast.AnnAssign)):
                    tgts = (node.targets if isinstance(node, ast.Assign)
                            else [node.target])
                    for tgt in tgts:
                        attr = _self_attr(tgt)
                        if attr is None and isinstance(tgt, ast.Subscript):
                            attr = _self_attr(tgt.value)
                        if attr:
                            writes.add(attr)
                elif isinstance(node, ast.With):
                    for item in node.items:
                        attr = _self_attr(item.context_expr)
                        if attr and attr in self.ci.locks:
                            locks.add(attr)
                elif isinstance(node, ast.Call) and isinstance(
                        node.func, ast.Attribute) and \
                        node.func.attr in _MUTATORS:
                    attr = _self_attr(node.func.value)
                    if attr:
                        writes.add(attr)
        return writes, locks

    # -- expressions ----------------------------------------------------

    def _expr(self, node, ls: FrozenSet[str]) -> None:
        if node is None:
            return
        if isinstance(node, ast.Call):
            self._call(node, ls)
            return
        if isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None:
                if attr in self.ci.methods:
                    # bare method reference: escapes as a callback.
                    self.ci.escaped.add(attr)
                elif attr not in self.ci.locks:
                    self._access(attr, "read", node.lineno, ls)
                return
            self._expr(node.value, ls)
            return
        if isinstance(node, ast.Lambda):
            self._expr(node.body, frozenset())
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child, ls)
            elif isinstance(child, (ast.comprehension,)):
                self._expr(child.iter, ls)
                for cond in child.ifs:
                    self._expr(cond, ls)

    def _call(self, node: ast.Call, ls: FrozenSet[str]) -> None:
        func = node.func
        self._maybe_thread_publish(node, ls)
        handled_func = False
        if isinstance(func, ast.Attribute):
            recv = _self_attr(func.value)
            direct = _self_attr(func)
            if direct is not None:
                handled_func = True
                if direct in self.ci.methods:
                    self.mi.calls.append(CallEvent(
                        direct, ls, node.lineno, self.mi.name
                    ))
                elif direct not in self.ci.locks:
                    # calling through a data attribute: self.handler(...)
                    self._access(direct, "read", node.lineno, ls)
                    self.mi.attr_calls.append(AttrCallEvent(
                        direct, "__call__", ls, node.lineno, self.mi.name
                    ))
            elif recv is not None:
                handled_func = True
                if recv in self.ci.locks:
                    if func.attr == "acquire":
                        self.diags.emit(
                            "S005", self.fi, node.lineno,
                            f"{self.ci.name}.{self.mi.name}",
                            f"self.{recv}.acquire() outside a statement "
                            f"position cannot be paired with a release — "
                            f"use 'with self.{recv}:'",
                        )
                else:
                    kind = "write" if func.attr in _MUTATORS else "read"
                    self._access(recv, kind, node.lineno, ls)
                    self.mi.attr_calls.append(AttrCallEvent(
                        recv, func.attr, ls, node.lineno, self.mi.name
                    ))
                    if kind == "write":
                        for arg in node.args:
                            if isinstance(arg, ast.Name):
                                self.order += 1
                                self.mi.publishes.append(PublishEvent(
                                    arg.id, recv, ls, node.lineno,
                                    self.order, self.mi.name,
                                ))
            else:
                local = func.value
                if isinstance(local, ast.Name) and \
                        func.attr in _MUTATORS:
                    self.order += 1
                    self.mi.mutates.append(MutateEvent(
                        local.id, ls, node.lineno, self.order, self.mi.name
                    ))
                    handled_func = True
        elif isinstance(func, ast.Name) and func.id in self.loopvars \
                and ls:
            self.mi.attr_calls.append(AttrCallEvent(
                self.loopvars[func.id], "__call__", ls, node.lineno,
                self.mi.name,
            ))
            handled_func = True
        if not handled_func:
            self._expr(func, ls)
        for arg in node.args:
            self._expr(arg, ls)
        for kw in node.keywords:
            self._expr(kw.value, ls)

    def _maybe_thread_publish(self, node: ast.Call, ls: FrozenSet[str]):
        func = node.func
        fname = ""
        if isinstance(func, ast.Attribute):
            fname = func.attr
        elif isinstance(func, ast.Name):
            fname = func.id
        if fname not in ("Thread", "Timer", "submit"):
            return
        published: List[ast.Name] = []
        for arg in node.args:
            if isinstance(arg, ast.Name):
                published.append(arg)
            elif isinstance(arg, (ast.Tuple, ast.List)):
                published.extend(
                    e for e in arg.elts if isinstance(e, ast.Name)
                )
        for kw in node.keywords:
            if kw.arg in ("args", "kwargs") and isinstance(
                    kw.value, (ast.Tuple, ast.List)):
                published.extend(
                    e for e in kw.value.elts if isinstance(e, ast.Name)
                )
        for name in published:
            self.order += 1
            self.mi.publishes.append(PublishEvent(
                name.id, None, ls, node.lineno, self.order, self.mi.name
            ))

    def _target(self, tgt, ls: FrozenSet[str], line: int, value) -> None:
        if isinstance(tgt, (ast.Tuple, ast.List)):
            for elt in tgt.elts:
                self._target(elt, ls, line, None)
            return
        attr = _self_attr(tgt)
        if attr is not None:
            if attr not in self.ci.locks:
                self._access(attr, "write", line, ls)
                self._maybe_forced_claim(attr, line)
            return
        if isinstance(tgt, ast.Subscript):
            base = _self_attr(tgt.value)
            self._expr(tgt.slice, ls)
            if base is not None and base not in self.ci.locks:
                self._access(base, "write", line, ls)
                if isinstance(value, ast.Name):
                    self.order += 1
                    self.mi.publishes.append(PublishEvent(
                        value.id, base, ls, line, self.order, self.mi.name
                    ))
                return
            if isinstance(tgt.value, ast.Name):
                self.order += 1
                self.mi.mutates.append(MutateEvent(
                    tgt.value.id, ls, line, self.order, self.mi.name
                ))
                return
            self._expr(tgt.value, ls)
            return
        if isinstance(tgt, ast.Attribute):
            if isinstance(tgt.value, ast.Name):
                self.order += 1
                self.mi.mutates.append(MutateEvent(
                    tgt.value.id, ls, line, self.order, self.mi.name
                ))
                return
            self._expr(tgt.value, ls)
        elif isinstance(tgt, ast.Starred):
            self._target(tgt.value, ls, line, None)

    def _maybe_forced_claim(self, attr: str, line: int) -> None:
        name = self.fi.guarded_by.get(line)
        if name is None:
            return
        self.fi.consumed_guards.add(line)
        if attr not in self.ci.forced_claims:
            self.ci.forced_claims[attr] = (name, line)

    def _access(self, attr: str, kind: str, line: int,
                ls: FrozenSet[str]) -> None:
        self.mi.accesses.append(AttrAccess(
            attr, kind, line, self.mi.name, ls, self.exempt
        ))


def _unwrap_copy(node):
    """``list(self.x)`` / ``sorted(self.x)`` → the inner ``self.x``."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and \
            node.func.id in ("list", "tuple", "sorted", "set") and \
            len(node.args) == 1:
        return node.args[0]
    return node

# ---------------------------------------------------------------------------
# diagnostic emission (annotations + suppression aware)


class _Emitter:
    """Routes raw findings through annotations and inline suppressions."""

    def __init__(self) -> None:
        self.diagnostics: List[Diagnostic] = []
        self.ignored = 0
        self._seen: Set[Tuple[str, str, int, str]] = set()

    def emit(self, code: str, fi: FileInfo, line: int, path: str,
             message: str) -> None:
        if code in _UNGUARDED_WAIVES and line in fi.unguarded:
            return  # declared intent: # unguarded: <reason>
        if fi.sup.active(line, code):
            self.ignored += 1
            return
        key = (code, fi.path, line, path)
        if key in self._seen:
            return
        self._seen.add(key)
        self.diagnostics.append(Diagnostic(
            code=code, severity=_SEVERITY[code], message=message,
            path=path, file=fi.path, line=line,
        ))


# ---------------------------------------------------------------------------
# per-class analysis


def _is_public(name: str) -> bool:
    if name == "__init__":
        return False
    if name.startswith("__") and name.endswith("__"):
        return True
    return not name.startswith("_")


def _analyze_class(ci: ClassInfo, fi: FileInfo, emitter: _Emitter,
                   module_funcs: Dict[str, ast.AST]) -> None:
    _discover_locks(ci, module_funcs)
    for method in _iter_methods(ci.node):
        ci.methods.setdefault(method.name, MethodInfo(
            method.name, method, _is_public(method.name)
        ))
    for mi in ci.methods.values():
        walker = _MethodWalker(
            ci, mi, mi.name == "__init__", fi, emitter
        )
        walker.walk()
    _mark_init_only(ci)


def _mark_init_only(ci: ClassInfo) -> None:
    """Private helpers reachable only from ``__init__`` are exempt."""
    callers: Dict[str, Set[str]] = {}
    for mi in ci.methods.values():
        for call in mi.calls:
            callers.setdefault(call.callee, set()).add(call.method)
    init_only = set()
    changed = True
    while changed:
        changed = False
        for name, mi in ci.methods.items():
            if name in init_only or mi.is_public or name == "__init__":
                continue
            if name in ci.escaped or not callers.get(name):
                continue
            if all(c == "__init__" or c in init_only
                   for c in callers[name]):
                init_only.add(name)
                changed = True
    for name in init_only:
        for access in ci.methods[name].accesses:
            access.exempt = True


def _incoming_locksets(ci: ClassInfo) -> Dict[str, FrozenSet[str]]:
    """Fixpoint: lockset every caller of a private method must hold."""
    callsites: Dict[str, List[Tuple[str, FrozenSet[str]]]] = {}
    for mi in ci.methods.values():
        for call in mi.calls:
            callsites.setdefault(call.callee, []).append(
                (call.method, call.lockset)
            )
    top = object()
    inc: Dict[str, object] = {}
    for name, mi in ci.methods.items():
        if mi.is_public or name in ci.escaped or not callsites.get(name):
            inc[name] = frozenset()
        else:
            inc[name] = top
    for _ in range(_MAX_FIXPOINT_ROUNDS):
        changed = False
        for name, sites in callsites.items():
            if name not in inc or inc[name] == frozenset():
                continue
            vals = []
            for caller, ls in sites:
                caller_in = inc.get(caller, frozenset())
                if caller_in is top:
                    continue
                vals.append(frozenset(caller_in) | ls)
            if not vals:
                continue
            new = frozenset.intersection(*vals)
            if inc[name] is top or new != inc[name]:
                inc[name] = new
                changed = True
        if not changed:
            break
    return {
        name: (frozenset() if val is top else val)  # unreachable helpers
        for name, val in inc.items()
    }


def _infer_claims(ci: ClassInfo, fi: FileInfo, emitter: _Emitter,
                  inc: Dict[str, FrozenSet[str]]) -> None:
    """Majority-vote guarded-by inference + forced annotations."""
    def must(access: AttrAccess) -> FrozenSet[str]:
        return access.lockset | inc.get(access.method, frozenset())

    by_attr: Dict[str, List[AttrAccess]] = {}
    for mi in ci.methods.values():
        for access in mi.accesses:
            by_attr.setdefault(access.attr, []).append(access)

    for attr, (lock_name, line) in ci.forced_claims.items():
        resolved = _resolve_lock_name(ci, lock_name)
        if resolved is None:
            emitter.emit(
                "S010", fi, line, f"{ci.name}.{attr}",
                f"# guarded-by: {lock_name!r} names no lock field of "
                f"{ci.name} (known: {sorted(ci.locks) or 'none'})",
            )
        else:
            ci.claims[attr] = resolved

    for attr, accesses in sorted(by_attr.items()):
        writes = [a for a in accesses
                  if a.kind == "write" and not a.exempt]
        reads = [a for a in accesses
                 if a.kind == "read" and not a.exempt]
        if attr not in ci.claims:
            if not writes or not ci.locks:
                continue
            votes = {
                lock: sum(1 for w in writes if lock in must(w))
                for lock in ci.locks
            }
            lock, n = min(
                votes.items(), key=lambda kv: (-kv[1], kv[0])
            )
            if 2 * n <= len(writes):
                continue
            ci.claims[attr] = lock
        lock = ci.claims[attr]
        guarded_writes = sum(1 for w in writes if lock in must(w))
        ci.stats[attr] = (guarded_writes, len(writes), len(reads))


def _check_accesses(ci: ClassInfo, fi: FileInfo, emitter: _Emitter,
                    inc: Dict[str, FrozenSet[str]]) -> None:
    def must(access: AttrAccess) -> FrozenSet[str]:
        return access.lockset | inc.get(access.method, frozenset())

    # S004 first: check-then-act converts the test read's S002.
    s004_reads: Set[Tuple[str, int]] = set()
    for mi in ci.methods.values():
        for ev in mi.ifs:
            for access in ev.test_reads:
                lock = ci.claims.get(access.attr)
                if lock is None or access.exempt:
                    continue
                held = access.lockset | inc.get(ev.method, frozenset())
                if lock in held:
                    continue
                if access.attr in ev.body_writes or lock in ev.body_locks:
                    s004_reads.add((access.attr, access.line))
                    emitter.emit(
                        "S004", fi, access.line,
                        f"{ci.name}.{access.attr}",
                        f"check-then-act: {access.attr!r} tested without "
                        f"{ci.display(lock)!r}, then acted on — test and "
                        f"act under one 'with self.{lock}:' block",
                    )

    for mi in ci.methods.values():
        for access in mi.accesses:
            lock = ci.claims.get(access.attr)
            if lock is None or access.exempt:
                continue
            held = must(access)
            if lock in held:
                continue
            if access.kind == "read" and \
                    (access.attr, access.line) in s004_reads:
                continue
            others = held & (set(ci.locks) - {lock})
            if others:
                other = sorted(others)[0]
                emitter.emit(
                    "S003", fi, access.line, f"{ci.name}.{access.attr}",
                    f"{access.attr!r} is guarded by {ci.display(lock)!r} "
                    f"but accessed under {ci.display(other)!r}",
                )
            elif access.kind == "write":
                guarded, total, _ = ci.stats.get(access.attr, (0, 0, 0))
                emitter.emit(
                    "S001", fi, access.line, f"{ci.name}.{access.attr}",
                    f"write to {access.attr!r} without its guard "
                    f"{ci.display(lock)!r} (guarded on {guarded}/{total} "
                    f"writes)",
                )
            else:
                emitter.emit(
                    "S002", fi, access.line, f"{ci.name}.{access.attr}",
                    f"read of {access.attr!r} without its guard "
                    f"{ci.display(lock)!r}",
                )


def _check_publishes(ci: ClassInfo, fi: FileInfo, emitter: _Emitter,
                     inc: Dict[str, FrozenSet[str]]) -> None:
    """S007 — published then mutated without the container's guard."""
    for mi in ci.methods.values():
        if not mi.publishes:
            continue
        for pub in mi.publishes:
            if pub.container is not None:
                lock = ci.claims.get(pub.container)
                if lock is None:
                    continue
            else:
                lock = None  # handed to a thread: any mutation races
            for mut in mi.mutates:
                if mut.name != pub.name or mut.order <= pub.order:
                    continue
                held = mut.lockset | inc.get(mut.method, frozenset())
                if lock is not None and lock in held:
                    continue
                if lock is None and held:
                    continue
                where = (
                    f"container {pub.container!r} (guard "
                    f"{ci.display(lock)!r})" if lock is not None
                    else "a thread"
                )
                emitter.emit(
                    "S007", fi, mut.line, f"{ci.name}.{mi.name}",
                    f"{pub.name!r} was published into {where} on line "
                    f"{pub.line} but is still mutated afterwards without "
                    f"the guard",
                )
                break


def _check_callbacks(ci: ClassInfo, fi: FileInfo, emitter: _Emitter,
                     inc: Dict[str, FrozenSet[str]]) -> None:
    """S009 — callback invoked while holding the lock guarding it."""
    for mi in ci.methods.values():
        for ev in mi.attr_calls:
            if ev.meth != "__call__":
                continue
            lock = ci.claims.get(ev.attr)
            if lock is None:
                continue
            held = ev.lockset | inc.get(ev.method, frozenset())
            if lock in held:
                emitter.emit(
                    "S009", fi, ev.line, f"{ci.name}.{ev.attr}",
                    f"callback stored in {ev.attr!r} invoked while "
                    f"holding its guard {ci.display(lock)!r} — snapshot "
                    f"under the lock, call outside it",
                )


def _check_annotations(fi: FileInfo, emitter: _Emitter) -> None:
    """S010 — stale / unverifiable intent annotations."""
    for line, name in sorted(fi.guarded_by.items()):
        if line not in fi.consumed_guards:
            emitter.emit(
                "S010", fi, line, "",
                f"# guarded-by: {name!r} does not annotate a 'self.<attr>"
                f" = ...' assignment — move it onto the attribute's "
                f"initialisation line",
            )
    for line, reason in sorted(fi.unguarded.items()):
        if not reason.strip():
            emitter.emit(
                "S010", fi, line, "",
                "# unguarded: annotation requires a reason explaining "
                "why the racy access is acceptable",
            )


def _resolve_lock_name(ci: ClassInfo, name: str) -> Optional[str]:
    if name in ci.locks:
        return name
    for attr, lf in ci.locks.items():
        if lf.display == name:
            return attr
    return None


# ---------------------------------------------------------------------------
# S008 — per-call lock creation (methods and module functions)


def _check_percall_locks(tree: ast.Module, fi: FileInfo,
                         emitter: _Emitter,
                         module_funcs: Dict[str, ast.AST]) -> None:
    for func in [n for n in ast.walk(tree)
                 if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]:
        if func.name == "__init__":
            continue
        ctor_calls: List[ast.Call] = []
        local_names: Set[str] = set()
        returned = False
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                disp = _lock_ctor_display(node, {}, 0)
                if disp is not None:
                    ctor_calls.append(node)
            elif isinstance(node, ast.Return) and node.value is not None:
                if isinstance(node.value, ast.Call) and \
                        _lock_ctor_display(node.value, {}, 0) is not None:
                    returned = True
                elif isinstance(node.value, ast.Name):
                    local_names.add(node.value.id)
        if not ctor_calls or returned:
            continue
        assigned_then_returned = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Call) and \
                    _lock_ctor_display(node.value, {}, 0) is not None:
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name) and \
                            tgt.id in local_names:
                        assigned_then_returned.add(id(node.value))
        for call in ctor_calls:
            if id(call) in assigned_then_returned:
                continue
            emitter.emit(
                "S008", fi, call.lineno, func.name,
                f"lock created inside {func.name}() — per-call locks "
                f"guard nothing; hoist to __init__ or module scope "
                f"(or return it from a factory)",
            )


# ---------------------------------------------------------------------------
# static lock-order graph (S006 + runtime cross-validation export)


def _may_acquire(ci: ClassInfo, method: str,
                 by_name: Dict[str, ClassInfo],
                 memo: Dict[Tuple[int, str], Set[str]],
                 depth: int = _MAX_CALL_DEPTH) -> Set[str]:
    key = (id(ci), method)
    if key in memo:
        return memo[key]
    memo[key] = set()  # cycle guard
    mi = ci.methods.get(method)
    if mi is None or depth <= 0:
        return memo[key]
    out: Set[str] = set()
    for ev in mi.withs:
        out.add(ci.display(ev.lock))
    for call in mi.calls:
        out |= _may_acquire(ci, call.callee, by_name, memo, depth - 1)
    for ev in mi.attr_calls:
        other_name = ci.attr_types.get(ev.attr)
        other = by_name.get(other_name) if other_name else None
        if other is not None and ev.meth in other.methods:
            out |= _may_acquire(other, ev.meth, by_name, memo, depth - 1)
    memo[key] = out
    return out


def _build_lock_graph(model: ConcurrencyModel,
                      by_name: Dict[str, ClassInfo],
                      incoming: Dict[int, Dict[str, FrozenSet[str]]]
                      ) -> None:
    memo: Dict[Tuple[int, str], Set[str]] = {}

    def add(src: str, dst: str, file: str, line: int) -> None:
        if src != dst:
            model.lock_order_edges.setdefault((src, dst), (file, line))

    for fi in model.files:
        for ci in fi.classes:
            inc = incoming.get(id(ci), {})
            for lf in ci.locks.values():
                model.lock_names.add(lf.display)
            for mi in ci.methods.values():
                held_base = inc.get(mi.name, frozenset())
                for ev in mi.withs:
                    for held in ev.prior | held_base:
                        add(ci.display(held), ci.display(ev.lock),
                            fi.path, ev.line)
                for call in mi.calls:
                    held = call.lockset | held_base
                    if not held:
                        continue
                    for dst in _may_acquire(ci, call.callee, by_name,
                                            memo):
                        for src in held:
                            add(ci.display(src), dst, fi.path, call.line)
                for ev in mi.attr_calls:
                    held = ev.lockset | held_base
                    other_name = ci.attr_types.get(ev.attr)
                    other = by_name.get(other_name) if other_name else None
                    if not held or other is None or \
                            ev.meth not in other.methods:
                        continue
                    for dst in _may_acquire(other, ev.meth, by_name,
                                            memo):
                        for src in held:
                            add(ci.display(src), dst, fi.path, ev.line)


def _graph_cycles(edges) -> List[List[str]]:
    adjacency: Dict[str, List[str]] = {}
    for src, dst in edges:
        adjacency.setdefault(src, []).append(dst)
        adjacency.setdefault(dst, [])
    seen: Set[Tuple[str, ...]] = set()
    out: List[List[str]] = []

    def visit(node: str, path: List[str]) -> None:
        for nxt in sorted(adjacency.get(node, ())):
            if nxt in path:
                cycle = path[path.index(nxt):]
                i = cycle.index(min(cycle))
                canon = tuple(cycle[i:] + cycle[:i])
                if canon not in seen:
                    seen.add(canon)
                    out.append(list(canon))
                continue
            visit(nxt, path + [nxt])

    for start in sorted(adjacency):
        visit(start, [start])
    return sorted(out)


# ---------------------------------------------------------------------------
# entry points


def _parse_annotations(source: str) -> Tuple[Dict[int, str], Dict[int, str]]:
    guarded: Dict[int, str] = {}
    unguarded: Dict[int, str] = {}
    for i, line in enumerate(source.splitlines(), start=1):
        if "#" not in line:
            continue
        m = _GUARDED_BY_RE.search(line)
        if m:
            guarded[i] = m.group(1)
        m = _UNGUARDED_RE.search(line)
        if m:
            unguarded[i] = m.group(1).strip()
    return guarded, unguarded


def _collect_files(paths: Sequence[str]) -> List[str]:
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d != "__pycache__" and not d.startswith(".")
                )
                out.extend(
                    os.path.join(root, f) for f in sorted(files)
                    if f.endswith(".py")
                )
        elif path.endswith(".py"):
            out.append(path)
    return out


def analyze_source(source: str, path: str,
                   model: Optional[ConcurrencyModel] = None,
                   emitter: Optional[_Emitter] = None) -> ConcurrencyModel:
    """Analyze one source blob into (a possibly shared) model."""
    own = model is None
    if model is None:
        model = ConcurrencyModel()
    if emitter is None:
        emitter = _Emitter()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return model  # astlint owns reporting unparsable files (L000)
    guarded, unguarded = _parse_annotations(source)
    fi = FileInfo(
        path=path, sup=InlineSuppressions(source),
        guarded_by=guarded, unguarded=unguarded,
    )
    module_funcs = {
        n.name: n for n in tree.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            ci = ClassInfo(node.name, path, node)
            _analyze_class(ci, fi, emitter, module_funcs)
            fi.classes.append(ci)
    _check_percall_locks(tree, fi, emitter, module_funcs)
    model.files.append(fi)
    if own:
        _finalize(model, emitter)
    return model


def _finalize(model: ConcurrencyModel, emitter: _Emitter) -> None:
    by_name: Dict[str, ClassInfo] = {}
    incoming: Dict[int, Dict[str, FrozenSet[str]]] = {}
    for fi in model.files:
        for ci in fi.classes:
            by_name.setdefault(ci.name, ci)
    for fi in model.files:
        for ci in fi.classes:
            inc = _incoming_locksets(ci)
            incoming[id(ci)] = inc
            _infer_claims(ci, fi, emitter, inc)
    for fi in model.files:
        for ci in fi.classes:
            inc = incoming[id(ci)]
            _check_accesses(ci, fi, emitter, inc)
            _check_publishes(ci, fi, emitter, inc)
            _check_callbacks(ci, fi, emitter, inc)
        _check_annotations(fi, emitter)
    _build_lock_graph(model, by_name, incoming)
    for cycle in _graph_cycles(model.lock_order_edges):
        file, line = model.lock_order_edges.get(
            (cycle[0], cycle[1 % len(cycle)]), ("", 0)
        )
        fi = next((f for f in model.files if f.path == file), None)
        loop = " -> ".join([*cycle, cycle[0]])
        if fi is not None:
            emitter.emit(
                "S006", fi, line, "lock-order",
                f"static lock-order cycle: {loop} — acquire these locks "
                f"in one global order",
            )
        else:  # pragma: no cover - edge without provenance
            emitter.diagnostics.append(Diagnostic(
                code="S006", severity="error", path="lock-order",
                message=f"static lock-order cycle: {loop}",
            ))
    model.diagnostics = emitter.diagnostics
    model.ignored = emitter.ignored


def analyze_concurrency(paths: Sequence[str]) -> ConcurrencyModel:
    """Analyze every ``.py`` file under ``paths`` (dirs recurse)."""
    model = ConcurrencyModel()
    emitter = _Emitter()
    for file in _collect_files(paths):
        try:
            with open(file, encoding="utf-8") as fh:
                source = fh.read()
        except OSError:
            continue
        analyze_source(source, file, model, emitter)
    _finalize(model, emitter)
    return model


def static_lock_order_graph(
    model: ConcurrencyModel,
) -> Dict[str, object]:
    """Exported static graph, comparable to ``Sanitizer.lockdep_export``."""
    return {
        "locks": sorted(model.lock_names),
        "edges": sorted([src, dst] for src, dst in model.lock_order_edges),
    }


def render_concurrency_report(model: ConcurrencyModel) -> str:
    """The inferred guarded-by table per class (``--concurrency-report``)."""
    lines: List[str] = ["concurrency: inferred guarded-by relation"]
    for fi in model.files:
        for ci in fi.classes:
            if not ci.locks:
                continue
            lines.append(f"class {ci.name} ({fi.path})")
            for attr, lf in sorted(ci.locks.items()):
                lines.append(f"  lock {attr} -> {lf.display!r}")
            for attr, lock in sorted(ci.claims.items()):
                guarded, writes, reads = ci.stats.get(attr, (0, 0, 0))
                forced = " (annotated)" if attr in ci.forced_claims else ""
                lines.append(
                    f"  {attr:<24} guarded by {ci.display(lock)!r}"
                    f"{forced}  [{guarded}/{writes} writes, "
                    f"{reads} reads]"
                )
            if not ci.claims:
                lines.append("  (no guarded attributes inferred)")
    edges = sorted(model.lock_order_edges)
    lines.append(
        f"lock-order graph: {len(model.lock_names)} locks, "
        f"{len(edges)} edges"
    )
    for src, dst in edges:
        file, line = model.lock_order_edges[(src, dst)]
        lines.append(f"  {src} -> {dst}  ({file}:{line})")
    return "\n".join(lines)
