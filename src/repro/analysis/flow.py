"""Whole-deployment dataflow analyzer (``wintermute-sim check --flow``).

The structural analyzer (:mod:`repro.analysis.config`, W rules) proves
that a deployment's pattern units *resolve*; this module proves that the
data flowing through them makes sense.  It performs an abstract
interpretation over the resolved deployment — the synthesized sensor
trees, the Unit-System expansion of every operator, and the pipeline
wiring across Pushers and Collect Agent — propagating one
:class:`FlowFact` per sensor topic:

- the **production period** (monitoring interval, operator interval ×
  unit cadence, per-plugin rate transforms);
- the **physical unit** (from monitoring plugin sensor tables, carried
  through operators via their declarative
  :meth:`~repro.core.operator.OperatorBase.flow_transforms` metadata);
- the **producer** (for cross-stage scheduling checks).

From those facts it checks window demand against cache supply, unit
dimension mixing, interval aliasing, per-host cache memory footprints,
and the deployment's resilience budgets against PR 5's network section
— all before a single runtime component is instantiated.

The analyzer also runs the pipeline-fusion planner
(:func:`repro.core.pipeline.plan_fusion`) over each resolved context so
the ``--flow-report`` view shows which operator chains the runtime will
compile into single fused passes, and why otherwise-fusable chains stay
staged (F013).

Findings are reported through the shared Diagnostic machinery under the
stable rule family **F001–F013** (catalog in ``docs/STATIC_ANALYSIS.md``):

====  ========  =====================================================
code  severity  condition
====  ========  =====================================================
F001  error     operator window longer than the cache retention
F002  warning   window within two input periods of the cache retention
F003  error     window shorter than an input's production period
F004  info      interval faster than every input (redundant recompute)
F005  warning   interval so slow that readings skip every window
F006  error     mixed physical dimensions pooled by one output
F007  info      output unit unknown (no metadata / unknown inputs)
F008  warning   estimated host cache footprint exceeds the budget
F009  error     worst outage × publish rate overflows the spill queue
F010  warning   breaker backoff shorter than the worst outage (flap)
F011  warning   downstream stage fires before upstream's first output
F012  warning   post-outage replay burst overflows the ingest queue
F013  info      fusable operator chain blocked from fusing
====  ========  =====================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, DiagnosticCollector
from repro.common.timeutil import NS_PER_MS, NS_PER_SEC

#: Default per-host cache memory budget (F008), in MiB.
DEFAULT_MEMORY_BUDGET_MB = 1024

#: Bytes per cached reading: one int64 timestamp + one float64 value.
_CACHE_ENTRY_BYTES = 16
#: Sizing slack mirroring ``SensorCache.for_duration``.
_CACHE_SLACK = 1.2

#: Unit algebra of the ``per-second`` transform (delta / elapsed time).
_PER_SECOND = {
    "J": "W",      # energy per second is power
    "s": "1",      # seconds per second cancels
    "1": "1/s",
    "#": "#/s",
}

_UNKNOWN = ""  # unit or period we cannot infer


@dataclass
class FlowFact:
    """What the analyzer knows about one sensor topic."""

    topic: str
    #: Production period in ns; 0 = unknown (e.g. ondemand outputs).
    period_ns: int = 0
    #: Physical unit; "" = unknown, "1" = dimensionless.
    unit: str = _UNKNOWN
    #: Producing stage, e.g. ``monitoring`` or ``pushers/aggregator/avg``.
    producer: str = "monitoring"
    #: First computation time of the producing operator (scheduling).
    first_fire_ns: int = 0


@dataclass
class OperatorFlowView:
    """Per-operator summary retained for the ``--flow-report`` view."""

    context: str
    label: str
    n_units: int
    interval_ns: int
    window_ns: int
    effective_period_ns: int
    is_job_plugin: bool = False
    mode: str = "online"
    #: output sensor name -> inferred unit ("" = unknown).
    output_units: Dict[str, str] = field(default_factory=dict)
    n_output_topics: int = 0


@dataclass
class FlowModel:
    """The propagated dataflow facts of one deployment."""

    facts: Dict[str, FlowFact] = field(default_factory=dict)
    operators: List[OperatorFlowView] = field(default_factory=list)
    #: host label -> estimated cache footprint in bytes.
    host_memory: Dict[str, int] = field(default_factory=dict)
    monitoring_interval_ns: int = NS_PER_SEC
    cache_window_ns: int = 180 * NS_PER_SEC
    n_base_topics: int = 0
    n_pushers: int = 0
    #: Worst scheduled outage in ns (0 = none).
    worst_outage_ns: int = 0
    #: Per-pusher MQTT publish rate in readings/second.
    publish_rate_hz: float = 0.0
    spill_capacity: int = 8192
    ingest_queue_capacity: Optional[int] = None
    memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB
    #: Storage tiering mode from the spec's ``storage`` section
    #: ("memory" when absent or explicitly in-memory).
    storage_tiers: str = "memory"
    #: Tiered-storage flush budget in bytes (0 = no disk tier); counted
    #: into the agent's F008 footprint — the memory tier really holds
    #: up to this much before sealing a segment.
    storage_flush_bytes: int = 0
    #: (context, member labels) per fused group the runtime would form.
    fused_groups: List[Tuple[str, List[str]]] = field(default_factory=list)
    #: (context, upstream label, downstream label, reason) per blocked
    #: fusable chain (the F013 findings, kept for the report view).
    fusion_blocked: List[Tuple[str, str, str, str]] = field(
        default_factory=list
    )


# ----------------------------------------------------------------------
# Formatting helpers
# ----------------------------------------------------------------------

def _fmt_s(ns: int) -> str:
    """Compact seconds rendering of a ns quantity (``2.5s``, ``100ms``)."""
    if ns <= 0:
        return "?"
    if ns % NS_PER_SEC == 0:
        return f"{ns // NS_PER_SEC}s"
    if ns < NS_PER_SEC:
        return f"{ns / NS_PER_MS:g}ms"
    return f"{ns / NS_PER_SEC:g}s"


def _fmt_mb(nbytes: int) -> str:
    return f"{nbytes / (1024 * 1024):.1f} MiB"


def _cache_entries(window_ns: int, period_ns: int) -> int:
    """Ring capacity ``SensorCache.for_duration`` would allocate."""
    if period_ns <= 0:
        return 2
    return max(2, int(math.ceil(window_ns / period_ns * _CACHE_SLACK)) + 1)


def _sensor_name(topic: str) -> str:
    return topic.rsplit("/", 1)[-1]


# ----------------------------------------------------------------------
# Base facts: the monitoring layer
# ----------------------------------------------------------------------

def _monitoring_unit_table(plugins: Sequence[str], counters) -> Dict[str, str]:
    """sensor-name -> physical unit for the enabled monitoring plugins."""
    table: Dict[str, str] = {}
    if "sysfs" in plugins:
        from repro.dcdb.plugins.sysfs import SENSOR_UNITS

        table.update(SENSOR_UNITS)
    if "procfs" in plugins:
        from repro.dcdb.plugins.procfs import SENSOR_UNITS

        table.update(SENSOR_UNITS)
    if "opa" in plugins:
        from repro.dcdb.plugins.opa import SENSOR_UNITS

        table.update(SENSOR_UNITS)
    if "perfevent" in plugins:
        table.update({c: "#" for c in counters})
    # tester sensors stay unknown: they carry synthetic values.
    return table


def _base_facts(
    spec: dict, agent_tree, model: FlowModel
) -> Dict[str, FlowFact]:
    """One fact per monitoring/facility sensor topic."""
    from repro.simulator.engine import CPU_COUNTERS
    from repro.simulator.facility import FACILITY_SENSOR_UNITS

    monitoring = spec.get("monitoring", {})
    if not isinstance(monitoring, dict):
        monitoring = {}
    plugins = monitoring.get("plugins", ("sysfs",))
    if not isinstance(plugins, (list, tuple)):
        plugins = ("sysfs",)
    counters = monitoring.get("perfevent_counters") or list(CPU_COUNTERS)
    units = _monitoring_unit_table(plugins, counters)

    facility = spec.get("facility", {})
    if not isinstance(facility, dict):
        facility = {}
    facility_interval = facility.get("interval_s", 10)
    if not isinstance(facility_interval, (int, float)) or facility_interval <= 0:
        facility_interval = 10
    facility_period_ns = int(facility_interval * NS_PER_SEC)

    facts: Dict[str, FlowFact] = {}
    for topic in agent_tree.all_sensor_topics():
        name = _sensor_name(topic)
        if topic.startswith("/facility/"):
            facts[topic] = FlowFact(
                topic, facility_period_ns,
                FACILITY_SENSOR_UNITS.get(name, _UNKNOWN), "monitoring",
            )
        else:
            facts[topic] = FlowFact(
                topic, model.monitoring_interval_ns,
                units.get(name, _UNKNOWN), "monitoring",
            )
    return facts


# ----------------------------------------------------------------------
# Operator fact propagation
# ----------------------------------------------------------------------

def _transforms_of(plugin: str, params: dict) -> List[Tuple[str, object]]:
    """Ordered (output-glob, transform) metadata of a plugin, or []."""
    from repro.core.registry import get_plugin_class

    cls = get_plugin_class(plugin)
    if cls is None:
        return []
    try:
        transforms = cls.flow_transforms(dict(params or {}))
    except Exception:
        return []  # third-party metadata bugs must not kill the analyzer
    if not isinstance(transforms, dict):
        return []
    return [(k, v) for k, v in transforms.items() if isinstance(k, str)]


def _output_unit(
    name: str,
    transforms: List[Tuple[str, object]],
    input_units: Set[str],
    input_unit_by_name: Dict[str, str],
) -> Tuple[str, bool, bool]:
    """(unit, pools_inputs, matched) of one output sensor name.

    ``pools_inputs`` marks transforms whose result dimension depends on
    the pooled input set (``preserve`` / ``per-second``) — the ones the
    F006 mixed-dimension rule applies to.
    """
    for pattern, transform in transforms:
        if not fnmatchcase(name, pattern):
            continue
        if transform == "dimensionless":
            return "1", False, True
        if transform == "preserve":
            unit = next(iter(input_units)) if len(input_units) == 1 else _UNKNOWN
            return unit, True, True
        if transform == "per-second":
            if len(input_units) == 1:
                base = next(iter(input_units))
                return _PER_SECOND.get(base, f"{base}/s"), True, True
            return _UNKNOWN, True, True
        if (
            isinstance(transform, (tuple, list))
            and len(transform) == 2
            and transform[0] == "input"
        ):
            return input_unit_by_name.get(str(transform[1]), _UNKNOWN), False, True
        return _UNKNOWN, False, True  # unknown transform kind
    return _UNKNOWN, False, False


def _propagate_operator(
    op,
    context: str,
    facts: Dict[str, FlowFact],
    model: FlowModel,
    out: DiagnosticCollector,
    fused_upstreams: Optional[Set[str]] = None,
) -> None:
    """Derive one operator's checks and output facts from its inputs."""
    config = op.config
    effective_period = config.interval_ns * config.unit_cadence
    first_fire = config.delay_ns + config.interval_ns
    label = f"{context}/{op.label}"

    view = OperatorFlowView(
        context=context, label=op.label, n_units=len(op.units),
        interval_ns=config.interval_ns, window_ns=config.window_ns,
        effective_period_ns=effective_period,
        is_job_plugin=op.is_job_plugin, mode=config.mode,
    )
    model.operators.append(view)

    input_topics = sorted({t for u in op.units for t in u.inputs})
    input_facts = [facts[t] for t in input_topics if t in facts]
    known_periods = sorted(
        {f.period_ns for f in input_facts if f.period_ns > 0}
    )
    known_units = {f.unit for f in input_facts if f.unit}
    unit_by_name: Dict[str, str] = {}
    for f in input_facts:
        unit_by_name.setdefault(_sensor_name(f.topic), f.unit)

    scheduled = config.mode == "online"
    if input_facts:
        _check_windows(config, known_periods, model, out, scheduled,
                       effective_period)
        if scheduled:
            _check_upstream_schedule(
                op, first_fire, input_topics, facts, out,
                fused_upstreams or frozenset(),
            )

    # ------------------------------------------------------------------
    # Output units + facts
    # ------------------------------------------------------------------
    transforms = _transforms_of(op.plugin, config.params)
    output_names = sorted({s.name for u in op.units for s in u.outputs})
    mixed_outputs: List[str] = []
    unknown_outputs: List[str] = []
    unit_of: Dict[str, str] = {}
    for name in output_names:
        unit, pools, matched = _output_unit(
            name, transforms, known_units, unit_by_name
        )
        unit_of[name] = unit
        if pools and len(known_units) > 1:
            mixed_outputs.append(name)
        elif not unit:
            unknown_outputs.append(name)
    view.output_units = unit_of

    if mixed_outputs:
        out.error(
            "F006",
            f"operator {op.label!r} pools inputs of mixed physical "
            f"dimensions {sorted(known_units)} into output(s) "
            f"{mixed_outputs}; aggregate per dimension or split the "
            f"operator",
        )
    if unknown_outputs:
        reason = (
            "inputs have unknown units" if transforms
            else f"plugin {op.plugin!r} declares no flow_transforms metadata"
        )
        out.info(
            "F007",
            f"operator {op.label!r}: output unit unknown for "
            f"{unknown_outputs} ({reason})",
        )

    output_period = effective_period if scheduled else 0
    for unit in op.units:
        for sensor in unit.outputs:
            facts[sensor.topic] = FlowFact(
                sensor.topic, output_period,
                unit_of.get(sensor.name, _UNKNOWN), label, first_fire,
            )
            view.n_output_topics += 1


def _check_windows(
    config,
    known_periods: List[int],
    model: FlowModel,
    out: DiagnosticCollector,
    scheduled: bool,
    effective_period: int,
) -> None:
    """F001-F005: window demand vs cache supply and interval aliasing."""
    window = config.window_ns
    slowest = known_periods[-1] if known_periods else 0
    fastest = known_periods[0] if known_periods else 0
    retention = model.cache_window_ns

    if window > 0:
        if window > retention:
            out.at("window").error(
                "F001",
                f"operator {config.name!r} queries a {_fmt_s(window)} "
                f"window but caches only retain "
                f"{_fmt_s(retention)} (monitoring.cache_window_s); the "
                f"window is guaranteed short",
            )
        elif slowest and window > retention - 2 * slowest:
            out.at("window").warning(
                "F002",
                f"operator {config.name!r}: {_fmt_s(window)} window is "
                f"within two input periods ({_fmt_s(slowest)}) of the "
                f"{_fmt_s(retention)} cache retention; sampling jitter "
                f"may truncate it",
            )
        if slowest and window < slowest:
            out.at("window").error(
                "F003",
                f"operator {config.name!r}: {_fmt_s(window)} window is "
                f"shorter than its slowest input's {_fmt_s(slowest)} "
                f"production period, so it holds at most one sample",
            )
    if not scheduled:
        return
    if fastest and effective_period < fastest:
        out.at("interval").info(
            "F004",
            f"operator {config.name!r} computes every "
            f"{_fmt_s(effective_period)} but its fastest input only "
            f"produces every {_fmt_s(fastest)}; recomputations between "
            f"new readings are redundant",
        )
    if window > 0 and slowest and effective_period > window + slowest:
        coverage = 100.0 * (window + slowest) / effective_period
        out.at("interval").warning(
            "F005",
            f"operator {config.name!r} computes every "
            f"{_fmt_s(effective_period)} over a {_fmt_s(window)} window: "
            f"only ~{coverage:.0f}% of input readings ever enter a "
            f"window (undersampling)",
        )


def _check_upstream_schedule(
    op, first_fire: int, input_topics, facts, out: DiagnosticCollector,
    fused_upstreams: Set[str] = frozenset(),
) -> None:
    """F011: does the first pass run before upstream data can exist?

    Upstreams that share a fused group with ``op`` are exempt: the
    fused driver runs the members in registration order within one
    pass, so the downstream's first fire sees the upstream's output
    from the very same tick.
    """
    flagged: Set[str] = set()
    for topic in input_topics:
        fact = facts.get(topic)
        if fact is None or fact.producer == "monitoring":
            continue
        if fact.producer in flagged:
            continue
        if fact.producer in fused_upstreams:
            continue
        if first_fire <= fact.first_fire_ns:
            flagged.add(fact.producer)
            out.at("delay").warning(
                "F011",
                f"operator {op.label!r} first computes at "
                f"{_fmt_s(first_fire)} but upstream {fact.producer!r} "
                f"first produces at {_fmt_s(fact.first_fire_ns)}; the "
                f"first pass will see no data (add a delay)",
            )


# ----------------------------------------------------------------------
# Pipeline fusion eligibility (F013)
# ----------------------------------------------------------------------

def _analyze_fusion(
    rp,
    context: str,
    host_has_storage: bool,
    model: FlowModel,
    out: DiagnosticCollector,
) -> Dict[str, Set[str]]:
    """Run the fusion planner over one resolved context.

    Records the would-be fused groups and blocked chains on the model,
    emits F013 for the reportable blocks, and returns each member's set
    of co-fused upstream producer labels — used to refine F011: members
    of one fused group execute in order within a single pass, so a
    same-tick first fire genuinely sees the upstream's fresh output.
    """
    plan = rp.fusion_plan(host_has_storage=host_has_storage)
    label_of = {op.name: op.label for op in rp.operators}
    fused_upstreams: Dict[str, Set[str]] = {}
    for group in plan.groups:
        labels = [label_of.get(name, name) for name in group]
        model.fused_groups.append((context, labels))
        for i, name in enumerate(group):
            fused_upstreams[name] = {
                f"{context}/{label}" for label in labels[:i]
            }
    for block in plan.blocked:
        model.fusion_blocked.append(
            (context, block.upstream, block.downstream, block.reason)
        )
        out.at("analytics", context).info(
            "F013",
            f"operators {block.upstream!r} -> {block.downstream!r} form "
            f"a fusable chain but stay staged ({block.reason}): "
            f"{block.detail}",
        )
    return fused_upstreams


# ----------------------------------------------------------------------
# Cross-host replication
# ----------------------------------------------------------------------

def _replicate_pusher_outputs(
    facts: Dict[str, FlowFact],
    agent_tree,
    source_root: str,
    node_paths: Sequence[str],
) -> None:
    """Spread pusher-stage output facts across every node of the fleet.

    Pusher pipelines are resolved against one representative node; at
    runtime every node runs the same pipeline, so each output topic
    exists once per node — which is what the agent-side model (and the
    agent memory estimate) must see.
    """
    from repro.common.errors import TopicError

    source = source_root.rstrip("/")
    pusher_facts = [
        f for f in facts.values() if f.producer.startswith("pushers/")
    ]
    for fact in pusher_facts:
        if fact.topic.startswith(source + "/"):
            suffix = fact.topic[len(source):]
            targets = [f"{n.rstrip('/')}{suffix}" for n in node_paths]
        else:
            targets = [fact.topic]  # above the node level: exists as-is
        for topic in targets:
            facts.setdefault(
                topic,
                FlowFact(topic, fact.period_ns, fact.unit, fact.producer,
                         fact.first_fire_ns),
            )
            try:
                agent_tree.add_sensor(topic)
            except TopicError:
                pass


# ----------------------------------------------------------------------
# Memory and resilience budgets
# ----------------------------------------------------------------------

def _estimate_memory(
    topics: Sequence[str], facts: Dict[str, FlowFact], model: FlowModel
) -> int:
    """Estimated cache bytes for one host caching ``topics``."""
    total = 0
    for topic in topics:
        fact = facts.get(topic)
        period = fact.period_ns if fact and fact.period_ns > 0 else (
            model.monitoring_interval_ns
        )
        total += _cache_entries(model.cache_window_ns, period) * _CACHE_ENTRY_BYTES
    return total


def _check_memory(model: FlowModel, out: DiagnosticCollector) -> None:
    budget = model.memory_budget_mb * 1024 * 1024
    for host, nbytes in sorted(model.host_memory.items()):
        if nbytes > budget:
            extra = ""
            if model.storage_flush_bytes and host == "collect agent":
                extra = (
                    f" (incl. {_fmt_mb(model.storage_flush_bytes)} "
                    f"storage flush budget — shrink flush_mb too)"
                )
            out.at("monitoring", "cache_window_s").warning(
                "F008",
                f"estimated sensor-cache footprint on the {host} is "
                f"{_fmt_mb(nbytes)}{extra}, over the "
                f"{model.memory_budget_mb:g} MiB budget; shrink "
                f"cache_window_s or the sensor set "
                f"(--flow-memory-budget-mb adjusts the budget)",
            )


def _network_section(spec: dict) -> dict:
    network = spec.get("network")
    return network if isinstance(network, dict) else {}


def _worst_outage_ns(network: dict) -> int:
    worst = 0.0
    outages = network.get("outages", [])
    if not isinstance(outages, list):
        return 0
    for outage in outages:
        if not isinstance(outage, dict):
            continue
        start, end = outage.get("start_s"), outage.get("end_s")
        if isinstance(start, (int, float)) and isinstance(end, (int, float)):
            worst = max(worst, float(end) - float(start))
    return int(worst * NS_PER_SEC) if worst > 0 else 0


def _check_resilience(
    spec: dict,
    pusher_ops,
    model: FlowModel,
    out: DiagnosticCollector,
) -> None:
    """F009/F010/F012: outage demand vs spill, breaker and ingest budgets."""
    network = _network_section(spec)
    model.worst_outage_ns = _worst_outage_ns(network)

    spill = network.get("spill", {})
    capacity = spill.get("capacity") if isinstance(spill, dict) else None
    if isinstance(capacity, int) and not isinstance(capacity, bool) and capacity >= 1:
        model.spill_capacity = capacity
    ingest = network.get("ingest", {})
    queue = ingest.get("queue_capacity") if isinstance(ingest, dict) else None
    if isinstance(queue, int) and not isinstance(queue, bool) and queue >= 1:
        model.ingest_queue_capacity = queue

    # Per-pusher publish rate: every monitoring reading, plus every
    # published online operator output.
    rate = model.n_base_topics / (model.monitoring_interval_ns / NS_PER_SEC)
    for op in pusher_ops:
        if op.config.mode != "online" or not op.config.publish_outputs:
            continue
        n_out = len(op.output_topics())
        if n_out:
            period_s = (
                op.config.interval_ns * op.config.unit_cadence / NS_PER_SEC
            )
            rate += n_out / period_s
    model.publish_rate_hz = rate

    if not model.worst_outage_ns:
        return
    outage_s = model.worst_outage_ns / NS_PER_SEC
    demand = rate * outage_s
    net_out = out.at("network")
    if demand > model.spill_capacity:
        lost = int(demand - model.spill_capacity)
        net_out.at("spill", "capacity").error(
            "F009",
            f"worst outage ({_fmt_s(model.worst_outage_ns)}) x publish "
            f"rate ({rate:.1f} readings/s) needs "
            f"{int(demand)} spill slots per pusher but capacity is "
            f"{model.spill_capacity}: ~{lost} readings will be lost",
        )
    for op in pusher_ops:
        cfg = op.config
        if cfg.breaker_threshold <= 0:
            continue
        max_backoff = cfg.breaker_max_cooldown * cfg.interval_ns
        if max_backoff < model.worst_outage_ns:
            out.at(
                "analytics", "pushers", op.block_index,
                "operators", op.name, "breaker_max_cooldown",
            ).warning(
                "F010",
                f"operator {op.label!r}: breaker backoff tops out at "
                f"{_fmt_s(max_backoff)} "
                f"(breaker_max_cooldown x interval), shorter than the "
                f"worst {_fmt_s(model.worst_outage_ns)} outage; units "
                f"will flap between probe and quarantine",
            )
    if model.ingest_queue_capacity is not None:
        burst = model.n_pushers * min(demand, model.spill_capacity)
        if burst > model.ingest_queue_capacity:
            net_out.at("ingest", "queue_capacity").warning(
                "F012",
                f"post-outage replay burst of ~{int(burst)} readings "
                f"({model.n_pushers} pushers x spilled backlog) exceeds "
                f"the ingest queue capacity "
                f"{model.ingest_queue_capacity}; replayed data will be "
                f"dropped on arrival",
            )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def build_flow_model(
    spec: dict,
    collector: Optional[DiagnosticCollector] = None,
    memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
    trees=None,
) -> FlowModel:
    """Propagate dataflow facts through a deployment spec.

    Diagnostics (F001-F012) are recorded into ``collector``; the
    returned model carries the inferred per-operator plan consumed by
    :func:`render_flow_report`.  Structurally broken specs yield an
    empty model — the W rules own reporting those.
    """
    from repro.analysis.config import trees_from_deployment
    from repro.core.pipeline import resolve_pipeline
    from repro.deploy import cluster_spec_from_block
    from repro.simulator.cluster import ClusterTopology

    out = collector if collector is not None else DiagnosticCollector()
    model = FlowModel(memory_budget_mb=memory_budget_mb)
    if not isinstance(spec, dict):
        return model
    if trees is not None:
        agent_tree, pusher_tree = trees
    else:
        try:
            agent_tree, pusher_tree = trees_from_deployment(spec)
        except Exception:
            return model  # reported as W016 by the structural analyzer

    monitoring = spec.get("monitoring", {})
    if not isinstance(monitoring, dict):
        monitoring = {}
    interval_ms = monitoring.get("interval_ms", 1000)
    if isinstance(interval_ms, (int, float)) and not isinstance(
        interval_ms, bool
    ) and interval_ms > 0:
        model.monitoring_interval_ns = int(interval_ms * NS_PER_MS)
    cache_window_s = monitoring.get("cache_window_s", 180)
    if isinstance(cache_window_s, (int, float)) and not isinstance(
        cache_window_s, bool
    ) and cache_window_s > 0:
        model.cache_window_ns = int(cache_window_s * NS_PER_SEC)

    try:
        topology = ClusterTopology(
            cluster_spec_from_block(spec.get("cluster", {}))
        )
        node_paths = list(topology.node_paths)
    except Exception:
        node_paths = []
    model.n_pushers = len(node_paths)
    model.n_base_topics = pusher_tree.n_sensors

    facts = model.facts
    facts.update(_base_facts(spec, agent_tree, model))

    analytics = spec.get("analytics", {})
    if not isinstance(analytics, dict):
        analytics = {}

    def blocks_of(context: str) -> list:
        blocks = analytics.get(context, [])
        return blocks if isinstance(blocks, list) else []

    # Pusher pipelines resolve against one representative node.
    pusher_rp = resolve_pipeline(blocks_of("pushers"), pusher_tree, "pushers")
    pusher_fused = _analyze_fusion(pusher_rp, "pushers", False, model, out)
    for op in pusher_rp.operators:
        _propagate_operator(
            op, "pushers", facts, model,
            out.at("analytics", "pushers", op.block_index, "operators",
                   op.name),
            pusher_fused.get(op.name),
        )

    # Their published outputs exist on every node of the agent's view.
    agent_base = agent_tree
    if node_paths and pusher_rp.operators:
        _replicate_pusher_outputs(
            facts, agent_base, node_paths[0], node_paths
        )

    # The Collect Agent always persists to storage, so its chains can
    # never hide an intermediate from the external subscriber.
    agent_rp = resolve_pipeline(blocks_of("agent"), agent_base, "agent")
    agent_fused = _analyze_fusion(agent_rp, "agent", True, model, out)
    for op in agent_rp.operators:
        _propagate_operator(
            op, "agent", facts, model,
            out.at("analytics", "agent", op.block_index, "operators",
                   op.name),
            agent_fused.get(op.name),
        )

    # Budgets: per-host cache footprints, then resilience.  A tiered
    # storage section adds its flush budget to the agent — the hot
    # memory tier genuinely holds up to flush_mb before sealing.
    model.host_memory["collect agent"] = _estimate_memory(
        agent_rp.tree.all_sensor_topics(), facts, model
    )
    storage = spec.get("storage")
    if isinstance(storage, dict) and storage.get("tiers") == "tiered":
        model.storage_tiers = "tiered"
        flush_mb = storage.get("flush_mb", 64.0)
        if (
            isinstance(flush_mb, (int, float))
            and not isinstance(flush_mb, bool)
            and flush_mb > 0
        ):
            model.storage_flush_bytes = int(flush_mb * 1024 * 1024)
            model.host_memory["collect agent"] += model.storage_flush_bytes
    if model.n_pushers:
        model.host_memory["pusher (per node)"] = _estimate_memory(
            pusher_rp.tree.all_sensor_topics(), facts, model
        )
    _check_memory(model, out)
    _check_resilience(spec, pusher_rp.operators, model, out)
    return model


def analyze_flow(
    spec: dict,
    collector: Optional[DiagnosticCollector] = None,
    memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
    trees=None,
) -> List[Diagnostic]:
    """Run the dataflow pass over a deployment spec (F001-F012)."""
    out = collector if collector is not None else DiagnosticCollector()
    start = len(out.sink)
    build_flow_model(
        spec, out, memory_budget_mb=memory_budget_mb, trees=trees
    )
    return out.sink[start:]


def render_flow_report(model: FlowModel) -> str:
    """Human-readable per-pipeline rate/unit/memory plan."""
    lines: List[str] = []
    lines.append(
        f"flow plan: {len(model.facts)} sensor topics, "
        f"{len(model.operators)} operator(s), {model.n_pushers} pusher(s)"
    )
    lines.append(
        f"monitoring: interval {_fmt_s(model.monitoring_interval_ns)}, "
        f"cache retention {_fmt_s(model.cache_window_ns)}, "
        f"{model.n_base_topics} sensors/node"
    )
    for view in model.operators:
        units = ", ".join(
            f"{name} [{unit or '?'}]"
            for name, unit in sorted(view.output_units.items())
        ) or "-"
        schedule = (
            f"every {_fmt_s(view.effective_period_ns)}"
            if view.mode == "online" else "ondemand"
        )
        window = (
            f", window {_fmt_s(view.window_ns)}" if view.window_ns else ""
        )
        kind = " (job plugin)" if view.is_job_plugin else ""
        lines.append(
            f"  [{view.context}] {view.label}{kind}: {view.n_units} "
            f"unit(s), {schedule}{window} -> {units}"
        )
    for context, labels in model.fused_groups:
        lines.append(
            f"fusion: [{context}] {' + '.join(labels)} -> one fused "
            f"pass per tick"
        )
    for context, upstream, downstream, reason in model.fusion_blocked:
        lines.append(
            f"fusion: [{context}] {upstream} -> {downstream} stays "
            f"staged ({reason})"
        )
    for host, nbytes in sorted(model.host_memory.items()):
        lines.append(
            f"memory: {host} ~{_fmt_mb(nbytes)} "
            f"(budget {model.memory_budget_mb:g} MiB)"
        )
    if model.storage_tiers == "tiered":
        lines.append(
            f"storage: tiered, flush budget "
            f"{_fmt_mb(model.storage_flush_bytes)} counted into the "
            f"collect agent footprint"
        )
    if model.worst_outage_ns:
        lines.append(
            f"resilience: worst outage {_fmt_s(model.worst_outage_ns)}, "
            f"publish rate {model.publish_rate_hz:.1f} readings/s per "
            f"pusher, spill capacity {model.spill_capacity}, ingest "
            f"queue "
            + (
                str(model.ingest_queue_capacity)
                if model.ingest_queue_capacity is not None else "unbounded"
            )
        )
    else:
        lines.append(
            f"resilience: no outages scheduled, publish rate "
            f"{model.publish_rate_hz:.1f} readings/s per pusher"
        )
    return "\n".join(lines)


def flow_report(
    spec: dict, memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB
) -> str:
    """Build and render the flow plan of one deployment spec."""
    return render_flow_report(
        build_flow_model(spec, memory_budget_mb=memory_budget_mb)
    )
