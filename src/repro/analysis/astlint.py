"""Repo-specific AST lint pass (the ``--lint`` half of ``check``).

Generic linters don't know this codebase's invariants; these rules do:

- **L001** — an attribute assigned under ``with self._lock`` somewhere in
  a class is lock-guarded; mutating it outside a ``with self._lock``
  block (``__init__`` excepted — construction happens-before sharing) is
  a data race waiting for a second thread.
- **L002** — ``time.time()`` / ``time.monotonic()`` inside ``simulator/``
  or ``plugins/`` breaks the simulated-clock discipline: everything in
  those trees must take timestamps as arguments, or determinism and the
  Section VI scaling results die silently.
- **L003** — ``except Exception: pass`` (or bare ``except:``) swallows
  errors invisibly; use ``contextlib.suppress`` for the rare deliberate
  case so the intent is explicit.
- **L004** — operator plugins must not write ``self.*`` state inside
  ``compute_unit``/``compute``: parallel unit mode runs units on a
  thread pool, so per-unit state belongs in the model returned by
  ``make_model()`` (placed per-unit or shared by
  :meth:`~repro.core.operator.OperatorBase.model_for`).
- **L005** — ``threading.Thread(...)`` without a ``daemon=`` argument in
  a scope that never ``join()``\\ s a thread leaks a non-daemon thread:
  it blocks interpreter shutdown and outlives the component that spawned
  it.  Pass ``daemon=`` explicitly or join the thread.
- **L006** — ``time.sleep`` inside an operator compute path stalls the
  whole scheduling slot (and, under a wall-clock driver, every
  contender on the driver lock); operators wait by returning and being
  re-invoked at their interval, never by sleeping.
- **L007** — a per-topic ``engine.query_relative``/``query_absolute``
  call inside a loop within ``compute_unit``/``compute_batch`` of an
  operator that declares batch support (``supports_batch`` or a
  ``compute_batch`` override): the batched plugin exists precisely to
  avoid N scalar queries per pass, and the scalar loop creeping back in
  silently forfeits the compiled-plan fast path.  Intentional scalar
  fallbacks carry an explicit ``allow`` marker.
- **L008** — a mutable class-level default (``list``/``dict``/``set``
  literal, comprehension or constructor call) on an operator plugin
  class is shared by every instance — and operator instances are shared
  across units, so one unit's mutation bleeds into all others.
  Initialise mutable state in ``__init__`` (or ``make_model``).
  ALL_CAPS names are treated as read-only class constants and exempt.

Suppression: append ``# lint: allow(CODE)`` to the offending line.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, sort_key
from repro.analysis.suppress import InlineSuppressions

#: Rule codes implemented by this module.
LINT_CODES = ("L001", "L002", "L003", "L004", "L005", "L006", "L007",
              "L008")

_WALL_CLOCK_FUNCS = {"time", "monotonic"}
_COMPUTE_METHODS = {"compute", "compute_unit"}
#: Methods on the operator computation path for the sleep rule (L006):
#: everything invoked from a scheduled compute pass or REST trigger.
_COMPUTE_PATH_METHODS = {
    "compute",
    "compute_unit",
    "compute_operator_outputs",
    "trigger",
    "_compute_results",
    "_compute_one",
}


def _is_self_attr(node: ast.AST, name: Optional[str] = None) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (name is None or node.attr == name)
    )


def _assigned_self_attrs(stmt: ast.stmt) -> Iterable[ast.Attribute]:
    """``self.X`` attributes written by one statement (incl. ``self.X[..]``)."""
    for sub in ast.walk(stmt):
        targets: List[ast.expr] = []
        if isinstance(sub, ast.Assign):
            targets = list(sub.targets)
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
            targets = [sub.target]
        for target in targets:
            base = target
            while isinstance(base, ast.Subscript):
                base = base.value
            if _is_self_attr(base):
                yield base


def _is_with_self_lock(stmt: ast.stmt) -> bool:
    if not isinstance(stmt, (ast.With, ast.AsyncWith)):
        return False
    return any(
        _is_self_attr(item.context_expr)
        and item.context_expr.attr in ("_lock", "lock")
        for item in stmt.items
    )


class _Suppressions:
    """Per-line suppression markers.

    Two syntaxes are honoured: the legacy ``# lint: allow(CODE)`` and
    the uniform ``# wintermute: ignore[CODE]`` shared with the flow and
    concurrency passes.  ``matched`` counts suppressions that actually
    fired, surfaced as the ``ignored`` total by ``check``.
    """

    def __init__(self, source: str) -> None:
        self._uniform = InlineSuppressions(source)
        self.matched = 0
        self._by_line: dict = {}
        for i, line in enumerate(source.splitlines(), start=1):
            marker = line.find("# lint: allow(")
            if marker < 0:
                continue
            codes = line[marker + len("# lint: allow("):]
            codes = codes.split(")", 1)[0]
            self._by_line[i] = {c.strip() for c in codes.split(",")}

    def active(self, line: int, code: str) -> bool:
        if code in self._by_line.get(line, ()):
            self.matched += 1
            return True
        if self._uniform.active(line, code):
            self.matched += 1
            return True
        return False


def _iter_methods(cls: ast.ClassDef) -> Iterable[ast.FunctionDef]:
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield item


def _is_operator_plugin_class(cls: ast.ClassDef) -> bool:
    """Heuristic: decorated with ``@operator_plugin(...)`` or based on a
    class whose name mentions ``OperatorBase``."""
    for deco in cls.decorator_list:
        func = deco.func if isinstance(deco, ast.Call) else deco
        name = func.attr if isinstance(func, ast.Attribute) else getattr(
            func, "id", ""
        )
        if name == "operator_plugin":
            return True
    for base in cls.bases:
        name = base.attr if isinstance(base, ast.Attribute) else getattr(
            base, "id", ""
        )
        if name.endswith("OperatorBase") or name.endswith("Operator"):
            return True
    return False


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------

def _lint_lock_discipline(
    tree: ast.Module, path: str, out: List[Diagnostic], sup: _Suppressions
) -> None:
    """L001 — guarded attributes mutated without holding the lock."""
    for cls in [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]:
        guarded: Set[str] = set()
        for method in _iter_methods(cls):
            for stmt in ast.walk(method):
                if not _is_with_self_lock(stmt):
                    continue
                for inner in stmt.body:
                    for sub in ast.walk(inner):
                        if isinstance(sub, ast.stmt):
                            for attr in _assigned_self_attrs(sub):
                                guarded.add(attr.attr)
        guarded.discard("_lock")
        guarded.discard("lock")
        if not guarded:
            continue
        for method in _iter_methods(cls):
            if method.name == "__init__":
                continue
            _scan_unlocked(method.body, guarded, cls, method, path, out, sup)


def _child_stmt_lists(stmt: ast.stmt) -> Iterable[Sequence[ast.stmt]]:
    for name in ("body", "orelse", "finalbody"):
        nested = getattr(stmt, name, None)
        if nested and isinstance(nested[0], ast.stmt):
            yield nested
    for handler in getattr(stmt, "handlers", ()):
        yield handler.body


def _scan_unlocked(
    body: Sequence[ast.stmt],
    guarded: Set[str],
    cls: ast.ClassDef,
    method: ast.AST,
    path: str,
    out: List[Diagnostic],
    sup: _Suppressions,
) -> None:
    for stmt in body:
        if _is_with_self_lock(stmt):
            continue  # everything below holds the lock
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            for attr in _assigned_self_attrs(stmt):
                if attr.attr in guarded and not sup.active(
                    attr.lineno, "L001"
                ):
                    out.append(Diagnostic(
                        code="L001",
                        severity="error",
                        message=(
                            f"{cls.name}.{method.name}: attribute "
                            f"self.{attr.attr} is guarded by self._lock "
                            f"elsewhere but mutated here without it"
                        ),
                        file=path,
                        line=attr.lineno,
                    ))
        for nested in _child_stmt_lists(stmt):
            _scan_unlocked(nested, guarded, cls, method, path, out, sup)


def _lint_wall_clock(
    tree: ast.Module, path: str, out: List[Diagnostic], sup: _Suppressions
) -> None:
    """L002 — wall-clock reads in clock-disciplined subtrees."""
    parts = path.replace(os.sep, "/")
    if "simulator/" not in parts and "plugins/" not in parts:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
            and func.attr in _WALL_CLOCK_FUNCS
        ) and not sup.active(node.lineno, "L002"):
            out.append(Diagnostic(
                code="L002",
                severity="error",
                message=(
                    f"time.{func.attr}() in a clock-disciplined subtree; "
                    f"take the simulated timestamp as an argument instead"
                ),
                file=path,
                line=node.lineno,
            ))


def _lint_silent_except(
    tree: ast.Module, path: str, out: List[Diagnostic], sup: _Suppressions
) -> None:
    """L003 — broad except handlers that silently discard the error."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        broad = node.type is None or (
            isinstance(node.type, ast.Name)
            and node.type.id in ("Exception", "BaseException")
        )
        silent = all(
            isinstance(stmt, ast.Pass)
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            )
            for stmt in node.body
        )
        suppressed = sup.active(node.lineno, "L003") or any(
            sup.active(stmt.lineno, "L003") for stmt in node.body
        )
        if broad and silent and not suppressed:
            what = (
                "bare except" if node.type is None
                else f"except {node.type.id}"  # type: ignore[union-attr]
            )
            out.append(Diagnostic(
                code="L003",
                severity="error",
                message=(
                    f"{what}: pass silently swallows errors; use "
                    f"contextlib.suppress(...) or handle/log the exception"
                ),
                file=path,
                line=node.lineno,
            ))


def _lint_compute_state(
    tree: ast.Module, path: str, out: List[Diagnostic], sup: _Suppressions
) -> None:
    """L004 — operator plugins writing shared state in compute paths."""
    parts = path.replace(os.sep, "/")
    if "repro/plugins/" not in parts:
        return
    for cls in [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]:
        if not _is_operator_plugin_class(cls):
            continue
        for method in _iter_methods(cls):
            if method.name not in _COMPUTE_METHODS:
                continue
            for stmt in ast.walk(method):
                if not isinstance(
                    stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)
                ):
                    continue
                for attr in _assigned_self_attrs(stmt):
                    if sup.active(attr.lineno, "L004"):
                        continue
                    out.append(Diagnostic(
                        code="L004",
                        severity="error",
                        message=(
                            f"{cls.name}.{method.name} writes "
                            f"self.{attr.attr}: parallel unit mode runs "
                            f"units on a thread pool — keep per-unit state "
                            f"in the model (make_model/model_for)"
                        ),
                        file=path,
                        line=attr.lineno,
                    ))


def _is_thread_ctor(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return (
            func.attr == "Thread"
            and isinstance(func.value, ast.Name)
            and func.value.id == "threading"
        )
    return isinstance(func, ast.Name) and func.id == "Thread"


def _has_thread_join(scope: ast.AST) -> bool:
    """Whether ``scope`` contains a plausible ``<thread>.join(...)``.

    ``str.join`` is the false friend here: calls whose receiver is a
    string literal are excluded; other receivers are given the benefit
    of the doubt (a missed finding beats a false positive).
    """
    for node in ast.walk(scope):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and not (
                isinstance(node.func.value, ast.Constant)
                and isinstance(node.func.value.value, str)
            )
        ):
            return True
    return False


def _lint_thread_lifecycle(
    tree: ast.Module, path: str, out: List[Diagnostic], sup: _Suppressions
) -> None:
    """L005 — threads created with neither a daemon flag nor a join."""

    def check(ctors: List[ast.Call], scope: ast.AST) -> None:
        pending = [
            c for c in ctors
            if not any(kw.arg == "daemon" for kw in c.keywords)
        ]
        if not pending or _has_thread_join(scope):
            return
        for call in pending:
            if sup.active(call.lineno, "L005"):
                continue
            out.append(Diagnostic(
                code="L005",
                severity="error",
                message=(
                    "threading.Thread created without a daemon= argument "
                    "and never joined in this scope; a leaked non-daemon "
                    "thread blocks interpreter shutdown"
                ),
                file=path,
                line=call.lineno,
            ))

    claimed: Set[int] = set()
    for cls in [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]:
        ctors = [
            n for n in ast.walk(cls)
            if _is_thread_ctor(n) and id(n) not in claimed
        ]
        claimed.update(id(c) for c in ctors)
        check(ctors, cls)
    check(
        [
            n for n in ast.walk(tree)
            if _is_thread_ctor(n) and id(n) not in claimed
        ],
        tree,
    )


def _lint_sleep_in_compute(
    tree: ast.Module, path: str, out: List[Diagnostic], sup: _Suppressions
) -> None:
    """L006 — ``time.sleep`` on an operator computation path."""
    for cls in [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]:
        if not _is_operator_plugin_class(cls):
            continue
        for method in _iter_methods(cls):
            if method.name not in _COMPUTE_PATH_METHODS:
                continue
            for node in ast.walk(method):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                is_sleep = (
                    isinstance(func, ast.Attribute)
                    and func.attr == "sleep"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "time"
                ) or (isinstance(func, ast.Name) and func.id == "sleep")
                if is_sleep and not sup.active(node.lineno, "L006"):
                    out.append(Diagnostic(
                        code="L006",
                        severity="error",
                        message=(
                            f"{cls.name}.{method.name} calls time.sleep: "
                            f"operator compute paths must never block — "
                            f"return and let the scheduler re-invoke at "
                            f"the configured interval"
                        ),
                        file=path,
                        line=node.lineno,
                    ))


_LOOP_NODES = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)
_QUERY_METHODS = {"query_relative", "query_absolute"}


def _declares_batch_support(cls: ast.ClassDef) -> bool:
    """Whether the class body sets ``supports_batch = True`` or defines
    a ``compute_batch`` override."""
    for item in cls.body:
        if (
            isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and item.name == "compute_batch"
        ):
            return True
        targets: List[ast.expr] = []
        if isinstance(item, ast.Assign):
            targets = list(item.targets)
        elif isinstance(item, ast.AnnAssign):
            targets = [item.target]
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "supports_batch"
                and isinstance(item.value, ast.Constant)
                and item.value.value is True
            ):
                return True
    return False


def _mentions_engine(node: ast.AST) -> bool:
    """Whether a call receiver is (or goes through) a query engine."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == "engine":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "engine":
            return True
    return False


def _lint_scalar_query_loop(
    tree: ast.Module, path: str, out: List[Diagnostic], sup: _Suppressions
) -> None:
    """L007 — per-topic engine queries looped in a batch-capable plugin."""
    for cls in [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]:
        if not _is_operator_plugin_class(cls):
            continue
        if not _declares_batch_support(cls):
            continue
        flagged: Set[int] = set()
        for method in _iter_methods(cls):
            if method.name not in ("compute_unit", "compute_batch"):
                continue
            for loop in [
                n for n in ast.walk(method) if isinstance(n, _LOOP_NODES)
            ]:
                for node in ast.walk(loop):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _QUERY_METHODS
                        and _mentions_engine(node.func.value)
                        and id(node) not in flagged
                        and not sup.active(node.lineno, "L007")
                    ):
                        flagged.add(id(node))
                        out.append(Diagnostic(
                            code="L007",
                            severity="error",
                            message=(
                                f"{cls.name}.{method.name} loops "
                                f"engine.{node.func.attr} per topic although "
                                f"the operator declares batch support — use "
                                f"query_relative_batch/batch_window (or mark "
                                f"a deliberate scalar fallback with "
                                f"# lint: allow(L007))"
                            ),
                            file=path,
                            line=node.lineno,
                        ))


#: Expression nodes whose value is a freshly built *mutable* container.
_MUTABLE_LITERALS = (
    ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp,
)
_MUTABLE_CTORS = ("list", "dict", "set", "defaultdict", "deque",
                  "OrderedDict", "Counter")


def _is_mutable_default(value: ast.AST) -> bool:
    if isinstance(value, _MUTABLE_LITERALS):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(
            func, "id", ""
        )
        return name in _MUTABLE_CTORS
    return False


def _is_constant_name(name: str) -> bool:
    """ALL_CAPS (optionally ``_``-prefixed) names follow the read-only
    class-constant convention and are exempt from L008."""
    bare = name.lstrip("_")
    return bool(bare) and bare == bare.upper()


def _lint_mutable_class_default(
    tree: ast.Module, path: str, out: List[Diagnostic], sup: _Suppressions
) -> None:
    """L008 — mutable class-level default on an operator plugin class."""
    for cls in [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]:
        if not _is_operator_plugin_class(cls):
            continue
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names or all(_is_constant_name(n) for n in names):
                continue
            if not _is_mutable_default(value):
                continue
            if sup.active(stmt.lineno, "L008"):
                continue
            out.append(Diagnostic(
                code="L008",
                severity="error",
                message=(
                    f"{cls.name}.{names[0]} is a mutable class-level "
                    f"default shared by every instance (and operator "
                    f"instances are shared across units) — initialise it "
                    f"in __init__ or make_model, or rename it ALL_CAPS "
                    f"if it is a read-only constant"
                ),
                file=path,
                line=stmt.lineno,
            ))


_RULES = (
    _lint_lock_discipline,
    _lint_wall_clock,
    _lint_silent_except,
    _lint_compute_state,
    _lint_thread_lifecycle,
    _lint_sleep_in_compute,
    _lint_scalar_query_loop,
    _lint_mutable_class_default,
)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def lint_source(source: str, path: str = "<string>") -> List[Diagnostic]:
    """Lint one Python source string; returns sorted diagnostics."""
    diags, _ignored = lint_source_counted(source, path)
    return diags


def lint_source_counted(
    source: str, path: str = "<string>"
) -> Tuple[List[Diagnostic], int]:
    """Like :func:`lint_source`, also counting fired suppressions."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Diagnostic(
            code="L000",
            severity="error",
            message=f"syntax error: {exc.msg}",
            file=path,
            line=exc.lineno or 0,
        )], 0
    sup = _Suppressions(source)
    out: List[Diagnostic] = []
    for rule in _RULES:
        rule(tree, path, out, sup)
    return sorted(out, key=sort_key), sup.matched


def lint_paths(paths: Sequence[str]) -> List[Diagnostic]:
    """Lint files and directories (recursing into ``*.py``)."""
    diags, _ignored = lint_paths_counted(paths)
    return diags


def lint_paths_counted(
    paths: Sequence[str],
) -> Tuple[List[Diagnostic], int]:
    """Like :func:`lint_paths`, also counting fired suppressions."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__"
                )
                files.extend(
                    os.path.join(dirpath, f)
                    for f in sorted(filenames)
                    if f.endswith(".py")
                )
        else:
            files.append(path)
    out: List[Diagnostic] = []
    ignored = 0
    for file in files:
        with open(file, "r", encoding="utf-8") as fh:
            diags, n = lint_source_counted(fh.read(), path=file)
        out.extend(diags)
        ignored += n
    return sorted(out, key=sort_key), ignored
