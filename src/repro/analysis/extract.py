"""Configuration-block extraction for the static analyzer.

The analyzer needs configuration *values*, but in this repository most
Wintermute configuration lives as dict literals inside example and
benchmark scripts (passed to ``manager.load_plugin({...})`` or
``build_deployment({...})``), not as standalone files.  This module
pulls those literals out **without executing the scripts**: an AST walk
finds candidate dict literals and a safe constant evaluator resolves
them, understanding module-level constants, the well-known time-unit
names, and plain arithmetic — exactly the vocabulary the examples use.

JSON files are handled too (a deployment spec, one plugin block, or a
list of blocks), so ``wintermute-sim check --config`` accepts either
form.

Locally registered plugin names (``@operator_plugin("x")`` /
``register_operator_plugin("x", ...)``) are collected per file and fed
to the analyzer as extra known plugins — an example defining its own
control operator is not a W001.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Well-known constants resolvable without importing anything.
_KNOWN_CONSTANTS: Dict[str, object] = {
    "NS_PER_US": 1_000,
    "NS_PER_MS": 1_000_000,
    "NS_PER_SEC": 1_000_000_000,
    "None": None,
    "True": True,
    "False": False,
}

_BIN_OPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a ** b,
}


class _Unresolvable(Exception):
    """A value the safe evaluator cannot reduce to a constant."""


@dataclass
class ExtractedConfig:
    """One configuration value found in a source file.

    Attributes:
        kind: ``"block"`` (plugin block), ``"blocks"`` (list of blocks)
            or ``"deployment"`` (full deployment spec).
        value: the evaluated configuration.
        file: originating file path.
        line: 1-based line of the literal (0 for whole-file JSON).
    """

    kind: str
    value: object
    file: str
    line: int = 0


@dataclass
class ExtractionResult:
    """Everything extraction learned from one file."""

    configs: List[ExtractedConfig] = field(default_factory=list)
    local_plugins: List[str] = field(default_factory=list)
    #: (line, reason) pairs for dict literals that looked like config
    #: blocks but could not be statically evaluated.
    skipped: List[Tuple[int, str]] = field(default_factory=list)


# ----------------------------------------------------------------------
# Safe evaluation
# ----------------------------------------------------------------------

def _safe_eval(node: ast.expr, env: Dict[str, object]) -> object:
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        if node.id in env:
            return env[node.id]
        if node.id in _KNOWN_CONSTANTS:
            return _KNOWN_CONSTANTS[node.id]
        raise _Unresolvable(f"unresolvable name {node.id!r}")
    if isinstance(node, ast.Dict):
        out = {}
        for key_node, value_node in zip(node.keys, node.values):
            if key_node is None:
                raise _Unresolvable("dict unpacking (**) in literal")
            out[_safe_eval(key_node, env)] = _safe_eval(value_node, env)
        return out
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        items = [_safe_eval(elt, env) for elt in node.elts]
        return set(items) if isinstance(node, ast.Set) else list(items)
    if isinstance(node, ast.BinOp) and type(node.op) in _BIN_OPS:
        return _BIN_OPS[type(node.op)](
            _safe_eval(node.left, env), _safe_eval(node.right, env)
        )
    if isinstance(node, ast.UnaryOp):
        operand = _safe_eval(node.operand, env)
        if isinstance(node.op, ast.USub):
            return -operand  # type: ignore[operator]
        if isinstance(node.op, ast.UAdd):
            return +operand  # type: ignore[operator]
        raise _Unresolvable("unsupported unary operator")
    if isinstance(node, ast.JoinedStr):
        parts = []
        for value in node.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            elif isinstance(value, ast.FormattedValue):
                parts.append(str(_safe_eval(value.value, env)))
            else:
                raise _Unresolvable("unsupported f-string part")
        return "".join(parts)
    raise _Unresolvable(
        f"unsupported expression {type(node).__name__}"
    )


def _module_constants(tree: ast.Module) -> Dict[str, object]:
    """Module-level ``NAME = <constant expression>`` bindings.

    Later rebindings win, matching execution order closely enough for
    configuration constants (which are written once in practice).
    """
    env: Dict[str, object] = {}
    for stmt in tree.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        try:
            evaluated = _safe_eval(value, env)
        except _Unresolvable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                env[target.id] = evaluated
    return env


# ----------------------------------------------------------------------
# Candidate classification
# ----------------------------------------------------------------------

def _literal_keys(node: ast.Dict) -> List[str]:
    return [
        key.value
        for key in node.keys
        if isinstance(key, ast.Constant) and isinstance(key.value, str)
    ]


def _classify(node: ast.Dict) -> str:
    keys = set(_literal_keys(node))
    if "cluster" in keys:
        return "deployment"
    if "plugin" in keys and "operators" in keys:
        return "block"
    return ""


def _collect_local_plugins(tree: ast.Module) -> List[str]:
    names: List[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        func_name = (
            func.attr if isinstance(func, ast.Attribute)
            else getattr(func, "id", "")
        )
        if func_name not in ("operator_plugin", "register_operator_plugin"):
            continue
        if node.args and isinstance(node.args[0], ast.Constant) \
                and isinstance(node.args[0].value, str):
            names.append(node.args[0].value)
    return names


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def extract_from_python(source: str, path: str = "<string>") -> ExtractionResult:
    """Extract configuration blocks from Python source text."""
    result = ExtractionResult()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.skipped.append((exc.lineno or 0, f"syntax error: {exc.msg}"))
        return result
    env = _module_constants(tree)
    result.local_plugins = _collect_local_plugins(tree)

    def visit(node: ast.AST) -> None:
        if isinstance(node, ast.Dict):
            kind = _classify(node)
            if kind:
                try:
                    value = _safe_eval(node, env)
                except _Unresolvable as exc:
                    result.skipped.append((node.lineno, str(exc)))
                else:
                    result.configs.append(
                        ExtractedConfig(kind, value, path, node.lineno)
                    )
                return  # nested blocks belong to this one
        for child in ast.iter_child_nodes(node):
            visit(child)

    visit(tree)
    return result


def extract_from_json(text: str, path: str = "<string>") -> ExtractionResult:
    """Extract configuration from JSON text (spec, block, or block list)."""
    result = ExtractionResult()
    try:
        value = json.loads(text)
    except ValueError as exc:
        result.skipped.append((0, f"invalid JSON: {exc}"))
        return result
    if isinstance(value, dict) and "cluster" in value:
        result.configs.append(ExtractedConfig("deployment", value, path))
    elif isinstance(value, dict):
        result.configs.append(ExtractedConfig("block", value, path))
    elif isinstance(value, list):
        result.configs.append(ExtractedConfig("blocks", value, path))
    else:
        result.skipped.append(
            (0, "top-level JSON must be an object or a list")
        )
    return result


def extract_configs(path: str) -> ExtractionResult:
    """Extract configuration blocks from one file (``.py`` or ``.json``)."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    if path.endswith(".json"):
        return extract_from_json(text, path)
    return extract_from_python(text, path)
