"""Static configuration analyzer (offline half of ``wintermute-sim check``).

The paper's Unit System makes one small configuration block expand into
thousands of per-component units (Section III-C) — which also means a
typo in a ``<bottomup-1, filter node>`` pattern, a dangling sensor
reference or a cycle between operator inputs and outputs is normally
discovered only at deploy time, deep inside the Operator Manager.  This
module finds those problems *statically*: it parses every pattern-unit
expression without instantiating operators, resolves sensor references
against a sensor tree synthesized from the deployment's cluster and
monitoring sections, detects inter-operator pipeline cycles and
duplicate output topics, and reports unit-expansion cardinality per
operator.

Entry points:

- :func:`analyze_plugin_block` — one plugin block, optionally against a
  sensor tree.
- :func:`analyze_pipeline_blocks` — an ordered list of blocks sharing a
  host: adds cross-operator rules (duplicate outputs W011, cycles W012)
  and makes earlier blocks' declared outputs visible to later blocks,
  mirroring staged pipeline deployment.
- :func:`analyze_deployment` — a whole ``repro.deploy`` specification:
  validates every section and runs the pipeline analysis per analytics
  host context against the synthesized trees.

All findings are :class:`~repro.analysis.diagnostics.Diagnostic`
records; rule codes are documented in ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, DiagnosticCollector
from repro.common.errors import ConfigError, TopicError
from repro.core.configurator import collect_block_diagnostics
from repro.core.operator import JobOperatorBase
from repro.core.pattern import PatternExpression
from repro.core.registry import available_plugins, get_plugin_class
from repro.core.tree import SensorTree

#: Default cardinality threshold: a single operator expanding to more
#: units than this draws a W014 warning (Section III-C scale is the
#: point, but six-figure unit sets deserve a deliberate decision).
DEFAULT_MAX_UNITS = 10_000

_DEPLOYMENT_SECTIONS = frozenset(
    {"cluster", "monitoring", "jobs", "facility", "analytics", "network",
     "storage",
     # "ignore" suppresses flow (F) diagnostics by code — the JSON
     # counterpart of the inline "# wintermute: ignore[...]" marker.
     "ignore"}
)
_CLUSTER_KEYS = frozenset(
    {"nodes", "cpus", "seed", "anomalies", "racks", "chassis_per_rack",
     "nodes_per_chassis", "preset", "total_nodes"}
)
_MONITORING_KEYS = frozenset(
    {"plugins", "perfevent_counters", "interval_ms", "cache_window_s",
     "tester_sensors"}
)
_FACILITY_KEYS = frozenset({"enabled", "setpoint_c", "interval_s"})
_NETWORK_KEYS = frozenset(
    {"latency_ms", "jitter_ms", "drop_probability", "seed", "outages",
     "spill", "ingest"}
)
_OUTAGE_KEYS = frozenset({"start_s", "end_s", "destinations"})
_SPILL_KEYS = frozenset(
    {"capacity", "policy", "retry_base_ms", "retry_max_ms", "seed"}
)
_INGEST_KEYS = frozenset({"queue_capacity", "policy"})
_QUEUE_POLICIES = ("drop-oldest", "drop-newest")
_JOB_KEYS = frozenset(
    {"app", "nodes", "node_paths", "start_s", "end_s", "id"}
)
_STORAGE_KEYS = frozenset(
    {"tiers", "dir", "flush_mb", "flush_interval_s", "ttl_s", "rollups",
     "retention"}
)
_ROLLUP_KEYS = frozenset({"after_s", "minute_after_s"})
_RETENTION_KEYS = frozenset({"raw_s", "rollup_s"})
_STORAGE_TIER_MODES = ("memory", "tiered")


# ----------------------------------------------------------------------
# Parsed-operator view
# ----------------------------------------------------------------------

class _OperatorView:
    """Pre-parsed expressions of one operator block (analysis-side)."""

    def __init__(self, block_index: int, plugin: str, name: str,
                 block: dict) -> None:
        self.block_index = block_index
        self.plugin = plugin
        self.name = name
        self.relaxed = bool(block.get("relaxed", False))
        self.inputs: List[PatternExpression] = []
        self.outputs: List[PatternExpression] = []
        for key, target in (("inputs", self.inputs), ("outputs", self.outputs)):
            value = block.get(key)
            if not isinstance(value, list):
                continue
            for text in value:
                if not isinstance(text, str):
                    continue
                try:
                    target.append(PatternExpression.parse(text))
                except ConfigError:
                    pass  # already reported as W006 by the configurator

        cls = get_plugin_class(plugin)
        self.is_job_plugin = isinstance(cls, type) and issubclass(
            cls, JobOperatorBase
        )

    @property
    def label(self) -> str:
        return f"{self.plugin}/{self.name}"

    def unit_expr(self) -> Optional[PatternExpression]:
        """The unit-defining (first, level-anchored) output expression."""
        if self.outputs and self.outputs[0].anchor != "unit":
            return self.outputs[0]
        return None


def _level_key(expr: PatternExpression, tree: Optional[SensorTree],
               unit_level) -> Optional[Tuple[str, int]]:
    """Comparable level identity of an expression, or None if unknown.

    With a tree the key is the absolute level; without one it is the
    symbolic (anchor, offset) pair — comparable between expressions of
    the same anchor family.  Unit-anchored expressions inherit the
    operator's unit-domain level.
    """
    if expr.anchor == "unit":
        return unit_level
    if tree is not None:
        try:
            return ("abs", tree.resolve_level(expr.anchor, expr.offset))
        except TopicError:
            return None
    return (expr.anchor, expr.offset)


# ----------------------------------------------------------------------
# Single-block analysis
# ----------------------------------------------------------------------

def analyze_plugin_block(
    block: dict,
    tree: Optional[SensorTree] = None,
    known_plugins: Optional[Sequence[str]] = None,
    collector: Optional[DiagnosticCollector] = None,
    max_units: int = DEFAULT_MAX_UNITS,
    block_index: int = 0,
) -> List[Diagnostic]:
    """Analyze one plugin configuration block.

    Structural validation (unknown keys, time spellings, malformed
    patterns) is delegated to the configurator's collector so the static
    and runtime paths agree; this function layers plugin-name checks and
    — when ``tree`` is given — sensor-reference resolution and
    cardinality reporting on top.
    """
    out = collector if collector is not None else DiagnosticCollector()
    start = len(out.sink)
    collect_block_diagnostics(block, out)
    if not isinstance(block, dict):
        return out.sink[start:]
    plugin = block.get("plugin")
    known = set(available_plugins()) | set(known_plugins or ())
    if isinstance(plugin, str) and plugin not in known:
        out.at("plugin").error(
            "W001",
            f"unknown operator plugin {plugin!r}; registered: {sorted(known)}",
        )
    operators = block.get("operators")
    if not isinstance(operators, dict) or not isinstance(plugin, str):
        return out.sink[start:]
    for name, op_block in operators.items():
        if not isinstance(op_block, dict):
            continue
        view = _OperatorView(block_index, plugin, name, op_block)
        _analyze_operator(view, tree, out.at("operators", name), max_units)
    return out.sink[start:]


def _analyze_operator(
    view: _OperatorView,
    tree: Optional[SensorTree],
    out: DiagnosticCollector,
    max_units: int,
) -> None:
    """Resolution-level checks for one operator (tree may be None)."""
    unit_expr = view.unit_expr()
    if tree is None:
        return
    unit_domain = None
    if unit_expr is not None and not view.is_job_plugin:
        try:
            unit_domain = unit_expr.domain(tree)
        except TopicError as exc:
            out.at("outputs", 0).error("W008", str(exc))
        else:
            n = len(unit_domain)
            out.info(
                "W013",
                f"operator {view.name!r} expands to {n} unit(s) "
                f"({unit_expr!s})",
            )
            if n == 0:
                severity = "warning" if view.relaxed else "error"
                out.at("outputs", 0).add(
                    "W009", severity,
                    f"output expression {unit_expr!s} matches no tree node",
                )
            elif n > max_units:
                out.at("outputs", 0).warning(
                    "W014",
                    f"operator {view.name!r} would instantiate {n} units "
                    f"(threshold {max_units}); consider a filter or "
                    f"unit_cadence",
                )
    for i, expr in enumerate(view.inputs):
        _check_input(view, expr, i, tree, unit_domain, out)
    # Non-first anchored outputs must also resolve to a level.
    for i, expr in enumerate(view.outputs):
        if i == 0 or expr.anchor == "unit":
            continue
        try:
            tree.resolve_level(expr.anchor, expr.offset)
        except TopicError as exc:
            out.at("outputs", i).error("W008", str(exc))


def _check_input(
    view: _OperatorView,
    expr: PatternExpression,
    index: int,
    tree: SensorTree,
    unit_domain,
    out: DiagnosticCollector,
) -> None:
    """W010: does any reachable node carry the referenced sensor?

    A static approximation of unit resolution: per-unit, inputs bind to
    hierarchically related nodes of the expression's domain — here we
    only require that *some* node the expression can reach carries a
    sensor of that name, which is exactly the typo/dangling-reference
    class this rule is after.
    """
    severity = "warning" if view.relaxed else "error"
    if view.is_job_plugin:
        # Job inputs resolve against each allocated node's subtree; a
        # name absent from the whole tree can never resolve.
        if not _name_exists_anywhere(tree, expr.sensor):
            out.at("inputs", index).add(
                "W010", severity,
                f"input {expr!s}: no sensor named {expr.sensor!r} exists "
                f"anywhere in the sensor tree",
            )
        return
    if expr.anchor == "unit":
        candidates = unit_domain
        if candidates is None:
            return  # unit domain unknown; nothing to resolve against
    else:
        try:
            candidates = expr.domain(tree)
        except TopicError:
            out.at("inputs", index).error(
                "W008",
                f"input {expr!s}: level outside the sensor tree "
                f"(levels 0..{tree.max_level})",
            )
            return
    if not any(expr.sensor in node.sensors for node in candidates):
        out.at("inputs", index).add(
            "W010", severity,
            f"input {expr!s}: no matching node carries a sensor named "
            f"{expr.sensor!r} (dangling reference)",
        )


def _name_exists_anywhere(tree: SensorTree, name: str) -> bool:
    return any(
        name in node.sensors for node in tree.root.iter_subtree()
    )


# ----------------------------------------------------------------------
# Cross-block (pipeline) analysis
# ----------------------------------------------------------------------

def analyze_pipeline_blocks(
    blocks: Sequence[dict],
    tree: Optional[SensorTree] = None,
    known_plugins: Optional[Sequence[str]] = None,
    collector: Optional[DiagnosticCollector] = None,
    max_units: int = DEFAULT_MAX_UNITS,
) -> List[Diagnostic]:
    """Analyze an ordered list of plugin blocks sharing one host.

    Blocks are processed in deployment order; each block's declared
    output sensors are added to the (copied) tree before the next block
    is analyzed, so staged pipelines resolve exactly like
    :meth:`repro.core.pipeline.Pipeline.deploy` loads them.  Duplicate
    output topics (W011) and operator cycles (W012) are detected across
    the whole list.
    """
    out = collector if collector is not None else DiagnosticCollector()
    start = len(out.sink)
    work_tree = _copy_tree(tree) if tree is not None else None
    views: List[_OperatorView] = []
    for i, block in enumerate(blocks):
        block_out = out.at(i)
        analyze_plugin_block(
            block, work_tree, known_plugins, block_out,
            max_units=max_units, block_index=i,
        )
        if not isinstance(block, dict):
            continue
        plugin = block.get("plugin")
        operators = block.get("operators")
        if not isinstance(plugin, str) or not isinstance(operators, dict):
            continue
        block_views = [
            _OperatorView(i, plugin, name, op_block)
            for name, op_block in operators.items()
            if isinstance(op_block, dict)
        ]
        views.extend(block_views)
        if work_tree is not None:
            for view in block_views:
                _materialize_outputs(view, work_tree)
    _check_duplicate_outputs(views, work_tree, out)
    _check_cycles(views, work_tree, out)
    return out.sink[start:]


def _copy_tree(tree: SensorTree) -> SensorTree:
    return SensorTree.from_topics(tree.all_sensor_topics())


def _materialize_outputs(view: _OperatorView, tree: SensorTree) -> None:
    """Add the operator's declared output sensors to the tree, making
    them visible to later pipeline stages."""
    if view.is_job_plugin:
        return  # outputs live under /jobs/<id>/, created per running job
    unit_expr = view.unit_expr()
    for expr in view.outputs:
        if expr.anchor == "unit":
            domain_expr = unit_expr
        else:
            domain_expr = expr
        if domain_expr is None:
            continue
        try:
            nodes = domain_expr.domain(tree)
        except TopicError:
            continue
        for node in nodes:
            topic = (
                f"/{expr.sensor}" if node.path == "/"
                else f"{node.path.rstrip('/')}/{expr.sensor}"
            )
            try:
                tree.add_sensor(topic)
            except TopicError:
                pass  # name collides with a component; resolution rules apply


def _output_keys(view: _OperatorView, tree: Optional[SensorTree]):
    """(sensor-name, level-key, filtered) triples of declared outputs."""
    if view.is_job_plugin:
        return []
    unit_expr = view.unit_expr()
    unit_level = _level_key(unit_expr, tree, None) if unit_expr else None
    keys = []
    for expr in view.outputs:
        level = _level_key(expr, tree, unit_level)
        filtered = expr.filter is not None or (
            expr.anchor == "unit"
            and unit_expr is not None
            and unit_expr.filter is not None
        )
        keys.append((expr.sensor, level, filtered))
    return keys


def _input_keys(view: _OperatorView, tree: Optional[SensorTree]):
    unit_expr = view.unit_expr()
    unit_level = _level_key(unit_expr, tree, None) if unit_expr else None
    keys = []
    for expr in view.inputs:
        keys.append((expr.sensor, _level_key(expr, tree, unit_level)))
    return keys


def _check_duplicate_outputs(
    views: List[_OperatorView],
    tree: Optional[SensorTree],
    out: DiagnosticCollector,
) -> None:
    """W011: two operators writing the same output topic."""
    producers: Dict[Tuple[str, object], List[Tuple[_OperatorView, bool]]] = {}
    for view in views:
        seen: Set[Tuple[str, object]] = set()
        for sensor, level, filtered in _output_keys(view, tree):
            if level is None or (sensor, level) in seen:
                continue
            seen.add((sensor, level))
            producers.setdefault((sensor, level), []).append((view, filtered))
    for (sensor, _level), entries in sorted(producers.items(),
                                            key=lambda kv: kv[0][0]):
        if len(entries) < 2:
            continue
        labels = sorted(v.label for v, _ in entries)
        any_filtered = any(f for _, f in entries)
        severity = "warning" if any_filtered else "error"
        qualifier = (
            " (domains are filtered and may not overlap)"
            if any_filtered else ""
        )
        out.add(
            "W011", severity,
            f"operators {labels} all declare output sensor {sensor!r} at "
            f"the same tree level{qualifier}",
        )


def _check_cycles(
    views: List[_OperatorView],
    tree: Optional[SensorTree],
    out: DiagnosticCollector,
) -> None:
    """W012: cycles in the operator data-flow graph.

    Edge A -> B when some output (sensor, level) of A matches some
    input (sensor, level) of B.  Level identity is exact when a tree is
    available and symbolic otherwise; unknown levels produce no edge, so
    the rule errs toward silence rather than false cycles.
    """
    outputs = {id(v): _output_keys(v, tree) for v in views}
    inputs = {id(v): _input_keys(v, tree) for v in views}
    edges: Dict[int, List[int]] = {id(v): [] for v in views}
    by_id = {id(v): v for v in views}
    for a in views:
        produced = {(s, l) for s, l, _ in outputs[id(a)] if l is not None}
        if not produced:
            continue
        for b in views:
            consumed = {(s, l) for s, l in inputs[id(b)] if l is not None}
            if produced & consumed:
                edges[id(a)].append(id(b))
    # Iterative DFS cycle detection with path recovery.
    WHITE, GREY, BLACK = 0, 1, 2
    color = {n: WHITE for n in edges}
    reported: Set[frozenset] = set()
    for root in edges:
        if color[root] != WHITE:
            continue
        stack = [(root, iter(edges[root]))]
        path = [root]
        color[root] = GREY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if color[nxt] == GREY:
                    cycle = path[path.index(nxt):] + [nxt]
                    members = frozenset(cycle[:-1])
                    if members not in reported:
                        reported.add(members)
                        labels = " -> ".join(
                            by_id[n].label for n in cycle
                        )
                        out.error(
                            "W012",
                            f"operator pipeline cycle: {labels}",
                        )
                elif color[nxt] == WHITE:
                    color[nxt] = GREY
                    stack.append((nxt, iter(edges[nxt])))
                    path.append(nxt)
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
                path.pop()
    return


# ----------------------------------------------------------------------
# Deployment specs
# ----------------------------------------------------------------------

def trees_from_deployment(spec: dict) -> Tuple[SensorTree, SensorTree]:
    """Synthesize (agent_tree, pusher_tree) from a deployment spec.

    The agent tree holds every sensor topic the monitoring configuration
    would produce cluster-wide (plus facility sensors); the pusher tree
    holds one representative node's topics — the view a per-node
    analytics manager resolves its pattern units against.  Nothing is
    instantiated beyond the cluster topology.
    """
    from repro.deploy import cluster_spec_from_block
    from repro.simulator.cluster import ClusterTopology
    from repro.simulator.engine import CPU_COUNTERS
    from repro.dcdb.plugins.opa import SENSOR_NAMES as OPA_NAMES
    from repro.dcdb.plugins.procfs import SENSOR_NAMES as PROCFS_NAMES
    from repro.dcdb.plugins.sysfs import SENSOR_NAMES as SYSFS_NAMES

    cluster = spec.get("cluster", {})
    monitoring = spec.get("monitoring", {})
    plugins = list(monitoring.get("plugins", ("sysfs",)))
    counters = monitoring.get("perfevent_counters") or list(CPU_COUNTERS)
    tester_sensors = monitoring.get("tester_sensors", 100)
    topology = ClusterTopology(cluster_spec_from_block(cluster))

    def node_topics(node: str) -> List[str]:
        topics: List[str] = []
        if "sysfs" in plugins:
            topics += [f"{node}/{n}" for n in SYSFS_NAMES]
        if "procfs" in plugins:
            topics += [f"{node}/{n}" for n in PROCFS_NAMES]
        if "opa" in plugins:
            topics += [f"{node}/{n}" for n in OPA_NAMES]
        if "perfevent" in plugins:
            cpus = topology.cpus_of_node.get(node, [])
            topics += [f"{cpu}/{c}" for cpu in cpus for c in counters]
        if "tester" in plugins:
            topics += [
                f"{node}/tester{i:04d}" for i in range(int(tester_sensors))
            ]
        return topics

    agent_topics: List[str] = []
    for node in topology.node_paths:
        agent_topics.extend(node_topics(node))
    if spec.get("facility", {}).get("enabled"):
        from repro.simulator.facility import FACILITY_SENSOR_NAMES

        agent_topics.extend(
            f"/facility/cooling/{n}" for n in FACILITY_SENSOR_NAMES
        )
    pusher_topics = (
        node_topics(topology.node_paths[0]) if topology.node_paths else []
    )
    return (
        SensorTree.from_topics(agent_topics),
        SensorTree.from_topics(pusher_topics),
    )


def _positive_number(value) -> bool:
    return (
        not isinstance(value, bool)
        and isinstance(value, (int, float))
        and value > 0
    )


def _analyze_network(network, out: DiagnosticCollector) -> None:
    """Validate a deployment's ``network`` (resilience) section."""
    if network is None:
        return
    net_out = out.at("network")
    if not isinstance(network, dict):
        net_out.error("W005", "'network' must be a mapping")
        return
    for key in sorted(set(network) - _NETWORK_KEYS):
        net_out.at(key).warning("W003", f"unknown network key {key!r}")
    latency = network.get("latency_ms", 0)
    jitter = network.get("jitter_ms", 0)
    for key, value in (("latency_ms", latency), ("jitter_ms", jitter)):
        if isinstance(value, bool) or not isinstance(value, (int, float)) or value < 0:
            net_out.at(key).error(
                "W016", f"network {key} must be a non-negative number"
            )
            return
    if jitter > latency:
        net_out.at("jitter_ms").error(
            "W016", "network jitter_ms cannot exceed latency_ms"
        )
    drop = network.get("drop_probability", 0.0)
    if isinstance(drop, bool) or not isinstance(drop, (int, float)) or not (
        0.0 <= drop < 1.0
    ):
        net_out.at("drop_probability").error(
            "W016", "network drop_probability must be in [0, 1)"
        )
    outages = network.get("outages", [])
    if not isinstance(outages, list):
        net_out.at("outages").error("W005", "network outages must be a list")
        outages = []
    for i, outage in enumerate(outages):
        o_out = net_out.at("outages", i)
        if not isinstance(outage, dict):
            o_out.error("W005", "outage entry must be a mapping")
            continue
        for key in sorted(set(outage) - _OUTAGE_KEYS):
            o_out.at(key).warning("W003", f"unknown outage key {key!r}")
        start_s, end_s = outage.get("start_s"), outage.get("end_s")
        if start_s is None or end_s is None:
            o_out.error("W016", "outage entries need start_s and end_s")
        elif not isinstance(start_s, (int, float)) or not isinstance(
            end_s, (int, float)
        ) or end_s <= start_s:
            o_out.error("W016", "outage must end after it starts")
        destinations = outage.get("destinations")
        if destinations is not None and (
            not isinstance(destinations, list)
            or not destinations
            or not all(isinstance(d, str) for d in destinations)
        ):
            o_out.at("destinations").error(
                "W016",
                "outage destinations must be a non-empty list of "
                "topic prefixes",
            )
    spill = network.get("spill", {})
    if not isinstance(spill, dict):
        net_out.at("spill").error("W005", "network spill must be a mapping")
        spill = {}
    for key in sorted(set(spill) - _SPILL_KEYS):
        net_out.at("spill", key).warning(
            "W003", f"unknown spill key {key!r}"
        )
    capacity = spill.get("capacity")
    if capacity is not None and (
        isinstance(capacity, bool)
        or not isinstance(capacity, int)
        or capacity < 1
    ):
        net_out.at("spill", "capacity").error(
            "W016", "spill capacity must be an integer >= 1"
        )
    if "policy" in spill and spill["policy"] not in _QUEUE_POLICIES:
        net_out.at("spill", "policy").error(
            "W016", f"spill policy must be one of {list(_QUEUE_POLICIES)}"
        )
    for key in ("retry_base_ms", "retry_max_ms"):
        if key in spill and not _positive_number(spill[key]):
            net_out.at("spill", key).error(
                "W016", f"spill {key} must be a positive number"
            )
    if (
        _positive_number(spill.get("retry_base_ms"))
        and _positive_number(spill.get("retry_max_ms"))
        and spill["retry_base_ms"] > spill["retry_max_ms"]
    ):
        net_out.at("spill", "retry_base_ms").error(
            "W016", "spill retry_base_ms cannot exceed retry_max_ms"
        )
    ingest = network.get("ingest", {})
    if not isinstance(ingest, dict):
        net_out.at("ingest").error("W005", "network ingest must be a mapping")
        ingest = {}
    for key in sorted(set(ingest) - _INGEST_KEYS):
        net_out.at("ingest", key).warning(
            "W003", f"unknown ingest key {key!r}"
        )
    queue_capacity = ingest.get("queue_capacity")
    if queue_capacity is not None and (
        isinstance(queue_capacity, bool)
        or not isinstance(queue_capacity, int)
        or queue_capacity < 1
    ):
        net_out.at("ingest", "queue_capacity").error(
            "W016", "ingest queue_capacity must be an integer >= 1"
        )
    if "policy" in ingest and ingest["policy"] not in _QUEUE_POLICIES:
        net_out.at("ingest", "policy").error(
            "W016", f"ingest policy must be one of {list(_QUEUE_POLICIES)}"
        )


def _analyze_storage(storage, out: DiagnosticCollector) -> None:
    """Validate a deployment's ``storage`` (tiered persistence) section."""
    if storage is None:
        return
    st_out = out.at("storage")
    if not isinstance(storage, dict):
        st_out.error("W005", "'storage' must be a mapping")
        return
    for key in sorted(set(storage) - _STORAGE_KEYS):
        st_out.at(key).warning("W003", f"unknown storage key {key!r}")
    tiers = storage.get("tiers", "memory")
    if tiers not in _STORAGE_TIER_MODES:
        st_out.at("tiers").error(
            "W016",
            f"storage tiers must be one of {list(_STORAGE_TIER_MODES)}",
        )
    directory = storage.get("dir")
    if directory is not None and (
        not isinstance(directory, str) or not directory
    ):
        st_out.at("dir").error(
            "W016", "storage dir must be a non-empty path string"
        )
    for key in ("flush_mb", "flush_interval_s"):
        if key in storage and not _positive_number(storage[key]):
            st_out.at(key).error(
                "W016", f"storage {key} must be a positive number"
            )
    ttl_s = storage.get("ttl_s", 0)
    if isinstance(ttl_s, bool) or not isinstance(ttl_s, (int, float)) or (
        ttl_s < 0
    ):
        st_out.at("ttl_s").error(
            "W016", "storage ttl_s must be a non-negative number"
        )
    for section, keys in (
        ("rollups", _ROLLUP_KEYS), ("retention", _RETENTION_KEYS)
    ):
        block = storage.get(section, {})
        if not isinstance(block, dict):
            st_out.at(section).error(
                "W005", f"storage {section} must be a mapping"
            )
            continue
        for key in sorted(set(block) - keys):
            st_out.at(section, key).warning(
                "W003", f"unknown {section} key {key!r}"
            )
        for key in sorted(set(block) & keys):
            value = block[key]
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ) or value < 0:
                st_out.at(section, key).error(
                    "W016",
                    f"storage {section}.{key} must be a non-negative "
                    "number of seconds",
                )
    rollups = storage.get("rollups", {})
    retention = storage.get("retention", {})
    if not isinstance(rollups, dict):
        rollups = {}
    if not isinstance(retention, dict):
        retention = {}
    after = rollups.get("after_s", 0)
    minute_after = rollups.get("minute_after_s", 0)
    if (
        _positive_number(after)
        and _positive_number(minute_after)
        and minute_after <= after
    ):
        st_out.at("rollups", "minute_after_s").warning(
            "W016",
            "minute_after_s should exceed after_s — 1-minute compaction "
            "would chase the 10s rollup immediately",
        )
    raw_retention = retention.get("raw_s", 0)
    if (
        _positive_number(raw_retention)
        and _positive_number(after)
        and raw_retention <= after
    ):
        st_out.at("retention", "raw_s").warning(
            "W016",
            "retention raw_s <= rollups after_s: raw segments expire "
            "before they can roll up, losing history the rollup tier "
            "was meant to keep",
        )
    if tiers == "memory":
        for key in ("dir", "flush_mb", "flush_interval_s"):
            if key in storage:
                st_out.at(key).warning(
                    "W003",
                    f"storage {key} has no effect with tiers='memory'",
                )
        if rollups or retention:
            st_out.at("rollups" if rollups else "retention").warning(
                "W003",
                "rollups/retention have no effect with tiers='memory'",
            )


def analyze_deployment(
    spec: dict,
    known_plugins: Optional[Sequence[str]] = None,
    collector: Optional[DiagnosticCollector] = None,
    max_units: int = DEFAULT_MAX_UNITS,
    flow: bool = False,
    flow_memory_budget_mb: Optional[float] = None,
) -> List[Diagnostic]:
    """Analyze a whole deployment specification (see :mod:`repro.deploy`).

    With ``flow=True`` the dataflow pass (:mod:`repro.analysis.flow`,
    F rules) runs after the structural rules, reusing the sensor trees
    synthesized here instead of rebuilding them.
    """
    from repro.deploy import _MONITORING_PLUGINS
    from repro.simulator.engine import CPU_COUNTERS
    from repro.simulator.workload import APP_PROFILES

    out = collector if collector is not None else DiagnosticCollector()
    start = len(out.sink)
    if not isinstance(spec, dict):
        out.error("W005", "deployment spec must be a mapping")
        return out.sink[start:]
    for key in sorted(set(spec) - _DEPLOYMENT_SECTIONS):
        out.at(key).error(
            "W003",
            f"unknown deployment section {key!r} "
            f"(expected {sorted(_DEPLOYMENT_SECTIONS)})",
        )
    if "cluster" not in spec:
        out.error("W016", "deployment spec needs a 'cluster' section")
        return out.sink[start:]

    cluster = spec.get("cluster")
    if not isinstance(cluster, dict):
        out.at("cluster").error("W005", "'cluster' must be a mapping")
        cluster = {}
    for key in sorted(set(cluster) - _CLUSTER_KEYS):
        out.at("cluster", key).warning(
            "W003", f"unknown cluster key {key!r}"
        )
    preset = cluster.get("preset")
    if preset is not None and preset != "coolmuc3":
        out.at("cluster", "preset").error(
            "W016", f"unknown cluster preset {preset!r} (known: coolmuc3)"
        )
    for key in ("nodes", "cpus", "racks"):
        value = cluster.get(key)
        if value is not None and (
            isinstance(value, bool) or not isinstance(value, int) or value < 1
        ):
            out.at("cluster", key).error(
                "W016", f"cluster {key} must be a positive integer"
            )

    monitoring = spec.get("monitoring", {})
    if not isinstance(monitoring, dict):
        out.at("monitoring").error("W005", "'monitoring' must be a mapping")
        monitoring = {}
    for key in sorted(set(monitoring) - _MONITORING_KEYS):
        out.at("monitoring", key).warning(
            "W003", f"unknown monitoring key {key!r}"
        )
    plugins = monitoring.get("plugins", ())
    unknown_monitoring = set(plugins) - set(_MONITORING_PLUGINS)
    if unknown_monitoring:
        out.at("monitoring", "plugins").error(
            "W016",
            f"unknown monitoring plugins {sorted(unknown_monitoring)} "
            f"(available: {sorted(_MONITORING_PLUGINS)})",
        )
    counters = monitoring.get("perfevent_counters") or ()
    unknown_counters = set(counters) - set(CPU_COUNTERS)
    if unknown_counters:
        out.at("monitoring", "perfevent_counters").error(
            "W016",
            f"unknown perfevent counters {sorted(unknown_counters)} "
            f"(available: {sorted(CPU_COUNTERS)})",
        )
    interval = monitoring.get("interval_ms")
    if interval is not None and (
        isinstance(interval, bool)
        or not isinstance(interval, (int, float))
        or interval <= 0
    ):
        out.at("monitoring", "interval_ms").error(
            "W016", "monitoring interval_ms must be a positive number"
        )

    facility = spec.get("facility", {})
    if isinstance(facility, dict):
        for key in sorted(set(facility) - _FACILITY_KEYS):
            out.at("facility", key).warning(
                "W003", f"unknown facility key {key!r}"
            )

    _analyze_network(spec.get("network"), out)
    _analyze_storage(spec.get("storage"), out)

    # Synthesized sensor space (skipped when the cluster section is
    # malformed enough that topology construction fails).
    agent_tree = pusher_tree = None
    try:
        agent_tree, pusher_tree = trees_from_deployment(spec)
    except Exception as exc:
        out.at("cluster").error(
            "W016", f"cannot synthesize the sensor space: {exc}"
        )

    jobs = spec.get("jobs", [])
    if not isinstance(jobs, list):
        out.at("jobs").error("W005", "'jobs' must be a list")
        jobs = []
    node_paths = set()
    if agent_tree is not None:
        node_paths = {
            n.path
            for n in agent_tree.root.iter_subtree()
            if n.sensors and n.path != "/"
        }
    for i, job in enumerate(jobs):
        job_out = out.at("jobs", i)
        if not isinstance(job, dict):
            job_out.error("W005", "job entry must be a mapping")
            continue
        for key in sorted(set(job) - _JOB_KEYS):
            job_out.at(key).warning("W003", f"unknown job key {key!r}")
        app = job.get("app")
        if app is None:
            job_out.error("W016", "job entry needs an 'app'")
        elif not isinstance(app, str) or app.lower() not in APP_PROFILES:
            job_out.at("app").error(
                "W016",
                f"unknown application profile {app!r} "
                f"(known: {sorted(APP_PROFILES)})",
            )
        if "end_s" not in job:
            job_out.error("W016", "job entry needs an 'end_s'")
        for path in job.get("node_paths", ()):
            if node_paths and path not in node_paths:
                job_out.at("node_paths").error(
                    "W016", f"job names unknown node path {path!r}"
                )

    analytics = spec.get("analytics", {})
    if not isinstance(analytics, dict):
        out.at("analytics").error("W005", "'analytics' must be a mapping")
        return out.sink[start:]
    for key in sorted(set(analytics) - {"pushers", "agent"}):
        out.at("analytics", key).error(
            "W003",
            f"unknown analytics host context {key!r} "
            f"(expected 'pushers' and/or 'agent')",
        )
    for context, tree in (("pushers", pusher_tree), ("agent", agent_tree)):
        blocks = analytics.get(context, [])
        if not isinstance(blocks, list):
            out.at("analytics", context).error(
                "W005", f"analytics.{context} must be a list of plugin blocks"
            )
            continue
        analyze_pipeline_blocks(
            blocks, tree, known_plugins,
            out.at("analytics", context), max_units=max_units,
        )
    if flow:
        from repro.analysis.flow import DEFAULT_MEMORY_BUDGET_MB, analyze_flow

        analyze_flow(
            spec, out,
            memory_budget_mb=(
                flow_memory_budget_mb if flow_memory_budget_mb is not None
                else DEFAULT_MEMORY_BUDGET_MB
            ),
            trees=(
                (agent_tree, pusher_tree)
                if agent_tree is not None and pusher_tree is not None
                else None
            ),
        )
    return out.sink[start:]
